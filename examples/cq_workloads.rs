//! The Section 1 motivation in numbers: profile a corpus of CQ/CSP-shaped
//! hypergraphs (chains, stars, cycles, grids, cliques, random BIP/BDP
//! instances) the way the HyperBench study [23] does — most real-world
//! cyclic queries have ghw ≤ 2 and tiny intersection widths.
//!
//! ```sh
//! cargo run --release --example cq_workloads
//! ```

use hypertree::hypergraph::generators;
use hypertree::{analyze_structure, exact_widths};

fn main() {
    let corpus: Vec<(String, hypertree::hypergraph::Hypergraph)> = vec![
        ("chain(5,3)".into(), generators::cq_chain(5, 3, 1)),
        ("star(4,2)".into(), generators::cq_star(4, 2)),
        ("cycle(6)".into(), generators::cycle(6)),
        ("cycle(3)".into(), generators::cycle(3)),
        ("triangles(3)".into(), generators::triangle_chain(3)),
        ("grid(3x3)".into(), generators::grid(3, 3)),
        ("clique(6)".into(), generators::clique(6)),
        ("example_4_3".into(), generators::example_4_3()),
        ("example_5_1(5)".into(), generators::example_5_1(5)),
        (
            "rand_bip(12)".into(),
            generators::random_bip(12, 8, 2, 3, 7),
        ),
        (
            "rand_bdp(12)".into(),
            generators::random_bounded_degree(12, 8, 3, 3, 7),
        ),
    ];

    println!(
        "{:<16} {:>3} {:>3} {:>4} {:>6} {:>4} {:>4} {:>6} {:>8}",
        "instance", "|V|", "|E|", "deg", "iwidth", "hw", "ghw", "fhw", "acyclic"
    );
    let mut cyclic = 0usize;
    let mut cyclic_ghw2 = 0usize;
    for (name, h) in corpus {
        let s = analyze_structure(&h, 14);
        let w = exact_widths(&h, 6);
        let (hw, ghw, fhw) = match &w {
            Some(w) => (w.hw.to_string(), w.ghw.to_string(), w.fhw.to_string()),
            None => ("-".into(), "-".into(), "-".into()),
        };
        if !s.alpha_acyclic {
            cyclic += 1;
            if let Some(w) = &w {
                if w.ghw <= 2 {
                    cyclic_ghw2 += 1;
                }
            }
        }
        println!(
            "{:<16} {:>3} {:>3} {:>4} {:>6} {:>4} {:>4} {:>6} {:>8}",
            name,
            s.num_vertices,
            s.num_edges,
            s.degree,
            s.intersection_width,
            hw,
            ghw,
            fhw,
            s.alpha_acyclic
        );
    }
    println!(
        "\n{cyclic_ghw2}/{cyclic} cyclic instances have ghw <= 2 — the empirical\n\
         observation ([11, 23]) that motivates settling Check(GHD, 2)."
    );
}
