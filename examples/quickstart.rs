//! Quickstart: parse a conjunctive query's hypergraph, profile its
//! structure, compute all three widths, and print a decomposition.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use hypertree::prelude::*;
use hypertree::{analyze_structure, exact_widths};

fn main() {
    // A cyclic 5-way join written in HyperBench syntax.
    let query = "
        r1(order_id, customer),
        r2(customer, region),
        r3(region, warehouse),
        r4(warehouse, item),
        r5(item, order_id)
    ";
    let h = hypergraph::parser::parse(query).expect("well-formed query");
    println!("Query hypergraph:\n{h:?}");

    let report = analyze_structure(&h, 16);
    println!("structure: {report:#?}");

    let widths = exact_widths(&h, 6).expect("small instance");
    println!(
        "hw = {}, ghw = {}, fhw = {}",
        widths.hw, widths.ghw, widths.fhw
    );

    // A concrete width-2 hypertree decomposition (the join plan skeleton).
    let hd = check_hd(&h, widths.hw).expect("hw is achievable by definition");
    println!("hypertree decomposition of width {}:", hd.width());
    println!("{}", hd.render(&h));

    // And the certified-optimal fractional decomposition.
    let (fhw, fhd) = fhw_exact(&h, None).expect("small instance");
    println!("optimal FHD (fhw = {fhw}):");
    println!("{}", fhd.render(&h));
    assert!(validate_fhd(&h, &fhd).is_ok());
}
