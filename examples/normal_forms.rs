//! The normal-form machinery of Sections 4/5 on the paper's own example:
//! Figure 6(a) — a valid but non-bag-maximal width-2 GHD of Example 4.3's
//! H0 — is bag-maximalized (Lemma 4.6 / Example 4.7) and brought into
//! fractional normal form (Theorem A.3), reproducing Figure 6(b); then the
//! ∪∩-tree of Figure 7 certifies the Lemma 4.9 equality.
//!
//! ```sh
//! cargo run --example normal_forms
//! ```

use hypertree::decomp::{self, validate, Decomposition, Node};
use hypertree::ghd;
use hypertree::hypergraph::{generators, VertexSet};

fn main() {
    let h = generators::example_4_3();
    let v = |name: &str| h.vertex_by_name(name).unwrap();
    let e = |name: &str| h.edge_by_name(name).unwrap();
    let bag = |names: &[&str]| VertexSet::from_iter(names.iter().map(|n| v(n)));

    // Figure 6(a): u0 (root) with children u' and u1; u' -> u''; u1 -> u2.
    let mut fig6a = Decomposition::new(Node::integral(
        bag(&["v3", "v6", "v7", "v9", "v10"]),
        [e("e2"), e("e6")],
    ));
    let u_prime = fig6a.add_child(
        0,
        Node::integral(bag(&["v3", "v6", "v9", "v10"]), [e("e3"), e("e5")]),
    );
    fig6a.add_child(
        u_prime,
        Node::integral(
            bag(&["v3", "v4", "v5", "v6", "v9", "v10"]),
            [e("e3"), e("e5")],
        ),
    );
    let u1 = fig6a.add_child(
        0,
        Node::integral(bag(&["v3", "v7", "v8", "v9", "v10"]), [e("e3"), e("e7")]),
    );
    fig6a.add_child(
        u1,
        Node::integral(
            bag(&["v1", "v2", "v3", "v8", "v9", "v10"]),
            [e("e2"), e("e8")],
        ),
    );

    println!("Figure 6(a) — valid width-2 GHD, but not bag-maximal:");
    println!("{}", fig6a.render(&h));
    assert_eq!(validate::validate_ghd(&h, &fig6a), Ok(()));
    assert!(!decomp::is_bag_maximal(&h, &fig6a));

    // Example 4.7: maximalize — v4, v5 join u', making it equal its child.
    let maximal = decomp::make_bag_maximal(&h, &fig6a);
    println!("after bag-maximalization (Lemma 4.6):");
    println!("{}", maximal.render(&h));
    assert!(decomp::is_bag_maximal(&h, &maximal));

    // FNF (Theorem A.3) splices the duplicate node away: Figure 6(b).
    let fnf = decomp::to_fnf(&h, &maximal);
    println!("after FNF transformation (Theorem A.3) — Figure 6(b):");
    println!("{}", fnf.render(&h));
    assert_eq!(validate::validate_fnf(&h, &fnf), Ok(()));
    assert_eq!(fnf.len(), 4, "Figure 6(b) has four nodes");

    // Figure 7: the ∪∩-tree of critp(u, e2) certifies e2 ∩ B_u = {v3, v9}.
    let tree = ghd::union_of_intersections_tree(
        &h,
        e("e2"),
        &[vec![e("e3"), e("e7")], vec![e("e8"), e("e2")]],
    );
    let leaf_union: Vec<String> = tree
        .leaf_union()
        .iter()
        .map(|x| h.vertex_name(x).to_string())
        .collect();
    println!(
        "Figure 7 ∪∩-tree: {} nodes; e2 ∩ B_u = {{{}}}",
        tree.size(),
        leaf_union.join(",")
    );

    // The subedge {v3, v9} is exactly what f(H0, 2) adds to repair the SCV
    // (Example 4.4), turning this GHD into an HD of the augmented H0'.
    let f = ghd::bip_subedges(&h, 2, ghd::SubedgeLimits::default());
    let repaired = f.subedges.iter().any(|s| *s == tree.leaf_union());
    println!("f(H0, 2) contains the repairing subedge e2' = {{v3,v9}}: {repaired}");
}
