//! Section 6 in action: the `(k, ε, c)-frac-decomp` oracle (Algorithm 3),
//! the PTAAS binary search (Algorithm 4 / Theorem 6.20), and the
//! O(k·log k) GHD conversion (Theorem 6.23).
//!
//! ```sh
//! cargo run --release --example approximate_fhw
//! ```

use hypertree::arith::{rat, Rational};
use hypertree::fhd::{self, CoverMode, FracDecompParams};
use hypertree::hypergraph::{generators, properties};

fn main() {
    let h = generators::cycle(3);
    let (fhw, _) = fhd::fhw_exact(&h, None).unwrap();
    println!("fhw(C3) = {fhw} (exact, rational)");

    // Algorithm 3 with the budget right at the optimum.
    let d = fhd::frac_decomp(
        &h,
        &FracDecompParams {
            k: Rational::one(),
            eps: rat(1, 2),
            c: 3,
        },
    )
    .expect("accepts at k + ε = 3/2");
    println!("Algorithm 3 witness width: {}", d.width());

    // Algorithm 4: PTAAS over an exact oracle, ε sweep.
    println!("\nPTAAS (Algorithm 4) on C5 (fhw = 2), K = 4:");
    println!(
        "{:>8} {:>10} {:>10} {:>12} {:>10}",
        "eps", "width", "lower", "iterations", "predicted"
    );
    for (p, q) in [(1i64, 1i64), (1, 2), (1, 4), (1, 8)] {
        let eps = rat(p, q);
        let res =
            fhd::fhw_approximation(&generators::cycle(5), &rat(4, 1), &eps, fhd::exact_oracle)
                .expect("fhw(C5) = 2 <= 4");
        println!(
            "{:>8} {:>10} {:>10} {:>12} {:>10}",
            eps.to_string(),
            res.width.to_string(),
            res.lower_bound.to_string(),
            res.iterations,
            fhd::predicted_iterations(&rat(4, 1), &eps)
        );
    }

    // Theorem 6.23: FHD -> GHD with bounded integrality gap.
    println!("\nTheorem 6.23 conversion (FHD → GHD):");
    for (name, h) in [
        ("K6", generators::clique(6)),
        ("example_5_1(5)", generators::example_5_1(5)),
        ("example_4_3", generators::example_4_3()),
    ] {
        let (fhw, ghd) = fhd::approx_ghw_via_fhw(&h, CoverMode::Exact).unwrap();
        let vc = properties::vc_dimension(&h);
        println!(
            "  {name}: fhw = {fhw}, converted GHD width = {}, vc = {vc}, bound = {:.2}",
            ghd.width(),
            fhd::cigap_bound(vc, &fhw)
        );
    }
}
