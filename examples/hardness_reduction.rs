//! The Theorem 3.2 reduction end to end: build the hypergraph `H` for a
//! 3SAT formula, solve the formula, materialize the Table 1 / Figure 2
//! width-2 GHD witness, and certify the Lemma 3.5/3.6 LP facts that drive
//! the "only if" direction.
//!
//! ```sh
//! cargo run --release --example hardness_reduction
//! ```

use hypertree::decomp::validate;
use hypertree::reduction::{self, Cnf};

fn main() {
    // Example 3.3: (x1 ∨ ¬x2 ∨ x3) ∧ (¬x1 ∨ x2 ∨ ¬x3).
    let cnf = Cnf::example_3_3();
    println!("φ = {cnf}");

    let r = reduction::build(&cnf);
    println!(
        "reduction hypergraph: |V| = {}, |E| = {} (|S| = {}, |A| = |A'| = {})",
        r.hypergraph.num_vertices(),
        r.hypergraph.num_edges(),
        r.s.len(),
        r.a.len(),
    );

    // "if" direction: satisfiable ⇒ ghw(H) ≤ 2 with an explicit witness.
    let assignment = cnf.solve().expect("Example 3.3 is satisfiable");
    println!("satisfying assignment: {assignment:?}");
    let witness = reduction::witness_ghd(&r, &assignment);
    assert_eq!(validate::validate_ghd(&r.hypergraph, &witness), Ok(()));
    assert_eq!(validate::validate_fhd(&r.hypergraph, &witness), Ok(()));
    println!(
        "witness GHD: {} nodes on a path, width {} — validated as GHD and FHD",
        witness.len(),
        witness.width()
    );

    // "only if" machinery: the LP facts.
    let classes = reduction::complementary_classes(&r);
    println!("\ncomplementary edge classes: {}", classes.len());
    let sample = &classes[0];
    let imbalance = reduction::lemma_3_5_max_imbalance(&r, sample).unwrap();
    println!("Lemma 3.5: max weight imbalance over covers of S∪{{z1,z2}} = {imbalance}");

    let p = (2, 1);
    let (other, lo, hi) = reduction::lemma_3_6_certificates(&r, p).unwrap();
    println!(
        "Lemma 3.6 at p={p:?}: max weight off the literal edges = {other}; \
         Σ_k γ(e^{{k,0}}_p) ∈ [{lo}, {hi}]"
    );

    let claim_d = reduction::claim_d_min_weight(&r).unwrap();
    println!("Claim D: min cover weight of S∪{{z1,z2,a1,a1'}} = {claim_d} > 2");

    // An unsatisfiable formula still produces a hypergraph — but no witness.
    let unsat = Cnf::all_sign_patterns();
    let r2 = reduction::build(&unsat);
    assert!(reduction::witness_from_solver(&r2).is_none());
    println!(
        "\nUNSAT control ({} clauses): solver finds no assignment, hence no witness;\n\
         Theorem 3.2 says ghw(H) > 2 for this instance (verifying that exactly is\n\
         the NP-hard direction).",
        unsat.num_clauses()
    );
}
