#!/usr/bin/env bash
# Refreshes BENCH_baseline.json: runs the exact width engines over the
# generator corpus (median of three, release profile) and records the
# timings for perf-trajectory comparisons across PRs.
set -euo pipefail
cd "$(dirname "$0")/.."
cargo run -p hypertree-bench --bin baseline --release -- BENCH_baseline.json
echo "BENCH_baseline.json refreshed:"
head -5 BENCH_baseline.json
