#!/usr/bin/env bash
# Refreshes BENCH_baseline.json: runs the exact width engines over the
# generator corpus (noise-floor minimum of five, release profile) and records the
# timings + fhw engine counters for perf-trajectory comparisons across PRs.
#
#   scripts/bench_baseline.sh           full refresh of BENCH_baseline.json
#   scripts/bench_baseline.sh --smoke   CI mode: single iteration over a
#                                       small corpus prefix, written to a
#                                       scratch file — proves the baseline
#                                       bin still runs and still emits the
#                                       hypertree-bench-baseline/v8 schema
#
# Either mode fails hard when the emitted schema tag drifts.
set -euo pipefail
cd "$(dirname "$0")/.."

SCHEMA='hypertree-bench-baseline/v8'

if [[ "${1:-}" == "--smoke" ]]; then
  out="$(mktemp /tmp/bench_baseline_smoke.XXXXXX.json)"
  trap 'rm -f "$out"' EXIT
  cargo run -p hypertree-bench --bin baseline --release -- --smoke "$out"
else
  out=BENCH_baseline.json
  cargo run -p hypertree-bench --bin baseline --release -- "$out"
fi

if ! grep -q "\"schema\": \"$SCHEMA\"" "$out"; then
  echo "bench_baseline.sh: schema drift — $out does not declare $SCHEMA" >&2
  exit 1
fi
# Structural sanity: every instance row carries the timing columns.
if ! grep -q '"fhw_us":' "$out"; then
  echo "bench_baseline.sh: schema drift — no fhw_us columns in $out" >&2
  exit 1
fi
# The stats block must record the worker-thread provenance.
if ! grep -q '"threads":' "$out"; then
  echo "bench_baseline.sh: schema drift — no threads field in the stats blocks of $out" >&2
  exit 1
fi
# v2: every instance carries the preprocessing block (vertices/edges
# removed, block count, cross-call cache reuse of a repeated search).
if ! grep -q '"prep":' "$out"; then
  echo "bench_baseline.sh: schema drift — no prep blocks in $out" >&2
  exit 1
fi
if ! grep -q '"rerun_warm_hits":' "$out"; then
  echo "bench_baseline.sh: schema drift — no rerun_warm_hits in the prep blocks of $out" >&2
  exit 1
fi
# v3: the stats blocks track the candidate-generation discipline (candgen
# edge-union bags generated/filtered + the seeding heuristic width), and
# ghw — now engine-driven — records a stats block of its own.
for field in '"cand_gen":' '"cand_filtered":' '"ub_seed":' '"ghw_stats":'; do
  if ! grep -q "$field" "$out"; then
    echo "bench_baseline.sh: schema drift — no $field columns in $out" >&2
    exit 1
  fi
done
# v4: the stats blocks track the exact-simplex work counters (pivot count,
# warm/cold solve split) and the adaptive candidate-stream cap hits.
for field in '"lp_pivots":' '"lp_warm_starts":' '"lp_cold_solves":' '"cand_cap_hits":'; do
  if ! grep -q "$field" "$out"; then
    echo "bench_baseline.sh: schema drift — no $field columns in $out" >&2
    exit 1
  fi
done
# v5: the stats blocks carry the runtime counters, and the file ends with
# the batch block — the corpus through solve_batch cold then warm, with
# per-instance result-cache hit counts.
for field in '"result_cache_hits":' '"inflight_dedup":' '"pool_reuse":' \
             '"batch":' '"cold_us":' '"warm_us":' '"warm_result_cache_hits":'; do
  if ! grep -q "$field" "$out"; then
    echo "bench_baseline.sh: schema drift — no $field columns in $out" >&2
    exit 1
  fi
done
# The warm batch pass must be answered from the result cache on every
# instance: a zero hit count in the batch rows (six-space indent — the
# timed instance rows report cold zeros by construction) means the
# runtime cache broke.
if grep -q '^      {"name": .*"result_cache_hits": 0[,}]' "$out"; then
  echo "bench_baseline.sh: batch warm pass missed the result cache" >&2
  exit 1
fi

# v6: the file ends with the portfolio block — every instance (corpus +
# vendored HyperBench-style set) raced through solver::portfolio, with
# per-race winner/timing columns and the corpus-wide agreement flag.
for field in '"portfolio":' '"winner":' '"first_bound_us":' '"exact_us":' \
             '"losers_canceled":' '"widths_match_single_backend":'; do
  if ! grep -q "$field" "$out"; then
    echo "bench_baseline.sh: schema drift — no $field columns in $out" >&2
    exit 1
  fi
done
# The portfolio must agree with the plain single-backend path everywhere.
if ! grep -q '"widths_match_single_backend": true' "$out"; then
  echo "bench_baseline.sh: portfolio widths diverged from the single-backend path" >&2
  exit 1
fi

# v7: every instance row carries the phases block — per-phase self times
# of one traced ghw run (span layer of crates/obs).
for field in '"phases":' '"prep_us":' '"candgen_us":' '"search_us":' \
             '"pricing_us":' '"total_self_us":' '"spans":'; do
  if ! grep -q "$field" "$out"; then
    echo "bench_baseline.sh: schema drift — no $field columns in $out" >&2
    exit 1
  fi
done
# The traced runs must actually record spans: a phases block claiming
# zero spans means the span layer went dark.
if grep -q '"spans": 0}' "$out"; then
  echo "bench_baseline.sh: a phases block recorded zero spans" >&2
  exit 1
fi

# v8: the file ends with the serve block — the served-QPS track: an
# in-process daemon driven closed-loop by the loadgen, with server-side
# latency quantiles from the live request-latency histogram.
for field in '"serve":' '"qps":' '"p50_us":' '"p95_us":' '"p99_us":' \
             '"deadline_expired":' '"cancelled":' '"latency_count":' \
             '"cache_hit_ratio":'; do
  if ! grep -q "$field" "$out"; then
    echo "bench_baseline.sh: schema drift — no $field columns in $out" >&2
    exit 1
  fi
done
# The served track must have processed traffic: zero requests means the
# daemon or the loadgen died silently.
if grep -q '"requests": 0,' "$out"; then
  echo "bench_baseline.sh: serve block recorded zero requests" >&2
  exit 1
fi
# Every served response must have been a success in this closed harness.
if ! grep -q '"errors": 0,' "$out"; then
  echo "bench_baseline.sh: serve block recorded transport/HTTP errors" >&2
  exit 1
fi

echo "$out validated against $SCHEMA:"
head -5 "$out"
