//! Agreement suite for the backend portfolio: racing a strategy's full
//! backend registry must be indistinguishable — width for width, witness
//! validity for witness validity — from running any single backend alone,
//! across all five strategies. Also checks the anytime contract: the
//! merged bound trace is monotone (lower bounds nondecreasing, upper
//! bounds nonincreasing), every race that ends in an exact answer closes
//! its bounds at `lb == ub == width`, and the winner's witness
//! re-validates on the original instance.
//!
//! Runs in the `HGTOOL_THREADS={1,4}` CI matrix (plus a dedicated
//! 8-thread step): backends inherit the engine's thread-count
//! determinism, so the race's *answers* are schedule-independent even
//! though the *winner* is not.

use hypertree::arith::{rat, Rational};
use hypertree::decomp::validate;
use hypertree::hypergraph::{generators, Hypergraph};
use hypertree::solver::backend::{execute, BoundEvent, Measure, Outcome, RunCtl, WidthRequest};
use hypertree::solver::portfolio::{race, PortfolioOptions, RaceReport};
use hypertree::solver::EngineOptions;
use proptest::prelude::*;

/// Random small hypergraphs, the same families as the other agreement
/// suites.
fn arb_hypergraph() -> impl Strategy<Value = Hypergraph> {
    (3usize..8, 0u64..400).prop_map(|(n, seed)| match seed % 6 {
        0 => generators::random_bip(n + 3, n, 2, 3, seed),
        1 => generators::random_bounded_degree(n + 3, n, 3, 3, seed),
        2 => generators::random_acyclic(n, 3, seed),
        3 => generators::triangle_chain(n.min(4)),
        4 => generators::cq_chain(n, 3, 1),
        _ => generators::cycle(n),
    })
}

fn request(measure: Measure) -> WidthRequest {
    WidthRequest {
        measure,
        opts: EngineOptions::default(),
    }
}

/// Runs every registered backend alone (fresh control channel each) and
/// returns the outcomes of those that were eligible.
fn solo_outcomes(h: &Hypergraph, req: &WidthRequest) -> Vec<Outcome> {
    hypertree::backends_for(&req.measure)
        .iter()
        .filter(|b| b.eligible(h, req))
        .map(|b| execute(b.as_ref(), h, req, &RunCtl::default()))
        .collect()
}

/// The anytime contract on a finished race: monotone bound trace, and on
/// an exact win the bounds closed at `lb == ub == width`.
fn assert_anytime_contract(r: &RaceReport) -> Result<(), TestCaseError> {
    let mut last_lower: Option<Rational> = None;
    let mut last_upper: Option<Rational> = None;
    for event in &r.trace {
        match event {
            BoundEvent::Lower(w) => {
                if let Some(prev) = &last_lower {
                    prop_assert!(w >= prev, "lower bounds must be nondecreasing");
                }
                last_lower = Some(w.clone());
            }
            BoundEvent::Upper(w) => {
                if let Some(prev) = &last_upper {
                    prop_assert!(w <= prev, "upper bounds must be nonincreasing");
                }
                last_upper = Some(w.clone());
            }
        }
    }
    prop_assert_eq!(&r.bounds.lower, &last_lower, "snapshot matches the trace");
    prop_assert_eq!(&r.bounds.upper, &last_upper, "snapshot matches the trace");
    if let Some(w) = &r.outcome.width {
        prop_assert_eq!(
            r.bounds.lower.as_ref(),
            Some(w),
            "exact win closes the lower bound"
        );
        prop_assert_eq!(
            r.bounds.upper.as_ref(),
            Some(w),
            "exact win closes the upper bound"
        );
    }
    Ok(())
}

/// Portfolio width == every solo backend's width (on the instances where
/// that backend resolves), for the three minimizing measures.
fn assert_width_agreement(
    h: &Hypergraph,
    measure: Measure,
) -> Result<(RaceReport, Vec<Outcome>), TestCaseError> {
    let req = request(measure);
    let backends = hypertree::backends_for(&req.measure);
    let report = race(h, &req, &backends, &PortfolioOptions::default());
    let solos = solo_outcomes(h, &req);
    for solo in &solos {
        if solo.resolved {
            prop_assert_eq!(
                &report.outcome.width,
                &solo.width,
                "portfolio disagrees with solo backend {} on {:?}",
                solo.provenance,
                h
            );
        }
    }
    assert_anytime_contract(&report)?;
    Ok((report, solos))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn hw_portfolio_agrees_with_every_backend(h in arb_hypergraph()) {
        let (report, solos) = assert_width_agreement(&h, Measure::Hw { max_k: 6 })?;
        if let (Some(w), Some(d)) = (&report.outcome.width, &report.outcome.witness) {
            prop_assert_eq!(validate::validate_hd(&h, d), Ok(()), "portfolio hw witness");
            prop_assert!(d.width() <= *w);
            // Both hw backends probe the same deterministic check at the
            // minimal k, so even the witnesses are byte-identical.
            for solo in &solos {
                if solo.resolved {
                    prop_assert_eq!(solo.witness.as_ref(), Some(d),
                        "hw witnesses must be byte-identical across backends");
                }
            }
        }
    }

    #[test]
    fn ghw_portfolio_agrees_with_every_backend(h in arb_hypergraph()) {
        let (report, solos) = assert_width_agreement(&h, Measure::Ghw { cutoff: None })?;
        if let (Some(w), Some(d)) = (&report.outcome.width, &report.outcome.witness) {
            prop_assert_eq!(validate::validate_ghd(&h, d), Ok(()), "portfolio ghw witness");
            prop_assert!(d.width() <= *w);
        }
        // Solo witnesses may legitimately differ by backend (different
        // exact algorithms, same width); each must still validate.
        for solo in &solos {
            if let Some(d) = &solo.witness {
                prop_assert_eq!(validate::validate_ghd(&h, d), Ok(()),
                    "solo {} ghw witness", solo.provenance);
            }
        }
    }

    #[test]
    fn fhw_portfolio_agrees_with_every_backend(h in arb_hypergraph()) {
        let (report, solos) = assert_width_agreement(&h, Measure::Fhw { cutoff: None })?;
        if let (Some(w), Some(d)) = (&report.outcome.width, &report.outcome.witness) {
            prop_assert_eq!(validate::validate_fhd(&h, d), Ok(()), "portfolio fhw witness");
            prop_assert!(d.width() <= *w);
        }
        for solo in &solos {
            if let Some(d) = &solo.witness {
                prop_assert_eq!(validate::validate_fhd(&h, d), Ok(()),
                    "solo {} fhw witness", solo.provenance);
            }
        }
    }

    #[test]
    fn frac_decomp_portfolio_agrees(h in arb_hypergraph()) {
        // k = 2, eps = 1/2: accepted witnesses must be width <= 5/2.
        let measure = Measure::FracDecomp { k: rat(2, 1), eps: rat(1, 2), c: 2 };
        let req = request(measure);
        let backends = hypertree::backends_for(&req.measure);
        let report = race(&h, &req, &backends, &PortfolioOptions::default());
        let solos = solo_outcomes(&h, &req);
        for solo in &solos {
            if solo.resolved && report.outcome.resolved {
                // Accept/reject must agree: acceptance is one-sided
                // monotone, and the noprep member maps its weaker reject
                // to unresolved, so a resolved disagreement is a bug.
                prop_assert_eq!(
                    report.outcome.witness.is_some(),
                    solo.witness.is_some(),
                    "frac-decomp accept/reject diverged for {} on {:?}",
                    solo.provenance,
                    h
                );
            }
        }
        if let Some(d) = &report.outcome.witness {
            prop_assert_eq!(validate::validate_fhd(&h, d), Ok(()), "frac-decomp witness");
            prop_assert!(d.width() <= rat(5, 2), "width respects k + eps");
        }
        assert_anytime_contract(&report)?;
    }

    #[test]
    fn strict_hd_portfolio_agrees(h in arb_hypergraph()) {
        let measure = Measure::StrictHd {
            k: rat(2, 1),
            union_arity: 3,
            max_subedges: 200_000,
        };
        let req = request(measure);
        let backends = hypertree::backends_for(&req.measure);
        let report = race(&h, &req, &backends, &PortfolioOptions::default());
        let solos = solo_outcomes(&h, &req);
        for solo in &solos {
            if solo.resolved && report.outcome.resolved {
                prop_assert_eq!(
                    report.outcome.witness.is_some(),
                    solo.witness.is_some(),
                    "strict-hd yes/no diverged for {} on {:?}",
                    solo.provenance,
                    h
                );
            }
        }
        if let Some(d) = &report.outcome.witness {
            prop_assert_eq!(validate::validate_fhd(&h, d), Ok(()), "strict-hd witness");
            prop_assert!(d.width() <= rat(2, 1), "width respects k");
        }
        assert_anytime_contract(&report)?;
    }
}
