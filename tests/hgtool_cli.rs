//! Integration tests for the `hgtool` binary: drive `widths` and `check`
//! on the paper's Example 4.3 hypergraph and assert the headline numbers
//! (hw = 3, ghw = 2, fhw <= 2) as computed through the shared search
//! engine behind all three solvers.

use hypertree::hypergraph::generators;
use std::io::Write;
use std::process::{Command, Stdio};

/// Runs the compiled `hgtool` with `args`, feeding `stdin_text` when given.
fn hgtool(args: &[&str], stdin_text: Option<&str>) -> (bool, String) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_hgtool"));
    cmd.args(args);
    cmd.stdin(if stdin_text.is_some() {
        Stdio::piped()
    } else {
        Stdio::null()
    });
    cmd.stdout(Stdio::piped());
    cmd.stderr(Stdio::piped());
    let mut child = cmd.spawn().expect("spawn hgtool");
    if let Some(text) = stdin_text {
        child
            .stdin
            .as_mut()
            .expect("stdin piped")
            .write_all(text.as_bytes())
            .expect("write stdin");
    }
    let out = child.wait_with_output().expect("run hgtool");
    let text = format!(
        "{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    (out.status.success(), text)
}

/// Example 4.3 in the HyperBench syntax hgtool parses (via stdin, `-`).
fn example_4_3_text() -> String {
    generators::example_4_3().to_string()
}

#[test]
fn widths_reports_the_example_4_3_headline_numbers() {
    let (ok, out) = hgtool(&["widths", "-"], Some(&example_4_3_text()));
    assert!(ok, "hgtool widths failed:\n{out}");
    assert!(out.contains("hw  = 3"), "missing hw = 3 in:\n{out}");
    assert!(out.contains("ghw = 2"), "missing ghw = 2 in:\n{out}");
    // fhw is reported as an exact rational in (1, 2].
    let fhw_line = out
        .lines()
        .find(|l| l.starts_with("fhw = "))
        .unwrap_or_else(|| panic!("missing fhw line in:\n{out}"));
    let value = fhw_line.trim_start_matches("fhw = ").trim();
    let as_rational: hypertree::arith::Rational = value
        .parse()
        .unwrap_or_else(|e| panic!("unparsable fhw {value:?}: {e}"));
    assert!(as_rational > hypertree::arith::Rational::one());
    assert!(as_rational <= hypertree::arith::Rational::from(2usize));
}

#[test]
fn widths_stats_surfaces_engine_counters() {
    let (ok, out) = hgtool(&["widths", "--stats", "-"], Some(&example_4_3_text()));
    assert!(ok, "hgtool widths --stats failed:\n{out}");
    assert!(out.contains("hw  = 3"), "missing hw = 3 in:\n{out}");
    assert!(
        out.contains("states") && out.contains("streamed") && out.contains("lp-cache"),
        "missing stats header in:\n{out}"
    );
    for engine in ["hw", "ghw", "fhw"] {
        // A stats *row* (not the width line): engine name plus a hit rate.
        assert!(
            out.lines()
                .any(|l| l.starts_with(engine) && l.contains("% hit")),
            "missing {engine} stats row in:\n{out}"
        );
    }
}

#[test]
fn widths_stats_reports_cross_call_reuse() {
    let (ok, out) = hgtool(&["widths", "--stats", "-"], Some(&example_4_3_text()));
    assert!(ok, "hgtool widths --stats failed:\n{out}");
    let line = out
        .lines()
        .find(|l| l.starts_with("cross-call price cache"))
        .unwrap_or_else(|| panic!("missing cross-call line in:\n{out}"));
    // The repeated fhw search must reuse prices cached by the first one.
    assert!(
        !line.contains("served 0 of"),
        "repeated search saw no warm hits: {line}"
    );
}

#[test]
fn widths_no_prep_matches_default_widths() {
    let (ok, out) = hgtool(
        &["widths", "--stats", "--no-prep", "-"],
        Some(&example_4_3_text()),
    );
    assert!(ok, "hgtool widths --no-prep failed:\n{out}");
    assert!(out.contains("hw  = 3"), "missing hw = 3 in:\n{out}");
    assert!(out.contains("ghw = 2"), "missing ghw = 2 in:\n{out}");
    assert!(out.contains("prep: off"), "missing prep-off marker:\n{out}");
}

#[test]
fn hgtool_no_prep_env_bypasses_the_pipeline() {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_hgtool"));
    cmd.args(["widths", "--stats", "-"])
        .env("HGTOOL_NO_PREP", "1")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped());
    let mut child = cmd.spawn().expect("spawn hgtool");
    child
        .stdin
        .as_mut()
        .expect("stdin piped")
        .write_all(example_4_3_text().as_bytes())
        .expect("write stdin");
    let out = child.wait_with_output().expect("run hgtool");
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(out.status.success(), "env override run failed:\n{text}");
    assert!(
        text.contains("hw  = 3"),
        "widths must still compute:\n{text}"
    );
    assert!(text.contains("prep: off"), "env override ignored:\n{text}");
}

#[test]
fn prep_prints_the_reduction_trace() {
    // An α-acyclic chain: GYO must collapse it and say so.
    let input = "r1(a,b,c),\nr2(c,d),\nr3(d,e).";
    let (ok, out) = hgtool(&["prep", "-"], Some(input));
    assert!(ok, "hgtool prep failed:\n{out}");
    assert!(out.contains("original: 5 vertices, 3 edges"), "{out}");
    assert!(out.contains("degree-one"), "no GYO steps in:\n{out}");
    assert!(out.contains("fingerprint"), "no fingerprints in:\n{out}");
    assert!(out.contains("blocks: 1"), "no block summary in:\n{out}");
}

#[test]
fn check_hd_accepts_3_and_rejects_2() {
    let (ok, out) = hgtool(&["check", "hd", "3", "-"], Some(&example_4_3_text()));
    assert!(ok, "check hd 3 failed:\n{out}");
    assert!(out.contains("YES"), "expected YES at width 3:\n{out}");
    assert!(
        out.contains("validated: true"),
        "witness must validate:\n{out}"
    );

    let (ok, out) = hgtool(&["check", "hd", "2", "-"], Some(&example_4_3_text()));
    assert!(ok, "check hd 2 errored:\n{out}");
    assert!(
        out.contains("NO"),
        "hw(H0) = 3, width 2 must be rejected:\n{out}"
    );
}

#[test]
fn check_ghd_accepts_2() {
    // The gap hw = 3 > ghw = 2 is the point of Example 4.3: the GHD check
    // (BIP subedge augmentation over the same engine) accepts width 2.
    let (ok, out) = hgtool(&["check", "ghd", "2", "-"], Some(&example_4_3_text()));
    assert!(ok, "check ghd 2 failed:\n{out}");
    assert!(out.contains("YES"), "expected YES at ghw 2:\n{out}");
    assert!(
        out.contains("validated: true"),
        "witness must validate:\n{out}"
    );
}

#[test]
fn structure_profiles_example_4_3() {
    let (ok, out) = hgtool(&["structure", "-"], Some(&example_4_3_text()));
    assert!(ok, "hgtool structure failed:\n{out}");
    assert!(out.contains("vertices:            10"), "{out}");
    assert!(out.contains("edges:               8"), "{out}");
    assert!(out.contains("intersection width:  1"), "{out}");
    assert!(out.contains("alpha-acyclic:       false"), "{out}");
}

#[test]
fn bad_usage_exits_nonzero() {
    let (ok, out) = hgtool(&["frobnicate"], None);
    assert!(!ok, "unknown command must fail");
    assert!(out.contains("usage:"), "{out}");
}
