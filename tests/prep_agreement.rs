//! Agreement suite for the preprocessing pipeline: on random small
//! hypergraphs, `hw`/`ghw`/`fhw` must be *identical* with and without
//! preprocessing, and every witness computed through the pipeline (i.e.
//! simplified, block-split, solved, stitched and lifted) must re-validate
//! on the original instance.
//!
//! Runs in the `HGTOOL_THREADS={1,4}` CI matrix alongside
//! `streaming_agreement` — the pipeline's per-block searches inherit the
//! engine's thread-count determinism.

use hypertree::arith::Rational;
use hypertree::decomp::validate;
use hypertree::hypergraph::{generators, Hypergraph};
use hypertree::solver::EngineOptions;
use hypertree::{fhd, ghd, hd, prep};
use proptest::prelude::*;

/// Random hypergraphs biased toward reducible shapes: acyclic families
/// (GYO collapses them), generators with cut vertices (block splitting)
/// and the random families of the engine agreement suite.
fn arb_hypergraph() -> impl Strategy<Value = Hypergraph> {
    (3usize..8, 0u64..400).prop_map(|(n, seed)| match seed % 6 {
        0 => generators::random_bip(n + 3, n, 2, 3, seed),
        1 => generators::random_bounded_degree(n + 3, n, 3, 3, seed),
        2 => generators::random_acyclic(n, 3, seed),
        3 => generators::triangle_chain(n.min(4)),
        4 => generators::cq_chain(n, 3, 1),
        _ => generators::cycle(n),
    })
}

/// True when the process-wide kill switch is set: the pipeline is
/// disabled whatever the options say, so prep-specific assertions are
/// vacuous and skip.
fn prep_disabled() -> bool {
    std::env::var_os("HGTOOL_NO_PREP").is_some()
}

/// Prep on, fresh price caches (deterministic stats), default thread
/// count — `threads: None` is what lets the CI `HGTOOL_THREADS={1,4}`
/// matrix drive the per-block searches at both widths.
fn with_prep() -> EngineOptions {
    EngineOptions {
        threads: None,
        speculate: false,
        prep: true,
        reuse_prices: false,
        reuse_results: false,
    }
}

/// Prep off, fresh price caches, default thread count.
fn without_prep() -> EngineOptions {
    with_prep().without_prep()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn ghw_is_identical_with_and_without_prep(h in arb_hypergraph()) {
        let (with, stats) = ghd::ghw_exact_with_stats(&h, None, with_prep());
        let (without, _) = ghd::ghw_exact_with_stats(&h, None, without_prep());
        prop_assert_eq!(
            with.as_ref().map(|(w, _)| *w),
            without.map(|(w, _)| w),
            "ghw drifted under prep on {:?}", h
        );
        prop_assert!(prep_disabled() || stats.prep_blocks >= 1, "prep ran");
        if let Some((w, d)) = with {
            prop_assert_eq!(validate::validate_ghd(&h, &d), Ok(()), "lifted ghw witness");
            prop_assert!(d.width() <= Rational::from(w));
        }
    }

    #[test]
    fn fhw_is_identical_with_and_without_prep(h in arb_hypergraph()) {
        let (with, stats) = fhd::fhw_exact_with_stats(&h, None, with_prep());
        let (without, _) = fhd::fhw_exact_with_stats(&h, None, without_prep());
        prop_assert_eq!(
            with.as_ref().map(|(w, _)| w.clone()),
            without.map(|(w, _)| w),
            "fhw drifted under prep on {:?}", h
        );
        prop_assert!(prep_disabled() || stats.prep_blocks >= 1, "prep ran");
        if let Some((w, d)) = with {
            prop_assert_eq!(validate::validate_fhd(&h, &d), Ok(()), "lifted fhw witness");
            prop_assert!(d.width() <= w);
        }
    }

    #[test]
    fn hw_is_identical_with_and_without_prep(h in arb_hypergraph()) {
        // Bound the k-iteration by the AGG sandwich around ghw.
        let Some((ghw, _)) = ghd::ghw_exact(&h, None) else { return Ok(()); };
        let max_k = 3 * ghw + 1;
        let (with, _) = hd::hypertree_width_with_stats(&h, max_k, with_prep());
        let (without, _) = hd::hypertree_width_with_stats(&h, max_k, without_prep());
        prop_assert_eq!(
            with.as_ref().map(|(w, _)| *w),
            without.map(|(w, _)| w),
            "hw drifted under prep on {:?}", h
        );
        if let Some((w, d)) = with {
            prop_assert_eq!(validate::validate_hd(&h, &d), Ok(()), "lifted hw witness");
            prop_assert!(d.width() <= Rational::from(w));
        }
    }

    #[test]
    fn frac_decomp_acceptance_is_monotone_under_prep(h in arb_hypergraph()) {
        // Prep never *loses* an acceptance (an FHD with a c-bounded
        // fractional part projects onto the twin-collapsed instance), and
        // whatever it accepts must lift to a valid witness of `h`. The
        // converse is deliberately not asserted: collapsed twins need
        // fewer `W_s` slots, so the reduced instance can satisfy the `c`
        // bound where the original does not — prep only improves
        // Algorithm 3's (c-relative) completeness.
        let params = fhd::FracDecompParams {
            k: Rational::from(2usize),
            eps: Rational::from_frac(1, 2),
            c: 2,
        };
        let (with, _) = fhd::frac_decomp_with_stats(&h, &params, with_prep());
        let (without, _) = fhd::frac_decomp_with_stats(&h, &params, without_prep());
        prop_assert!(
            with.is_some() || without.is_none(),
            "prep lost a frac-decomp acceptance on {:?}", h
        );
        if let Some(d) = with {
            prop_assert_eq!(validate::validate_fhd(&h, &d), Ok(()), "lifted frac witness");
            prop_assert!(d.width() <= Rational::from_frac(5, 2));
        }
    }
}

/// Clones `h` with a fresh vertex added as an exact twin of vertex 0, so
/// the decision profile's twin collapse is guaranteed to fire.
fn with_twin_of_v0(h: &Hypergraph) -> Hypergraph {
    let n = h.num_vertices();
    let edges: Vec<Vec<usize>> = h
        .edges()
        .iter()
        .map(|e| {
            let mut v: Vec<usize> = e.to_vec();
            if e.contains(0) {
                v.push(n);
            }
            v
        })
        .collect();
    Hypergraph::from_edges(n + 1, edges)
}

/// The fifth strategy: the strict-HD check's yes/no answers must agree
/// with and without preprocessing — on instances where the twin collapse
/// demonstrably fires — and lifted witnesses must re-validate. (Kept as a
/// fixed small corpus: the BDP check is the most expensive strategy.)
#[test]
fn strict_hd_check_agrees_with_and_without_prep() {
    use hypertree::fhd::FhdAnswer;
    let corpus = vec![
        generators::cycle(3),
        generators::cycle(4),
        generators::path(4),
        generators::triangle_chain(2),
    ];
    for base in corpus {
        let h = with_twin_of_v0(&base);
        for k in [Rational::from_frac(3, 2), Rational::from(2usize)] {
            let (with, stats) = hypertree::fhd::check_fhd_bdp_with_stats(
                &h,
                &k,
                hypertree::fhd::HdkParams::default(),
                with_prep(),
            );
            let (without, _) = hypertree::fhd::check_fhd_bdp_with_stats(
                &h,
                &k,
                hypertree::fhd::HdkParams::default(),
                without_prep(),
            );
            if !prep_disabled() {
                assert!(
                    stats.prep_vertices_removed >= 1,
                    "the planted twin must collapse on {h:?}"
                );
            }
            // Truncation (`Unknown`) is params-relative and may differ
            // between the instances; only definite answers must agree.
            if !matches!(with, FhdAnswer::Unknown) && !matches!(without, FhdAnswer::Unknown) {
                assert_eq!(
                    with.is_yes(),
                    without.is_yes(),
                    "strict-HD answer drifted under prep at k={k} on {h:?}"
                );
            }
            if let FhdAnswer::Yes(d) = &with {
                assert_eq!(
                    validate::validate_fhd(&h, d),
                    Ok(()),
                    "lifted strict-HD witness at k={k} on {h:?}"
                );
                assert!(d.width() <= k);
            }
        }
    }
}

/// The acceptance bar of the pipeline: on the full bench corpus (which
/// includes `examples/data`'s Example 4.3), `hw`/`ghw`/`fhw` are
/// identical with and without preprocessing and every lifted witness
/// re-validates on the original instance.
#[test]
fn bench_corpus_widths_and_witnesses_are_preserved() {
    for w in hypertree_bench::corpus() {
        let h = &w.hypergraph;
        let name = &w.name;
        let (with, _) = fhd::fhw_exact_with_stats(h, None, with_prep());
        let (without, _) = fhd::fhw_exact_with_stats(h, None, without_prep());
        assert_eq!(
            with.as_ref().map(|(w, _)| w.clone()),
            without.map(|(w, _)| w),
            "{name}: fhw drifted under prep"
        );
        if let Some((_, d)) = with {
            assert_eq!(validate::validate_fhd(h, &d), Ok(()), "{name}: fhw witness");
        }
        let (with, _) = ghd::ghw_exact_with_stats(h, None, with_prep());
        let (without, _) = ghd::ghw_exact_with_stats(h, None, without_prep());
        assert_eq!(
            with.as_ref().map(|(w, _)| *w),
            without.map(|(w, _)| w),
            "{name}: ghw drifted under prep"
        );
        if let Some((_, d)) = with {
            assert_eq!(validate::validate_ghd(h, &d), Ok(()), "{name}: ghw witness");
        }
        let (with, _) = hd::hypertree_width_with_stats(h, 6, with_prep());
        let (without, _) = hd::hypertree_width_with_stats(h, 6, without_prep());
        assert_eq!(
            with.as_ref().map(|(w, _)| *w),
            without.map(|(w, _)| w),
            "{name}: hw drifted under prep"
        );
        if let Some((_, d)) = with {
            assert_eq!(validate::validate_hd(h, &d), Ok(()), "{name}: hw witness");
        }
    }
}

/// Two triangles sharing one vertex: simplification leaves them alone but
/// block splitting solves each triangle independently — and the stitched,
/// lifted witness must cover the whole instance.
#[test]
fn block_split_witnesses_stitch_back() {
    if prep_disabled() {
        return;
    }
    let h = Hypergraph::from_edges(
        5,
        vec![
            vec![0, 1],
            vec![1, 2],
            vec![2, 0],
            vec![2, 3],
            vec![3, 4],
            vec![4, 2],
        ],
    );
    let (result, stats) = fhd::fhw_exact_with_stats(&h, None, with_prep());
    let (w, d) = result.expect("small instance");
    assert_eq!(stats.prep_blocks, 2, "two biconnected blocks");
    assert_eq!(w, Rational::from_frac(3, 2), "fhw of a triangle, per block");
    assert_eq!(validate::validate_fhd(&h, &d), Ok(()));
}

/// An α-acyclic instance collapses under GYO — and since the candgen
/// heuristic bound finds `ub = 1` (nothing beats width 1, so the seeded
/// search is trivially over), *neither* path runs any engine states at
/// all: the whole answer comes from the witness-backed bound.
#[test]
fn gyo_collapse_shrinks_the_search() {
    if prep_disabled() {
        return;
    }
    let h = generators::cq_chain(5, 3, 1);
    let (with, with_stats) = fhd::fhw_exact_with_stats(&h, None, with_prep());
    let (without, without_stats) = fhd::fhw_exact_with_stats(&h, None, without_prep());
    assert_eq!(
        with.as_ref().map(|(w, _)| w.clone()),
        without.map(|(w, _)| w)
    );
    assert!(with_stats.prep_vertices_removed > 0);
    assert_eq!(
        without_stats.ub_width,
        Some(Rational::one()),
        "seed is tight"
    );
    assert_eq!(
        without_stats.states, 0,
        "the unprepped acyclic instance resolves from the seeded bound without a search"
    );
    assert!(
        with_stats.states <= 1,
        "prep collapses the instance to a remnant the engine solves in one state, got {}",
        with_stats.states
    );
    let (_, d) = with.expect("acyclic instance decomposes");
    assert_eq!(validate::validate_fhd(&h, &d), Ok(()));
}

/// Repeating a search with `reuse_prices` serves the second call from the
/// process-lifetime fingerprint-keyed cache: nonzero cross-call hits.
#[test]
fn repeated_searches_hit_the_cross_call_cache() {
    if prep_disabled() {
        // HGTOOL_NO_PREP disables the whole subsystem, registry included.
        return;
    }
    let h = generators::cycle(6);
    let opts = EngineOptions::sequential().with_price_reuse();
    let (first, _) = fhd::fhw_exact_with_stats(&h, None, opts);
    let (second, rerun) = fhd::fhw_exact_with_stats(&h, None, opts);
    assert_eq!(
        first.map(|(w, _)| w),
        second.map(|(w, _)| w),
        "reuse must not change the width"
    );
    assert!(
        rerun.price_warm_hits > 0,
        "second search must reuse prices cached by the first"
    );
}

/// `HGTOOL_NO_PREP` would make this whole suite vacuous — make sure the
/// library-level switch actually reports prep as disabled then.
#[test]
fn env_override_is_respected() {
    if std::env::var_os("HGTOOL_NO_PREP").is_some() {
        assert!(!prep::enabled(true));
    } else {
        assert!(prep::enabled(true));
        assert!(!prep::enabled(false));
    }
}
