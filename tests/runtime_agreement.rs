//! Agreement suite for the search runtime's cross-call result cache: a
//! cached replay must be indistinguishable from a cold search. On random
//! small hypergraphs, every strategy's width must be identical with the
//! result cache on and off, the replayed engine counters must be
//! byte-identical to a cold run's (`SearchStats::engine_only`), and the
//! cached witness must still re-validate on the instance it was stored
//! for.
//!
//! Runs in the `HGTOOL_THREADS={1,4}` CI matrix alongside the other
//! agreement suites — cached answers inherit the engine's thread-count
//! determinism because the stored counters came from one deterministic
//! run.

use hypertree::arith::Rational;
use hypertree::decomp::validate;
use hypertree::hypergraph::{generators, Hypergraph};
use hypertree::solver::EngineOptions;
use hypertree::{fhd, ghd, hd};
use proptest::prelude::*;

/// Random small hypergraphs, the same families as the other agreement
/// suites.
fn arb_hypergraph() -> impl Strategy<Value = Hypergraph> {
    (3usize..8, 0u64..400).prop_map(|(n, seed)| match seed % 6 {
        0 => generators::random_bip(n + 3, n, 2, 3, seed),
        1 => generators::random_bounded_degree(n + 3, n, 3, 3, seed),
        2 => generators::random_acyclic(n, 3, seed),
        3 => generators::triangle_chain(n.min(4)),
        4 => generators::cq_chain(n, 3, 1),
        _ => generators::cycle(n),
    })
}

/// `HGTOOL_NO_PREP` vetoes the whole cross-call subsystem (registry and
/// result cache included), making every cache-hit assertion vacuous.
fn prep_disabled() -> bool {
    std::env::var_os("HGTOOL_NO_PREP").is_some()
}

/// Result reuse off, fresh price caches: a fully cold, deterministic
/// search — the reference run.
fn cold() -> EngineOptions {
    EngineOptions {
        threads: None,
        speculate: false,
        prep: true,
        reuse_prices: false,
        reuse_results: false,
    }
}

/// Same engine configuration with the cross-call result cache on. The
/// price caches stay per-search so the stored engine counters are the
/// deterministic cold ones.
fn warm() -> EngineOptions {
    EngineOptions {
        reuse_results: true,
        ..cold()
    }
}

/// Shared per-strategy scaffold: a cold reference run, a warm run that
/// populates (or re-hits) the result cache, then the warm replay under
/// test. Returns the cold answer/stats and the replayed answer/stats
/// after asserting the replay was a cache hit with byte-identical engine
/// counters.
fn cold_then_cached<R: PartialEq + std::fmt::Debug>(
    mut solve: impl FnMut(EngineOptions) -> (R, hypertree::solver::SearchStats),
) -> Result<(R, R), TestCaseError> {
    let (cold_r, cold_s) = solve(cold());
    let (first_r, _) = solve(warm());
    let (warm_r, warm_s) = solve(warm());
    prop_assert_eq!(
        warm_s.result_cache_hits,
        1,
        "repeated warm query must be a result-cache hit"
    );
    prop_assert_eq!(&first_r, &warm_r, "populate and replay answers agree");
    prop_assert_eq!(
        warm_s.engine_only(),
        cold_s.engine_only(),
        "replayed engine counters must be byte-identical to a cold search"
    );
    Ok((cold_r, warm_r))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn hw_cached_equals_cold(h in arb_hypergraph()) {
        if prep_disabled() { return Ok(()); }
        let (cold_r, warm_r) =
            cold_then_cached(|o| hd::hypertree_width_with_stats(&h, 6, o))?;
        prop_assert_eq!(
            cold_r.as_ref().map(|(w, _)| *w),
            warm_r.as_ref().map(|(w, _)| *w),
            "hw drifted under the result cache on {:?}", h
        );
        if let Some((w, d)) = warm_r {
            prop_assert_eq!(validate::validate_hd(&h, &d), Ok(()), "cached hw witness");
            prop_assert!(d.width() <= Rational::from(w));
        }
    }

    #[test]
    fn ghw_cached_equals_cold(h in arb_hypergraph()) {
        if prep_disabled() { return Ok(()); }
        let (cold_r, warm_r) =
            cold_then_cached(|o| ghd::ghw_exact_with_stats(&h, None, o))?;
        prop_assert_eq!(
            cold_r.as_ref().map(|(w, _)| *w),
            warm_r.as_ref().map(|(w, _)| *w),
            "ghw drifted under the result cache on {:?}", h
        );
        if let Some((w, d)) = warm_r {
            prop_assert_eq!(validate::validate_ghd(&h, &d), Ok(()), "cached ghw witness");
            prop_assert!(d.width() <= Rational::from(w));
        }
    }

    #[test]
    fn fhw_cached_equals_cold(h in arb_hypergraph()) {
        if prep_disabled() { return Ok(()); }
        let (cold_r, warm_r) =
            cold_then_cached(|o| fhd::fhw_exact_with_stats(&h, None, o))?;
        prop_assert_eq!(
            cold_r.as_ref().map(|(w, _)| w.clone()),
            warm_r.as_ref().map(|(w, _)| w.clone()),
            "fhw drifted under the result cache on {:?}", h
        );
        if let Some((w, d)) = warm_r {
            prop_assert_eq!(validate::validate_fhd(&h, &d), Ok(()), "cached fhw witness");
            prop_assert!(d.width() <= w);
        }
    }

    #[test]
    fn frac_decomp_cached_equals_cold(h in arb_hypergraph()) {
        if prep_disabled() { return Ok(()); }
        let params = fhd::FracDecompParams {
            k: Rational::from(2usize),
            eps: Rational::from_frac(1, 2),
            c: 2,
        };
        let (cold_r, warm_r) =
            cold_then_cached(|o| fhd::frac_decomp_with_stats(&h, &params, o))?;
        prop_assert_eq!(
            cold_r.is_some(),
            warm_r.is_some(),
            "frac-decomp acceptance drifted under the result cache on {:?}", h
        );
        if let Some(d) = warm_r {
            prop_assert_eq!(validate::validate_fhd(&h, &d), Ok(()), "cached frac witness");
            prop_assert!(d.width() <= Rational::from_frac(5, 2));
        }
    }
}

/// The fifth strategy, kept as a fixed small corpus (the BDP check is the
/// most expensive): cached strict-HD answers agree with cold ones and
/// cached `Yes` witnesses re-validate.
#[test]
fn strict_hd_cached_equals_cold() {
    use hypertree::fhd::FhdAnswer;
    if prep_disabled() {
        return;
    }
    for h in [
        generators::cycle(3),
        generators::cycle(4),
        generators::path(4),
        generators::triangle_chain(2),
    ] {
        for k in [Rational::from_frac(3, 2), Rational::from(2usize)] {
            let solve = |o| fhd::check_fhd_bdp_with_stats(&h, &k, fhd::HdkParams::default(), o);
            let (cold_r, cold_s) = solve(cold());
            let (_, _) = solve(warm());
            let (warm_r, warm_s) = solve(warm());
            assert_eq!(
                warm_s.result_cache_hits, 1,
                "repeated warm strict-HD query must be a result-cache hit"
            );
            assert_eq!(
                warm_s.engine_only(),
                cold_s.engine_only(),
                "replayed strict-HD engine counters at k={k} on {h:?}"
            );
            assert_eq!(
                cold_r.is_yes(),
                warm_r.is_yes(),
                "strict-HD answer drifted under the result cache at k={k} on {h:?}"
            );
            if let FhdAnswer::Yes(d) = &warm_r {
                assert_eq!(
                    validate::validate_fhd(&h, d),
                    Ok(()),
                    "cached strict-HD witness at k={k} on {h:?}"
                );
                assert!(d.width() <= k);
            }
        }
    }
}

/// Two threads submit the same process-fresh instance concurrently with
/// result reuse on: exactly one search runs, the other adopts its answer
/// (either parked on the in-flight `Pending` claim or served from the
/// completed entry), and both report identical engine counters.
#[test]
fn concurrent_identical_queries_run_one_search() {
    if prep_disabled() {
        return;
    }
    // An instance no other suite in this binary searches, so its result
    // slot is guaranteed empty when the race starts.
    let h = generators::random_bip(14, 10, 2, 3, 987_654);
    let barrier = std::sync::Barrier::new(2);
    let run = || {
        barrier.wait();
        fhd::fhw_exact_with_stats(&h, None, warm())
    };
    let ((ra, sa), (rb, sb)) = std::thread::scope(|s| {
        let t = s.spawn(run);
        let b = run();
        (t.join().expect("racing search completes"), b)
    });
    assert_eq!(
        sa.result_cache_hits + sb.result_cache_hits,
        1,
        "exactly one of two concurrent identical queries runs the search"
    );
    assert!(sa.inflight_dedup + sb.inflight_dedup <= 1);
    assert_eq!(
        ra.as_ref().map(|(w, _)| w.clone()),
        rb.as_ref().map(|(w, _)| w.clone()),
        "both sides see the same width"
    );
    assert_eq!(
        sa.engine_only(),
        sb.engine_only(),
        "the adopter replays the owner's engine counters"
    );
    let (_, d) = ra.expect("small instance decomposes");
    assert_eq!(validate::validate_fhd(&h, &d), Ok(()));
}

/// The batch front end: a second identical `solve_batch` pass in the same
/// process is answered from the result cache on every instance, with
/// identical widths.
#[test]
fn solve_batch_warm_pass_hits_every_instance() {
    if prep_disabled() {
        return;
    }
    let instances = vec![
        generators::cycle(9),
        generators::path(7),
        generators::cq_chain(6, 2, 1),
    ];
    let solve = |_: usize, h: &Hypergraph| {
        let (r, s) = ghd::ghw_exact_with_stats(h, None, warm());
        (r.map(|(w, _)| w), s)
    };
    let cold_pass = hypertree::solver::solve_batch(&instances, solve);
    let warm_pass = hypertree::solver::solve_batch(&instances, solve);
    for (i, ((cr, _), (wr, ws))) in cold_pass.iter().zip(&warm_pass).enumerate() {
        assert_eq!(cr, wr, "batch width drifted on instance {i}");
        assert_eq!(
            ws.result_cache_hits, 1,
            "warm batch pass missed the result cache on instance {i}"
        );
    }
}
