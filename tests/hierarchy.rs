//! Cross-engine width hierarchy tests: `fhw <= ghw <= hw <= 3·ghw + 1`
//! (Section 1 and [4]), Lemma 2.3, Lemma 2.7, and Lemma 2.8.

use hypertree::arith::{rat, Rational};
use hypertree::hypergraph::{generators, Hypergraph, VertexSet};
use hypertree::{exact_widths, fhd, ghd, hd};

fn corpus() -> Vec<(String, Hypergraph)> {
    let mut out: Vec<(String, Hypergraph)> = vec![
        ("cycle3".into(), generators::cycle(3)),
        ("cycle6".into(), generators::cycle(6)),
        ("clique5".into(), generators::clique(5)),
        ("clique6".into(), generators::clique(6)),
        ("grid2x4".into(), generators::grid(2, 4)),
        ("triangles2".into(), generators::triangle_chain(2)),
        ("example_4_3".into(), generators::example_4_3()),
        ("example_5_1".into(), generators::example_5_1(4)),
        ("chain".into(), generators::cq_chain(4, 3, 1)),
        ("hypercube3".into(), generators::hypercube(3)),
        ("snowflake".into(), generators::cq_snowflake(3, 2)),
    ];
    for seed in 0..4u64 {
        out.push((
            format!("bip{seed}"),
            generators::random_bip(9, 6, 2, 3, seed),
        ));
        out.push((
            format!("bdp{seed}"),
            generators::random_bounded_degree(9, 6, 3, 3, seed),
        ));
    }
    out
}

#[test]
fn width_hierarchy_and_agg_bound() {
    for (name, h) in corpus() {
        let Some(w) = exact_widths(&h, 8) else {
            panic!("{name}: exact engines must handle corpus instances");
        };
        assert!(w.fhw <= Rational::from(w.ghw), "{name}: fhw > ghw");
        assert!(w.ghw <= w.hw, "{name}: ghw > hw");
        assert!(w.hw <= 3 * w.ghw + 1, "{name}: AGG bound violated");
        assert!(w.fhw >= Rational::one(), "{name}: fhw below 1");
    }
}

#[test]
fn lemma_2_3_even_cliques_all_widths_coincide() {
    for n in 1..4usize {
        let h = generators::clique(2 * n);
        let w = exact_widths(&h, 2 * n).unwrap();
        assert_eq!(w.hw, n);
        assert_eq!(w.ghw, n);
        assert_eq!(w.fhw, Rational::from(n));
    }
}

#[test]
fn odd_cliques_separate_fractional_from_integral() {
    // fhw(K5) = 5/2 < ghw(K5) = 3.
    let w = exact_widths(&generators::clique(5), 5).unwrap();
    assert_eq!(w.fhw, rat(5, 2));
    assert_eq!(w.ghw, 3);
}

#[test]
fn lemma_2_7_induced_subhypergraph_monotonicity() {
    for (name, h) in corpus().into_iter().take(6) {
        let Some((fhw, _)) = fhd::fhw_exact(&h, None) else {
            continue;
        };
        // Remove each single vertex in turn.
        for drop in 0..h.num_vertices().min(4) {
            let mut w = h.all_vertices();
            w.remove(drop);
            let (sub, _, _) = h.induced(&w);
            if sub.has_isolated_vertices() || sub.num_vertices() == 0 {
                continue;
            }
            let (sub_fhw, _) = fhd::fhw_exact(&sub, None).unwrap();
            assert!(sub_fhw <= fhw, "{name} minus v{drop}: fhw increased");
        }
    }
}

#[test]
fn lemma_2_8_cliques_land_in_a_bag() {
    // K4 inside a larger hypergraph: some bag must contain all 4 vertices.
    let mut edges: Vec<Vec<usize>> = vec![];
    for a in 0..4 {
        for b in (a + 1)..4 {
            edges.push(vec![a, b]);
        }
    }
    edges.push(vec![3, 4]);
    edges.push(vec![4, 5]);
    let h = Hypergraph::from_edges(6, edges);
    let clique: VertexSet = (0..4).collect();
    for d in [
        hd::check_hd(&h, 3).unwrap(),
        ghd::ghw_exact(&h, None).unwrap().1,
        fhd::fhw_exact(&h, None).unwrap().1,
    ] {
        assert!(
            d.nodes().iter().any(|n| clique.is_subset(&n.bag)),
            "no bag contains the 4-clique:\n{}",
            d.render(&h)
        );
    }
}

#[test]
fn acyclic_iff_width_1() {
    for (name, h) in corpus() {
        let acyclic = hypertree::hypergraph::properties::is_alpha_acyclic(&h);
        let hw1 = hd::check_hd(&h, 1).is_some();
        assert_eq!(acyclic, hw1, "{name}: α-acyclic iff hw = 1");
    }
}
