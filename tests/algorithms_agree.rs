//! Cross-engine agreement: the polynomial algorithms (Sections 4–6) must
//! agree with the exact exponential baselines on a shared corpus, and all
//! transformation pipelines must preserve validity and width.

use hypertree::arith::rat;
use hypertree::decomp::{self, validate};
use hypertree::fhd::{self, FracDecompParams, HdkParams};
use hypertree::ghd::{self, GhdAnswer, SubedgeLimits};
use hypertree::hypergraph::{generators, Hypergraph};

fn small_corpus() -> Vec<(String, Hypergraph)> {
    let mut out: Vec<(String, Hypergraph)> = vec![
        ("cycle4".into(), generators::cycle(4)),
        ("cycle5".into(), generators::cycle(5)),
        ("triangle".into(), generators::cycle(3)),
        ("clique4".into(), generators::clique(4)),
        ("example_4_3".into(), generators::example_4_3()),
        ("grid2x3".into(), generators::grid(2, 3)),
    ];
    for seed in 0..3u64 {
        out.push((
            format!("bip{seed}"),
            generators::random_bip(8, 5, 2, 3, seed),
        ));
    }
    out
}

#[test]
fn bip_ghd_check_matches_exact_ghw() {
    for (name, h) in small_corpus() {
        let Some((ghw, _)) = ghd::ghw_exact(&h, None) else {
            continue;
        };
        let limits = SubedgeLimits::default();
        assert!(
            ghd::check_ghd_bip(&h, ghw, limits).is_yes(),
            "{name}: BIP check rejects k = ghw = {ghw}"
        );
        if ghw > 1 {
            assert!(
                matches!(ghd::check_ghd_bip(&h, ghw - 1, limits), GhdAnswer::No),
                "{name}: BIP check accepts k = ghw - 1"
            );
        }
    }
}

#[test]
fn bdp_fhd_check_matches_exact_fhw() {
    for (name, h) in small_corpus().into_iter().take(5) {
        if hypertree::hypergraph::properties::degree(&h) > 3 {
            continue; // keep the support bound small
        }
        let Some((fhw, _)) = fhd::fhw_exact(&h, None) else {
            continue;
        };
        let ans = fhd::check_fhd_bdp(&h, &fhw, HdkParams::default());
        assert!(ans.is_yes(), "{name}: BDP check rejects k = fhw = {fhw}");
        let d = ans.decomposition().unwrap();
        assert_eq!(validate::validate_fhd(&h, &d.clone()), Ok(()), "{name}");
        assert!(d.width() <= fhw, "{name}");
    }
}

#[test]
fn frac_decomp_sound_and_complete_at_fhw() {
    for (name, h) in [
        ("triangle".to_string(), generators::cycle(3)),
        ("cycle4".to_string(), generators::cycle(4)),
        ("example_5_1".to_string(), generators::example_5_1(3)),
    ] {
        let (fhw, _) = fhd::fhw_exact(&h, None).unwrap();
        // Completeness needs a large enough fractional-part bound c
        // (Lemma 6.4 gives a huge constant; |V(H)| dominates it here).
        let params = FracDecompParams {
            k: fhw.clone(),
            eps: rat(1, 4),
            c: h.num_vertices(),
        };
        let d = fhd::frac_decomp(&h, &params)
            .unwrap_or_else(|| panic!("{name}: frac-decomp must accept k = fhw"));
        assert_eq!(validate::validate_fhd(&h, &d), Ok(()), "{name}");
        assert!(d.width() <= &fhw + &rat(1, 4), "{name}");
        assert!(validate::validate_weak_special(&h, &d).is_ok(), "{name}");
    }
}

#[test]
fn transformations_preserve_validity_and_width() {
    // FNF + bag-maximalization over decompositions from every engine.
    for (name, h) in small_corpus().into_iter().take(6) {
        let Some((_, d)) = ghd::ghw_exact(&h, None) else {
            continue;
        };
        let w = d.width();
        let maximal = decomp::make_bag_maximal(&h, &d);
        assert_eq!(
            validate::validate_ghd(&h, &maximal),
            Ok(()),
            "{name} (bag-max)"
        );
        assert_eq!(maximal.width(), w, "{name}: bag-max changed width");
        assert!(decomp::is_bag_maximal(&h, &maximal), "{name}");
        let fnf = decomp::to_fnf(&h, &maximal);
        assert_eq!(validate::validate_ghd(&h, &fnf), Ok(()), "{name} (fnf)");
        assert_eq!(
            validate::validate_fnf(&h, &fnf),
            Ok(()),
            "{name} (fnf cond)"
        );
        assert!(fnf.width() <= w, "{name}: FNF increased width");
        assert!(fnf.len() <= h.num_vertices(), "{name}: Lemma 6.9 bound");
    }
}

#[test]
fn ptaas_sandwiches_fhw() {
    for (name, h) in [
        ("triangle".to_string(), generators::cycle(3)),
        ("clique5".to_string(), generators::clique(5)),
    ] {
        let (fhw, _) = fhd::fhw_exact(&h, None).unwrap();
        let eps = rat(1, 4);
        let res = fhd::fhw_approximation(&h, &rat(4, 1), &eps, fhd::exact_oracle)
            .unwrap_or_else(|| panic!("{name}: fhw <= 4"));
        assert!(res.width >= fhw, "{name}: width below optimum?");
        assert!(res.width <= &fhw + &eps, "{name}: PTAAS guarantee violated");
        assert!(
            res.lower_bound.clone() <= fhw,
            "{name}: lower bound overshoots"
        );
    }
}

#[test]
fn lemma_6_4_rounding_then_conversion_pipeline() {
    // FHD -> c-bounded FHD -> GHD, checking each stage.
    let h = generators::example_5_1(5);
    let (fhw, d) = fhd::fhw_exact(&h, None).unwrap();
    let eps = rat(1, 2);
    let rounded = fhd::bound_fractional_part(&h, &d, &fhw, &eps);
    assert_eq!(validate::validate_fhd(&h, &rounded), Ok(()));
    assert!(rounded.width() <= &fhw + &eps);
    let ghd = fhd::ghd_from_fhd(&h, &rounded, fhd::CoverMode::Exact);
    assert_eq!(validate::validate_ghd(&h, &ghd), Ok(()));
}

#[test]
fn subedge_augmentation_never_changes_ghw() {
    // Adding subedges leaves ghw invariant (the foundation of Section 4).
    for (name, h) in small_corpus().into_iter().take(4) {
        let Some((ghw, _)) = ghd::ghw_exact(&h, None) else {
            continue;
        };
        let f = ghd::bip_subedges(&h, 2, SubedgeLimits::default());
        let aug = ghd::augment(&h, f);
        if aug.hypergraph.num_vertices() > hypertree::solver::MAX_SUBSET_SEARCH_VERTICES {
            continue;
        }
        let (ghw2, _) = ghd::ghw_exact(&aug.hypergraph, None)
            .expect("augmentation adds edges, not vertices, so the exact engine must answer");
        assert_eq!(ghw, ghw2, "{name}: subedges changed ghw");
    }
}
