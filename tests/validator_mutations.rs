//! Mutation testing of the validators: take certified-valid decompositions,
//! corrupt them in targeted ways, and assert the *specific* violation each
//! corruption must trigger. This guards the validators themselves — every
//! other test in the workspace trusts them.

use hypertree::arith::{rat, Rational};
use hypertree::decomp::{validate, Decomposition, Node, Violation};
use hypertree::ghd;
use hypertree::hypergraph::{generators, Hypergraph, VertexSet};

fn valid_pair() -> (Hypergraph, Decomposition) {
    let h = generators::cycle(4);
    let (_, d) = ghd::ghw_exact(&h, None).unwrap();
    assert_eq!(validate::validate_ghd(&h, &d), Ok(()));
    (h, d)
}

#[test]
fn dropping_a_bag_vertex_breaks_edge_cover_or_connectedness() {
    let (h, d) = valid_pair();
    let mut hit = 0usize;
    for u in 0..d.len() {
        for v in d.node(u).bag.to_vec() {
            let mut m = d.clone();
            m.node_mut(u).bag.remove(v);
            if validate::validate_fhd(&h, &m).is_err() {
                hit += 1;
            }
        }
    }
    // Shrinking a bag in an optimal decomposition is essentially never free.
    assert!(hit > 0, "no mutation detected — validator too weak");
}

#[test]
fn zeroing_a_weight_breaks_bag_coverage() {
    let (h, d) = valid_pair();
    for u in 0..d.len() {
        let mut m = d.clone();
        if m.node(u).weights.is_empty() {
            continue;
        }
        m.node_mut(u).weights.remove(0);
        let res = validate::validate_fhd(&h, &m);
        assert!(
            matches!(res, Err(Violation::BagNotCovered { node, .. }) if node == u),
            "expected BagNotCovered at {u}, got {res:?}"
        );
    }
}

#[test]
fn half_weights_fail_ghd_validation_specifically() {
    let (h, d) = valid_pair();
    let mut m = d.clone();
    let (e, _) = m.node(0).weights[0].clone();
    m.node_mut(0).weights[0] = (e, rat(1, 2));
    assert!(matches!(
        validate::validate_ghd(&h, &m),
        Err(Violation::NotIntegral { node: 0, .. })
    ));
}

#[test]
fn negative_and_oversized_weights_rejected() {
    let (h, d) = valid_pair();
    for bad in [rat(-1, 2), rat(3, 2)] {
        let mut m = d.clone();
        let (e, _) = m.node(0).weights[0].clone();
        m.node_mut(0).weights[0] = (e, bad);
        assert!(matches!(
            validate::validate_fhd(&h, &m),
            Err(Violation::WeightOutOfRange { node: 0, .. })
        ));
    }
}

#[test]
fn teleporting_a_vertex_breaks_connectedness() {
    // Attach a far-away node re-containing a vertex from the root's side.
    let h = generators::path(4); // e0={0,1}, e1={1,2}, e2={2,3}
    let mut d = Decomposition::new(Node::integral(VertexSet::from_iter([0, 1]), [0]));
    let mid = d.add_child(0, Node::integral(VertexSet::from_iter([1, 2]), [1]));
    let leaf = d.add_child(mid, Node::integral(VertexSet::from_iter([2, 3]), [2]));
    assert_eq!(validate::validate_fhd(&h, &d), Ok(()));
    let mut m = d.clone();
    m.node_mut(leaf).bag.insert(0);
    m.node_mut(leaf).weights.push((0, Rational::one()));
    assert_eq!(
        validate::validate_fhd(&h, &m),
        Err(Violation::DisconnectedVertex { vertex: 0 })
    );
}

#[test]
fn special_condition_mutations() {
    // Start from an HD; swap a λ-edge for a bigger one that leaks into the
    // subtree — the HD validator must flag it, the GHD validator must not.
    let h = generators::path(4);
    let mut d = Decomposition::new(Node::integral(VertexSet::from_iter([0, 1]), [0]));
    let mid = d.add_child(0, Node::integral(VertexSet::from_iter([1, 2]), [1]));
    d.add_child(mid, Node::integral(VertexSet::from_iter([2, 3]), [2]));
    assert_eq!(validate::validate_hd(&h, &d), Ok(()));
    let mut m = d.clone();
    // Root now also "uses" e1 = {1,2}: vertex 2 ∈ B(λ_root) ∩ V(T) \ B_root.
    m.node_mut(0).weights.push((1, Rational::one()));
    assert_eq!(validate::validate_ghd(&h, &m), Ok(()));
    assert_eq!(
        validate::validate_hd(&h, &m),
        Err(Violation::SpecialConditionViolated { node: 0, vertex: 2 })
    );
    // The weak special condition coincides here (all weights integral).
    assert!(validate::validate_weak_special(&h, &m).is_err());
    // ... and the sc-fhw validator (open question (i)) also rejects.
    assert!(validate::validate_fhd_special(&h, &m).is_err());
}

#[test]
fn weak_special_ignores_fractional_leaks_but_sc_fhw_does_not() {
    let h = generators::path(4);
    let mut d = Decomposition::new(Node::integral(VertexSet::from_iter([0, 1]), [0]));
    let mid = d.add_child(0, Node::integral(VertexSet::from_iter([1, 2]), [1]));
    d.add_child(mid, Node::integral(VertexSet::from_iter([2, 3]), [2]));
    let mut m = d.clone();
    // Fractionally cover vertex 2 at the root via e1 + e2 at 1/2 each:
    // the *weak* special condition (only weight-1 edges) stays satisfied,
    // but B(γ_root) ∋ 2 so the full special condition fails.
    m.node_mut(0).weights.push((1, rat(1, 2)));
    m.node_mut(0).weights.push((2, rat(1, 2)));
    assert_eq!(validate::validate_fhd(&h, &m), Ok(()));
    assert!(validate::validate_weak_special(&h, &m).is_ok());
    assert!(matches!(
        validate::validate_fhd_special(&h, &m),
        Err(Violation::SpecialConditionViolated { node: 0, vertex: 2 })
    ));
}

#[test]
fn fnf_violations_detected_per_condition() {
    let h = generators::cycle(4);
    // Condition 2 violation: child bag ⊆ parent bag.
    let mut d = Decomposition::new(Node::integral(VertexSet::from_iter([0, 1, 2]), [0, 1]));
    d.add_child(0, Node::integral(VertexSet::from_iter([0, 2, 3]), [2, 3]));
    let redundant = d.add_child(0, Node::integral(VertexSet::from_iter([1, 2]), [1]));
    assert_eq!(validate::validate_ghd(&h, &d), Ok(()));
    let res = validate::validate_fnf(&h, &d);
    assert!(
        matches!(res, Err(Violation::FnfComponentMismatch { node }) if node == redundant),
        "got {res:?}"
    );
    // The FNF transformation repairs it.
    let f = hypertree::decomp::to_fnf(&h, &d);
    assert_eq!(validate::validate_fnf(&h, &f), Ok(()));
}

#[test]
fn strictness_and_c_boundedness_flags() {
    let (h, d) = valid_pair();
    // Exact-GHD bags come from elimination orderings; enforce strictness
    // by growing bags to ∪λ.
    let mut strict = d.clone();
    for u in 0..strict.len() {
        let cover = h.union_of_edges(strict.node(u).support());
        strict.node_mut(u).bag = cover;
    }
    if validate::validate_fhd(&h, &strict).is_ok() {
        assert!(validate::is_strict(&h, &strict));
    }
    // GHDs always have 0-bounded fractional part.
    assert!(validate::has_c_bounded_fractional_part(&h, &d, 0));
}
