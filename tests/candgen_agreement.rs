//! Agreement suite for the `candgen` subsystem: the edge-union-driven
//! `ghw`/`fhw` engines must agree with the retained subset-bag oracle and
//! the independent elimination DP on small instances, the heuristic upper
//! bounds must be sound (`ub >= exact`) with witnesses that re-validate,
//! and the ≥19-vertex instances that motivated the subsystem must now
//! resolve exactly.
//!
//! Runs in the `HGTOOL_THREADS={1,4}` CI matrix alongside the other
//! agreement suites — candidate streams are pulled in a deterministic
//! round schedule, so widths, witnesses and the candidate counters are
//! identical at every thread count.

use hypertree::arith::Rational;
use hypertree::cover;
use hypertree::decomp::validate;
use hypertree::hypergraph::{generators, Hypergraph};
use hypertree::solver::EngineOptions;
use hypertree::{fhd, ghd};
use hypertree_bench as workloads;
use proptest::prelude::*;

/// Random small hypergraphs mixing the families of the other agreement
/// suites: sparse/dense, cyclic/acyclic, cut-vertex-rich.
fn arb_hypergraph() -> impl Strategy<Value = Hypergraph> {
    (3usize..8, 0u64..400).prop_map(|(n, seed)| match seed % 6 {
        0 => generators::random_bip(n + 3, n, 2, 3, seed),
        1 => generators::random_bounded_degree(n + 3, n, 3, 3, seed),
        2 => generators::random_acyclic(n, 3, seed),
        3 => generators::triangle_chain(n.min(4)),
        4 => generators::grid(2, n.min(5)),
        _ => generators::cycle(n),
    })
}

/// Default scheduling, fresh price caches (deterministic stats), default
/// thread count — what the CI `HGTOOL_THREADS={1,4}` matrix varies.
fn opts() -> EngineOptions {
    EngineOptions {
        threads: None,
        speculate: false,
        prep: true,
        reuse_prices: false,
        reuse_results: false,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn candgen_ghw_agrees_with_subset_oracle_and_dp(h in arb_hypergraph()) {
        let (primary, stats) = ghd::ghw_exact_with_stats(&h, None, opts());
        let oracle = ghd::ghw_exact_subset_oracle(&h, None).map(|(w, _)| w);
        let dp = ghd::elimination::optimal_elimination(
            &h,
            |bag| cover::integral_cover(&h, bag).expect("coverable").weight(),
            None,
        )
        .map(|(w, _)| w);
        prop_assert_eq!(
            primary.as_ref().map(|(w, _)| *w),
            oracle,
            "candgen ghw vs subset oracle on {:?}",
            h
        );
        prop_assert_eq!(
            primary.as_ref().map(|(w, _)| *w),
            dp,
            "candgen ghw vs elimination DP on {:?}",
            h
        );
        if let Some((w, d)) = primary {
            prop_assert_eq!(validate::validate_ghd(&h, &d), Ok(()), "ghw witness");
            prop_assert!(d.width() <= Rational::from(w));
            prop_assert!(stats.ub_width.is_some(), "heuristic seed recorded");
        }
    }

    #[test]
    fn candgen_fhw_agrees_with_subset_oracle_and_dp(h in arb_hypergraph()) {
        let (primary, _) = fhd::fhw_exact_with_stats(&h, None, opts());
        let oracle = fhd::fhw_exact_subset_oracle(&h, None).map(|(w, _)| w);
        let dp = ghd::elimination::optimal_elimination(
            &h,
            |bag| cover::fractional_cover(&h, bag).expect("coverable").weight,
            None,
        )
        .map(|(w, _)| w);
        prop_assert_eq!(
            primary.as_ref().map(|(w, _)| w.clone()),
            oracle,
            "candgen fhw vs subset oracle on {:?}",
            h
        );
        prop_assert_eq!(
            primary.as_ref().map(|(w, _)| w.clone()),
            dp,
            "candgen fhw vs elimination DP on {:?}",
            h
        );
        if let Some((w, d)) = primary {
            prop_assert_eq!(validate::validate_fhd(&h, &d), Ok(()), "fhw witness");
            prop_assert!(d.width() <= w);
        }
    }

    #[test]
    fn heuristic_bounds_are_sound_and_witnessed(h in arb_hypergraph()) {
        let Some((ghw_ub, ghw_d)) = ghd::ghw_upper_bound(&h) else { return Ok(()); };
        let Some((fhw_ub, fhw_d)) = fhd::fhw_upper_bound(&h) else { return Ok(()); };
        prop_assert_eq!(validate::validate_ghd(&h, &ghw_d), Ok(()), "ghw ub witness");
        prop_assert_eq!(validate::validate_fhd(&h, &fhw_d), Ok(()), "fhw ub witness");
        prop_assert!(ghw_d.width() <= Rational::from(ghw_ub));
        prop_assert!(fhw_d.width() <= fhw_ub.clone());
        if let Some((exact, _)) = ghd::ghw_exact(&h, None) {
            prop_assert!(ghw_ub >= exact, "ghw ub {} < exact {}", ghw_ub, exact);
        }
        if let Some((exact, _)) = fhd::fhw_exact(&h, None) {
            prop_assert!(fhw_ub >= exact, "fhw ub {} < exact {}", fhw_ub, exact);
        }
    }
}

#[test]
fn heuristic_bounds_are_sound_corpus_wide() {
    for w in workloads::corpus() {
        let h = &w.hypergraph;
        let (ghw_ub, ghw_d) = ghd::ghw_upper_bound(h).expect("corpus instances are valid");
        let (fhw_ub, fhw_d) = fhd::fhw_upper_bound(h).expect("corpus instances are valid");
        assert_eq!(
            validate::validate_ghd(h, &ghw_d),
            Ok(()),
            "{}: ghw ub witness",
            w.name
        );
        assert_eq!(
            validate::validate_fhd(h, &fhw_d),
            Ok(()),
            "{}: fhw ub witness",
            w.name
        );
        let (ghw, _) = ghd::ghw_exact(h, None).expect("corpus is in range");
        let (fhw, _) = fhd::fhw_exact(h, None).expect("corpus is in range");
        assert!(ghw_ub >= ghw, "{}: ghw ub {ghw_ub} < exact {ghw}", w.name);
        assert!(fhw_ub >= fhw, "{}: fhw ub {fhw_ub} < exact {fhw}", w.name);
        assert!(fhw_ub <= Rational::from(ghw_ub), "{}: ub hierarchy", w.name);
    }
}

#[test]
fn breaks_the_eighteen_vertex_wall() {
    // cycle(20): formerly elimination-DP territory (19-24 window).
    let h = generators::cycle(20);
    let (w, d) = ghd::ghw_exact(&h, None).expect("candgen range");
    assert_eq!(w, 2);
    assert_eq!(validate::validate_ghd(&h, &d), Ok(()));
    // cycle(26): formerly a hard None (beyond subset search AND the DP).
    let h = generators::cycle(26);
    let (w, d) = ghd::ghw_exact(&h, None).expect("candgen range");
    assert_eq!(w, 2);
    assert_eq!(validate::validate_ghd(&h, &d), Ok(()));
    // The seeded DP window still answers fhw exactly at 20 vertices.
    let h = generators::cycle(20);
    let (w, d) = fhd::fhw_exact(&h, None).expect("seeded DP window");
    assert_eq!(w, Rational::from(2usize));
    assert_eq!(validate::validate_fhd(&h, &d), Ok(()));
    // 21 vertices of glued triangles: block splitting keeps every piece in
    // engine range, so even fhw is exact — and genuinely fractional.
    let h = generators::triangle_chain(10);
    let (w, d) = fhd::fhw_exact(&h, None).expect("per-block engine range");
    assert_eq!(w, Rational::from_frac(3, 2));
    assert_eq!(validate::validate_fhd(&h, &d), Ok(()));
}

#[test]
fn candidate_counters_are_reported_and_thread_invariant() {
    let h = generators::example_4_3();
    let (r1, s1) = ghd::ghw_exact_with_stats(&h, None, EngineOptions::with_threads(1));
    let (r4, s4) = ghd::ghw_exact_with_stats(&h, None, EngineOptions::with_threads(4));
    assert_eq!(r1.map(|(w, _)| w), r4.as_ref().map(|(w, _)| *w));
    // `engine_only` strips `pool_reuse`, which legitimately differs: the
    // 1-thread run never touches the shared pool.
    assert_eq!(
        s1.engine_only(),
        s4.engine_only(),
        "candgen counters drift across thread counts"
    );
    assert!(s1.cand_generated > 0, "edge-union generator ran");
    assert_eq!(s1.ub_width, Some(Rational::from(2usize)));
}
