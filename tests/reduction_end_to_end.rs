//! End-to-end verification of the Section 3 reduction with the exact width
//! engines: gadget-level Lemma 3.1 checks, the satisfiable direction of
//! Theorem 3.2, and the k+ℓ lifting.

use hypertree::arith::Rational;
use hypertree::decomp::validate;
use hypertree::hypergraph::generators;
use hypertree::reduction::{self, Cnf};
use hypertree::{fhd, ghd, hd};

#[test]
fn gadget_has_ghw_and_fhw_exactly_2() {
    // Lemma 3.1's gadget: the three stacked 4-cliques force width >= 2, and
    // the M1/M2 pairs achieve exactly 2 — for both ghw and fhw.
    for (m1, m2) in [(1usize, 1usize), (2, 1), (2, 2)] {
        let g = reduction::gadget(m1, m2);
        let (ghw, gd) = ghd::ghw_exact(&g, None).unwrap();
        assert_eq!(ghw, 2, "gadget({m1},{m2})");
        assert_eq!(validate::validate_ghd(&g, &gd), Ok(()));
        let (fhw, fd) = fhd::fhw_exact(&g, None).unwrap();
        assert_eq!(fhw, Rational::from(2usize), "gadget({m1},{m2})");
        assert_eq!(validate::validate_fhd(&g, &fd), Ok(()));
    }
}

#[test]
fn gadget_width_2_decompositions_contain_the_forced_bags() {
    // Lemma 3.1: every width-2 FHD has nodes u_A, u_B, u_C with
    // {a1,a2,b1,b2} ⊆ B_uA, B_uB = {b1,b2,c1,c2} ∪ M, {c1,c2,d1,d2} ⊆ B_uC.
    // We verify on the optimal decompositions our engines produce.
    let g = reduction::gadget(2, 2);
    let name = |n: &str| g.vertex_by_name(n).unwrap();
    let quad_a: hypertree::hypergraph::VertexSet =
        ["a1", "a2", "b1", "b2"].iter().map(|n| name(n)).collect();
    let quad_b: hypertree::hypergraph::VertexSet =
        ["b1", "b2", "c1", "c2"].iter().map(|n| name(n)).collect();
    let quad_c: hypertree::hypergraph::VertexSet =
        ["c1", "c2", "d1", "d2"].iter().map(|n| name(n)).collect();
    for d in [
        ghd::ghw_exact(&g, None).unwrap().1,
        fhd::fhw_exact(&g, None).unwrap().1,
    ] {
        let find = |quad: &hypertree::hypergraph::VertexSet| {
            d.nodes().iter().position(|nd| quad.is_subset(&nd.bag))
        };
        let ua = find(&quad_a).expect("u_A exists");
        let ub = find(&quad_b).expect("u_B exists");
        let uc = find(&quad_c).expect("u_C exists");
        // u_B lies on the path from u_A to u_C.
        let path = d.path_between(ua, uc);
        assert!(path.contains(&ub), "u_B must lie between u_A and u_C");
    }
}

#[test]
fn satisfiable_formulas_yield_validated_width_2_witnesses() {
    for seed in 0..4u64 {
        let (cnf, plant) = Cnf::random_planted(4, 4, seed);
        let r = reduction::build(&cnf);
        let d = reduction::witness_ghd(&r, &plant);
        assert_eq!(d.width(), Rational::from(2usize), "seed {seed}");
        assert_eq!(
            validate::validate_ghd(&r.hypergraph, &d),
            Ok(()),
            "seed {seed}"
        );
        assert_eq!(
            validate::validate_fhd(&r.hypergraph, &d),
            Ok(()),
            "seed {seed}"
        );
    }
}

#[test]
fn witness_respects_lemma_3_6_structure() {
    // At each long-path node u_p, the cover uses exactly the pair
    // (e^{kp,0}_p, e^{kp,1}_p) — and those edges must be complementary.
    let cnf = Cnf::example_3_3();
    let r = reduction::build(&cnf);
    let assignment = cnf.solve().unwrap();
    let d = reduction::witness_ghd(&r, &assignment);
    let pairs = reduction::complementary_pairs(&r);
    // Nodes 4..(4 + |pos|-1) are the u_p path (after uC,uB,uA,umin⊖1).
    let n_path = r.positions_minus().len();
    for u in 4..4 + n_path {
        let cover = d.node(u).support();
        assert_eq!(cover.len(), 2, "u_p uses exactly two edges");
        let key = (cover[0].min(cover[1]), cover[0].max(cover[1]));
        assert!(
            pairs.contains(&key),
            "u_p cover must be a complementary pair"
        );
    }
}

#[test]
fn integer_lift_shifts_widths_by_one() {
    // End of Section 3: adding K_{2ℓ} fully connected to H lifts the
    // *integral* width by exactly ℓ. For fhw the +ℓ shift is exact on the
    // paper's own reduction (where Lemma 3.5 leaves no spare weight), but
    // on sparse hypergraphs the mixed edges {v_i, w} admit fractional
    // savings — e.g. fhw(lift(C4, 1)) = 5/2 < 2 + 1 — so only the
    // inequalities fhw < fhw' <= fhw + ℓ are guaranteed in general.
    for h in [generators::cycle(4), generators::cycle(3)] {
        let (ghw, _) = ghd::ghw_exact(&h, None).unwrap();
        let (fhw, _) = fhd::fhw_exact(&h, None).unwrap();
        let lifted = reduction::lift_integer(&h, 1);
        let (ghw2, _) = ghd::ghw_exact(&lifted, None).unwrap();
        let (fhw2, _) = fhd::fhw_exact(&lifted, None).unwrap();
        assert_eq!(ghw2, ghw + 1);
        assert!(fhw2 > fhw);
        assert!(fhw2 <= fhw + Rational::one());
    }
    // The observed fractional saving on C4, pinned exactly.
    let lifted = reduction::lift_integer(&generators::cycle(4), 1);
    let (fhw2, _) = fhd::fhw_exact(&lifted, None).unwrap();
    assert_eq!(fhw2, hypertree::arith::rat(5, 2));
}

#[test]
fn rational_lift_adds_r_over_q() {
    // ℓ = 3/2: fresh cycle of 3 vertices with 2-ary edges, fully connected.
    // fhw grows by exactly r/q = 3/2 on the triangle (fhw 3/2 -> 3).
    let h = generators::cycle(3);
    let lifted = reduction::lift_rational(&h, 3, 2);
    let (fhw2, _) = fhd::fhw_exact(&lifted, None).unwrap();
    let (fhw, _) = fhd::fhw_exact(&h, None).unwrap();
    assert_eq!(fhw2, fhw + hypertree::arith::rat(3, 2));
}

#[test]
fn reduction_output_feeds_det_k_decomp() {
    // The reduction hypergraph is a regular hypergraph: det-k-decomp runs
    // on it (completes at some width; hw of the reduction for satisfiable
    // formulas is small but > 2 is possible since HDs are weaker than
    // GHDs). We only check that k = 2 doesn't crash and bigger widths
    // validate, on a minimal instance.
    let (cnf, _) = Cnf::random_planted(3, 1, 0);
    let r = reduction::build(&cnf);
    // A width-4 HD should exist comfortably; validate whatever is found.
    if let Some((w, d)) = hd::hypertree_width(&r.hypergraph, 4) {
        assert!(w >= 2);
        assert_eq!(validate::validate_hd(&r.hypergraph, &d), Ok(()));
    }
}
