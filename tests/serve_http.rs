//! End-to-end tests for `hgtool serve`: the daemon runs in-process on
//! an ephemeral port, concurrent clients hit `/solve` and
//! `/solve/batch`, and every width in an HTTP response must be
//! byte-identical to what the direct library API renders for the same
//! instance and engine options.
//!
//! One test function on purpose: the service metrics are
//! process-wide, so parallel test servers would see each other's
//! gauges.

use serve::loadgen::http_call;
use serve::{ServeConfig, Server};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Renders a width the way the service does: integral rationals as
/// raw JSON numbers, fractions as their exact `p/q` string.
fn rat_json(w: &hypertree::arith::Rational) -> String {
    let s = w.to_string();
    if s.contains('/') {
        format!("\"{s}\"")
    } else {
        s
    }
}

/// The `{"hw":..,"ghw":..,"fhw":..}` object the direct API implies for
/// `h` — the byte-identity oracle.
fn direct_widths_json(
    h: &hypertree::hypergraph::Hypergraph,
    opts: hypertree::solver::EngineOptions,
) -> String {
    let (hw, _) = hypertree::hd::hypertree_width_with_stats(h, 8, opts);
    let (ghw, _) = hypertree::ghd::ghw_exact_with_stats(h, None, opts);
    let (fhw, _) = hypertree::fhd::fhw_exact_with_stats(h, None, opts);
    let (hw, _) = hw.expect("corpus instance solves hw within max_hw=8");
    let (ghw, _) = ghw.expect("corpus instance solves ghw");
    let (fhw, _) = fhw.expect("corpus instance solves fhw");
    format!("{{\"hw\":{hw},\"ghw\":{ghw},\"fhw\":{}}}", rat_json(&fhw))
}

fn wait_ready(server: &Server) {
    let deadline = Instant::now() + Duration::from_secs(60);
    while !server.ready() {
        assert!(Instant::now() < deadline, "warmup solve never finished");
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// Value of the first `/metrics` line starting with `prefix`.
fn metric_value(text: &str, prefix: &str) -> Option<f64> {
    text.lines()
        .find(|l| l.starts_with(prefix))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse().ok())
}

#[test]
fn serve_end_to_end() {
    let config = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        ..ServeConfig::from_env()
    };
    let engine = config.engine;
    let server = Server::start(config).expect("bind ephemeral port");
    let addr = server.addr().to_string();
    wait_ready(&server);

    // The oracle: direct library answers for the vendored corpus.
    let corpus: Vec<(String, String, String)> = hypertree_bench::vendored_corpus()
        .into_iter()
        .map(|w| {
            let expected = direct_widths_json(&w.hypergraph, engine);
            (w.name, w.hypergraph.to_string(), expected)
        })
        .collect();

    // Concurrent singles (three connections) + one batch over the
    // whole corpus, all in flight together.
    let mut clients = Vec::new();
    for t in 0..3usize {
        let addr = addr.clone();
        let corpus = corpus.clone();
        clients.push(std::thread::spawn(move || {
            let mut stream = TcpStream::connect(&addr).expect("connect");
            let mut out = Vec::new();
            for (name, text, expected) in corpus.iter().skip(t % 2) {
                let body = format!(
                    "{{\"hypergraph\":{},\"measure\":\"widths\"}}",
                    serve::http::json_escape(text)
                );
                let (status, resp) =
                    http_call(&mut stream, "POST", "/solve", Some(&body)).expect("solve call");
                out.push((name.clone(), expected.clone(), status, resp));
            }
            out
        }));
    }
    let batch_rows: Vec<String> = corpus
        .iter()
        .map(|(name, text, _)| {
            format!(
                "{{\"name\":{},\"hypergraph\":{}}}",
                serve::http::json_escape(name),
                serve::http::json_escape(text)
            )
        })
        .collect();
    let batch_body = format!("{{\"instances\":[{}]}}", batch_rows.join(","));
    let mut main_stream = TcpStream::connect(&addr).expect("connect");
    let (batch_status, batch_resp) =
        http_call(&mut main_stream, "POST", "/solve/batch", Some(&batch_body)).expect("batch call");

    // Byte-identity: every single response carries exactly the direct
    // API's widths object.
    for client in clients {
        for (name, expected, status, resp) in client.join().expect("client thread") {
            assert_eq!(status, 200, "{name}: {resp}");
            let prefix = format!("{{\"widths\":{expected},\"cached\":");
            assert!(
                resp.starts_with(&prefix),
                "{name}: response {resp} does not open with {prefix}"
            );
        }
    }
    assert_eq!(batch_status, 200, "{batch_resp}");
    assert!(batch_resp.contains(&format!("\"count\":{}", corpus.len())));
    for (name, _, expected) in &corpus {
        let row = format!(
            "{{\"name\":{},\"widths\":{expected},\"cached\":",
            serve::http::json_escape(name)
        );
        assert!(
            batch_resp.contains(&row),
            "batch response misses {row} in {batch_resp}"
        );
    }

    // Live metrics under traffic: nonzero request counters and latency
    // observations, straight from GET /metrics.
    let (status, metrics) = http_call(&mut main_stream, "GET", "/metrics", None).expect("metrics");
    assert_eq!(status, 200);
    let singles = metric_value(&metrics, "hgtool_serve_requests_total{endpoint=\"solve\"}")
        .expect("solve counter rendered");
    let lat = metric_value(
        &metrics,
        "hgtool_serve_request_latency_seconds_count{endpoint=\"solve\"}",
    )
    .expect("solve latency histogram rendered");
    assert!(singles >= (corpus.len() * 3 - 3) as f64, "{singles}");
    assert!(
        lat >= singles,
        "every 200 observes latency: {lat} < {singles}"
    );
    assert!(metrics.contains("hgtool_serve_ready 1"));
    assert!(metrics.contains("hgtool_serve_admission_wait_seconds_bucket"));

    // Error paths: malformed body, unknown route, wrong method, bad
    // measure, oversized body.
    let (status, resp) =
        http_call(&mut main_stream, "POST", "/solve", Some("{not json")).expect("bad json");
    assert_eq!(status, 400, "{resp}");
    let (status, resp) =
        http_call(&mut main_stream, "POST", "/no/such/route", Some("{}")).expect("404 route");
    assert_eq!(status, 404, "{resp}");
    let (status, resp) = http_call(&mut main_stream, "GET", "/solve", None).expect("405");
    assert_eq!(status, 405, "{resp}");
    let (status, resp) = http_call(
        &mut main_stream,
        "POST",
        "/solve",
        Some("{\"hypergraph\":\"e(a,b)\",\"measure\":\"nope\"}"),
    )
    .expect("bad measure");
    assert_eq!(status, 400, "{resp}");
    // Oversized: the server 413s off the Content-Length header alone,
    // so announce a huge body and read the reply without sending it.
    let mut big = TcpStream::connect(&addr).expect("connect");
    big.write_all(b"POST /solve HTTP/1.1\r\nHost: x\r\nContent-Length: 999999999\r\n\r\n")
        .expect("write oversized head");
    let mut reply = String::new();
    big.read_to_string(&mut reply).expect("read 413");
    assert!(reply.starts_with("HTTP/1.1 413"), "{reply}");
    drop(big);

    // Drain over HTTP, then finish the graceful shutdown in-process and
    // check the gauges came back to rest.
    let (status, resp) =
        http_call(&mut main_stream, "POST", "/admin/drain", Some("")).expect("drain");
    assert_eq!(status, 200, "{resp}");
    assert!(resp.contains("\"draining\":true"));
    drop(main_stream);
    server.drain();
    let m = serve::metrics::handles();
    assert_eq!(m.queue_depth.get(), 0, "queue drained");
    assert_eq!(m.connections_active.get(), 0, "all connections closed");

    // A post-drain connection is refused (listener closed with the
    // accept loop).
    std::thread::sleep(Duration::from_millis(50));
    assert!(
        TcpStream::connect(&addr).is_err(),
        "listener closed after drain"
    );
}
