//! Agreement suite for the streaming search engine: on random small
//! hypergraphs, the engine strategies must agree with the two independent
//! pre-engine implementations kept exactly for this purpose — the retired
//! elimination-order DP (`ghd::elimination`) for `ghw`/`fhw`, and the
//! legacy private strict-HD recursion (`fhd::check_fhd_bdp_legacy`) for
//! `Check(FHD, k)` — and searches at every thread count must return
//! identical widths, witnesses *and* [`SearchStats`] (the in-flight memo
//! dedup plus round-snapshot bounds make the whole search deterministic).
//!
//! The `HGTOOL_THREADS` environment variable shifts the default worker
//! count of every engine entry point; CI runs this suite at 1 and 4.

use hypertree::arith::{rat, Rational};
use hypertree::cover;
use hypertree::decomp::validate;
use hypertree::hypergraph::{generators, parser, Hypergraph};
use hypertree::solver::EngineOptions;
use hypertree::{fhd, ghd, hd};
use proptest::prelude::*;

/// Strategy: a random hypergraph on at most 10 vertices, mixing the
/// workspace's generator families.
fn arb_hypergraph() -> impl Strategy<Value = Hypergraph> {
    (3usize..8, 0u64..400).prop_map(|(n, seed)| match seed % 4 {
        0 => generators::random_bip(n + 3, n, 2, 3, seed),
        1 => generators::random_bounded_degree(n + 3, n, 3, 3, seed),
        2 => generators::random_acyclic(n, 3, seed),
        _ => generators::cycle(n),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn ghw_engine_agrees_with_elimination_dp(h in arb_hypergraph()) {
        let engine = ghd::ghw_exact(&h, None).map(|(w, _)| w);
        let dp = ghd::elimination::optimal_elimination(
            &h,
            |bag| cover::integral_cover(&h, bag).expect("coverable").weight(),
            None,
        )
        .map(|(w, _)| w);
        prop_assert_eq!(engine, dp, "streaming engine vs elimination DP on {:?}", h);
    }

    #[test]
    fn fhw_engine_agrees_with_elimination_dp(h in arb_hypergraph()) {
        let engine = fhd::fhw_exact(&h, None).map(|(w, _)| w);
        let dp = ghd::elimination::optimal_elimination(
            &h,
            |bag| cover::fractional_cover(&h, bag).expect("coverable").weight,
            None,
        )
        .map(|(w, _)| w);
        prop_assert_eq!(engine, dp, "streaming engine vs elimination DP on {:?}", h);
    }

    #[test]
    fn hw_witnesses_validate_and_sandwich_ghw(h in arb_hypergraph()) {
        // det-k-decomp has no independent DP; certify it through its
        // validated witness and the Adler–Gottlob–Grohe sandwich around
        // the DP-certified ghw.
        let Some((ghw, _)) = ghd::ghw_exact(&h, None) else { return Ok(()); };
        let Some((hw, d)) = hd::hypertree_width(&h, 3 * ghw + 1) else {
            return Err(TestCaseError::Reject);
        };
        prop_assert_eq!(validate::validate_hd(&h, &d), Ok(()));
        prop_assert!(ghw <= hw, "ghw {} > hw {}", ghw, hw);
        prop_assert!(hw <= 3 * ghw + 1, "hw {} vs ghw {}", hw, ghw);
    }
}

proptest! {
    // Each case runs the fhw search at four thread counts, twice (with and
    // without a cutoff); fewer cases keep the suite fast.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The work-stealing pool is fully deterministic: widths, witnesses
    /// and every `SearchStats` counter are identical at thread counts
    /// 1, 2, 4 and 8 — including under cutoffs, where the bound snapshot
    /// is the tighter of cutoff and best-so-far.
    #[test]
    fn searches_are_identical_across_thread_counts(h in arb_hypergraph()) {
        for cutoff in [None, Some(rat(2, 1))] {
            let (baseline, base_stats) =
                fhd::fhw_exact_with_stats(&h, cutoff.clone(), EngineOptions::sequential());
            for threads in [2usize, 4, 8] {
                let (result, stats) = fhd::fhw_exact_with_stats(
                    &h,
                    cutoff.clone(),
                    EngineOptions::with_threads(threads),
                );
                // Width AND witness: the first-minimum merge reproduces the
                // sequential engine's plan choice exactly.
                prop_assert_eq!(
                    &baseline, &result,
                    "fhw result at {} threads (cutoff {:?}) on {:?}", threads, cutoff, h
                );
                // Engine counters only: `pool_reuse` records whether the
                // shared pool was already warm, which depends on process
                // history (and is always 0 on the sequential baseline).
                prop_assert_eq!(
                    base_stats.engine_only(), stats.engine_only(),
                    "fhw stats at {} threads (cutoff {:?}) on {:?}", threads, cutoff, h
                );
            }
            if let Some((w, d)) = baseline {
                prop_assert_eq!(validate::validate_fhd(&h, &d), Ok(()));
                prop_assert!(d.width() <= w);
            }
        }
    }

    /// Speculative decision searches (candidates racing across the pool
    /// with sibling cancellation) must return the same yes/no answer as
    /// the sequential engine, with a valid witness.
    #[test]
    fn speculative_hw_agrees_with_sequential(h in arb_hypergraph()) {
        let seq = hd::hypertree_width(&h, 4).map(|(w, _)| w);
        let spec_opts = EngineOptions::with_threads(4).speculative();
        let mut spec = None;
        for k in 1..=4 {
            let (d, _) = hd::check_hd_with_stats(&h, k, spec_opts);
            if let Some(d) = d {
                prop_assert_eq!(validate::validate_hd(&h, &d), Ok(()), "{}", d.render(&h));
                spec = Some(k);
                break;
            }
        }
        prop_assert_eq!(seq, spec, "sequential vs speculative det-k-decomp on {:?}", h);
    }
}

proptest! {
    // The strict-HD check prices separators of an augmented hypergraph;
    // fewer, smaller cases keep the suite fast.
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn strict_hd_strategy_agrees_with_legacy_oracle(
        n in 3usize..6,
        seed in 0u64..200,
        below in any::<bool>(),
    ) {
        let h = generators::random_bounded_degree(n + 2, n, 2, 3, seed);
        let Some((fhw, _)) = fhd::fhw_exact(&h, None) else { return Ok(()); };
        // At k = fhw both must say yes; strictly below, both must agree
        // (typically no — never a yes/no split).
        let k = if below { &fhw - &rat(1, 5) } else { fhw.clone() };
        if !k.is_positive() {
            return Err(TestCaseError::Reject);
        }
        let engine = fhd::check_fhd_bdp(&h, &k, fhd::HdkParams::default());
        let legacy = fhd::check_fhd_bdp_legacy(&h, &k, fhd::HdkParams::default());
        // The speculative strict-HD search races separator guesses with
        // sibling cancellation; its yes/no must match both.
        let (spec, _) = fhd::check_fhd_bdp_with_stats(
            &h,
            &k,
            fhd::HdkParams::default(),
            EngineOptions::with_threads(4).speculative(),
        );
        prop_assert_eq!(
            engine.is_yes(),
            legacy.is_yes(),
            "engine vs legacy at k = {} on {:?}", k, h
        );
        prop_assert_eq!(
            spec.is_yes(),
            legacy.is_yes(),
            "speculative vs legacy at k = {} on {:?}", k, h
        );
        if !below {
            prop_assert!(engine.is_yes(), "strict check must accept fhw = {}", fhw);
        }
        for (name, ans) in [("engine", &engine), ("legacy", &legacy), ("speculative", &spec)] {
            if let Some(d) = ans.decomposition() {
                prop_assert_eq!(validate::validate_fhd(&h, &d.clone()), Ok(()), "{}", name);
                prop_assert!(d.width() <= k, "{} witness exceeds {}", name, k);
            }
        }
    }
}

/// The in-flight memo dedup regression (ROADMAP's `threads > 1` stats bug):
/// on the whole bench corpus plus the shipped example instance, `ghw` and
/// `fhw` stats from `with_threads(4)` equal `with_threads(1)` exactly —
/// states are no longer double-evaluated and counters no longer inflate.
#[test]
fn stats_are_thread_count_invariant_on_the_example_instances() {
    let mut instances: Vec<(String, Hypergraph)> = hypertree_bench::corpus()
        .into_iter()
        .map(|w| (w.name, w.hypergraph))
        .collect();
    let text = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/examples/data/example_4_3.hg"
    ))
    .expect("example instance file");
    instances.push((
        "examples/data/example_4_3.hg".into(),
        parser::parse(&text).expect("parsable example"),
    ));
    for (name, h) in instances {
        let (ghw_seq, ghw_seq_stats) =
            ghd::ghw_exact_with_stats(&h, None, EngineOptions::sequential());
        let (ghw_par, ghw_par_stats) =
            ghd::ghw_exact_with_stats(&h, None, EngineOptions::with_threads(4));
        assert_eq!(ghw_seq, ghw_par, "{name}: ghw result");
        // `engine_only` strips `pool_reuse` — whether the shared pool was
        // already warm depends on process history, not on the search.
        assert_eq!(
            ghw_seq_stats.engine_only(),
            ghw_par_stats.engine_only(),
            "{name}: ghw stats"
        );

        let (fhw_seq, fhw_seq_stats) =
            fhd::fhw_exact_with_stats(&h, None, EngineOptions::sequential());
        let (fhw_par, fhw_par_stats) =
            fhd::fhw_exact_with_stats(&h, None, EngineOptions::with_threads(4));
        assert_eq!(fhw_seq, fhw_par, "{name}: fhw result");
        assert_eq!(
            fhw_seq_stats.engine_only(),
            fhw_par_stats.engine_only(),
            "{name}: fhw stats"
        );

        // The full-struct equality above already covers these, but the
        // simplex work counters are the ones a scheduling leak would
        // corrupt first (a warm start on a pool path would make pivot
        // counts order-dependent) — name them explicitly so a failure
        // points at the counter, not just "stats differ".
        for (engine, seq, par) in [
            ("ghw", &ghw_seq_stats, &ghw_par_stats),
            ("fhw", &fhw_seq_stats, &fhw_par_stats),
        ] {
            assert_eq!(seq.lp_pivots, par.lp_pivots, "{name}: {engine} lp_pivots");
            assert_eq!(
                seq.lp_warm_starts, par.lp_warm_starts,
                "{name}: {engine} lp_warm_starts"
            );
            assert_eq!(
                seq.lp_cold_solves, par.lp_cold_solves,
                "{name}: {engine} lp_cold_solves"
            );
            assert_eq!(
                seq.cand_cap_hits, par.cand_cap_hits,
                "{name}: {engine} cand_cap_hits"
            );
        }
    }
}

/// Decision streams must stop early: on an acyclic instance the first
/// admitted candidate per state wins, so the engine pulls far fewer guesses
/// than the full `det-k-decomp` candidate space.
#[test]
fn decision_searches_short_circuit_on_the_first_witness() {
    let h = generators::cq_chain(5, 3, 1);
    let (d, stats) = hd::check_hd_with_stats(&h, 1, EngineOptions::default());
    assert!(d.is_some(), "chains are acyclic");
    assert!(stats.streamed > 0);
    assert!(
        stats.streamed <= stats.states * h.num_edges(),
        "streamed {} guesses over {} states — the stream is not lazy",
        stats.streamed,
        stats.states
    );
}

/// The fhw engine's shared ρ* cache must actually dedup: pricing runs at
/// most once per distinct bag, and repeats hit the cache.
#[test]
fn fhw_price_cache_dedups_identical_bags() {
    let h = generators::cycle(6);
    let (result, stats) = fhd::fhw_exact_with_stats(&h, None, EngineOptions::sequential());
    let (w, _) = result.expect("cycles decompose");
    assert_eq!(w, Rational::from(2usize));
    assert!(
        stats.price_hits + stats.price_misses <= stats.admitted,
        "price lookups {} exceed admitted candidates {}",
        stats.price_hits + stats.price_misses,
        stats.admitted
    );
    // 2^6 - 1 subset bags exist per full component; far fewer LPs may run
    // thanks to the bound gate, and none twice.
    assert!(stats.price_misses > 0);
}

/// Speculative Algorithm 3 (frac-decomp) must accept and reject exactly
/// like the sequential engine, with a validating witness.
#[test]
fn speculative_frac_decomp_agrees_with_sequential() {
    let spec = EngineOptions::with_threads(4).speculative();
    let h = generators::cycle(3);
    let accept = fhd::FracDecompParams {
        k: Rational::one(),
        eps: rat(1, 2),
        c: 3,
    };
    let (d, stats) = fhd::frac_decomp_with_stats(&h, &accept, spec);
    let d = d.expect("fhw(C3) = 3/2 fits the 3/2 budget");
    assert_eq!(validate::validate_fhd(&h, &d), Ok(()), "{}", d.render(&h));
    assert!(d.width() <= rat(3, 2));
    assert!(stats.states > 0);
    let reject = fhd::FracDecompParams {
        k: Rational::one(),
        eps: rat(1, 3),
        c: 3,
    };
    let (none, _) = fhd::frac_decomp_with_stats(&h, &reject, spec);
    assert!(none.is_none(), "4/3 budget must still be rejected");
}
