//! Agreement suite for the streaming search engine: on random small
//! hypergraphs, the engine strategies must agree with the two independent
//! pre-engine implementations kept exactly for this purpose — the retired
//! elimination-order DP (`ghd::elimination`) for `ghw`/`fhw`, and the
//! legacy private strict-HD recursion (`fhd::check_fhd_bdp_legacy`) for
//! `Check(FHD, k)` — and parallel and single-threaded searches must return
//! identical widths.

use hypertree::arith::{rat, Rational};
use hypertree::cover;
use hypertree::decomp::validate;
use hypertree::hypergraph::{generators, Hypergraph};
use hypertree::{fhd, ghd, hd};
use proptest::prelude::*;

/// Strategy: a random hypergraph on at most 10 vertices, mixing the
/// workspace's generator families.
fn arb_hypergraph() -> impl Strategy<Value = Hypergraph> {
    (3usize..8, 0u64..400).prop_map(|(n, seed)| match seed % 4 {
        0 => generators::random_bip(n + 3, n, 2, 3, seed),
        1 => generators::random_bounded_degree(n + 3, n, 3, 3, seed),
        2 => generators::random_acyclic(n, 3, seed),
        _ => generators::cycle(n),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn ghw_engine_agrees_with_elimination_dp(h in arb_hypergraph()) {
        let engine = ghd::ghw_exact(&h, None).map(|(w, _)| w);
        let dp = ghd::elimination::optimal_elimination(
            &h,
            |bag| cover::integral_cover(&h, bag).expect("coverable").weight(),
            None,
        )
        .map(|(w, _)| w);
        prop_assert_eq!(engine, dp, "streaming engine vs elimination DP on {:?}", h);
    }

    #[test]
    fn fhw_engine_agrees_with_elimination_dp(h in arb_hypergraph()) {
        let engine = fhd::fhw_exact(&h, None).map(|(w, _)| w);
        let dp = ghd::elimination::optimal_elimination(
            &h,
            |bag| cover::fractional_cover(&h, bag).expect("coverable").weight,
            None,
        )
        .map(|(w, _)| w);
        prop_assert_eq!(engine, dp, "streaming engine vs elimination DP on {:?}", h);
    }

    #[test]
    fn hw_witnesses_validate_and_sandwich_ghw(h in arb_hypergraph()) {
        // det-k-decomp has no independent DP; certify it through its
        // validated witness and the Adler–Gottlob–Grohe sandwich around
        // the DP-certified ghw.
        let Some((ghw, _)) = ghd::ghw_exact(&h, None) else { return Ok(()); };
        let Some((hw, d)) = hd::hypertree_width(&h, 3 * ghw + 1) else {
            return Err(TestCaseError::Reject);
        };
        prop_assert_eq!(validate::validate_hd(&h, &d), Ok(()));
        prop_assert!(ghw <= hw, "ghw {} > hw {}", ghw, hw);
        prop_assert!(hw <= 3 * ghw + 1, "hw {} vs ghw {}", hw, ghw);
    }

    #[test]
    fn parallel_and_sequential_searches_return_identical_widths(h in arb_hypergraph()) {
        let (seq, _) = fhd::fhw_exact_with_stats(&h, None, Some(1));
        let (par, _) = fhd::fhw_exact_with_stats(&h, None, Some(4));
        let seq_w = seq.map(|(w, _)| w);
        let par_w = par.as_ref().map(|(w, _)| w.clone());
        prop_assert_eq!(seq_w, par_w, "threads=1 vs threads=4 on {:?}", h);
        // The parallel witness itself must still validate.
        if let Some((w, d)) = par {
            prop_assert_eq!(validate::validate_fhd(&h, &d), Ok(()));
            prop_assert!(d.width() <= w);
        }
    }
}

proptest! {
    // The strict-HD check prices separators of an augmented hypergraph;
    // fewer, smaller cases keep the suite fast.
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn strict_hd_strategy_agrees_with_legacy_oracle(
        n in 3usize..6,
        seed in 0u64..200,
        below in any::<bool>(),
    ) {
        let h = generators::random_bounded_degree(n + 2, n, 2, 3, seed);
        let Some((fhw, _)) = fhd::fhw_exact(&h, None) else { return Ok(()); };
        // At k = fhw both must say yes; strictly below, both must agree
        // (typically no — never a yes/no split).
        let k = if below { &fhw - &rat(1, 5) } else { fhw.clone() };
        if !k.is_positive() {
            return Err(TestCaseError::Reject);
        }
        let engine = fhd::check_fhd_bdp(&h, &k, fhd::HdkParams::default());
        let legacy = fhd::check_fhd_bdp_legacy(&h, &k, fhd::HdkParams::default());
        prop_assert_eq!(
            engine.is_yes(),
            legacy.is_yes(),
            "engine vs legacy at k = {} on {:?}", k, h
        );
        if !below {
            prop_assert!(engine.is_yes(), "strict check must accept fhw = {}", fhw);
        }
        for (name, ans) in [("engine", &engine), ("legacy", &legacy)] {
            if let Some(d) = ans.decomposition() {
                prop_assert_eq!(validate::validate_fhd(&h, &d.clone()), Ok(()), "{}", name);
                prop_assert!(d.width() <= k, "{} witness exceeds {}", name, k);
            }
        }
    }
}

/// Decision streams must stop early: on an acyclic instance the first
/// admitted candidate per state wins, so the engine pulls far fewer guesses
/// than the full `det-k-decomp` candidate space.
#[test]
fn decision_searches_short_circuit_on_the_first_witness() {
    let h = generators::cq_chain(5, 3, 1);
    let (d, stats) = hd::check_hd_with_stats(&h, 1);
    assert!(d.is_some(), "chains are acyclic");
    assert!(stats.streamed > 0);
    assert!(
        stats.streamed <= stats.states * h.num_edges(),
        "streamed {} guesses over {} states — the stream is not lazy",
        stats.streamed,
        stats.states
    );
}

/// The fhw engine's shared ρ* cache must actually dedup: pricing runs at
/// most once per distinct bag, and repeats hit the cache.
#[test]
fn fhw_price_cache_dedups_identical_bags() {
    let h = generators::cycle(6);
    let (result, stats) = fhd::fhw_exact_with_stats(&h, None, Some(1));
    let (w, _) = result.expect("cycles decompose");
    assert_eq!(w, Rational::from(2usize));
    assert!(
        stats.price_hits + stats.price_misses <= stats.admitted,
        "price lookups {} exceed admitted candidates {}",
        stats.price_hits + stats.price_misses,
        stats.admitted
    );
    // 2^6 - 1 subset bags exist per full component; far fewer LPs may run
    // thanks to the bound gate, and none twice.
    assert!(stats.price_misses > 0);
}
