//! The observability determinism contract: tracing is a pure observer.
//!
//! Two guarantees, both load-bearing for `crates/obs`:
//!
//! * **No feedback** — widths, witnesses and the deterministic engine
//!   counters are byte-identical with tracing on or off, at every thread
//!   count. The span layer never steers search scheduling, admission or
//!   pricing; it only records what happened.
//! * **Honest machine output** — the `--trace-json` JSONL stream follows
//!   the documented `hgtool-trace/v1` schema line by line (validated here
//!   with the crate's own dependency-free JSON parser over the vendored
//!   corpus), and the folded-stack sink emits well-formed
//!   `stack self_us` lines.
//!
//! The tests serialize on a local mutex: the trace flag and the span
//! collector are process-global, so toggling them from concurrently
//! running tests would interleave spans across tests.

use hypertree::hypergraph::{parser, Hypergraph};
use hypertree::solver::EngineOptions;
use hypertree::{fhd, ghd, hd};
use std::collections::BTreeSet;
use std::sync::{Mutex, MutexGuard};

/// Serializes tests that toggle the process-global trace flag.
fn trace_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn corpus() -> Vec<(String, Hypergraph)> {
    let mut out = Vec::new();
    let mut entries: Vec<_> = std::fs::read_dir("examples/data/corpus")
        .expect("vendored corpus present")
        .map(|e| e.expect("readable corpus entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "hg"))
        .collect();
    entries.sort();
    for path in entries {
        let text = std::fs::read_to_string(&path).expect("readable corpus file");
        let h = parser::parse(&text).expect("parsable corpus file");
        out.push((path.display().to_string(), h));
    }
    assert!(!out.is_empty(), "corpus is non-empty");
    out
}

/// Options that make repeated runs self-contained: no cross-call price or
/// result reuse, so every run does identical work regardless of process
/// history, and the engine counters compare exactly.
fn fresh_opts(threads: usize) -> EngineOptions {
    EngineOptions {
        threads: Some(threads),
        reuse_prices: false,
        reuse_results: false,
        ..EngineOptions::default()
    }
}

/// One full solve sweep over the corpus, rendered to a comparison string:
/// widths, witness shapes and the deterministic engine counters of all
/// three measures per instance.
fn solve_fingerprint(instances: &[(String, Hypergraph)], threads: usize) -> String {
    let mut out = String::new();
    for (name, h) in instances {
        let opts = fresh_opts(threads);
        let (hw, hw_stats) = hd::hypertree_width_with_stats(h, 6, opts);
        let (ghw, ghw_stats) = ghd::ghw_exact_with_stats(h, None, opts);
        let (fhw, fhw_stats) = fhd::fhw_exact_with_stats(h, None, opts);
        let witness = |d: Option<&hypertree::decomp::Decomposition>| match d {
            Some(d) => d.render(h),
            None => "-".into(),
        };
        out.push_str(&format!(
            "{name}\nhw={:?} {:?}\n{}\nghw={:?} {:?}\n{}\nfhw={:?} {:?}\n{}\n",
            hw.as_ref().map(|(k, _)| *k),
            hw_stats.engine_only(),
            witness(hw.as_ref().map(|(_, d)| d)),
            ghw.as_ref().map(|(k, _)| *k),
            ghw_stats.engine_only(),
            witness(ghw.as_ref().map(|(_, d)| d)),
            fhw.as_ref().map(|(w, _)| w.clone()),
            fhw_stats.engine_only(),
            witness(fhw.as_ref().map(|(_, d)| d)),
        ));
    }
    out
}

/// Tracing on vs off, at 1, 4 and 8 threads: the nine sweeps produce one
/// byte-identical fingerprint. This is the no-feedback guarantee — span
/// collection must not perturb widths, witnesses or counters.
#[test]
fn tracing_never_changes_widths_witnesses_or_counters() {
    let _guard = trace_lock();
    let instances = corpus();
    let mut fingerprints = Vec::new();
    for threads in [1, 4, 8] {
        for on in [false, true] {
            obs::trace::set_enabled(on);
            fingerprints.push((threads, on, solve_fingerprint(&instances, threads)));
            // Discard whatever the traced sweeps recorded; this test is
            // about the solves, not the spans.
            obs::trace::drain();
        }
    }
    obs::trace::set_enabled(false);
    let (_, _, baseline) = &fingerprints[0];
    for (threads, on, fp) in &fingerprints {
        assert_eq!(
            fp, baseline,
            "solve fingerprint diverged at threads={threads} tracing={on}"
        );
    }
}

/// With tracing off, the span layer is a no-op: a full solve sweep records
/// nothing (and therefore allocates nothing in the collector).
#[test]
fn disabled_tracing_records_no_spans() {
    let _guard = trace_lock();
    obs::trace::set_enabled(false);
    obs::trace::drain();
    let instances = corpus();
    solve_fingerprint(&instances[..2.min(instances.len())], 1);
    assert!(obs::trace::drain().is_empty());
}

/// The `hgtool-trace/v1` JSONL stream over the vendored corpus: every line
/// parses, the meta line is exact, every span line carries the documented
/// fields with the documented types, parents precede their children, and
/// the whole solve-pipeline span taxonomy shows up.
#[test]
fn jsonl_stream_follows_the_documented_schema() {
    let _guard = trace_lock();
    let instances = corpus();
    obs::trace::set_enabled(true);
    obs::trace::drain();
    // Default options (result reuse on): the runtime admission path runs,
    // so its `result_cache` spans are part of the stream.
    let opts = EngineOptions {
        threads: Some(1),
        ..EngineOptions::default()
    };
    for (_, h) in &instances {
        ghd::ghw_exact_with_stats(h, None, opts);
        fhd::fhw_exact_with_stats(h, None, opts);
    }
    let records = obs::trace::drain();
    obs::trace::set_enabled(false);
    assert!(!records.is_empty(), "a traced sweep records spans");

    let jsonl = obs::trace::render_jsonl(&records);
    let mut lines = jsonl.lines();

    // Line 1: the meta object.
    let meta = obs::json::parse(lines.next().expect("meta line")).expect("meta parses");
    assert_eq!(meta.get("type").and_then(|v| v.as_str()), Some("meta"));
    assert_eq!(
        meta.get("schema").and_then(|v| v.as_str()),
        Some("hgtool-trace/v1")
    );
    assert_eq!(
        meta.get("clock").and_then(|v| v.as_str()),
        Some("monotonic-us")
    );
    assert_eq!(
        meta.get("spans").and_then(|v| v.as_num()),
        Some(records.len() as f64)
    );

    // Every further line: one span object.
    let mut seen_ids: BTreeSet<u64> = BTreeSet::new();
    let mut seen_names: BTreeSet<String> = BTreeSet::new();
    let mut span_lines = 0usize;
    for line in lines {
        let span = obs::json::parse(line).unwrap_or_else(|e| panic!("bad span line {line}: {e}"));
        assert_eq!(span.get("type").and_then(|v| v.as_str()), Some("span"));
        let id = span.get("id").and_then(|v| v.as_num()).expect("numeric id") as u64;
        let num = |key: &str| {
            span.get(key)
                .and_then(|v| v.as_num())
                .unwrap_or_else(|| panic!("span {id}: numeric {key}"))
        };
        num("thread");
        num("start_us");
        num("dur_us");
        let depth = num("depth") as u64;
        match span.get("parent").expect("parent present") {
            obs::json::Json::Null => assert_eq!(depth, 0, "span {id}: parentless means depth 0"),
            parent => {
                let parent = parent.as_num().expect("numeric parent") as u64;
                assert!(
                    seen_ids.contains(&parent),
                    "span {id}: parent {parent} precedes it in thread order"
                );
                assert!(depth > 0);
            }
        }
        let name = span
            .get("name")
            .and_then(|v| v.as_str())
            .expect("string name");
        assert!(
            matches!(
                span.get("fields").expect("fields present"),
                obs::json::Json::Obj(_)
            ),
            "span {id}: fields is an object"
        );
        seen_ids.insert(id);
        seen_names.insert(name.to_string());
        span_lines += 1;
    }
    assert_eq!(span_lines, records.len(), "one line per span");
    assert_eq!(seen_ids.len(), records.len(), "span ids are unique");

    // The whole pipeline is covered: prep passes, candidate generation,
    // engine state evaluation, pricing, runtime admission, solve roots.
    for required in ["solve", "result_cache", "prep", "candgen", "state", "price"] {
        assert!(
            seen_names.contains(required),
            "span taxonomy is missing {required:?} (saw {seen_names:?})"
        );
    }

    // The folded sink over the same records: `stack self_us` per line,
    // stacks rooted at a thread frame.
    let folded = obs::trace::render_folded(&records);
    assert!(!folded.is_empty());
    for line in folded.lines() {
        let (stack, weight) = line.rsplit_once(' ').expect("folded line has a weight");
        assert!(stack.starts_with("thread-"), "stack is thread-rooted");
        weight.parse::<u64>().expect("folded weight is integral");
    }
}
