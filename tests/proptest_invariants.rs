//! Property-based invariants across the workspace, on randomly generated
//! hypergraphs.

use hypertree::arith::Rational;
use hypertree::cover;
use hypertree::decomp::validate;
use hypertree::hypergraph::{components, dual, generators, properties, Hypergraph, VertexSet};
use hypertree::{fhd, ghd, hd};
use proptest::prelude::*;

/// Strategy: a connected-ish random hypergraph described by (n, edges).
fn arb_hypergraph() -> impl Strategy<Value = Hypergraph> {
    (3usize..9, 0u64..400).prop_map(|(n, seed)| {
        // Mix of families keyed by seed for diversity.
        match seed % 4 {
            0 => generators::random_bip(n + 3, n, 2, 3, seed),
            1 => generators::random_bounded_degree(n + 3, n, 3, 3, seed),
            2 => generators::random_acyclic(n, 3, seed),
            _ => generators::cycle(n),
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn components_partition_the_complement(h in arb_hypergraph(), sep_seed in 0u64..64) {
        // Take a pseudo-random separator.
        let sep: VertexSet = (0..h.num_vertices())
            .filter(|v| (sep_seed >> (v % 6)) & 1 == 1)
            .collect();
        let comps = components::components(&h, &sep);
        let mut union = VertexSet::new();
        let mut total = 0usize;
        for c in &comps {
            prop_assert!(!c.is_empty());
            prop_assert!(c.is_disjoint(&sep));
            total += c.len();
            union.union_with(c);
        }
        prop_assert_eq!(total, union.len());
        prop_assert_eq!(union, h.all_vertices().difference(&sep));
    }

    #[test]
    fn lp_duality_rho_star_equals_tau_star_of_dual(h in arb_hypergraph()) {
        prop_assume!(!h.has_isolated_vertices());
        let d = dual::dual(&h);
        let rho = cover::rho_star(&h).unwrap();
        let tau = cover::tau_star(&d);
        prop_assert_eq!(rho, tau);
    }

    #[test]
    fn integral_covers_dominate_fractional(h in arb_hypergraph()) {
        prop_assume!(!h.has_isolated_vertices());
        let frac = cover::rho_star(&h).unwrap();
        let int = cover::rho(&h).unwrap();
        prop_assert!(frac <= Rational::from(int));
        prop_assert!(Rational::from(int) <= &frac + &Rational::from(h.num_vertices()));
    }

    #[test]
    fn every_engine_output_validates(h in arb_hypergraph()) {
        prop_assume!(!h.has_isolated_vertices());
        prop_assume!(h.num_vertices() <= 12);
        if let Some((w, d)) = hd::hypertree_width(&h, 4) {
            prop_assert_eq!(validate::validate_hd(&h, &d), Ok(()));
            prop_assert!(d.width() <= Rational::from(w));
        }
        if let Some((w, d)) = ghd::ghw_exact(&h, None) {
            prop_assert_eq!(validate::validate_ghd(&h, &d), Ok(()));
            prop_assert!(d.width() <= Rational::from(w));
        }
        if let Some((w, d)) = fhd::fhw_exact(&h, None) {
            prop_assert_eq!(validate::validate_fhd(&h, &d), Ok(()));
            prop_assert!(d.width() <= w);
        }
    }

    #[test]
    fn furedi_support_bound(h in arb_hypergraph()) {
        prop_assume!(!h.has_isolated_vertices());
        let c = cover::fractional_cover(&h, &h.all_vertices()).unwrap();
        let d = properties::degree(&h);
        prop_assert!(
            Rational::from(c.support().len()) <= Rational::from(d) * c.weight.clone()
        );
    }

    #[test]
    fn vc_dimension_bounded_by_bmip(h in arb_hypergraph()) {
        prop_assume!(h.num_vertices() <= 12);
        let vc = properties::vc_dimension(&h);
        for c in 1..=3usize {
            let i = properties::multi_intersection_width(&h, c);
            prop_assert!(vc <= c + i, "vc {} > c {} + i {}", vc, c, i);
        }
    }

    #[test]
    fn parser_round_trips(h in arb_hypergraph()) {
        // The parser numbers vertices by first appearance, so round-tripping
        // preserves the hypergraph up to renumbering: compare by names.
        let text = h.to_string();
        let back = hypertree::hypergraph::parser::parse(&text).unwrap();
        prop_assert_eq!(h.num_vertices(), back.num_vertices());
        prop_assert_eq!(h.num_edges(), back.num_edges());
        for e in 0..h.num_edges() {
            prop_assert_eq!(h.edge_name(e), back.edge_name(e));
            let mut a: Vec<&str> = h.edge(e).iter().map(|v| h.vertex_name(v)).collect();
            let mut b: Vec<&str> = back.edge(e).iter().map(|v| back.vertex_name(v)).collect();
            a.sort_unstable();
            b.sort_unstable();
            prop_assert_eq!(a, b);
        }
    }

    #[test]
    fn fnf_preserves_ghd_validity(h in arb_hypergraph()) {
        prop_assume!(!h.has_isolated_vertices());
        prop_assume!(h.num_vertices() <= 12);
        let Some((_, d)) = ghd::ghw_exact(&h, None) else { return Ok(()) };
        let fnf = hypertree::decomp::to_fnf(&h, &d);
        prop_assert_eq!(validate::validate_ghd(&h, &fnf), Ok(()));
        prop_assert_eq!(validate::validate_fnf(&h, &fnf), Ok(()));
        prop_assert!(fnf.width() <= d.width());
    }
}
