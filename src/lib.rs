//! # hypertree
//!
//! Full Rust reproduction of *General and Fractional Hypertree
//! Decompositions: Hard and Easy Cases* (Fischl, Gottlob, Pichler; PODS'18).
//!
//! This facade re-exports the entire workspace API. See [`hypertree_core`]
//! for the high-level entry points and the `examples/` directory for
//! runnable walkthroughs.

#![forbid(unsafe_code)]

pub use hypertree_core::*;
