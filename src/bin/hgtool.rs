//! `hgtool` — command-line front end for the hypertree library.
//!
//! ```text
//! hgtool structure <file>             structural profile (BIP/BMIP/BDP/VC)
//! hgtool widths [--stats] [--no-prep] [--heuristic-only] [--portfolio] <file>...
//!                                     exact hw / ghw / fhw (small instances);
//!                                     several files (or a `*` glob in the
//!                                     file name) run as one batch through
//!                                     the shared runtime — admission ordered
//!                                     by candidate-space estimates, repeated
//!                                     instances answered from the result
//!                                     cache;
//!                                     --stats adds engine + LP-cache +
//!                                     candidate-generation + simplex
//!                                     (pivot/warm-start) + runtime
//!                                     (result-cache/dedup/pool) counters,
//!                                     --no-prep bypasses the preprocessing
//!                                     pipeline and its cross-call caches
//!                                     (also: HGTOOL_NO_PREP env var),
//!                                     --heuristic-only prints the candgen
//!                                     upper bounds + witnesses without any
//!                                     exact search (any instance size),
//!                                     --portfolio races each width's
//!                                     backend registry (engine / elim DP /
//!                                     subset oracle / seed-refine), first
//!                                     exact answer wins, losers cancelled;
//!                                     honors HGTOOL_DEADLINE_MS and
//!                                     per-backend HGTOOL_DEADLINE_<ID>_MS;
//!                                     --trace prints the span tree + phase
//!                                     totals, --trace-json <file> writes
//!                                     the hgtool-trace/v1 JSONL stream,
//!                                     --trace-folded <file> writes
//!                                     flamegraph folded stacks (tracing
//!                                     also arms via HGTOOL_TRACE=1)
//! hgtool metrics <file>...            run the batch twice (cold + warm)
//!                                     and print the process metrics
//!                                     registry in Prometheus text format
//! hgtool prep <file>                  print the width-preserving reduction
//!                                     trace, blocks and fingerprints
//! hgtool check <hd|ghd|fhd> <k> <file>   decide width <= k, print witness
//! hgtool reduce <n> <m> [seed]        build the Thm 3.2 reduction for a
//!                                     random planted 3SAT instance and
//!                                     validate the Table 1 witness
//! hgtool serve [--addr <host:port>] [--trace-json <file>]
//!                                     width-as-a-service HTTP daemon:
//!                                     POST /solve and /solve/batch, live
//!                                     GET /metrics, /healthz, /readyz,
//!                                     /version, POST /admin/drain;
//!                                     honors HGTOOL_SLOW_REQUEST_MS,
//!                                     HGTOOL_TRACE_SAMPLE,
//!                                     HGTOOL_MAX_BODY_BYTES,
//!                                     HGTOOL_DRAIN_GRACE_MS; SIGTERM or
//!                                     /admin/drain shut down gracefully
//! hgtool loadgen [--addr <a>] [--connections N] [--duration-ms N]
//!                [--max-requests N] [--measure w] [--portfolio]
//!                [--deadline-ms N] [--batch-every N] [--json] [<file>...]
//!                                     closed-loop load generator against a
//!                                     running hgtool serve; replays the
//!                                     vendored bench corpus by default, or
//!                                     the given HyperBench files
//! ```
//!
//! Files use the HyperBench syntax: `edge(v1,v2,...), ...`; `-` reads stdin.

use hypertree::arith::Rational;
use hypertree::decomp::validate;
use hypertree::fhd::{self, HdkParams};
use hypertree::ghd::{self, SubedgeLimits};
use hypertree::hypergraph::{parser, Hypergraph};
use hypertree::prep;
use hypertree::reduction::{self, Cnf};
use hypertree::solver::EngineOptions;
use hypertree::{analyze_structure, hd};
use std::io::Read;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("hgtool: {msg}");
            eprintln!();
            eprintln!("usage:");
            eprintln!("  hgtool structure <file>");
            eprintln!(
                "  hgtool widths [--stats] [--no-prep] [--heuristic-only] [--portfolio] \
                 [--trace] [--trace-json <file>] [--trace-folded <file>] <file>..."
            );
            eprintln!("  hgtool metrics <file>...");
            eprintln!("  hgtool prep <file>");
            eprintln!("  hgtool check <hd|ghd|fhd> <k> <file>");
            eprintln!("  hgtool reduce <n> <m> [seed]");
            eprintln!("  hgtool serve [--addr <host:port>] [--trace-json <file>]");
            eprintln!(
                "  hgtool loadgen [--addr <host:port>] [--connections <n>] [--duration-ms <n>] \
                 [--max-requests <n>] [--measure <widths|hw|ghw|fhw>] [--portfolio] \
                 [--deadline-ms <n>] [--batch-every <n>] [--json] [<file>...]"
            );
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    match args {
        [cmd, file] if cmd == "structure" => structure(&load(file)?),
        [cmd, rest @ ..] if cmd == "widths" => {
            let mut stats = false;
            let mut no_prep = false;
            let mut heuristic_only = false;
            let mut portfolio = false;
            let mut trace = TraceOpts::default();
            let mut files: Vec<String> = Vec::new();
            let mut i = 0;
            while i < rest.len() {
                match rest[i].as_str() {
                    "--stats" => stats = true,
                    "--no-prep" => no_prep = true,
                    "--heuristic-only" => heuristic_only = true,
                    "--portfolio" => portfolio = true,
                    "--trace" => trace.tree = true,
                    "--trace-json" => {
                        i += 1;
                        let path = rest.get(i).ok_or("--trace-json needs a file")?;
                        trace.json = Some(path.clone());
                    }
                    "--trace-folded" => {
                        i += 1;
                        let path = rest.get(i).ok_or("--trace-folded needs a file")?;
                        trace.folded = Some(path.clone());
                    }
                    other if other.starts_with("--") => {
                        return Err(format!("unknown widths flag {other}"))
                    }
                    file => files.extend(expand_glob(file)?),
                }
                i += 1;
            }
            if heuristic_only && portfolio {
                return Err("--heuristic-only and --portfolio are mutually exclusive".into());
            }
            // A trace sink arms collection; --stats arms it too so the
            // phase-time columns have spans to aggregate. Tracing is
            // observational only — widths, witnesses and counters are
            // byte-identical either way (the determinism tests pin this).
            if trace.active() || stats {
                obs::trace::set_enabled(true);
            }
            if obs::trace::enabled() {
                // Start from a clean buffer: drop spans of any earlier
                // in-process work so the sinks describe this command only.
                obs::trace::drain();
            }
            let records = match files.as_slice() {
                [] => return Err("widths needs at least one file".into()),
                [file] if heuristic_only => {
                    heuristic_widths(&load(file)?, no_prep)?;
                    drain_if_tracing()
                }
                [file] if portfolio => {
                    widths_portfolio(&load(file)?, stats, no_prep)?;
                    drain_if_tracing()
                }
                [file] => widths(&load(file)?, stats, no_prep)?,
                many if heuristic_only => {
                    return Err(format!(
                        "--heuristic-only takes one file, got {}",
                        many.len()
                    ))
                }
                many if portfolio => {
                    widths_portfolio_batch(many, stats, no_prep)?;
                    drain_if_tracing()
                }
                many => {
                    widths_batch(many, stats, no_prep)?;
                    drain_if_tracing()
                }
            };
            emit_trace(&trace, &records)
        }
        [cmd, rest @ ..] if cmd == "metrics" => {
            let mut files: Vec<String> = Vec::new();
            for arg in rest {
                if arg.starts_with("--") {
                    return Err(format!("unknown metrics flag {arg}"));
                }
                files.extend(expand_glob(arg)?);
            }
            if files.is_empty() {
                return Err("metrics needs at least one file".into());
            }
            metrics_cmd(&files)
        }
        [cmd, file] if cmd == "prep" => prep_trace(&load(file)?),
        [cmd, method, k, file] if cmd == "check" => check(method, k, &load(file)?),
        [cmd, n, m] if cmd == "reduce" => reduce(n, m, "0"),
        [cmd, n, m, seed] if cmd == "reduce" => reduce(n, m, seed),
        [cmd, rest @ ..] if cmd == "serve" => serve_cmd(rest),
        [cmd, rest @ ..] if cmd == "loadgen" => loadgen_cmd(rest),
        _ => Err("unknown or incomplete command".into()),
    }
}

/// Which trace sinks `hgtool widths` should render after the command.
#[derive(Default)]
struct TraceOpts {
    /// `--trace`: human-readable span tree + phase totals on stdout.
    tree: bool,
    /// `--trace-json <file>`: the `hgtool-trace/v1` JSONL stream.
    json: Option<String>,
    /// `--trace-folded <file>`: flamegraph folded stacks.
    folded: Option<String>,
}

impl TraceOpts {
    fn active(&self) -> bool {
        self.tree || self.json.is_some() || self.folded.is_some()
    }
}

/// Collects the spans recorded so far (empty when tracing is off).
fn drain_if_tracing() -> Vec<obs::trace::SpanRecord> {
    if obs::trace::enabled() {
        obs::trace::drain()
    } else {
        Vec::new()
    }
}

/// Renders the requested trace sinks over the command's span records.
fn emit_trace(topts: &TraceOpts, records: &[obs::trace::SpanRecord]) -> Result<(), String> {
    if topts.tree {
        println!();
        print!("{}", obs::trace::render_tree(records));
        println!();
        println!("phase totals (self time, no double counting):");
        for (name, (count, self_us)) in obs::trace::phase_totals(records) {
            println!("  {name:<14} {count:>7} spans  {self_us:>12}us");
        }
    }
    if let Some(path) = &topts.json {
        std::fs::write(path, obs::trace::render_jsonl(records))
            .map_err(|e| format!("{path}: {e}"))?;
        eprintln!(
            "trace: wrote {} spans to {path} (hgtool-trace/v1)",
            records.len()
        );
    }
    if let Some(path) = &topts.folded {
        std::fs::write(path, obs::trace::render_folded(records))
            .map_err(|e| format!("{path}: {e}"))?;
        eprintln!("trace: wrote folded stacks to {path}");
    }
    Ok(())
}

/// `hgtool metrics`: run the batch twice — a cold pass, then a warm pass
/// whose lookups come back from the result cache — and print the
/// process-lifetime metrics registry in Prometheus text exposition format.
/// Two passes make the cache/pool gauges meaningfully nonzero: hit
/// counters, byte occupancy, and the pool-thread gauge all reflect real
/// traffic rather than an idle registry.
fn metrics_cmd(files: &[String]) -> Result<(), String> {
    let mut instances = Vec::with_capacity(files.len());
    for f in files {
        instances.push(load(f)?);
    }
    // At least two workers, so the shared pool actually spins up and the
    // pool gauges describe real traffic even on a single-core host. The
    // engine's counters are thread-count-invariant, so this changes no
    // reported number besides the pool metrics themselves.
    let opts = EngineOptions {
        threads: Some(hypertree::solver::default_thread_count().max(2)),
        ..EngineOptions::default()
    };
    for pass in ["cold", "warm"] {
        let results = hypertree::solver::solve_batch(&instances, |_, h| {
            ghd::ghw_exact_with_stats(h, None, opts)
        });
        let solved = results.iter().filter(|(r, _)| r.is_some()).count();
        eprintln!(
            "metrics: {pass} pass solved {solved}/{} instances",
            results.len()
        );
    }
    print!("{}", obs::metrics::render_prometheus());
    Ok(())
}

/// Expands a `*` glob in the file-name component (for shells that hand the
/// pattern through unexpanded); a plain path passes through untouched.
fn expand_glob(pattern: &str) -> Result<Vec<String>, String> {
    if !pattern.contains('*') || pattern == "-" {
        return Ok(vec![pattern.to_string()]);
    }
    let path = std::path::Path::new(pattern);
    let dir = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => std::path::Path::new("."),
    };
    if dir.to_str().is_none_or(|d| d.contains('*')) {
        return Err(format!(
            "{pattern}: globs are only supported in the file name"
        ));
    }
    let name = path
        .file_name()
        .and_then(|n| n.to_str())
        .ok_or_else(|| format!("{pattern}: bad glob"))?;
    let mut out: Vec<String> = Vec::new();
    let entries = std::fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| e.to_string())?;
        let fname = entry.file_name();
        let Some(fname) = fname.to_str() else {
            continue;
        };
        if glob_match(name, fname) && entry.path().is_file() {
            out.push(entry.path().display().to_string());
        }
    }
    out.sort();
    if out.is_empty() {
        return Err(format!("{pattern}: no matching files"));
    }
    Ok(out)
}

/// `*`-only glob match (greedy left-to-right).
fn glob_match(pattern: &str, name: &str) -> bool {
    let parts: Vec<&str> = pattern.split('*').collect();
    if parts.len() == 1 {
        return pattern == name;
    }
    if !name.starts_with(parts[0]) {
        return false;
    }
    let mut rest = &name[parts[0].len()..];
    for part in &parts[1..parts.len() - 1] {
        if part.is_empty() {
            continue;
        }
        match rest.find(part) {
            Some(pos) => rest = &rest[pos + part.len()..],
            None => return false,
        }
    }
    rest.ends_with(parts[parts.len() - 1])
}

fn load(path: &str) -> Result<Hypergraph, String> {
    let text = if path == "-" {
        let mut buf = String::new();
        std::io::stdin()
            .read_to_string(&mut buf)
            .map_err(|e| e.to_string())?;
        buf
    } else {
        std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?
    };
    parser::parse(&text).map_err(|e| e.to_string())
}

/// `hgtool serve`: run the width-as-a-service daemon in the foreground
/// until SIGTERM/SIGINT or `POST /admin/drain`.
fn serve_cmd(rest: &[String]) -> Result<(), String> {
    let mut config = serve::ServeConfig::from_env();
    let mut i = 0;
    while i < rest.len() {
        match rest[i].as_str() {
            "--addr" => {
                i += 1;
                config.addr = rest.get(i).ok_or("--addr needs host:port")?.clone();
            }
            "--trace-json" => {
                i += 1;
                let path = rest.get(i).ok_or("--trace-json needs a file")?;
                config.trace_json = Some(path.clone());
            }
            other => return Err(format!("unknown serve flag {other}")),
        }
        i += 1;
    }
    let server = serve::Server::start(config).map_err(|e| format!("serve: {e}"))?;
    eprintln!(
        "serve: listening on http://{} ({}); POST /solve, GET /metrics, \
         POST /admin/drain to stop",
        server.addr(),
        serve::API_SCHEMA
    );
    server.run_until_drained();
    eprintln!("serve: drained");
    Ok(())
}

/// `hgtool loadgen`: drive a running daemon closed-loop and report
/// client-side throughput and latency quantiles.
fn loadgen_cmd(rest: &[String]) -> Result<(), String> {
    let mut addr = "127.0.0.1:7878".to_string();
    let mut opts = serve::LoadgenOptions::default();
    let mut as_json = false;
    let mut files: Vec<String> = Vec::new();
    let mut i = 0;
    while i < rest.len() {
        let take = |name: &str| -> Result<String, String> {
            rest.get(i + 1)
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match rest[i].as_str() {
            "--addr" => {
                addr = take("--addr")?;
                i += 1;
            }
            "--connections" => {
                opts.connections = take("--connections")?
                    .parse()
                    .map_err(|_| "--connections needs a number")?;
                i += 1;
            }
            "--duration-ms" => {
                let ms: u64 = take("--duration-ms")?
                    .parse()
                    .map_err(|_| "--duration-ms needs a number")?;
                opts.duration = std::time::Duration::from_millis(ms);
                i += 1;
            }
            "--max-requests" => {
                opts.max_requests = Some(
                    take("--max-requests")?
                        .parse()
                        .map_err(|_| "--max-requests needs a number")?,
                );
                i += 1;
            }
            "--measure" => {
                opts.measure = take("--measure")?;
                i += 1;
            }
            "--portfolio" => opts.portfolio = true,
            "--deadline-ms" => {
                opts.deadline_ms = Some(
                    take("--deadline-ms")?
                        .parse()
                        .map_err(|_| "--deadline-ms needs a number")?,
                );
                i += 1;
            }
            "--batch-every" => {
                opts.batch_every = take("--batch-every")?
                    .parse()
                    .map_err(|_| "--batch-every needs a number")?;
                i += 1;
            }
            "--json" => as_json = true,
            other if other.starts_with("--") => {
                return Err(format!("unknown loadgen flag {other}"))
            }
            file => files.extend(expand_glob(file)?),
        }
        i += 1;
    }
    // Files on the command line name the workload; with none, replay
    // the vendored bench corpus (compiled in, so no paths needed).
    let mut instances: Vec<(String, String)> = Vec::new();
    for f in &files {
        instances.push((f.clone(), load(f)?.to_string()));
    }
    if instances.is_empty() {
        instances = hypertree_bench::vendored_corpus()
            .into_iter()
            .map(|w| (w.name, w.hypergraph.to_string()))
            .collect();
    }
    let report = serve::loadgen::run(&addr, &instances, &opts)
        .map_err(|e| format!("loadgen: {addr}: {e}"))?;
    if as_json {
        println!("{}", report.to_json());
    } else {
        println!(
            "loadgen: {} connections, {} instances, {:.2}s",
            report.connections,
            instances.len(),
            report.elapsed.as_secs_f64()
        );
        println!(
            "  requests {}  ok {}  errors {}  deadline-expired {}  cached {} ({:.1}%)",
            report.requests,
            report.ok,
            report.errors,
            report.deadline_expired,
            report.cached_responses,
            report.cache_hit_ratio() * 100.0
        );
        println!(
            "  qps {:.1}  latency p50 {}us  p95 {}us  p99 {}us",
            report.qps, report.p50_us, report.p95_us, report.p99_us
        );
    }
    if report.requests > 0 && report.ok == 0 {
        return Err("loadgen: every request failed".into());
    }
    Ok(())
}

fn structure(h: &Hypergraph) -> Result<(), String> {
    let s = analyze_structure(h, 18);
    println!("vertices:            {}", s.num_vertices);
    println!("edges:               {}", s.num_edges);
    println!("rank:                {}", s.rank);
    println!("degree (BDP d):      {}", s.degree);
    println!("intersection width:  {} (BIP i)", s.intersection_width);
    println!(
        "multi-intersections: c=2:{} c=3:{} c=4:{}",
        s.multi_intersection_widths[0],
        s.multi_intersection_widths[1],
        s.multi_intersection_widths[2]
    );
    match s.vc_dimension {
        Some(vc) => println!("VC-dimension:        {vc}"),
        None => println!("VC-dimension:        (skipped, too large)"),
    }
    println!("alpha-acyclic:       {}", s.alpha_acyclic);
    Ok(())
}

fn widths(
    h: &Hypergraph,
    stats: bool,
    no_prep: bool,
) -> Result<Vec<obs::trace::SpanRecord>, String> {
    let mut opts = EngineOptions::default();
    if no_prep {
        // An honest A/B baseline: disable the whole prep subsystem,
        // including its cross-call price registry, not just the passes.
        opts = opts.without_prep();
        opts.reuse_prices = false;
    }
    // Per-width calls rather than `exact_widths_with_opts`: the candgen
    // edge-union engine reaches instance sizes where the fhw subset/DP
    // engines no longer answer, so each width degrades to `n/a`
    // independently instead of failing the whole command. Draining the
    // span buffer between the calls attributes each span batch to its
    // measure for the phase-time columns.
    let (hw, hw_stats) = hd::hypertree_width_with_stats(h, 8, opts);
    let hw_spans = drain_if_tracing();
    let (ghw, ghw_stats) = ghd::ghw_exact_with_stats(h, None, opts);
    let ghw_spans = drain_if_tracing();
    let (fhw, fhw_stats) = fhd::fhw_exact_with_stats(h, None, opts);
    let fhw_spans = drain_if_tracing();
    if hw.is_none() && ghw.is_none() && fhw.is_none() {
        return Err("instance too large for the exact engines \
                    (try --heuristic-only for witness-backed bounds)"
            .into());
    }
    let s = hypertree::WidthStats {
        hw: hw_stats,
        ghw: ghw_stats,
        fhw: fhw_stats,
    };
    let fmt = |v: Option<String>| v.unwrap_or_else(|| "n/a (out of exact range)".into());
    println!("hw  = {}", fmt(hw.map(|(k, _)| k.to_string())));
    println!("ghw = {}", fmt(ghw.map(|(k, _)| k.to_string())));
    println!("fhw = {}", fmt(fhw.map(|(k, _)| k.to_string())));
    if stats {
        println!();
        println!(
            "threads: {} (override with HGTOOL_THREADS; counters are identical at every count)",
            hypertree::solver::default_thread_count()
        );
        if prep::enabled(opts.prep) {
            println!(
                "prep: on (hw decision profile; ghw/fhw minimizer profile; \
                 disable with --no-prep or HGTOOL_NO_PREP)"
            );
        } else {
            println!("prep: off");
        }
        println!(
            "engine        states  memo-hits   streamed   admitted   lp-cache       \
             prep -v/-e/blocks   cand gen/filt   ub-seed"
        );
        for (name, t) in [("hw", &s.hw), ("ghw", &s.ghw), ("fhw", &s.fhw)] {
            println!(
                "{name:<10} {:>9} {:>10} {:>10} {:>10}   {}/{} ({:.0}% hit)   {}/{}/{}   {}/{}   {}",
                t.states,
                t.memo_hits,
                t.streamed,
                t.admitted,
                t.price_hits,
                t.price_hits + t.price_misses,
                100.0 * t.price_hit_rate(),
                t.prep_vertices_removed,
                t.prep_edges_removed,
                t.prep_blocks,
                t.cand_generated,
                t.cand_filtered,
                t.ub_width
                    .as_ref()
                    .map(|w| w.to_string())
                    .unwrap_or_else(|| "-".into()),
            );
        }
        println!();
        println!("engine     lp-pivots  warm-starts  cold-solves  cand-cap-hits");
        for (name, t) in [("hw", &s.hw), ("ghw", &s.ghw), ("fhw", &s.fhw)] {
            println!(
                "{name:<10} {:>9} {:>12} {:>12} {:>14}",
                t.lp_pivots, t.lp_warm_starts, t.lp_cold_solves, t.cand_cap_hits,
            );
        }
        println!();
        println!("engine     result-cache-hits  inflight-dedup  pool-warm");
        for (name, t) in [("hw", &s.hw), ("ghw", &s.ghw), ("fhw", &s.fhw)] {
            println!(
                "{name:<10} {:>17} {:>14} {:>9}",
                t.result_cache_hits, t.inflight_dedup, t.pool_reuse,
            );
        }
        if obs::trace::enabled() {
            // Phase times are span *self* times (a phase excludes its
            // sub-phases), so the columns partition each measure's solve
            // wall-clock instead of double counting nested work.
            println!();
            println!("engine       prep-us  candgen-us   search-us  pricing-us   all-phases-us");
            for (name, spans) in [("hw", &hw_spans), ("ghw", &ghw_spans), ("fhw", &fhw_spans)] {
                let totals = obs::trace::phase_totals(spans);
                let get = |k: &str| totals.get(k).map(|&(_, s)| s).unwrap_or(0);
                let all: u64 = totals.values().map(|&(_, s)| s).sum();
                println!(
                    "{name:<10} {:>9} {:>11} {:>11} {:>11} {:>15}",
                    get("prep"),
                    get("candgen"),
                    get("state"),
                    get("price"),
                    all,
                );
            }
        }
        if prep::reuse_enabled(opts.reuse_prices) {
            // The cross-call demonstration: the fhw search above populated
            // the fingerprint-keyed global cache, so a repeated search
            // prices nothing (its lookups come back warm) — the rerun
            // costs a pricing-free engine pass, a fraction of the first
            // search. Result reuse is disabled for the rerun: a
            // result-cache hit would skip the search (and its pricing)
            // entirely, making the warm-lookup line vacuous.
            let mut rerun_opts = opts;
            rerun_opts.reuse_results = false;
            let (_, rerun) = fhd::fhw_exact_with_stats(h, None, rerun_opts);
            println!(
                "cross-call price cache: re-running fhw served {} of {} lookups from earlier calls",
                rerun.price_warm_hits,
                rerun.price_hits + rerun.price_misses,
            );
        }
    }
    let mut records = hw_spans;
    records.extend(ghw_spans);
    records.extend(fhw_spans);
    // Spans of the --stats rerun (if any) belong to the command too.
    records.extend(drain_if_tracing());
    Ok(records)
}

/// `hgtool widths --portfolio`: each width measure races its backend
/// registry — first exact answer wins, losers are cancelled through the
/// engine's cancellation scopes — and the winner column names who won.
/// `HGTOOL_DEADLINE_MS` (global) and `HGTOOL_DEADLINE_<ID>_MS`
/// (per-backend) arm the race deadlines; on a total timeout the best
/// witnessed bounds any member achieved are printed instead.
fn widths_portfolio(h: &Hypergraph, stats: bool, no_prep: bool) -> Result<(), String> {
    use hypertree::solver::backend::{Measure, WidthRequest};
    use hypertree::solver::portfolio::{race, PortfolioOptions, RaceReport};
    let mut opts = EngineOptions::default();
    if no_prep {
        opts = opts.without_prep();
        opts.reuse_prices = false;
    }
    let popts = PortfolioOptions::from_env();
    // Per-measure races rather than `exact_widths_portfolio`: like the
    // plain path, each width degrades to `n/a` (or its best bounds)
    // independently instead of failing the whole command.
    let races: Vec<(&str, RaceReport)> = [
        ("hw", Measure::Hw { max_k: 8 }),
        ("ghw", Measure::Ghw { cutoff: None }),
        ("fhw", Measure::Fhw { cutoff: None }),
    ]
    .into_iter()
    .map(|(name, measure)| {
        let backends = hypertree::backends_for(&measure);
        let req = WidthRequest { measure, opts };
        (name, race(h, &req, &backends, &popts))
    })
    .collect();
    for (name, r) in &races {
        let answer = match (&r.outcome.width, r.winner) {
            (Some(w), _) => w.to_string(),
            (None, Some(_)) => "no (cutoff certified)".into(),
            (None, None) => {
                let lb = r
                    .bounds
                    .lower
                    .as_ref()
                    .map_or_else(|| "?".into(), |w| w.to_string());
                match &r.bounds.upper {
                    Some(ub) => format!("in [{lb}, {ub}] (race unresolved)"),
                    None => format!(">= {lb} (race unresolved)"),
                }
            }
        };
        println!("{name:<3} = {answer}   winner={}", r.winner.unwrap_or("-"));
    }
    if stats {
        println!();
        println!(
            "race   winner       raced                               canceled  first-bound  exact"
        );
        for (name, r) in &races {
            println!(
                "{name:<6} {:<12} {:<35} {:>8}  {:>11}  {:>5}",
                r.winner.unwrap_or("-"),
                r.raced.join(","),
                r.canceled,
                fmt_micros(r.time_to_first_bound),
                fmt_micros(r.time_to_exact),
            );
        }
        println!();
        for (name, r) in &races {
            let trace: Vec<String> = r
                .trace
                .iter()
                .map(|e| match e {
                    hypertree::solver::backend::BoundEvent::Lower(w) => format!("lb>={w}"),
                    hypertree::solver::backend::BoundEvent::Upper(w) => format!("ub<={w}"),
                })
                .collect();
            println!("{name} bound trace: {}", trace.join(" -> "));
        }
    }
    Ok(())
}

/// Formats an optional race duration in microseconds.
fn fmt_micros(d: Option<std::time::Duration>) -> String {
    d.map(|d| format!("{}us", d.as_micros()))
        .unwrap_or_else(|| "-".into())
}

/// `hgtool widths --portfolio` over several files: the batch runs through
/// the shared runtime ([`hypertree::exact_widths_portfolio_batch`]) and
/// every instance's three measures race their registries; the winners
/// column names who won each race.
fn widths_portfolio_batch(files: &[String], stats: bool, no_prep: bool) -> Result<(), String> {
    use hypertree::solver::portfolio::PortfolioOptions;
    let mut opts = EngineOptions::default();
    if no_prep {
        opts = opts.without_prep();
        opts.reuse_prices = false;
        opts.reuse_results = false;
    }
    let popts = PortfolioOptions::from_env();
    let mut instances = Vec::with_capacity(files.len());
    for f in files {
        instances.push(load(f)?);
    }
    let results = hypertree::exact_widths_portfolio_batch(&instances, 8, opts, &popts);
    let name_width = files.iter().map(|f| f.len()).max().unwrap_or(0);
    for (file, result) in files.iter().zip(&results) {
        match result {
            Some((w, s, races)) => {
                let mut line = format!(
                    "{file:<name_width$}  hw={} ghw={} fhw={}  winners hw:{} ghw:{} fhw:{}",
                    w.hw,
                    w.ghw,
                    w.fhw,
                    races.hw.winner.unwrap_or("-"),
                    races.ghw.winner.unwrap_or("-"),
                    races.fhw.winner.unwrap_or("-"),
                );
                if stats {
                    let canceled = races.hw.canceled + races.ghw.canceled + races.fhw.canceled;
                    let states = s.hw.states + s.ghw.states + s.fhw.states;
                    line.push_str(&format!("   states={states} losers-canceled={canceled}"));
                }
                println!("{line}");
            }
            None => println!("{file:<name_width$}  n/a (a race ended unresolved)"),
        }
    }
    Ok(())
}

/// `hgtool widths` over several files: one batched [`hypertree::exact_widths_batch`]
/// invocation through the shared runtime. Admission is ordered by the
/// candidate-space estimate, every search multiplexes the one worker pool,
/// and repeated instances resolve from the cross-call result cache.
fn widths_batch(files: &[String], stats: bool, no_prep: bool) -> Result<(), String> {
    let mut opts = EngineOptions::default();
    if no_prep {
        opts = opts.without_prep();
        opts.reuse_prices = false;
        opts.reuse_results = false;
    }
    let mut instances = Vec::with_capacity(files.len());
    for f in files {
        instances.push(load(f)?);
    }
    let results = hypertree::exact_widths_batch(&instances, 8, opts);
    let name_width = files.iter().map(|f| f.len()).max().unwrap_or(0);
    for (file, result) in files.iter().zip(&results) {
        match result {
            Some((w, s)) => {
                let mut line = format!(
                    "{file:<name_width$}  hw={} ghw={} fhw={}",
                    w.hw, w.ghw, w.fhw
                );
                if stats {
                    let hits =
                        s.hw.result_cache_hits + s.ghw.result_cache_hits + s.fhw.result_cache_hits;
                    let dedup = s.hw.inflight_dedup + s.ghw.inflight_dedup + s.fhw.inflight_dedup;
                    let warm = s.hw.pool_reuse.max(s.ghw.pool_reuse).max(s.fhw.pool_reuse);
                    let states = s.hw.states + s.ghw.states + s.fhw.states;
                    line.push_str(&format!(
                        "   states={states} result-cache-hits={hits} \
                         inflight-dedup={dedup} pool-warm={warm}"
                    ));
                }
                println!("{line}");
            }
            None => println!("{file:<name_width$}  n/a (out of exact range)"),
        }
    }
    Ok(())
}

/// `hgtool widths --heuristic-only`: the candgen upper bounds (min-degree
/// / min-fill elimination orderings + local search, per reduced block)
/// with their witnesses, skipping the exact searches entirely — usable at
/// any instance size.
fn heuristic_widths(h: &Hypergraph, no_prep: bool) -> Result<(), String> {
    let mut opts = EngineOptions::default();
    if no_prep {
        opts = opts.without_prep();
        opts.reuse_prices = false;
    }
    let (ghw, ghw_d) = ghd::ghw_upper_bound_with_stats(h, opts)
        .0
        .ok_or("invalid instance (empty or isolated vertices)")?;
    let (fhw, fhw_d) = fhd::fhw_upper_bound_with_stats(h, opts)
        .0
        .expect("same validity as ghw");
    let ghw_ok = validate::validate_ghd(h, &ghw_d).is_ok();
    let fhw_ok = validate::validate_fhd(h, &fhw_d).is_ok();
    println!(
        "ghw <= {ghw}   (witness: {} nodes, validated: {ghw_ok})",
        ghw_d.len()
    );
    println!(
        "fhw <= {fhw}   (witness: {} nodes, validated: {fhw_ok})",
        fhw_d.len()
    );
    println!("(heuristic min-degree/min-fill elimination bounds; no exact search ran)");
    Ok(())
}

/// `hgtool prep`: print the reduction trace the width engines run behind
/// the scenes (minimizer profile), plus the conservative decision profile
/// summary.
fn prep_trace(h: &Hypergraph) -> Result<(), String> {
    if h.has_isolated_vertices() {
        return Err("hypergraph has isolated vertices; the solvers reject it".into());
    }
    println!(
        "original: {} vertices, {} edges",
        h.num_vertices(),
        h.num_edges()
    );
    let prepared = prep::prepare(h, prep::Profile::Minimizer);
    println!();
    println!("minimizer profile (ghw/fhw: GYO closure + twin collapse + blocks):");
    if prepared.steps().is_empty() {
        println!("  (irreducible)");
    }
    for (i, step) in prepared.steps().iter().enumerate() {
        let line = match step {
            prep::Step::EdgeSubsumed {
                removed,
                kept,
                equal,
            } => format!(
                "edge {} {} edge {}",
                h.edge_name(*removed),
                if *equal { "duplicates" } else { "subsumed by" },
                h.edge_name(*kept)
            ),
            prep::Step::TwinVertex { removed, twin } => format!(
                "vertex {} twin of {}",
                h.vertex_name(*removed),
                h.vertex_name(*twin)
            ),
            prep::Step::DegreeOneVertex { vertex, edge, .. } => format!(
                "vertex {} degree-one in edge {}",
                h.vertex_name(*vertex),
                h.edge_name(*edge)
            ),
        };
        println!("  {:>3}. {line}", i + 1);
    }
    println!(
        "  removed: {} vertices, {} edges",
        prepared.stats.vertices_removed, prepared.stats.edges_removed
    );
    println!("  blocks: {}", prepared.blocks.len());
    for (i, block) in prepared.blocks.iter().enumerate() {
        println!(
            "    block {}: {} vertices, {} edges, fingerprint {}",
            i,
            block.hypergraph.num_vertices(),
            block.hypergraph.num_edges(),
            block.fingerprint,
        );
    }
    let decision = prep::prepare(h, prep::Profile::Decision);
    println!();
    println!(
        "decision profile (hw/frac-decomp/strict-HD: duplicates + twins): \
         {} vertices, {} edges removed",
        decision.stats.vertices_removed, decision.stats.edges_removed
    );
    Ok(())
}

fn check(method: &str, k: &str, h: &Hypergraph) -> Result<(), String> {
    let k_rat: Rational = k.parse().map_err(|e| format!("bad width {k}: {e}"))?;
    let witness = match method {
        "hd" => {
            let k: usize = k.parse().map_err(|_| "hd needs an integer width")?;
            hd::check_hd(h, k)
        }
        "ghd" => {
            let k: usize = k.parse().map_err(|_| "ghd needs an integer width")?;
            match ghd::check_ghd_bip(h, k, SubedgeLimits::default()) {
                ghd::GhdAnswer::Yes { decomposition, .. } => Some(*decomposition),
                ghd::GhdAnswer::No => None,
                ghd::GhdAnswer::Unknown => {
                    return Err("subedge enumeration truncated; result unknown".into())
                }
            }
        }
        "fhd" => fhd::check_fhd_bdp(h, &k_rat, HdkParams::default())
            .decomposition()
            .cloned(),
        other => return Err(format!("unknown method {other}; use hd | ghd | fhd")),
    };
    match witness {
        Some(d) => {
            let ok = match method {
                "hd" => validate::validate_hd(h, &d).is_ok(),
                "ghd" => validate::validate_ghd(h, &d).is_ok(),
                _ => validate::validate_fhd(h, &d).is_ok(),
            };
            println!(
                "YES: width {} ({} nodes, validated: {ok})",
                d.width(),
                d.len()
            );
            print!("{}", d.render(h));
            Ok(())
        }
        None => {
            println!("NO: no {method} of width <= {k}");
            Ok(())
        }
    }
}

fn reduce(n: &str, m: &str, seed: &str) -> Result<(), String> {
    let n: usize = n.parse().map_err(|_| "bad n")?;
    let m: usize = m.parse().map_err(|_| "bad m")?;
    let seed: u64 = seed.parse().map_err(|_| "bad seed")?;
    let (cnf, plant) = Cnf::random_planted(n.max(3), m, seed);
    println!("φ = {cnf}");
    let r = reduction::build(&cnf);
    println!(
        "H: |V| = {}, |E| = {}",
        r.hypergraph.num_vertices(),
        r.hypergraph.num_edges()
    );
    let d = reduction::witness_ghd(&r, &plant);
    let ok = validate::validate_ghd(&r.hypergraph, &d).is_ok();
    println!(
        "Table 1 witness: {} nodes, width {}, validated: {ok}",
        d.len(),
        d.width()
    );
    Ok(())
}
