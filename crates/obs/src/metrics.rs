//! Process-lifetime metrics: counters, gauges and histograms behind a
//! lazy registry, snapshotted in Prometheus text exposition format.
//!
//! Metrics are always on (unlike tracing): every instrument is a bare
//! atomic the hot paths touch directly, and call sites cache their
//! handle in a `OnceLock` so registration happens once per process.
//! Nothing ever reads a metric on a search path — the registry is
//! strictly write-only until [`render_prometheus`] snapshots it.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A monotonically increasing counter (`*_total` in the exposition).
#[derive(Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can go up and down (occupancies, in-use
/// permit counts).
#[derive(Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Sets the gauge to `v`.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative via [`Gauge::sub`]).
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n`.
    pub fn sub(&self, n: i64) {
        self.0.fetch_sub(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Histogram bucket upper bounds, in seconds (solve latencies span
/// microseconds to minutes).
const LATENCY_BUCKETS_S: [f64; 11] = [
    0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 30.0,
];

/// A fixed-bucket latency histogram (observations in microseconds,
/// exposed in seconds).
pub struct Histogram {
    /// Per-bucket (non-cumulative) observation counts; the last slot
    /// is the `+Inf` overflow bucket.
    buckets: Vec<AtomicU64>,
    sum_us: AtomicU64,
    count: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: (0..=LATENCY_BUCKETS_S.len())
                .map(|_| AtomicU64::new(0))
                .collect(),
            sum_us: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Records one observation of `us` microseconds.
    pub fn observe_us(&self, us: u64) {
        let seconds = us as f64 / 1e6;
        let slot = LATENCY_BUCKETS_S
            .iter()
            .position(|&le| seconds <= le)
            .unwrap_or(LATENCY_BUCKETS_S.len());
        self.buckets[slot].fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }
}

enum Handle {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Handle {
    fn kind(&self) -> &'static str {
        match self {
            Handle::Counter(_) => "counter",
            Handle::Gauge(_) => "gauge",
            Handle::Histogram(_) => "histogram",
        }
    }
}

struct Entry {
    name: &'static str,
    help: &'static str,
    labels: Vec<(&'static str, String)>,
    handle: Handle,
}

fn registry() -> &'static Mutex<Vec<Entry>> {
    static REGISTRY: OnceLock<Mutex<Vec<Entry>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

fn register(
    name: &'static str,
    help: &'static str,
    labels: &[(&'static str, &str)],
    make: impl FnOnce() -> Handle,
) -> Handle {
    let labels: Vec<(&'static str, String)> =
        labels.iter().map(|(k, v)| (*k, v.to_string())).collect();
    let mut reg = registry().lock().expect("metrics registry poisoned");
    if let Some(existing) = reg.iter().find(|e| e.name == name && e.labels == labels) {
        return match &existing.handle {
            Handle::Counter(c) => Handle::Counter(Arc::clone(c)),
            Handle::Gauge(g) => Handle::Gauge(Arc::clone(g)),
            Handle::Histogram(h) => Handle::Histogram(Arc::clone(h)),
        };
    }
    let handle = make();
    let clone = match &handle {
        Handle::Counter(c) => Handle::Counter(Arc::clone(c)),
        Handle::Gauge(g) => Handle::Gauge(Arc::clone(g)),
        Handle::Histogram(h) => Handle::Histogram(Arc::clone(h)),
    };
    reg.push(Entry {
        name,
        help,
        labels,
        handle,
    });
    clone
}

/// Registers (or fetches) the unlabeled counter `name`.
pub fn counter(name: &'static str, help: &'static str) -> Arc<Counter> {
    match register(name, help, &[], || Handle::Counter(Arc::default())) {
        Handle::Counter(c) => c,
        _ => unreachable!("metric {name} registered with another type"),
    }
}

/// Registers (or fetches) the counter `name` with the given labels.
pub fn counter_with(
    name: &'static str,
    help: &'static str,
    labels: &[(&'static str, &str)],
) -> Arc<Counter> {
    match register(name, help, labels, || Handle::Counter(Arc::default())) {
        Handle::Counter(c) => c,
        _ => unreachable!("metric {name} registered with another type"),
    }
}

/// Registers (or fetches) the unlabeled gauge `name`.
pub fn gauge(name: &'static str, help: &'static str) -> Arc<Gauge> {
    match register(name, help, &[], || Handle::Gauge(Arc::default())) {
        Handle::Gauge(g) => g,
        _ => unreachable!("metric {name} registered with another type"),
    }
}

/// Registers (or fetches) the histogram `name` with the given labels.
pub fn histogram_with(
    name: &'static str,
    help: &'static str,
    labels: &[(&'static str, &str)],
) -> Arc<Histogram> {
    match register(name, help, labels, || Handle::Histogram(Arc::default())) {
        Handle::Histogram(h) => h,
        _ => unreachable!("metric {name} registered with another type"),
    }
}

fn label_set(labels: &[(&'static str, String)], extra: Option<(&str, String)>) -> String {
    let mut parts: Vec<String> = labels.iter().map(|(k, v)| format!("{k}=\"{v}\"")).collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{v}\""));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

/// Formats a float the exposition-format way (no exponent for the
/// magnitudes we emit; integral values keep a trailing `.0`-free form).
fn fmt_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Snapshots every registered metric in Prometheus text exposition
/// format (the `hgtool metrics` output and the future `hgtool serve`
/// endpoint body). Includes the tracing subsystem's own
/// `hgtool_spans_dropped_total`.
pub fn render_prometheus() -> String {
    let mut out = String::new();
    let reg = registry().lock().expect("metrics registry poisoned");
    // Group consecutive same-name entries under one HELP/TYPE header,
    // preserving registration order (stable within a run).
    let mut seen: Vec<&'static str> = Vec::new();
    for e in reg.iter() {
        if seen.contains(&e.name) {
            continue;
        }
        seen.push(e.name);
        out.push_str(&format!("# HELP {} {}\n", e.name, e.help));
        out.push_str(&format!("# TYPE {} {}\n", e.name, e.handle.kind()));
        for m in reg.iter().filter(|m| m.name == e.name) {
            match &m.handle {
                Handle::Counter(c) => {
                    out.push_str(&format!(
                        "{}{} {}\n",
                        m.name,
                        label_set(&m.labels, None),
                        c.get()
                    ));
                }
                Handle::Gauge(g) => {
                    out.push_str(&format!(
                        "{}{} {}\n",
                        m.name,
                        label_set(&m.labels, None),
                        g.get()
                    ));
                }
                Handle::Histogram(h) => {
                    let mut cumulative = 0u64;
                    for (i, le) in LATENCY_BUCKETS_S.iter().enumerate() {
                        cumulative += h.buckets[i].load(Ordering::Relaxed);
                        out.push_str(&format!(
                            "{}_bucket{} {}\n",
                            m.name,
                            label_set(&m.labels, Some(("le", fmt_f64(*le)))),
                            cumulative
                        ));
                    }
                    cumulative += h.buckets[LATENCY_BUCKETS_S.len()].load(Ordering::Relaxed);
                    out.push_str(&format!(
                        "{}_bucket{} {}\n",
                        m.name,
                        label_set(&m.labels, Some(("le", "+Inf".to_string()))),
                        cumulative
                    ));
                    out.push_str(&format!(
                        "{}_sum{} {}\n",
                        m.name,
                        label_set(&m.labels, None),
                        h.sum_us.load(Ordering::Relaxed) as f64 / 1e6
                    ));
                    out.push_str(&format!(
                        "{}_count{} {}\n",
                        m.name,
                        label_set(&m.labels, None),
                        cumulative
                    ));
                }
            }
        }
    }
    // The tracing subsystem's one metric, emitted directly so the
    // collector never has to depend on the registry.
    out.push_str("# HELP hgtool_spans_dropped_total Trace spans dropped at the collector cap\n");
    out.push_str("# TYPE hgtool_spans_dropped_total counter\n");
    out.push_str(&format!(
        "hgtool_spans_dropped_total {}\n",
        crate::trace::dropped()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_are_shared_per_name_and_labels() {
        let a = counter("test_obs_shared_total", "test counter");
        let b = counter("test_obs_shared_total", "test counter");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3, "same name resolves to the same atomic");
        let l1 = counter_with("test_obs_lbl_total", "labeled", &[("k", "a")]);
        let l2 = counter_with("test_obs_lbl_total", "labeled", &[("k", "b")]);
        l1.inc();
        assert_eq!((l1.get(), l2.get()), (1, 0), "label sets are distinct");
    }

    #[test]
    fn prometheus_rendering_is_well_formed() {
        counter("test_obs_render_total", "a counter").add(7);
        gauge("test_obs_render_bytes", "a gauge").set(42);
        let h = histogram_with(
            "test_obs_render_seconds",
            "a histogram",
            &[("strategy", "ghw")],
        );
        h.observe_us(250); // 0.00025s -> le=0.0005 bucket
        h.observe_us(2_000_000); // 2s -> le=5 bucket
        let text = render_prometheus();
        assert!(text.contains("# TYPE test_obs_render_total counter"));
        assert!(text.contains("test_obs_render_total 7"));
        assert!(text.contains("# TYPE test_obs_render_bytes gauge"));
        assert!(text.contains("test_obs_render_bytes 42"));
        assert!(text.contains("test_obs_render_seconds_bucket{strategy=\"ghw\",le=\"0.0005\"} 1"));
        assert!(text.contains("test_obs_render_seconds_bucket{strategy=\"ghw\",le=\"+Inf\"} 2"));
        assert!(text.contains("test_obs_render_seconds_count{strategy=\"ghw\"} 2"));
        assert!(text.contains("test_obs_render_seconds_sum{strategy=\"ghw\"} 2.00025"));
        assert!(text.contains("hgtool_spans_dropped_total"));
        // Exposition format: every non-comment line is `name{labels} value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (name, value) = line.rsplit_once(' ').expect("name value");
            assert!(!name.is_empty());
            assert!(
                value == "+Inf" || value.parse::<f64>().is_ok(),
                "unparseable value in {line:?}"
            );
        }
    }
}
