//! Process-lifetime metrics: counters, gauges and histograms behind a
//! lazy registry, snapshotted in Prometheus text exposition format.
//!
//! Metrics are always on (unlike tracing): every instrument is a bare
//! atomic the hot paths touch directly, and call sites cache their
//! handle in a `OnceLock` so registration happens once per process.
//! Nothing ever reads a metric on a search path — the registry is
//! strictly write-only until [`render_prometheus`] snapshots it.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A monotonically increasing counter (`*_total` in the exposition).
#[derive(Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can go up and down (occupancies, in-use
/// permit counts).
#[derive(Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Sets the gauge to `v`.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative via [`Gauge::sub`]).
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n`.
    pub fn sub(&self, n: i64) {
        self.0.fetch_sub(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Default histogram bucket upper bounds, in seconds. Tuned to the
/// µs-scale solves the toy and vendored corpora produce (the paper's
/// hard/easy frontier means real latencies still span microseconds to
/// minutes, so the top end keeps multi-second buckets). Call sites
/// that know their latency profile pass their own bounds through
/// [`histogram_with_buckets`].
pub const DEFAULT_LATENCY_BUCKETS_S: [f64; 17] = [
    0.000025, 0.00005, 0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25,
    0.5, 1.0, 5.0, 30.0,
];

/// A fixed-bucket latency histogram (observations in microseconds,
/// exposed in seconds). Bucket bounds are chosen at registration and
/// immutable afterwards.
pub struct Histogram {
    /// Bucket upper bounds in seconds, strictly increasing.
    bounds: Vec<f64>,
    /// Per-bucket (non-cumulative) observation counts; the last slot
    /// is the `+Inf` overflow bucket.
    buckets: Vec<AtomicU64>,
    sum_us: AtomicU64,
    count: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::with_bounds(&DEFAULT_LATENCY_BUCKETS_S)
    }
}

impl Histogram {
    /// Builds a histogram with the given bucket upper bounds (seconds,
    /// strictly increasing). A `+Inf` overflow bucket is implicit.
    pub fn with_bounds(bounds: &[f64]) -> Self {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Histogram {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            sum_us: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    /// Bucket upper bounds in seconds (without the implicit `+Inf`).
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Records one observation of `us` microseconds.
    pub fn observe_us(&self, us: u64) {
        let seconds = us as f64 / 1e6;
        let slot = self
            .bounds
            .iter()
            .position(|&le| seconds <= le)
            .unwrap_or(self.bounds.len());
        self.buckets[slot].fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations, in microseconds.
    pub fn sum_us(&self) -> u64 {
        self.sum_us.load(Ordering::Relaxed)
    }

    /// A consistent-enough point-in-time copy of the bucket state
    /// (individual loads are relaxed; under concurrent writers the
    /// snapshot may straddle an observation, which quantile readers
    /// tolerate).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut cumulative = Vec::with_capacity(self.buckets.len());
        let mut running = 0u64;
        for b in &self.buckets {
            running += b.load(Ordering::Relaxed);
            cumulative.push(running);
        }
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            cumulative,
            sum_us: self.sum_us.load(Ordering::Relaxed),
            count: self.count.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time histogram state: cumulative bucket counts (the last
/// entry is the `+Inf` bucket, equal to the total count).
pub struct HistogramSnapshot {
    /// Bucket upper bounds in seconds (without the implicit `+Inf`).
    pub bounds: Vec<f64>,
    /// Cumulative counts per bucket; `cumulative.len() == bounds.len() + 1`.
    pub cumulative: Vec<u64>,
    /// Sum of observations in microseconds.
    pub sum_us: u64,
    /// Total observation count.
    pub count: u64,
}

impl HistogramSnapshot {
    /// Estimates the `q`-quantile (0 < q <= 1) in microseconds by
    /// linear interpolation inside the bucket that crosses the rank —
    /// the same estimator Prometheus' `histogram_quantile` uses.
    /// Observations in the `+Inf` bucket clamp to the highest finite
    /// bound. Returns `None` on an empty histogram.
    pub fn quantile_us(&self, q: f64) -> Option<u64> {
        let total = *self.cumulative.last()?;
        if total == 0 || !(0.0..=1.0).contains(&q) {
            return None;
        }
        let rank = q * total as f64;
        let mut prev_cum = 0u64;
        for (i, &cum) in self.cumulative.iter().enumerate() {
            if (cum as f64) >= rank && cum > prev_cum {
                let hi = if i < self.bounds.len() {
                    self.bounds[i]
                } else {
                    // +Inf bucket: clamp to the highest finite bound.
                    return Some((self.bounds.last().copied().unwrap_or(0.0) * 1e6) as u64);
                };
                let lo = if i == 0 { 0.0 } else { self.bounds[i - 1] };
                let frac = (rank - prev_cum as f64) / (cum - prev_cum) as f64;
                return Some(((lo + (hi - lo) * frac) * 1e6) as u64);
            }
            prev_cum = cum;
        }
        None
    }
}

enum Handle {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Handle {
    fn kind(&self) -> &'static str {
        match self {
            Handle::Counter(_) => "counter",
            Handle::Gauge(_) => "gauge",
            Handle::Histogram(_) => "histogram",
        }
    }
}

struct Entry {
    name: &'static str,
    help: &'static str,
    labels: Vec<(&'static str, String)>,
    handle: Handle,
}

fn registry() -> &'static Mutex<Vec<Entry>> {
    static REGISTRY: OnceLock<Mutex<Vec<Entry>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

fn register(
    name: &'static str,
    help: &'static str,
    labels: &[(&'static str, &str)],
    make: impl FnOnce() -> Handle,
) -> Handle {
    let labels: Vec<(&'static str, String)> =
        labels.iter().map(|(k, v)| (*k, v.to_string())).collect();
    let mut reg = registry().lock().expect("metrics registry poisoned");
    if let Some(existing) = reg.iter().find(|e| e.name == name && e.labels == labels) {
        return match &existing.handle {
            Handle::Counter(c) => Handle::Counter(Arc::clone(c)),
            Handle::Gauge(g) => Handle::Gauge(Arc::clone(g)),
            Handle::Histogram(h) => Handle::Histogram(Arc::clone(h)),
        };
    }
    let handle = make();
    let clone = match &handle {
        Handle::Counter(c) => Handle::Counter(Arc::clone(c)),
        Handle::Gauge(g) => Handle::Gauge(Arc::clone(g)),
        Handle::Histogram(h) => Handle::Histogram(Arc::clone(h)),
    };
    reg.push(Entry {
        name,
        help,
        labels,
        handle,
    });
    clone
}

/// Registers (or fetches) the unlabeled counter `name`.
pub fn counter(name: &'static str, help: &'static str) -> Arc<Counter> {
    match register(name, help, &[], || Handle::Counter(Arc::default())) {
        Handle::Counter(c) => c,
        _ => unreachable!("metric {name} registered with another type"),
    }
}

/// Registers (or fetches) the counter `name` with the given labels.
pub fn counter_with(
    name: &'static str,
    help: &'static str,
    labels: &[(&'static str, &str)],
) -> Arc<Counter> {
    match register(name, help, labels, || Handle::Counter(Arc::default())) {
        Handle::Counter(c) => c,
        _ => unreachable!("metric {name} registered with another type"),
    }
}

/// Registers (or fetches) the unlabeled gauge `name`.
pub fn gauge(name: &'static str, help: &'static str) -> Arc<Gauge> {
    match register(name, help, &[], || Handle::Gauge(Arc::default())) {
        Handle::Gauge(g) => g,
        _ => unreachable!("metric {name} registered with another type"),
    }
}

/// Registers (or fetches) the histogram `name` with the given labels
/// and the default µs-scale bucket bounds
/// ([`DEFAULT_LATENCY_BUCKETS_S`]).
pub fn histogram_with(
    name: &'static str,
    help: &'static str,
    labels: &[(&'static str, &str)],
) -> Arc<Histogram> {
    histogram_with_buckets(name, help, labels, &DEFAULT_LATENCY_BUCKETS_S)
}

/// Registers (or fetches) the histogram `name` with explicit bucket
/// upper bounds in seconds. First registration of a (name, labels)
/// pair wins: later calls return the existing handle with its
/// original bounds.
pub fn histogram_with_buckets(
    name: &'static str,
    help: &'static str,
    labels: &[(&'static str, &str)],
    bounds: &[f64],
) -> Arc<Histogram> {
    match register(name, help, labels, || {
        Handle::Histogram(Arc::new(Histogram::with_bounds(bounds)))
    }) {
        Handle::Histogram(h) => h,
        _ => unreachable!("metric {name} registered with another type"),
    }
}

fn label_set(labels: &[(&'static str, String)], extra: Option<(&str, String)>) -> String {
    let mut parts: Vec<String> = labels.iter().map(|(k, v)| format!("{k}=\"{v}\"")).collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{v}\""));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

/// Formats a float the exposition-format way (no exponent for the
/// magnitudes we emit; integral values keep a trailing `.0`-free form).
fn fmt_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Snapshots every registered metric in Prometheus text exposition
/// format (the `hgtool metrics` output and the `hgtool serve`
/// `GET /metrics` endpoint body). Includes the tracing subsystem's own
/// `hgtool_spans_dropped_total`.
pub fn render_prometheus() -> String {
    let mut out = String::new();
    let reg = registry().lock().expect("metrics registry poisoned");
    // Group consecutive same-name entries under one HELP/TYPE header,
    // preserving registration order (stable within a run).
    let mut seen: Vec<&'static str> = Vec::new();
    for e in reg.iter() {
        if seen.contains(&e.name) {
            continue;
        }
        seen.push(e.name);
        out.push_str(&format!("# HELP {} {}\n", e.name, e.help));
        out.push_str(&format!("# TYPE {} {}\n", e.name, e.handle.kind()));
        for m in reg.iter().filter(|m| m.name == e.name) {
            match &m.handle {
                Handle::Counter(c) => {
                    out.push_str(&format!(
                        "{}{} {}\n",
                        m.name,
                        label_set(&m.labels, None),
                        c.get()
                    ));
                }
                Handle::Gauge(g) => {
                    out.push_str(&format!(
                        "{}{} {}\n",
                        m.name,
                        label_set(&m.labels, None),
                        g.get()
                    ));
                }
                Handle::Histogram(h) => {
                    let snap = h.snapshot();
                    for (i, le) in snap.bounds.iter().enumerate() {
                        out.push_str(&format!(
                            "{}_bucket{} {}\n",
                            m.name,
                            label_set(&m.labels, Some(("le", fmt_f64(*le)))),
                            snap.cumulative[i]
                        ));
                    }
                    out.push_str(&format!(
                        "{}_bucket{} {}\n",
                        m.name,
                        label_set(&m.labels, Some(("le", "+Inf".to_string()))),
                        snap.cumulative.last().copied().unwrap_or(0)
                    ));
                    out.push_str(&format!(
                        "{}_sum{} {}\n",
                        m.name,
                        label_set(&m.labels, None),
                        snap.sum_us as f64 / 1e6
                    ));
                    out.push_str(&format!(
                        "{}_count{} {}\n",
                        m.name,
                        label_set(&m.labels, None),
                        snap.count
                    ));
                }
            }
        }
    }
    // The tracing subsystem's one metric, emitted directly so the
    // collector never has to depend on the registry.
    out.push_str("# HELP hgtool_spans_dropped_total Trace spans dropped at the collector cap\n");
    out.push_str("# TYPE hgtool_spans_dropped_total counter\n");
    out.push_str(&format!(
        "hgtool_spans_dropped_total {}\n",
        crate::trace::dropped()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_are_shared_per_name_and_labels() {
        let a = counter("test_obs_shared_total", "test counter");
        let b = counter("test_obs_shared_total", "test counter");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3, "same name resolves to the same atomic");
        let l1 = counter_with("test_obs_lbl_total", "labeled", &[("k", "a")]);
        let l2 = counter_with("test_obs_lbl_total", "labeled", &[("k", "b")]);
        l1.inc();
        assert_eq!((l1.get(), l2.get()), (1, 0), "label sets are distinct");
    }

    #[test]
    fn prometheus_rendering_is_well_formed() {
        counter("test_obs_render_total", "a counter").add(7);
        gauge("test_obs_render_bytes", "a gauge").set(42);
        let h = histogram_with(
            "test_obs_render_seconds",
            "a histogram",
            &[("strategy", "ghw")],
        );
        h.observe_us(250); // 0.00025s -> le=0.00025 bucket
        h.observe_us(2_000_000); // 2s -> le=5 bucket
        let text = render_prometheus();
        assert!(text.contains("# TYPE test_obs_render_total counter"));
        assert!(text.contains("test_obs_render_total 7"));
        assert!(text.contains("# TYPE test_obs_render_bytes gauge"));
        assert!(text.contains("test_obs_render_bytes 42"));
        assert!(text.contains("test_obs_render_seconds_bucket{strategy=\"ghw\",le=\"0.00025\"} 1"));
        assert!(text.contains("test_obs_render_seconds_bucket{strategy=\"ghw\",le=\"+Inf\"} 2"));
        assert!(text.contains("test_obs_render_seconds_count{strategy=\"ghw\"} 2"));
        assert!(text.contains("test_obs_render_seconds_sum{strategy=\"ghw\"} 2.00025"));
        assert!(text.contains("hgtool_spans_dropped_total"));
        // Exposition format: every non-comment line is `name{labels} value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (name, value) = line.rsplit_once(' ').expect("name value");
            assert!(!name.is_empty());
            assert!(
                value == "+Inf" || value.parse::<f64>().is_ok(),
                "unparseable value in {line:?}"
            );
        }
    }

    #[test]
    fn custom_buckets_render_their_own_bounds() {
        let h = histogram_with_buckets(
            "test_obs_custom_seconds",
            "custom buckets",
            &[],
            &[0.001, 1.0],
        );
        h.observe_us(500);
        h.observe_us(10_000_000);
        let text = render_prometheus();
        assert!(text.contains("test_obs_custom_seconds_bucket{le=\"0.001\"} 1"));
        assert!(text.contains("test_obs_custom_seconds_bucket{le=\"1\"} 1"));
        assert!(text.contains("test_obs_custom_seconds_bucket{le=\"+Inf\"} 2"));
        // Re-registration keeps the original bounds (first wins).
        let again = histogram_with("test_obs_custom_seconds", "custom buckets", &[]);
        assert_eq!(again.bounds(), &[0.001, 1.0]);
        assert_eq!(again.count(), 2);
    }

    #[test]
    fn snapshot_quantiles_interpolate_within_buckets() {
        let h = Histogram::with_bounds(&[0.0001, 0.001, 0.01]);
        for _ in 0..50 {
            h.observe_us(50); // first bucket
        }
        for _ in 0..50 {
            h.observe_us(5_000); // third bucket
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 100);
        // p50 lands exactly at the top of the first bucket.
        assert_eq!(snap.quantile_us(0.5), Some(100));
        // p99 interpolates inside the (0.001, 0.01] bucket.
        let p99 = snap.quantile_us(0.99).unwrap();
        assert!((1_000..=10_000).contains(&p99), "p99 = {p99}");
        // +Inf-only mass clamps to the top finite bound.
        let inf = Histogram::with_bounds(&[0.0001]);
        inf.observe_us(1_000_000);
        assert_eq!(inf.snapshot().quantile_us(0.5), Some(100));
        // Empty histogram has no quantiles.
        assert_eq!(
            Histogram::with_bounds(&[0.1]).snapshot().quantile_us(0.5),
            None
        );
    }
}
