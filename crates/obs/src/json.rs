//! A minimal JSON parser for validating the trace JSONL stream and the
//! bench baseline (the workspace is offline and carries no serde; the
//! emitters hand-write JSON, so the validators hand-read it).
//!
//! Supports the full JSON grammar except `\uXXXX` surrogate pairs
//! (decoded escapes outside the BMP are rejected), which the emitters
//! in this workspace never produce.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (kept as f64; the traces emit only u64s well
    /// inside f64's exact-integer range).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (sorted keys; duplicate keys keep the last value).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// The value at `key`, when this is an object that has it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The numeric value, when this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// A parse error: byte offset and message.
#[derive(Debug, PartialEq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json parse error at byte {}: {}", self.at, self.msg)
    }
}

/// Parses `text` as a single JSON value (trailing whitespace allowed,
/// anything else after the value is an error).
pub fn parse(text: &str) -> Result<Json, ParseError> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(err(pos, "trailing content"));
    }
    Ok(value)
}

fn err(at: usize, msg: &str) -> ParseError {
    ParseError {
        at,
        msg: msg.to_string(),
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), ParseError> {
    if *pos < bytes.len() && bytes[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(err(*pos, &format!("expected '{}'", c as char)))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(bytes, pos),
        _ => Err(err(*pos, "expected a value")),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, ParseError> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(err(*pos, &format!("expected '{lit}'")))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or_else(|| err(start, "bad number"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, ParseError> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(err(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| err(*pos, "truncated \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| err(*pos, "bad \\u escape"))?;
                        let c = char::from_u32(code)
                            .ok_or_else(|| err(*pos, "surrogate \\u escape unsupported"))?;
                        out.push(c);
                        *pos += 4;
                    }
                    _ => return Err(err(*pos, "bad escape")),
                }
                *pos += 1;
            }
            Some(&c) if c < 0x20 => return Err(err(*pos, "raw control character in string")),
            Some(_) => {
                // Copy one UTF-8 scalar (the input is a &str, so the
                // encoding is already valid).
                let s = &bytes[*pos..];
                let ch_len = std::str::from_utf8(s)
                    .map_err(|_| err(*pos, "invalid utf-8"))?
                    .chars()
                    .next()
                    .map(|c| c.len_utf8())
                    .unwrap_or(1);
                out.push_str(std::str::from_utf8(&s[..ch_len]).expect("validated"));
                *pos += ch_len;
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    expect(bytes, pos, b'[')?;
    let mut out = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(out));
    }
    loop {
        out.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(out));
            }
            _ => return Err(err(*pos, "expected ',' or ']'")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    expect(bytes, pos, b'{')?;
    let mut out = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(out));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        out.insert(key, value);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(out));
            }
            _ => return Err(err(*pos, "expected ',' or '}'")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_grammar() {
        let v = parse(r#"{"a": [1, -2.5, true, null, "x\n\"y\""], "b": {"c": 1e3}}"#)
            .expect("valid json");
        assert_eq!(
            v.get("b").and_then(|b| b.get("c")).and_then(Json::as_num),
            Some(1000.0)
        );
        let Some(Json::Arr(items)) = v.get("a") else {
            panic!("a is an array");
        };
        assert_eq!(items.len(), 5);
        assert_eq!(items[1], Json::Num(-2.5));
        assert_eq!(items[4], Json::Str("x\n\"y\"".into()));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\" 1}",
            "1 2",
            "\"unterminated",
            "{\"a\":}",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn roundtrips_the_trace_escapes() {
        let v = parse(r#"{"s": "tab\tnl\nuA"}"#).expect("valid");
        assert_eq!(v.get("s").and_then(Json::as_str), Some("tab\tnl\nuA"));
    }
}
