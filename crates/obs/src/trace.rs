//! Span tracing: scoped phases with monotonic timestamps, buffered
//! per thread and merged into a process-wide collector at scope exit.
//!
//! # Model
//!
//! A span is opened by the [`crate::span!`] macro (or
//! [`SpanGuard::enter`]) and closed when its guard drops — including
//! during unwinds, so cancelled portfolio losers still close their
//! scopes. Each thread keeps a stack of open spans (giving every span
//! its parent and depth for free) plus a buffer of completed records;
//! when the stack empties the buffer is flushed into the global
//! collector under one short lock. Parent links therefore never cross
//! threads: work shipped to the shared pool roots its own spans on the
//! worker, and the sinks group by thread.
//!
//! # Gating
//!
//! Collection is off unless the `HGTOOL_TRACE` environment variable is
//! set (to anything but `0`/`off`/`false`) or [`set_enabled`] turned it
//! on. Off means [`enabled`] is a single relaxed atomic load and the
//! `span!` macro evaluates nothing else. Tracing output is never read
//! by search code — see the crate docs for the determinism contract.
//!
//! # Bounded memory
//!
//! The collector holds at most [`MAX_RECORDS`] spans; beyond that new
//! records are dropped and counted ([`dropped`], surfaced as the
//! `hgtool_spans_dropped_total` metric) — a capped trace says so
//! instead of silently truncating.

use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Environment variable that turns span collection on for a process.
pub const ENV: &str = "HGTOOL_TRACE";

/// Environment variable bounding the spans recorded under one root
/// scope (see [`span_cap`]).
pub const SPAN_CAP_ENV: &str = "HGTOOL_TRACE_SPAN_CAP";

/// Collector capacity: beyond this many buffered spans, new records
/// are dropped (and counted) rather than growing without bound.
pub const MAX_RECORDS: usize = 1 << 20;

/// Default per-root-scope span cap (see [`span_cap`]).
pub const DEFAULT_SPAN_CAP: usize = 1 << 16;

fn span_cap_cell() -> &'static AtomicUsize {
    static CAP: OnceLock<AtomicUsize> = OnceLock::new();
    CAP.get_or_init(|| {
        let cap = std::env::var(SPAN_CAP_ENV)
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or(DEFAULT_SPAN_CAP);
        AtomicUsize::new(cap)
    })
}

/// The per-root-scope span cap: at most this many spans are recorded
/// under one root span on a thread (one served request, one CLI
/// solve). Spans past the cap are not recorded — the cut falls on the
/// deepest scopes, so roots and phase structure survive — and each is
/// counted in [`dropped`]. Initialized from `HGTOOL_TRACE_SPAN_CAP`
/// (default [`DEFAULT_SPAN_CAP`]).
pub fn span_cap() -> usize {
    span_cap_cell().load(Ordering::Relaxed)
}

/// Overrides the per-root-scope span cap (`n` must be nonzero).
pub fn set_span_cap(n: usize) {
    span_cap_cell().store(n.max(1), Ordering::Relaxed);
}

fn flag() -> &'static AtomicBool {
    static FLAG: OnceLock<AtomicBool> = OnceLock::new();
    FLAG.get_or_init(|| {
        let on = std::env::var(ENV)
            .map(|v| !matches!(v.as_str(), "" | "0" | "off" | "false"))
            .unwrap_or(false);
        AtomicBool::new(on)
    })
}

/// Whether span collection is currently on. One relaxed atomic load —
/// this is the whole cost of a disabled `span!` site.
#[inline]
pub fn enabled() -> bool {
    flag().load(Ordering::Relaxed)
}

/// Turns span collection on or off (the `--trace*` flags and the test
/// suites use this; the env knob only sets the initial state).
pub fn set_enabled(on: bool) {
    flag().store(on, Ordering::Relaxed);
}

/// The process epoch all span timestamps are measured from.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Monotonic microseconds since the process epoch.
pub fn now_us() -> u64 {
    epoch().elapsed().as_micros() as u64
}

/// A typed span field value (kept small: the engine's fields are
/// sizes, flags and short static names).
#[derive(Clone, Debug, PartialEq)]
pub enum FieldValue {
    /// Unsigned quantity (sizes, counts, widths).
    U64(u64),
    /// Signed quantity.
    I64(i64),
    /// Flag (warm/cold, hit/miss, won/lost).
    Bool(bool),
    /// Short text (measure names, backend ids, outcomes).
    Str(String),
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}
impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}
impl From<u32> for FieldValue {
    fn from(v: u32) -> Self {
        FieldValue::U64(u64::from(v))
    }
}
impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}
impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}
impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}
impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

impl fmt::Display for FieldValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FieldValue::U64(v) => write!(f, "{v}"),
            FieldValue::I64(v) => write!(f, "{v}"),
            FieldValue::Bool(v) => write!(f, "{v}"),
            FieldValue::Str(v) => write!(f, "{v}"),
        }
    }
}

impl FieldValue {
    /// Renders the value as a JSON scalar.
    fn to_json(&self) -> String {
        match self {
            FieldValue::U64(v) => v.to_string(),
            FieldValue::I64(v) => v.to_string(),
            FieldValue::Bool(v) => v.to_string(),
            FieldValue::Str(v) => json_string(v),
        }
    }
}

/// Escapes `s` as a JSON string literal.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// One completed span, as merged into the collector.
#[derive(Clone, Debug)]
pub struct SpanRecord {
    /// Process-unique id (allocation order, not chronological order).
    pub id: u64,
    /// Enclosing span on the same thread, if any.
    pub parent: Option<u64>,
    /// Phase name (the span taxonomy lives in `crates/obs/README.md`).
    pub name: &'static str,
    /// Ordinal of the recording thread (assigned at first span).
    pub thread: u64,
    /// Nesting depth on the recording thread (roots are 0).
    pub depth: usize,
    /// Start, microseconds since the process epoch.
    pub start_us: u64,
    /// Wall-clock duration in microseconds.
    pub dur_us: u64,
    /// Fields given at entry plus any added via [`SpanGuard::record`].
    pub fields: Vec<(&'static str, FieldValue)>,
}

struct OpenSpan {
    id: u64,
    parent: Option<u64>,
    name: &'static str,
    depth: usize,
    start_us: u64,
    fields: Vec<(&'static str, FieldValue)>,
}

struct ThreadBuf {
    thread: u64,
    stack: Vec<OpenSpan>,
    done: Vec<SpanRecord>,
}

thread_local! {
    static BUF: RefCell<ThreadBuf> = {
        static NEXT_THREAD: AtomicU64 = AtomicU64::new(0);
        RefCell::new(ThreadBuf {
            thread: NEXT_THREAD.fetch_add(1, Ordering::Relaxed),
            stack: Vec::new(),
            done: Vec::new(),
        })
    };
}

static NEXT_ID: AtomicU64 = AtomicU64::new(1);
static DROPPED: AtomicU64 = AtomicU64::new(0);

fn collector() -> &'static Mutex<Vec<SpanRecord>> {
    static COLLECTOR: OnceLock<Mutex<Vec<SpanRecord>>> = OnceLock::new();
    COLLECTOR.get_or_init(|| Mutex::new(Vec::new()))
}

/// Spans dropped process-wide because the collector hit
/// [`MAX_RECORDS`].
pub fn dropped() -> u64 {
    DROPPED.load(Ordering::Relaxed)
}

/// An open span scope; dropping it closes the span. Created by the
/// [`crate::span!`] macro.
pub struct SpanGuard {
    id: u64,
}

impl SpanGuard {
    /// Opens a span on the calling thread. Prefer the [`crate::span!`]
    /// macro, which checks [`enabled`] first.
    pub fn enter(name: &'static str, fields: Vec<(&'static str, FieldValue)>) -> SpanGuard {
        let start_us = now_us();
        let id = BUF.with(|b| {
            let mut b = b.borrow_mut();
            // Per-root-scope cap: once this root has produced its
            // budget of spans, stop recording deeper scopes (the
            // shallow structure already merged or still on the stack
            // survives) and count the cut. Guard id 0 is the "not
            // recorded" sentinel — real ids start at 1.
            if b.done.len() + b.stack.len() >= span_cap() {
                DROPPED.fetch_add(1, Ordering::Relaxed);
                return 0;
            }
            let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
            let parent = b.stack.last().map(|s| s.id);
            let depth = b.stack.len();
            b.stack.push(OpenSpan {
                id,
                parent,
                name,
                depth,
                start_us,
                fields,
            });
            id
        });
        SpanGuard { id }
    }

    /// Attaches a field to this span after entry (race outcomes, cache
    /// hit flags — facts only known mid-scope).
    pub fn record(&self, key: &'static str, value: impl Into<FieldValue>) {
        let value = value.into();
        BUF.with(|b| {
            let mut b = b.borrow_mut();
            if let Some(open) = b.stack.iter_mut().rev().find(|s| s.id == self.id) {
                open.fields.push((key, value));
            }
        });
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let end_us = now_us();
        BUF.with(|b| {
            let mut b = b.borrow_mut();
            // Unwinds drop guards in scope order, so the top of the
            // stack is this span; be defensive anyway.
            let Some(pos) = b.stack.iter().rposition(|s| s.id == self.id) else {
                return;
            };
            let open = b.stack.remove(pos);
            let thread = b.thread;
            b.done.push(SpanRecord {
                id: open.id,
                parent: open.parent,
                name: open.name,
                thread,
                depth: open.depth,
                start_us: open.start_us,
                dur_us: end_us.saturating_sub(open.start_us),
                fields: open.fields,
            });
            if b.stack.is_empty() {
                let done = std::mem::take(&mut b.done);
                flush(done);
            }
        });
    }
}

/// Merges a thread's completed records into the global collector,
/// honoring the [`MAX_RECORDS`] cap.
fn flush(records: Vec<SpanRecord>) {
    let mut global = collector().lock().expect("span collector poisoned");
    let room = MAX_RECORDS.saturating_sub(global.len());
    if records.len() > room {
        DROPPED.fetch_add((records.len() - room) as u64, Ordering::Relaxed);
    }
    global.extend(records.into_iter().take(room));
}

/// Takes every merged record out of the collector (sorted by thread,
/// then start time, then id — a deterministic presentation order for
/// whatever wall-clocks were measured).
pub fn drain() -> Vec<SpanRecord> {
    let mut records = {
        let mut global = collector().lock().expect("span collector poisoned");
        std::mem::take(&mut *global)
    };
    records.sort_by_key(|r| (r.thread, r.start_us, r.id));
    records
}

/// Per-span self time: duration minus the duration of direct children
/// (keyed by span id). Self time is what the folded sink and the phase
/// table aggregate — summing it never double-counts nested phases.
pub fn self_times(records: &[SpanRecord]) -> HashMap<u64, u64> {
    let mut child_total: HashMap<u64, u64> = HashMap::new();
    for r in records {
        if let Some(p) = r.parent {
            *child_total.entry(p).or_insert(0) += r.dur_us;
        }
    }
    records
        .iter()
        .map(|r| {
            let children = child_total.get(&r.id).copied().unwrap_or(0);
            (r.id, r.dur_us.saturating_sub(children))
        })
        .collect()
}

/// Aggregates `(count, total self µs)` per span name — the phase
/// breakdown `hgtool widths --stats` prints. Because it sums *self*
/// time, the totals over all names add up to the total root wall-clock
/// (per thread) with no double counting.
pub fn phase_totals(records: &[SpanRecord]) -> BTreeMap<&'static str, (u64, u64)> {
    let selfs = self_times(records);
    let mut out: BTreeMap<&'static str, (u64, u64)> = BTreeMap::new();
    for r in records {
        let e = out.entry(r.name).or_insert((0, 0));
        e.0 += 1;
        e.1 += selfs.get(&r.id).copied().unwrap_or(0);
    }
    out
}

/// Renders records as a human-readable per-thread tree with total and
/// self wall-clock per span (the `--trace` sink).
pub fn render_tree(records: &[SpanRecord]) -> String {
    let selfs = self_times(records);
    let mut children: HashMap<u64, Vec<&SpanRecord>> = HashMap::new();
    let mut roots: Vec<&SpanRecord> = Vec::new();
    for r in records {
        match r.parent {
            Some(p) => children.entry(p).or_default().push(r),
            None => roots.push(r),
        }
    }
    for list in children.values_mut() {
        list.sort_by_key(|r| (r.start_us, r.id));
    }
    roots.sort_by_key(|r| (r.thread, r.start_us, r.id));
    let mut out = String::new();
    out.push_str(&format!(
        "trace: {} spans across {} threads ({} dropped)\n",
        records.len(),
        records
            .iter()
            .map(|r| r.thread)
            .collect::<std::collections::BTreeSet<_>>()
            .len(),
        dropped(),
    ));
    let mut last_thread = None;
    for root in roots {
        if last_thread != Some(root.thread) {
            out.push_str(&format!("thread {}\n", root.thread));
            last_thread = Some(root.thread);
        }
        render_node(root, &children, &selfs, &mut out);
    }
    out
}

fn render_node(
    r: &SpanRecord,
    children: &HashMap<u64, Vec<&SpanRecord>>,
    selfs: &HashMap<u64, u64>,
    out: &mut String,
) {
    let indent = "  ".repeat(r.depth + 1);
    let mut label = r.name.to_string();
    if !r.fields.is_empty() {
        let fields: Vec<String> = r.fields.iter().map(|(k, v)| format!("{k}={v}")).collect();
        label.push_str(&format!(" [{}]", fields.join(" ")));
    }
    let self_us = selfs.get(&r.id).copied().unwrap_or(0);
    out.push_str(&format!(
        "{indent}{label:<48} total {:>8}us  self {:>8}us\n",
        r.dur_us, self_us
    ));
    if let Some(kids) = children.get(&r.id) {
        for kid in kids {
            render_node(kid, children, selfs, out);
        }
    }
}

/// Renders records as the machine JSONL stream (the `--trace-json`
/// sink).
///
/// # Schema (`hgtool-trace/v1`)
///
/// One JSON object per line. The first line is the meta header:
///
/// ```json
/// {"type":"meta","schema":"hgtool-trace/v1","clock":"monotonic-us","spans":N,"dropped":D}
/// ```
///
/// Every following line is a span:
///
/// ```json
/// {"type":"span","id":7,"parent":3,"name":"price","thread":0,"depth":2,
///  "start_us":123,"dur_us":45,"fields":{"warm":true}}
/// ```
///
/// `id` is process-unique; `parent` is `null` for roots (parents never
/// cross threads); `start_us` is monotonic microseconds since the
/// process epoch; `fields` holds the span's typed key/values (numbers,
/// booleans or strings).
pub fn render_jsonl(records: &[SpanRecord]) -> String {
    let mut out = format!(
        "{{\"type\":\"meta\",\"schema\":\"hgtool-trace/v1\",\"clock\":\"monotonic-us\",\
         \"spans\":{},\"dropped\":{}}}\n",
        records.len(),
        dropped()
    );
    out.push_str(&render_span_lines(records));
    out
}

/// The meta header for a *streaming* JSONL sink (`hgtool serve
/// --trace-json`), where the final span count is unknown at open time:
/// same schema tag, `"streaming":true` instead of a `spans` count.
pub fn render_jsonl_stream_meta() -> String {
    "{\"type\":\"meta\",\"schema\":\"hgtool-trace/v1\",\"clock\":\"monotonic-us\",\
     \"streaming\":true}\n"
        .to_string()
}

/// Renders only the span lines of the JSONL schema (no meta header) —
/// the building block streaming sinks append per drained batch.
pub fn render_span_lines(records: &[SpanRecord]) -> String {
    let mut out = String::new();
    for r in records {
        let fields: Vec<String> = r
            .fields
            .iter()
            .map(|(k, v)| format!("{}:{}", json_string(k), v.to_json()))
            .collect();
        out.push_str(&format!(
            "{{\"type\":\"span\",\"id\":{},\"parent\":{},\"name\":{},\"thread\":{},\
             \"depth\":{},\"start_us\":{},\"dur_us\":{},\"fields\":{{{}}}}}\n",
            r.id,
            r.parent.map_or("null".to_string(), |p| p.to_string()),
            json_string(r.name),
            r.thread,
            r.depth,
            r.start_us,
            r.dur_us,
            fields.join(",")
        ));
    }
    out
}

/// Renders records as folded stacks (the `--trace-folded` sink): one
/// `thread-T;root;...;leaf <self_us>` line per distinct stack, ready
/// for `flamegraph.pl` / `inferno-flamegraph` / speedscope.
pub fn render_folded(records: &[SpanRecord]) -> String {
    let by_id: HashMap<u64, &SpanRecord> = records.iter().map(|r| (r.id, r)).collect();
    let selfs = self_times(records);
    let mut stacks: BTreeMap<String, u64> = BTreeMap::new();
    for r in records {
        let mut frames = vec![r.name];
        let mut cur = r.parent;
        while let Some(p) = cur {
            match by_id.get(&p) {
                Some(parent) => {
                    frames.push(parent.name);
                    cur = parent.parent;
                }
                None => break,
            }
        }
        frames.push(""); // placeholder for the thread frame
        frames.reverse();
        let mut stack = format!("thread-{}", r.thread);
        for f in frames.into_iter().skip(1) {
            stack.push(';');
            stack.push_str(f);
        }
        *stacks.entry(stack).or_insert(0) += selfs.get(&r.id).copied().unwrap_or(0);
    }
    let mut out = String::new();
    for (stack, us) in stacks {
        out.push_str(&format!("{stack} {us}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that touch the process-wide collector and the
    /// enabled flag.
    fn test_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn with_clean_trace<T>(f: impl FnOnce() -> T) -> T {
        let _guard = test_lock();
        set_enabled(true);
        let _ = drain();
        let out = f();
        set_enabled(false);
        out
    }

    #[test]
    fn spans_nest_and_merge_at_scope_exit() {
        let records = with_clean_trace(|| {
            {
                let _root = crate::span!("solve", measure = "ghw");
                {
                    let _child = crate::span!("price", warm = true);
                }
                {
                    let _child = crate::span!("price", warm = false);
                }
            }
            drain()
        });
        assert_eq!(records.len(), 3);
        let root = records.iter().find(|r| r.name == "solve").expect("root");
        assert_eq!(root.parent, None);
        assert_eq!(root.depth, 0);
        assert_eq!(
            root.fields,
            vec![("measure", FieldValue::Str("ghw".into()))]
        );
        let kids: Vec<_> = records.iter().filter(|r| r.name == "price").collect();
        assert_eq!(kids.len(), 2);
        for kid in kids {
            assert_eq!(kid.parent, Some(root.id));
            assert_eq!(kid.depth, 1);
            assert!(kid.start_us >= root.start_us);
        }
    }

    #[test]
    fn disabled_spans_cost_nothing_and_record_nothing() {
        let _guard = test_lock();
        set_enabled(false);
        let mut evaluated = false;
        let g = crate::span!(
            "never",
            x = {
                evaluated = true;
                1_u64
            }
        );
        assert!(g.is_none(), "disabled span! returns None");
        assert!(!evaluated, "disabled span! must not evaluate fields");
    }

    #[test]
    fn record_appends_fields_mid_scope() {
        let records = with_clean_trace(|| {
            {
                let span = crate::span!("backend", id = "engine");
                if let Some(g) = span.as_ref() {
                    g.record("outcome", "exact");
                }
            }
            drain()
        });
        let backend = records.iter().find(|r| r.name == "backend").expect("span");
        assert_eq!(backend.fields.len(), 2);
        assert_eq!(
            backend.fields[1],
            ("outcome", FieldValue::Str("exact".into()))
        );
    }

    #[test]
    fn unwinds_close_open_spans() {
        let records = with_clean_trace(|| {
            let attempt = std::panic::catch_unwind(|| {
                let _root = crate::span!("doomed");
                panic!("cancelled");
            });
            assert!(attempt.is_err());
            drain()
        });
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].name, "doomed");
    }

    #[test]
    fn span_cap_drops_deep_spans_and_counts_them() {
        let records = with_clean_trace(|| {
            let before_cap = span_cap();
            let before_dropped = dropped();
            set_span_cap(3);
            {
                let _root = crate::span!("solve");
                let _a = crate::span!("prep");
                let _b = crate::span!("candgen");
                // Past the cap: not recorded, counted as dropped.
                let _c = crate::span!("state");
                let _d = crate::span!("price");
            }
            set_span_cap(before_cap);
            let records = drain();
            assert_eq!(
                dropped() - before_dropped,
                2,
                "two spans past the cap are counted"
            );
            records
        });
        let names: Vec<_> = records.iter().map(|r| r.name).collect();
        assert_eq!(names.len(), 3);
        assert!(names.contains(&"solve"), "the root survives the cap");
        assert!(!names.contains(&"price"), "deep leaves are cut");
    }

    #[test]
    fn self_time_subtracts_children_and_phases_sum_to_roots() {
        let records = with_clean_trace(|| {
            {
                let _root = crate::span!("solve");
                std::thread::sleep(std::time::Duration::from_millis(2));
                {
                    let _kid = crate::span!("price");
                    std::thread::sleep(std::time::Duration::from_millis(2));
                }
            }
            drain()
        });
        let phases = phase_totals(&records);
        let root_total = records
            .iter()
            .filter(|r| r.parent.is_none())
            .map(|r| r.dur_us)
            .sum::<u64>();
        let self_sum = phases.values().map(|(_, us)| us).sum::<u64>();
        assert_eq!(self_sum, root_total, "self times partition the roots");
        assert!(phases["price"].1 > 0);
    }

    #[test]
    fn sinks_render_all_records() {
        let records = with_clean_trace(|| {
            {
                let _root = crate::span!("solve", measure = "fhw");
                let _kid = crate::span!("state", comp = 5_usize);
            }
            drain()
        });
        let tree = render_tree(&records);
        assert!(tree.contains("solve [measure=fhw]"));
        assert!(tree.contains("state [comp=5]"));
        let jsonl = render_jsonl(&records);
        assert_eq!(jsonl.lines().count(), 3, "meta + two spans");
        assert!(jsonl.starts_with("{\"type\":\"meta\""));
        for line in jsonl.lines() {
            crate::json::parse(line).expect("every JSONL line parses");
        }
        let folded = render_folded(&records);
        assert!(folded.contains("thread-"));
        assert!(folded.contains(";solve;state "));
    }
}
