//! Process-wide observability for the hypertree stack: span tracing,
//! a metrics registry, and the sinks that surface both.
//!
//! The crate sits at the very bottom of the workspace (std-only, no
//! workspace dependencies) so every layer — `lp` simplex pivots,
//! `cover` pricing, `prep` passes and caches, `candgen` seeding, the
//! `solver` engine/runtime/portfolio, and the `hgtool` front end — can
//! report into one place without dependency cycles.
//!
//! # Three faces
//!
//! * [`trace`] — lightweight [`span!`] scopes with monotonic
//!   timestamps, recorded into per-thread buffers and merged into a
//!   process-wide collector when the opening thread's scope stack
//!   empties. Rendered as a human tree ([`trace::render_tree`]), a
//!   JSONL event stream ([`trace::render_jsonl`], schema documented
//!   there), or flamegraph-compatible folded stacks
//!   ([`trace::render_folded`]).
//! * [`metrics`] — process-lifetime counters, gauges and histograms,
//!   snapshotted in Prometheus text exposition format
//!   ([`metrics::render_prometheus`]); `hgtool metrics` prints it, and
//!   the ROADMAP's `hgtool serve` will expose it.
//! * **Determinism discipline** — tracing is gated by the
//!   `HGTOOL_TRACE` environment variable (or
//!   [`trace::set_enabled`]); when off, [`span!`] is a single relaxed
//!   atomic load and its field expressions are never evaluated.
//!   Nothing in this crate is ever *read* by search code: widths,
//!   witnesses and every `SearchStats` counter are byte-identical with
//!   tracing on or off, at any thread count (the `trace_determinism`
//!   integration suite pins this).

pub mod json;
pub mod metrics;
pub mod trace;

/// Opens a traced span scope: `span!("phase")` or
/// `span!("phase", key = value, ...)`.
///
/// Returns `Option<SpanGuard>`; bind it (`let _span = span!(...)`) so
/// the scope closes when the guard drops. When tracing is disabled the
/// macro costs one relaxed atomic load and returns `None` without
/// evaluating any field expression — it must never feed back into
/// search decisions.
#[macro_export]
macro_rules! span {
    ($name:expr $(, $key:ident = $val:expr)* $(,)?) => {
        if $crate::trace::enabled() {
            Some($crate::trace::SpanGuard::enter(
                $name,
                vec![$((stringify!($key), $crate::trace::FieldValue::from($val))),*],
            ))
        } else {
            None
        }
    };
}
