//! The anytime control channel shared by every width backend: cooperative
//! cancellation with deadlines, and monotone lower/upper bound reporting
//! with witness-backed upper bounds.
//!
//! The `solver::backend` contract (see the solver README) runs every width
//! computation under a [`RunCtl`] — a [`CancelToken`] plus a [`BoundSink`].
//! This module lives in `prep` (below `solver` in the dependency graph)
//! because the two places that must *observe* the channel sit on either
//! side of the engine: the strategy wrappers and the prepare→solve→lift
//! plumbing in this crate report bounds and lift their witnesses, while
//! the engine's cancellation scopes in `solver` poll the token between
//! candidates.
//!
//! The channel is *ambient*: [`with_ctl`] installs a control on the
//! calling thread for the duration of a closure, and anything underneath —
//! wrapper, prep pipeline, engine root — picks it up via [`current`]
//! without signature changes. Worker-pool threads never read the ambient
//! state; they observe cancellation through the engine's scope chain,
//! which wraps the same token.
//!
//! ## Monotonicity
//!
//! A [`BoundSink`] only ever tightens: a lower-bound report that does not
//! exceed the current lower bound is dropped, as is an upper bound that
//! does not improve on the current one. The accepted sequence is recorded
//! in an event trace (`lb` nondecreasing, `ub` nonincreasing by
//! construction — the agreement suites assert it anyway), and every
//! accepted upper bound carries the witness that certifies it, already
//! lifted to the original instance.
//!
//! ## Cancellation-as-unwind
//!
//! The engine cannot return "interrupted" through its memoized result
//! type without poisoning caches (a `None` means *no decomposition
//! exists* and would be stored as an answer). Instead a canceled root
//! raises an [`Interrupted`] unwind via [`interrupt`]: the result-cache
//! claim guards abandon their entries on the way out (waiters re-run
//! instead of adopting a half answer), and the portfolio runner catches
//! the payload at the backend thread boundary. A process-wide panic-hook
//! shim keeps these control-flow unwinds out of stderr.

use arith::Rational;
use decomp::Decomposition;
use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, Once};
use std::time::{Duration, Instant};

/// A cooperative cancellation token: an explicit flag, an optional
/// deadline, and an optional parent whose cancellation propagates to
/// every descendant. Cheap to clone (one `Arc`).
#[derive(Clone)]
pub struct CancelToken {
    inner: Arc<TokenInner>,
}

struct TokenInner {
    flag: AtomicBool,
    deadline: Option<Instant>,
    parent: Option<CancelToken>,
}

impl CancelToken {
    /// A fresh root token with no deadline.
    pub fn new() -> Self {
        CancelToken::build(None, None)
    }

    /// A fresh root token that auto-cancels once `d` has elapsed.
    pub fn with_deadline(d: Duration) -> Self {
        CancelToken::build(Some(Instant::now() + d), None)
    }

    /// A child of `self`: canceled when `self` is, or on its own flag.
    pub fn child(&self) -> Self {
        CancelToken::build(None, Some(self.clone()))
    }

    /// A child that additionally auto-cancels after `d` (the per-backend
    /// deadline knob of the portfolio runner).
    pub fn child_with_deadline(&self, d: Option<Duration>) -> Self {
        CancelToken::build(d.map(|d| Instant::now() + d), Some(self.clone()))
    }

    fn build(deadline: Option<Instant>, parent: Option<CancelToken>) -> Self {
        CancelToken {
            inner: Arc::new(TokenInner {
                flag: AtomicBool::new(false),
                deadline,
                parent,
            }),
        }
    }

    /// Requests cancellation of this token and every descendant.
    pub fn cancel(&self) {
        self.inner.flag.store(true, Ordering::Release);
    }

    /// True once canceled explicitly, past the deadline, or via an
    /// ancestor. Deadline expiry *is* cancellation — no watchdog thread.
    pub fn is_canceled(&self) -> bool {
        if self.inner.flag.load(Ordering::Acquire) {
            return true;
        }
        if let Some(d) = self.inner.deadline {
            if Instant::now() >= d {
                return true;
            }
        }
        match &self.inner.parent {
            Some(p) => p.is_canceled(),
            None => false,
        }
    }
}

impl Default for CancelToken {
    fn default() -> Self {
        CancelToken::new()
    }
}

impl std::fmt::Debug for CancelToken {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CancelToken")
            .field("canceled", &self.is_canceled())
            .finish()
    }
}

/// One accepted (improving) bound report.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BoundEvent {
    /// The lower bound rose to this value.
    Lower(Rational),
    /// The upper bound fell to this value (witness stored separately).
    Upper(Rational),
}

/// A snapshot of the best-so-far bounds of one sink.
#[derive(Clone, Debug, Default)]
pub struct Bounds {
    /// Best (largest) reported lower bound.
    pub lower: Option<Rational>,
    /// Best (smallest) reported upper bound.
    pub upper: Option<Rational>,
    /// The witness certifying `upper`, lifted to the original instance.
    pub witness: Option<Decomposition>,
}

type LiftFn = dyn Fn(&Decomposition) -> Decomposition + Send + Sync;

struct SinkState {
    lower: Option<Rational>,
    upper: Option<(Rational, Option<Decomposition>)>,
    trace: Vec<BoundEvent>,
    first_bound: Option<Duration>,
    listeners: Vec<BoundSink>,
}

struct SinkShared {
    created: Instant,
    state: Mutex<SinkState>,
}

/// The anytime reporting channel: monotonically tightening lower/upper
/// bounds, each accepted upper bound witness-backed. Handles are cheap
/// clones of one shared state; a handle can carry a witness *lift*
/// (applied before storing, so block-local witnesses surface as
/// whole-instance ones) or have upper-bound reporting disabled (the
/// multi-block case, where no single block witness certifies the
/// instance).
#[derive(Clone)]
pub struct BoundSink {
    shared: Arc<SinkShared>,
    lift: Option<Arc<LiftFn>>,
    upper_enabled: bool,
}

impl BoundSink {
    /// A fresh sink with no bounds.
    pub fn new() -> Self {
        BoundSink {
            shared: Arc::new(SinkShared {
                created: Instant::now(),
                state: Mutex::new(SinkState {
                    lower: None,
                    upper: None,
                    trace: Vec::new(),
                    first_bound: None,
                    listeners: Vec::new(),
                }),
            }),
            lift: None,
            upper_enabled: true,
        }
    }

    /// A handle to the same sink that passes every reported witness
    /// through `f` first (the prepare→lift hook: block-local witnesses
    /// are lifted to the original instance before they are stored).
    /// Composes with an existing lift (innermost applied first).
    pub fn with_lift(
        &self,
        f: impl Fn(&Decomposition) -> Decomposition + Send + Sync + 'static,
    ) -> Self {
        let lift: Arc<LiftFn> = match &self.lift {
            Some(outer) => {
                let outer = Arc::clone(outer);
                Arc::new(move |d| outer(&f(d)))
            }
            None => Arc::new(f),
        };
        BoundSink {
            shared: Arc::clone(&self.shared),
            lift: Some(lift),
            upper_enabled: self.upper_enabled,
        }
    }

    /// A handle that drops upper-bound reports (lower bounds still
    /// forward). Used when solving one block of a multi-block split: a
    /// block width bounds the instance width from below (the instance
    /// width is the maximum over blocks) but a block witness certifies
    /// nothing about the whole instance.
    pub fn lower_only(&self) -> Self {
        BoundSink {
            shared: Arc::clone(&self.shared),
            lift: self.lift.clone(),
            upper_enabled: false,
        }
    }

    /// Reports a certified lower bound; ignored unless it improves.
    pub fn report_lower(&self, lb: Rational) {
        let listeners;
        {
            let mut st = self.lock();
            if st.lower.as_ref().is_some_and(|cur| *cur >= lb) {
                return;
            }
            st.lower = Some(lb.clone());
            st.trace.push(BoundEvent::Lower(lb.clone()));
            if st.first_bound.is_none() {
                st.first_bound = Some(self.shared.created.elapsed());
            }
            listeners = st.listeners.clone();
        }
        for l in listeners {
            l.report_lower(lb.clone());
        }
    }

    /// Reports a witness-backed upper bound; ignored unless it improves.
    /// The witness (if any) is passed through this handle's lift before
    /// being stored, so listeners and snapshots always see it in
    /// original-instance terms.
    pub fn report_upper(&self, ub: Rational, witness: Option<&Decomposition>) {
        if !self.upper_enabled {
            return;
        }
        let lifted = witness.map(|d| match &self.lift {
            Some(f) => f(d),
            None => d.clone(),
        });
        let listeners;
        {
            let mut st = self.lock();
            if st.upper.as_ref().is_some_and(|(cur, _)| *cur <= ub) {
                return;
            }
            st.upper = Some((ub.clone(), lifted.clone()));
            st.trace.push(BoundEvent::Upper(ub.clone()));
            if st.first_bound.is_none() {
                st.first_bound = Some(self.shared.created.elapsed());
            }
            listeners = st.listeners.clone();
        }
        for l in listeners {
            // Already lifted into this sink's frame; forward as-is.
            l.forward_upper(ub.clone(), lifted.as_ref());
        }
    }

    /// Forwards an already-lifted upper bound (listener fan-out skips the
    /// local lift, which belongs to the reporting frame, not ours).
    fn forward_upper(&self, ub: Rational, witness: Option<&Decomposition>) {
        if !self.upper_enabled {
            return;
        }
        let listeners;
        {
            let mut st = self.lock();
            if st.upper.as_ref().is_some_and(|(cur, _)| *cur <= ub) {
                return;
            }
            st.upper = Some((ub.clone(), witness.cloned()));
            st.trace.push(BoundEvent::Upper(ub.clone()));
            if st.first_bound.is_none() {
                st.first_bound = Some(self.shared.created.elapsed());
            }
            listeners = st.listeners.clone();
        }
        for l in listeners {
            l.forward_upper(ub.clone(), witness);
        }
    }

    /// Attaches `listener`: it immediately receives the current bounds
    /// (so a late joiner sees best-so-far) and every future improving
    /// report. This is how waiters parked on an in-flight deduplicated
    /// query observe the owner's anytime bounds.
    pub fn attach(&self, listener: BoundSink) {
        let replay = {
            let mut st = self.lock();
            let snap = (st.lower.clone(), st.upper.clone());
            st.listeners.push(listener.clone());
            snap
        };
        if let Some(lb) = replay.0 {
            listener.report_lower(lb);
        }
        if let Some((ub, w)) = replay.1 {
            listener.forward_upper(ub, w.as_ref());
        }
    }

    /// The best-so-far bounds (witness cloned).
    pub fn snapshot(&self) -> Bounds {
        let st = self.lock();
        Bounds {
            lower: st.lower.clone(),
            upper: st.upper.as_ref().map(|(u, _)| u.clone()),
            witness: st.upper.as_ref().and_then(|(_, w)| w.clone()),
        }
    }

    /// The accepted report sequence, in order.
    pub fn trace(&self) -> Vec<BoundEvent> {
        self.lock().trace.clone()
    }

    /// Time from sink creation to the first accepted bound.
    pub fn time_to_first_bound(&self) -> Option<Duration> {
        self.lock().first_bound
    }

    /// True when the bounds have met: the best lower bound equals the
    /// best upper bound (an exact answer was reported).
    pub fn closed(&self) -> bool {
        let st = self.lock();
        match (&st.lower, &st.upper) {
            (Some(l), Some((u, _))) => l == u,
            _ => false,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, SinkState> {
        self.shared.state.lock().expect("bound sink poisoned")
    }
}

impl Default for BoundSink {
    fn default() -> Self {
        BoundSink::new()
    }
}

impl std::fmt::Debug for BoundSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let b = self.snapshot();
        f.debug_struct("BoundSink")
            .field("lower", &b.lower)
            .field("upper", &b.upper)
            .finish()
    }
}

/// The per-run control a backend executes under: the cancellation token
/// the engine polls and the sink its bounds flow into.
#[derive(Clone, Debug, Default)]
pub struct RunCtl {
    /// Cooperative cancellation (explicit, deadline, or inherited).
    pub cancel: CancelToken,
    /// The anytime bound channel.
    pub sink: BoundSink,
}

thread_local! {
    static AMBIENT: RefCell<Vec<RunCtl>> = const { RefCell::new(Vec::new()) };
}

struct AmbientGuard;

impl Drop for AmbientGuard {
    fn drop(&mut self) {
        AMBIENT.with(|s| {
            s.borrow_mut().pop();
        });
    }
}

/// Installs `ctl` as the calling thread's ambient control for the
/// duration of `f` (nestable; popped on unwind too, so an [`Interrupted`]
/// raise leaves the stack clean).
pub fn with_ctl<R>(ctl: RunCtl, f: impl FnOnce() -> R) -> R {
    AMBIENT.with(|s| s.borrow_mut().push(ctl));
    let _guard = AmbientGuard;
    f()
}

/// The innermost ambient control of this thread, if any.
pub fn current() -> Option<RunCtl> {
    AMBIENT.with(|s| s.borrow().last().cloned())
}

/// The ambient cancellation token, if a control is installed.
pub fn current_cancel() -> Option<CancelToken> {
    AMBIENT.with(|s| s.borrow().last().map(|c| c.cancel.clone()))
}

/// The ambient bound sink, if a control is installed.
pub fn current_sink() -> Option<BoundSink> {
    AMBIENT.with(|s| s.borrow().last().map(|c| c.sink.clone()))
}

/// True when the ambient token (if any) has been canceled.
pub fn interrupted() -> bool {
    current_cancel().is_some_and(|t| t.is_canceled())
}

/// Cancellation-as-unwind support.
pub mod interrupt {
    use super::*;

    /// The unwind payload a canceled computation raises. Carried through
    /// `std::panic` machinery but it is control flow, not a failure: the
    /// portfolio runner catches it at the backend thread boundary and the
    /// quiet hook keeps it out of stderr.
    #[derive(Debug)]
    pub struct Interrupted;

    static QUIET_HOOK: Once = Once::new();

    /// Wraps the current panic hook so [`Interrupted`] unwinds print
    /// nothing; everything else delegates to the previous hook.
    /// Idempotent, installed lazily by the first [`raise`].
    pub fn install_quiet_hook() {
        QUIET_HOOK.call_once(|| {
            let prev = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                if info.payload().downcast_ref::<Interrupted>().is_none() {
                    prev(info);
                }
            }));
        });
    }

    /// Raises the interrupt unwind. Called by the engine when its *root*
    /// branch observes cancellation (pool-side branches return through
    /// the scope machinery by value; only the root has no caller to
    /// return `Canceled` to).
    pub fn raise() -> ! {
        install_quiet_hook();
        std::panic::panic_any(Interrupted)
    }

    /// Classifies a joined thread's unwind payload: `true` for an
    /// [`Interrupted`] raise, `false` for a genuine panic (re-raise it).
    pub fn is_interrupt(payload: &(dyn std::any::Any + Send)) -> bool {
        payload.is::<Interrupted>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decomp::{Decomposition, Node};
    use hypergraph::VertexSet;

    fn rat(n: i64, d: i64) -> Rational {
        Rational::from_frac(n, d)
    }

    fn witness(tag: usize) -> Decomposition {
        let mut bag = VertexSet::new();
        bag.insert(tag);
        Decomposition::new(Node {
            bag,
            weights: Vec::new(),
        })
    }

    #[test]
    fn tokens_cancel_through_parents_and_deadlines() {
        let root = CancelToken::new();
        let child = root.child();
        let grandchild = child.child();
        assert!(!grandchild.is_canceled());
        root.cancel();
        assert!(child.is_canceled());
        assert!(grandchild.is_canceled());

        let timed = CancelToken::with_deadline(Duration::from_millis(0));
        assert!(timed.is_canceled(), "elapsed deadline is cancellation");
        let forever = CancelToken::with_deadline(Duration::from_secs(3600));
        assert!(!forever.is_canceled());
    }

    #[test]
    fn sink_enforces_monotone_bounds() {
        let sink = BoundSink::new();
        sink.report_lower(rat(1, 1));
        sink.report_lower(rat(1, 2)); // worse: dropped
        sink.report_upper(rat(4, 1), Some(&witness(4)));
        sink.report_upper(rat(5, 1), None); // worse: dropped
        sink.report_upper(rat(3, 1), Some(&witness(3)));
        sink.report_lower(rat(3, 1));
        let b = sink.snapshot();
        assert_eq!(b.lower, Some(rat(3, 1)));
        assert_eq!(b.upper, Some(rat(3, 1)));
        assert!(sink.closed());
        assert!(b.witness.unwrap().node(0).bag.contains(3));
        let trace = sink.trace();
        assert_eq!(trace.len(), 4, "non-improving reports left no events");
        // lb nondecreasing, ub nonincreasing across the accepted trace.
        let mut lb = None;
        let mut ub: Option<Rational> = None;
        for ev in trace {
            match ev {
                BoundEvent::Lower(l) => {
                    assert!(lb.as_ref().is_none_or(|p| *p < l));
                    lb = Some(l);
                }
                BoundEvent::Upper(u) => {
                    assert!(ub.as_ref().is_none_or(|p| *p > u));
                    ub = Some(u);
                }
            }
        }
        assert!(sink.time_to_first_bound().is_some());
    }

    #[test]
    fn lifts_apply_and_listeners_replay() {
        let sink = BoundSink::new();
        // A lift that re-tags the witness: block-local bag {7} lifts to {9}.
        let lifted = sink.with_lift(|_| witness(9));
        lifted.report_upper(rat(2, 1), Some(&witness(7)));
        assert!(sink.snapshot().witness.unwrap().node(0).bag.contains(9));

        // A late listener immediately sees best-so-far, then new reports.
        let late = BoundSink::new();
        sink.attach(late.clone());
        assert_eq!(late.snapshot().upper, Some(rat(2, 1)));
        sink.report_lower(rat(1, 1));
        assert_eq!(late.snapshot().lower, Some(rat(1, 1)));
        // The replayed witness is the already-lifted one.
        assert!(late.snapshot().witness.unwrap().node(0).bag.contains(9));
    }

    #[test]
    fn lower_only_suppresses_upper_reports() {
        let sink = BoundSink::new();
        let block = sink.lower_only();
        block.report_upper(rat(2, 1), Some(&witness(1)));
        block.report_lower(rat(1, 1));
        let b = sink.snapshot();
        assert_eq!(b.upper, None);
        assert_eq!(b.lower, Some(rat(1, 1)));
    }

    #[test]
    fn ambient_ctl_nests_and_pops() {
        assert!(current().is_none());
        let outer = RunCtl::default();
        with_ctl(outer.clone(), || {
            assert!(current().is_some());
            let inner = RunCtl::default();
            with_ctl(inner, || {
                current_cancel().unwrap().cancel();
                assert!(interrupted());
            });
            // Popped back to the (uncanceled) outer control.
            assert!(!interrupted());
        });
        assert!(current().is_none());
    }

    #[test]
    fn interrupt_raise_carries_the_marker_payload() {
        let caught = std::panic::catch_unwind(|| interrupt::raise());
        let payload = caught.expect_err("raise unwinds");
        assert!(interrupt::is_interrupt(payload.as_ref()));
    }
}
