//! Lifting witnesses from the reduced instance back to the original.
//!
//! The contract: every pipeline stage that shrinks the instance knows how
//! to transform a valid decomposition of its output into an equally valid,
//! equally wide decomposition of its input. Lifting therefore runs the
//! stages in reverse:
//!
//! 1. translate each block witness from block-local to original indices,
//! 2. stitch the block witnesses into one tree along the cut vertices
//!    (re-rooting the child block at a node containing the cut vertex),
//! 3. undo the simplification steps last-to-first — twins re-enter every
//!    bag holding their representative, degree-one vertices re-enter as a
//!    fresh leaf covering their edge, removed edges need nothing.
//!
//! Each undo keeps the invariant "the current tree is a valid
//! decomposition of the hypergraph as it was *before* the step", so the
//! final tree is valid for the original hypergraph and the width never
//! changes (reinstated leaves cost exactly 1 ≤ width).

use crate::simplify::Step;
use arith::Rational;
use decomp::{Decomposition, Node};
use hypergraph::VertexSet;

/// Renumbers a decomposition's bags and edge weights through
/// `vertex_origin` / `edge_origin` (block-local index → original index).
pub fn translate(
    d: &Decomposition,
    vertex_origin: &[usize],
    edge_origin: &[usize],
) -> Decomposition {
    let map_node = |n: &Node| Node {
        bag: n.bag.iter().map(|v| vertex_origin[v]).collect(),
        weights: n
            .weights
            .iter()
            .map(|&(e, ref w)| (edge_origin[e], w.clone()))
            .collect(),
    };
    let mut out = Decomposition::new(map_node(d.node(d.root())));
    let mut queue: Vec<(usize, usize)> = d.children(d.root()).iter().map(|&c| (c, 0)).collect();
    while let Some((src, dst_parent)) = queue.pop() {
        let id = out.add_child(dst_parent, map_node(d.node(src)));
        queue.extend(d.children(src).iter().map(|&c| (c, id)));
    }
    out
}

/// Rebuilds `d` rooted at `new_root` (tree edges reoriented). Valid for
/// GHDs/FHDs — their conditions are orientation-independent — and used
/// when stitching a child block onto its cut vertex.
pub fn reroot(d: &Decomposition, new_root: usize) -> Decomposition {
    let mut out = Decomposition::new(d.node(new_root).clone());
    // Undirected adjacency walk from the new root.
    let neighbors = |u: usize| {
        let mut out: Vec<usize> = d.children(u).to_vec();
        out.extend(d.parent(u));
        out
    };
    let mut visited = vec![false; d.len()];
    visited[new_root] = true;
    let mut queue: Vec<(usize, usize)> = neighbors(new_root).into_iter().map(|n| (n, 0)).collect();
    while let Some((src, dst_parent)) = queue.pop() {
        if visited[src] {
            continue;
        }
        visited[src] = true;
        let id = out.add_child(dst_parent, d.node(src).clone());
        queue.extend(
            neighbors(src)
                .into_iter()
                .filter(|&n| !visited[n])
                .map(|n| (n, id)),
        );
    }
    out
}

/// Grafts all of `src` (keeping its root orientation) under `dst[at]`.
pub fn attach(dst: &mut Decomposition, at: usize, src: &Decomposition) {
    let root_id = dst.add_child(at, src.node(src.root()).clone());
    let mut queue: Vec<(usize, usize)> = src
        .children(src.root())
        .iter()
        .map(|&c| (c, root_id))
        .collect();
    while let Some((node, dst_parent)) = queue.pop() {
        let id = dst.add_child(dst_parent, src.node(node).clone());
        queue.extend(src.children(node).iter().map(|&c| (c, id)));
    }
}

/// Stitches block witnesses (already in original indices, ordered like the
/// blocks) into one tree: each anchored block re-roots at a node holding
/// its cut vertex and hangs under a node of the stitched tree holding the
/// same vertex; anchor-less blocks (new connected components) hang under
/// the global root.
pub fn stitch(parts: Vec<(Decomposition, Option<usize>)>) -> Decomposition {
    let mut parts = parts.into_iter();
    let (mut out, first_anchor) = parts.next().expect("at least one block");
    debug_assert!(first_anchor.is_none(), "the first block has no anchor");
    for (part, anchor) in parts {
        match anchor {
            Some(c) => {
                let part_node = node_containing(&part, c)
                    .expect("the cut vertex appears in a bag of its block witness");
                let rerooted = reroot(&part, part_node);
                let at = node_containing(&out, c)
                    .expect("the cut vertex appears in a bag of an earlier block witness");
                attach(&mut out, at, &rerooted);
            }
            None => {
                // Disjoint component: no shared vertices, any edge of the
                // tree keeps every condition intact.
                attach(&mut out, 0, &part);
            }
        }
    }
    out
}

fn node_containing(d: &Decomposition, v: usize) -> Option<usize> {
    (0..d.len()).find(|&u| d.node(u).bag.contains(v))
}

/// Undoes the simplification trace (last step first) on a decomposition of
/// the reduced instance expressed in original indices.
pub fn undo_steps(d: &mut Decomposition, steps: &[Step]) {
    for step in steps.iter().rev() {
        match step {
            // Removed edges never appear in reduced-instance covers, and
            // their content is inside the kept edge's covering bag, so the
            // tree is already valid for the pre-step instance.
            Step::EdgeSubsumed { .. } => {}
            Step::TwinVertex { removed, twin } => {
                for u in 0..d.len() {
                    if d.node(u).bag.contains(*twin) {
                        d.node_mut(u).bag.insert(*removed);
                    }
                }
            }
            Step::DegreeOneVertex { vertex, edge, rest } => {
                let at = (0..d.len())
                    .find(|&u| rest.is_subset(&d.node(u).bag))
                    .expect("the reduced edge is covered by some bag");
                let mut bag: VertexSet = rest.clone();
                bag.insert(*vertex);
                d.add_child(
                    at,
                    Node {
                        bag,
                        weights: vec![(*edge, Rational::one())],
                    },
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decomp::validate;
    use hypergraph::Hypergraph;

    #[test]
    fn reroot_preserves_nodes_and_adjacency() {
        let mut d = Decomposition::new(Node::integral(VertexSet::from_iter([0]), [0]));
        let a = d.add_child(0, Node::integral(VertexSet::from_iter([1]), [1]));
        let b = d.add_child(a, Node::integral(VertexSet::from_iter([2]), [2]));
        let r = reroot(&d, b);
        assert_eq!(r.len(), 3);
        assert!(r.node(0).bag.contains(2));
        // The old root is now the deepest node.
        let leaf = (0..r.len()).find(|&u| r.children(u).is_empty()).unwrap();
        assert!(r.node(leaf).bag.contains(0));
    }

    #[test]
    fn degree_one_undo_attaches_a_covering_leaf() {
        // Path a-b-c; pretend c was removed from edge {b,c} as degree-one.
        let h = Hypergraph::from_edges(3, vec![vec![0, 1], vec![1, 2]]);
        let mut d = Decomposition::new(Node::integral(VertexSet::from_iter([0, 1]), [0]));
        undo_steps(
            &mut d,
            &[Step::DegreeOneVertex {
                vertex: 2,
                edge: 1,
                rest: VertexSet::from_iter([1]),
            }],
        );
        assert_eq!(d.len(), 2);
        assert_eq!(validate::validate_ghd(&h, &d), Ok(()));
    }

    #[test]
    fn twin_undo_mirrors_the_representative() {
        // Edge {0,1,2} with 2 a twin of 1.
        let h = Hypergraph::from_edges(3, vec![vec![0, 1, 2]]);
        let mut d = Decomposition::new(Node::integral(VertexSet::from_iter([0, 1]), [0]));
        undo_steps(
            &mut d,
            &[Step::TwinVertex {
                removed: 2,
                twin: 1,
            }],
        );
        assert_eq!(d.node(0).bag.to_vec(), vec![0, 1, 2]);
        assert_eq!(validate::validate_ghd(&h, &d), Ok(()));
    }
}
