//! The process-lifetime, fingerprint-keyed cross-call result registry.
//!
//! The per-search `ρ`/`ρ*` caches of PR 2 die with their search, so
//! repeated searches on one instance (`hgtool widths` running three
//! engines, `fhw_frac_search` iterating budgets, the strict-HD integer
//! search, the agreement test suites) re-price every bag from scratch.
//! This registry keeps one [`cover::ShardedCache`] per
//! `(hypergraph fingerprint, cache slot)` alive for the process lifetime,
//! so a bag priced once is priced never again — across calls, strategies
//! and thread counts. On top of the price slots, [`cached_query`] uses the
//! same registry to cache *whole-query answers*: a
//! `(instance, strategy, parameters)` triple maps to the full result —
//! width, lifted witness and engine counters — so a repeated call skips
//! the search entirely, and an identical call already in flight is
//! deduplicated through the cache's `Pending` claim machinery (the second
//! caller parks and adopts the first one's answer).
//!
//! Soundness: a cached value is only valid for the instance it was
//! computed on, so the registry stores the full [`CanonicalForm`] next to
//! the caches and compares it on every lookup. A fingerprint collision
//! does not discard sharing anymore: each distinct canonical form behind
//! one fingerprint gets its own *variant* (keyed by a secondary hash), so
//! colliding instances still reuse their own caches across calls; only
//! the astronomically unlikely double collision (same fingerprint *and*
//! same secondary hash, different structure) falls back to a fresh
//! private session — never to wrong prices.
//!
//! Memory: all slots of all variants share one byte budget
//! ([`BUDGET_ENV`], default 64 MiB), estimated via [`cover::MemSize`] and
//! enforced by least-recently-used eviction over `(fingerprint, variant)`
//! keys at session-open time. Opening a session touches its key; slot
//! checkouts mark the key dirty so the next sweep re-measures it.
//!
//! Determinism: widths and witnesses are unaffected by reuse (prices and
//! results are exact values, and witnesses are revalidated by the test
//! suites). The `price_*` counters and the runtime counters
//! (`result_cache_hits`, `inflight_dedup`) of a session *are* affected —
//! that is the point — so the engine determinism tests run with reuse off
//! and compare [`SearchStats::engine_only`].

use crate::fingerprint::{canonical_form, fingerprint_of_canon, CanonicalForm, Fingerprint};
use crate::stats::SearchStats;
use cover::{Claim, MemSize, ShardedCache};
use hypergraph::fx::FxHasher;
use hypergraph::Hypergraph;
use std::any::Any;
use std::collections::{HashMap, HashSet};
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex, OnceLock};

/// Environment variable overriding the shared cache byte budget.
pub const BUDGET_ENV: &str = "HGTOOL_CACHE_BYTES";

/// Default shared byte budget: price caches and the whole-query result
/// cache together.
const DEFAULT_BUDGET_BYTES: usize = 64 << 20;

/// One registered slot: the type-erased shared cache plus a sizer that
/// re-measures it (the sizer captures a typed `Arc` clone, so the
/// byte-budget sweep needs no type knowledge).
struct SlotEntry {
    cache: Arc<dyn Any + Send + Sync>,
    sizer: Box<dyn Fn() -> usize + Send + Sync>,
}

/// One canonical form behind a fingerprint: the exact incidence structure
/// (collision guard), its slot map, and the byte estimate as of the last
/// sweep (stale while the variant is in the dirty set).
struct Variant {
    sec: u64,
    canon: CanonicalForm,
    num_vertices: usize,
    slots: HashMap<&'static str, SlotEntry>,
    bytes: usize,
}

/// The interior state: variants by fingerprint, the LRU order over
/// `(fingerprint, secondary)` keys (least recent first), and the keys
/// whose byte estimate went stale since the last sweep.
#[derive(Default)]
struct Registry {
    entries: HashMap<u128, Vec<Variant>>,
    order: Vec<(u128, u64)>,
    dirty: HashSet<(u128, u64)>,
}

/// The process-lifetime registry. Obtain the shared one through
/// [`global`]; tests build private instances with
/// [`GlobalPriceCache::new`] (leaked to `'static`, since sessions borrow
/// the registry for the process lifetime).
pub struct GlobalPriceCache {
    inner: Mutex<Registry>,
    budget: usize,
}

/// The process-wide registry instance, budgeted by [`BUDGET_ENV`].
pub fn global() -> &'static GlobalPriceCache {
    static GLOBAL: OnceLock<GlobalPriceCache> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        let budget = std::env::var(BUDGET_ENV)
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(DEFAULT_BUDGET_BYTES);
        GlobalPriceCache::new(budget)
    })
}

/// The secondary hash separating canonical forms that collide on the
/// primary fingerprint (FxHash over the same word stream the fingerprint
/// reads, but with a different mixing function — independent enough that
/// a double collision would need two simultaneous 64-bit+128-bit breaks).
fn secondary_hash(num_vertices: usize, canon: &CanonicalForm) -> u64 {
    let mut hasher = FxHasher::default();
    num_vertices.hash(&mut hasher);
    canon.hash(&mut hasher);
    hasher.finish()
}

impl GlobalPriceCache {
    /// An empty registry with the given byte budget.
    pub fn new(budget: usize) -> Self {
        GlobalPriceCache {
            inner: Mutex::new(Registry::default()),
            budget,
        }
    }

    /// Opens a session for `h`: cached slots of the same instance are
    /// shared (their generation advanced, so reuse shows up in
    /// [`cover::ShardedCache::warm_hits`]); an unknown instance (or a new
    /// canonical form behind a colliding fingerprint) is registered as its
    /// own variant. Opening touches the LRU key and runs the byte-budget
    /// sweep, evicting least-recently-used variants (never the one just
    /// opened) while the estimate exceeds the budget.
    pub fn session(&'static self, h: &Hypergraph) -> PriceSession {
        let canon = canonical_form(h);
        let fp = fingerprint_of_canon(h.num_vertices(), &canon);
        let sec = secondary_hash(h.num_vertices(), &canon);
        let mut reg = self.inner.lock().expect("price registry poisoned");
        let variants = reg.entries.entry(fp.0).or_default();
        match variants.iter().find(|v| v.sec == sec) {
            Some(v) if v.canon == canon && v.num_vertices == h.num_vertices() => {}
            // Double collision (fingerprint and secondary hash): never
            // share. Unlike the old single-hash fallback this is per
            // *structure*, not per call — merely fingerprint-colliding
            // instances each keep their own shared variant above.
            Some(_) => return PriceSession::fresh(),
            None => variants.push(Variant {
                sec,
                canon,
                num_vertices: h.num_vertices(),
                slots: HashMap::new(),
                bytes: 0,
            }),
        }
        let key = (fp.0, sec);
        if let Some(pos) = reg.order.iter().position(|&k| k == key) {
            reg.order.remove(pos);
        }
        reg.order.push(key);
        self.sweep(&mut reg, key);
        PriceSession {
            registry: Some((self, fp, sec)),
        }
    }

    /// Re-measures dirty variants, then evicts from the LRU front while
    /// the total estimate exceeds the budget (skipping `just_opened`).
    fn sweep(&self, reg: &mut Registry, just_opened: (u128, u64)) {
        for key in std::mem::take(&mut reg.dirty) {
            if let Some(v) = variant_mut(&mut reg.entries, key) {
                v.bytes = v.slots.values().map(|s| (s.sizer)()).sum();
            }
        }
        let mut total: usize = reg
            .order
            .iter()
            .filter_map(|&k| variant_ref(&reg.entries, k).map(|v| v.bytes))
            .sum();
        let mut i = 0;
        while total > self.budget && i < reg.order.len() {
            let key = reg.order[i];
            if key == just_opened {
                i += 1;
                continue;
            }
            reg.order.remove(i);
            if let Some(variants) = reg.entries.get_mut(&key.0) {
                if let Some(pos) = variants.iter().position(|v| v.sec == key.1) {
                    total -= variants[pos].bytes;
                    variants.remove(pos);
                }
                if variants.is_empty() {
                    reg.entries.remove(&key.0);
                }
            }
        }
    }

    /// The registered shared cache for `(fingerprint, variant, slot)`,
    /// created on first use and marked dirty for the next sweep. `None`
    /// when the variant was evicted meanwhile.
    fn slot<K, V>(
        &self,
        fp: Fingerprint,
        sec: u64,
        name: &'static str,
    ) -> Option<Arc<ShardedCache<K, V>>>
    where
        K: Eq + Hash + MemSize + Send + Sync + 'static,
        V: Clone + MemSize + Send + Sync + 'static,
    {
        let mut guard = self.inner.lock().expect("price registry poisoned");
        let reg = &mut *guard;
        let variant = variant_mut(&mut reg.entries, (fp.0, sec))?;
        let slot = variant.slots.entry(name).or_insert_with(|| {
            let typed: Arc<ShardedCache<K, V>> = Arc::new(ShardedCache::new());
            let measured = Arc::clone(&typed);
            SlotEntry {
                cache: typed,
                sizer: Box::new(move || measured.approx_bytes()),
            }
        });
        let cache = Arc::clone(&slot.cache)
            .downcast::<ShardedCache<K, V>>()
            .expect("slot name reused with a different cache type");
        reg.dirty.insert((fp.0, sec));
        Some(cache)
    }

    /// Registered variants, in LRU order length (diagnostics).
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .expect("price registry poisoned")
            .order
            .len()
    }

    /// True when nothing is registered yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The byte estimate as of the last sweep (diagnostics; dirty variants
    /// report their stale measurement).
    pub fn approx_bytes(&self) -> usize {
        let reg = self.inner.lock().expect("price registry poisoned");
        reg.order
            .iter()
            .filter_map(|&k| variant_ref(&reg.entries, k).map(|v| v.bytes))
            .sum()
    }
}

fn variant_ref(entries: &HashMap<u128, Vec<Variant>>, key: (u128, u64)) -> Option<&Variant> {
    entries.get(&key.0)?.iter().find(|v| v.sec == key.1)
}

fn variant_mut(
    entries: &mut HashMap<u128, Vec<Variant>>,
    key: (u128, u64),
) -> Option<&mut Variant> {
    entries.get_mut(&key.0)?.iter_mut().find(|v| v.sec == key.1)
}

/// A per-search handle to the shared caches of one instance (or to fresh
/// private caches when reuse is off / double-collided / evicted).
pub struct PriceSession {
    /// `Some` when backed by a registry: the registry plus the variant key.
    registry: Option<(&'static GlobalPriceCache, Fingerprint, u64)>,
}

impl PriceSession {
    /// A session with private caches only (reuse disabled).
    pub fn fresh() -> Self {
        PriceSession { registry: None }
    }

    /// True when backed by a process-lifetime registry.
    pub fn is_shared(&self) -> bool {
        self.registry.is_some()
    }

    /// The cache for `slot`, shared across calls when the session is
    /// registry-backed (its generation is advanced so cross-call hits are
    /// counted as warm), private otherwise.
    pub fn cache<K, V>(&self, slot: &'static str) -> Arc<ShardedCache<K, V>>
    where
        K: Eq + Hash + MemSize + Send + Sync + 'static,
        V: Clone + MemSize + Send + Sync + 'static,
    {
        let shared = self
            .registry
            .and_then(|(reg, fp, sec)| reg.slot::<K, V>(fp, sec, slot));
        match shared {
            Some(cache) => {
                cache.advance_generation();
                cache
            }
            None => Arc::new(ShardedCache::new()),
        }
    }
}

/// One strategy cache checked out of a session, carrying the counter
/// baselines taken at checkout so a search can report *its own* traffic —
/// the shared cache's counters are cumulative across every search that
/// ever borrowed it. This is the one place the baseline/delta bookkeeping
/// lives; the strategy wrappers in `hd`/`ghd`/`fhd` all go through it.
pub struct SessionCache<K, V> {
    /// The (shared or private) cache itself.
    pub cache: Arc<ShardedCache<K, V>>,
    base_hits: usize,
    base_misses: usize,
    base_warm: usize,
}

impl<K, V> SessionCache<K, V>
where
    K: Eq + Hash + MemSize + Send + Sync + 'static,
    V: Clone + MemSize + Send + Sync + 'static,
{
    /// Opens the `slot` cache for `h`: registry-backed when `reuse` asks
    /// for it (and `HGTOOL_NO_PREP` doesn't veto it), private otherwise —
    /// with counter baselines snapshotted for [`SessionCache::deltas`].
    pub fn open(h: &Hypergraph, slot: &'static str, reuse: bool) -> Self {
        let session = if crate::reuse_enabled(reuse) {
            global().session(h)
        } else {
            PriceSession::fresh()
        };
        let cache = session.cache::<K, V>(slot);
        let (base_hits, base_misses) = cache.counters();
        let base_warm = cache.warm_hits();
        SessionCache {
            cache,
            base_hits,
            base_misses,
            base_warm,
        }
    }

    /// `(hits, misses, warm_hits)` accumulated since checkout — what the
    /// strategy wrappers surface as `price_hits`/`price_misses`/
    /// `price_warm_hits`. Process-history-independent on private caches;
    /// on shared ones, concurrent borrowers' traffic is included (which is
    /// why the determinism suites run with reuse off).
    pub fn deltas(&self) -> (usize, usize, usize) {
        let (hits, misses) = self.cache.counters();
        (
            hits - self.base_hits,
            misses - self.base_misses,
            self.cache.warm_hits() - self.base_warm,
        )
    }
}

/// Routes one whole-query computation through the cross-call result
/// cache: `(instance fingerprint, slot, key)` maps to the full answer —
/// result (including the lifted witness) plus the engine counters of the
/// run that computed it.
///
/// `slot` names the strategy (one result cache per strategy per
/// instance); `key` encodes every parameter the answer depends on
/// (cutoff, width bound, engine options that affect the result). With
/// reuse off (or vetoed by `HGTOOL_NO_PREP`, or double-collided) `run`
/// executes directly.
///
/// * A repeated identical query returns the stored answer with
///   `result_cache_hits = 1` and never runs a search.
/// * An identical query *in flight* parks on the entry's `Pending` claim
///   and adopts the owner's answer (`inflight_dedup = 1` on top of the
///   hit) — exactly one search runs however many threads ask.
/// * If the owning computation panics, the claim is abandoned and one
///   parked waiter re-runs (nobody deadlocks on a poisoned entry).
pub fn cached_query<R>(
    h: &Hypergraph,
    slot: &'static str,
    key: String,
    reuse: bool,
    run: impl FnOnce() -> (R, SearchStats),
) -> (R, SearchStats)
where
    R: Clone + MemSize + Send + Sync + 'static,
{
    if !crate::reuse_enabled(reuse) {
        return run();
    }
    let session = global().session(h);
    if !session.is_shared() {
        return run();
    }
    let span = obs::span!("result_cache", slot = slot);
    let cache: Arc<ShardedCache<String, (R, SearchStats)>> = session.cache(slot);
    // Anytime-bounds plumbing (only when an ambient control is
    // installed): if an identical query is already in flight, attach our
    // sink as a listener *before* parking on the claim — the owner's
    // best-so-far bounds replay immediately and future reports stream in
    // while we wait.
    let ambient = crate::anytime::current_sink();
    let fp = ambient
        .as_ref()
        .map(|sink| inflight_bounds::attach_waiter(h, slot, &key, sink));
    let (claim, waited) = cache.claim_tracking_wait(&key);
    let answer = match claim {
        Claim::Hit((result, mut stats)) => {
            stats.result_cache_hits = 1;
            stats.inflight_dedup = usize::from(waited);
            cache_metrics::handles().hits.inc();
            if waited {
                cache_metrics::handles().inflight_dedup.inc();
            }
            if let Some(span) = span.as_ref() {
                span.record("hit", true);
                span.record("deduped", waited);
            }
            (result, stats)
        }
        Claim::Owner => {
            cache_metrics::handles().misses.inc();
            if let Some(span) = span.as_ref() {
                span.record("hit", false);
            }
            let guard = QueryGuard {
                cache: &cache,
                key: Some(&key),
            };
            // Publish this run's sink so deduplicated waiters (and any
            // other observer of the same (instance, slot, key)) can
            // watch the bounds tighten; deregistered on drop, unwind
            // included.
            let _published = ambient.as_ref().map(|sink| {
                inflight_bounds::publish(fp.expect("fp with ambient"), slot, &key, sink)
            });
            let (result, stats) = run();
            guard.disarm();
            cache.complete(key, (result.clone(), stats.clone()));
            (result, stats)
        }
    };
    // Occupancy gauges follow every routed query (byte accounting is the
    // registry's LRU estimate — the same number its sweep budgets by).
    let reg = global();
    cache_metrics::handles()
        .bytes
        .set(reg.approx_bytes() as i64);
    cache_metrics::handles().variants.set(reg.len() as i64);
    answer
}

/// Process-lifetime counters and occupancy gauges of the cross-call
/// registry, mirrored into the `obs` metrics registry. Observational
/// only — cache behavior never depends on them.
mod cache_metrics {
    use obs::metrics::{counter, gauge, Counter, Gauge};
    use std::sync::{Arc, OnceLock};

    pub(super) struct Handles {
        pub hits: Arc<Counter>,
        pub misses: Arc<Counter>,
        pub inflight_dedup: Arc<Counter>,
        pub bytes: Arc<Gauge>,
        pub variants: Arc<Gauge>,
    }

    pub(super) fn handles() -> &'static Handles {
        static HANDLES: OnceLock<Handles> = OnceLock::new();
        HANDLES.get_or_init(|| Handles {
            hits: counter(
                "hgtool_result_cache_hits_total",
                "Whole-query answers served from the cross-call result cache",
            ),
            misses: counter(
                "hgtool_result_cache_misses_total",
                "Whole-query searches that ran because no cached answer existed",
            ),
            inflight_dedup: counter(
                "hgtool_inflight_dedup_total",
                "Duplicate queries that parked on an in-flight identical search",
            ),
            bytes: gauge(
                "hgtool_result_cache_bytes",
                "Approximate byte occupancy of the cross-call price+result registry",
            ),
            variants: gauge(
                "hgtool_result_cache_variants",
                "Instance variants resident in the cross-call registry",
            ),
        })
    }
}

/// The registry making anytime bounds of in-flight queries observable:
/// `(instance fingerprint, slot, key)` of each owned [`cached_query`]
/// computation maps to the owner's ambient [`crate::anytime::BoundSink`]
/// while the computation runs.
mod inflight_bounds {
    use super::*;
    use crate::anytime::BoundSink;

    type Key = (u128, &'static str, String);

    fn registry() -> &'static Mutex<HashMap<Key, BoundSink>> {
        static REGISTRY: OnceLock<Mutex<HashMap<Key, BoundSink>>> = OnceLock::new();
        REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
    }

    /// If `(h, slot, key)` is in flight, attach `sink` as a listener of
    /// the owner's sink (replays best-so-far, then streams improvements).
    /// Returns the fingerprint so the caller can reuse it for
    /// [`publish`].
    pub(super) fn attach_waiter(
        h: &Hypergraph,
        slot: &'static str,
        key: &str,
        sink: &BoundSink,
    ) -> Fingerprint {
        let fp = crate::fingerprint(h);
        let owner = registry()
            .lock()
            .expect("in-flight bound registry poisoned")
            .get(&(fp.0, slot, key.to_string()))
            .cloned();
        if let Some(owner) = owner {
            owner.attach(sink.clone());
        }
        fp
    }

    /// Publishes `sink` as the in-flight owner of `(fp, slot, key)`;
    /// the registration is removed when the returned guard drops.
    pub(super) fn publish(
        fp: Fingerprint,
        slot: &'static str,
        key: &str,
        sink: &BoundSink,
    ) -> Published {
        let k: Key = (fp.0, slot, key.to_string());
        registry()
            .lock()
            .expect("in-flight bound registry poisoned")
            .insert(k.clone(), sink.clone());
        Published { key: k }
    }

    pub(super) struct Published {
        key: Key,
    }

    impl Drop for Published {
        fn drop(&mut self) {
            registry()
                .lock()
                .expect("in-flight bound registry poisoned")
                .remove(&self.key);
        }
    }
}

/// Abandons an owned result claim on unwind unless disarmed, so a
/// panicking search cannot strand parked duplicate queries forever.
struct QueryGuard<'c, R: Clone> {
    cache: &'c ShardedCache<String, (R, SearchStats)>,
    key: Option<&'c String>,
}

impl<R: Clone> QueryGuard<'_, R> {
    fn disarm(mut self) {
        self.key = None;
    }
}

impl<R: Clone> Drop for QueryGuard<'_, R> {
    fn drop(&mut self) {
        if let Some(key) = self.key.take() {
            self.cache.abandon(key);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypergraph::generators;

    /// A private registry leaked to `'static` (sessions borrow it).
    fn private(budget: usize) -> &'static GlobalPriceCache {
        Box::leak(Box::new(GlobalPriceCache::new(budget)))
    }

    #[test]
    fn session_cache_reports_per_checkout_deltas() {
        let h = generators::path(3);
        let first: SessionCache<u32, u32> = SessionCache::open(&h, "test-slot-deltas", true);
        first.cache.get_or_insert_with(&1, || 10);
        first.cache.get_or_insert_with(&1, || 10);
        assert_eq!(first.deltas(), (1, 1, 0));
        let second: SessionCache<u32, u32> = SessionCache::open(&h, "test-slot-deltas", true);
        second.cache.get_or_insert_with(&1, || 10);
        assert_eq!(second.deltas(), (1, 0, 1), "cross-checkout hit is warm");
    }

    #[test]
    fn repeated_sessions_share_and_warm() {
        let h = generators::cycle(4);
        let s1 = global().session(&h);
        assert!(s1.is_shared());
        let c1 = s1.cache::<u32, u32>("test-slot-a");
        c1.complete(7, 9);
        let s2 = global().session(&h);
        let c2 = s2.cache::<u32, u32>("test-slot-a");
        assert_eq!(c2.get(&7), Some(9), "second session sees cached prices");
        assert!(c2.warm_hits() >= 1, "cross-call hit counted as warm");
    }

    #[test]
    fn fresh_sessions_are_private() {
        let h = generators::cycle(5);
        let s1 = PriceSession::fresh();
        let c1 = s1.cache::<u32, u32>("test-slot-b");
        c1.complete(1, 2);
        let s2 = PriceSession::fresh();
        let c2 = s2.cache::<u32, u32>("test-slot-b");
        assert_eq!(c2.get(&1), None);
        let _ = &h;
    }

    #[test]
    fn lru_evicts_least_recently_used_variant_under_byte_pressure() {
        let reg = private(2_000);
        let h1 = generators::path(3);
        let h2 = generators::cycle(4);
        let h3 = generators::star(4);
        // Register h1 and h2 and give each a slot worth ~1.5k bytes (the
        // sharding skeleton alone is most of it).
        reg.session(&h1).cache::<u32, u32>("t").complete(1, 1);
        reg.session(&h2).cache::<u32, u32>("t").complete(2, 2);
        assert_eq!(reg.len(), 2);
        // Touch h1 so h2 is the LRU victim, then open h3: the sweep must
        // evict h2 (and possibly h1), never the just-opened h3.
        let s1 = reg.session(&h1);
        assert!(s1.is_shared());
        let s3 = reg.session(&h3);
        assert!(s3.is_shared());
        let survivors = reg.len();
        assert!(survivors <= 2, "budget forces eviction, kept {survivors}");
        // h2 was evicted: a new session starts from an empty slot.
        let c2 = reg.session(&h2).cache::<u32, u32>("t");
        assert_eq!(c2.get(&2), None, "evicted variant lost its entries");
    }

    #[test]
    fn sweep_never_evicts_the_just_opened_session() {
        let reg = private(0); // everything is over budget
        let h = generators::path(4);
        reg.session(&h).cache::<u32, u32>("t").complete(1, 1);
        // Reopening under a zero budget keeps the reopened variant alive
        // for this session even though it exceeds the budget.
        let s = reg.session(&h);
        assert!(s.is_shared());
        assert_eq!(s.cache::<u32, u32>("t").get(&1), Some(1));
    }

    #[test]
    fn cached_query_replays_results_and_counts_hits() {
        let h = generators::cycle(6);
        let mut runs = 0;
        let (v1, s1) = cached_query(&h, "test-result-slot", "k=2".into(), true, || {
            runs += 1;
            let stats = SearchStats {
                states: 5,
                ..SearchStats::default()
            };
            (41_u32, stats)
        });
        assert_eq!((v1, s1.result_cache_hits), (41, 0));
        let (v2, s2) = cached_query(&h, "test-result-slot", "k=2".into(), true, || {
            runs += 1;
            (0_u32, SearchStats::default())
        });
        assert_eq!(runs, 1, "second identical query never ran");
        assert_eq!(v2, 41);
        assert_eq!(s2.result_cache_hits, 1);
        assert_eq!(s2.states, 5, "stored engine counters replayed");
        // A different key is a different query.
        let (v3, _) = cached_query(&h, "test-result-slot", "k=3".into(), true, || {
            runs += 1;
            (7_u32, SearchStats::default())
        });
        assert_eq!((runs, v3), (2, 7));
        // Reuse off bypasses the cache entirely.
        let (v4, s4) = cached_query(&h, "test-result-slot", "k=2".into(), false, || {
            runs += 1;
            (13_u32, SearchStats::default())
        });
        assert_eq!((runs, v4, s4.result_cache_hits), (3, 13, 0));
    }

    #[test]
    fn inflight_duplicate_queries_park_and_dedup() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let h = generators::cycle(7);
        let started = AtomicBool::new(false);
        std::thread::scope(|s| {
            let owner = s.spawn(|| {
                cached_query(&h, "test-dedup-slot", "q".into(), true, || {
                    started.store(true, Ordering::SeqCst);
                    // Hold the Pending claim long enough for the duplicate
                    // query on the main thread to park on it.
                    std::thread::sleep(std::time::Duration::from_millis(100));
                    let stats = SearchStats {
                        states: 3,
                        ..SearchStats::default()
                    };
                    (99_u32, stats)
                })
            });
            while !started.load(Ordering::SeqCst) {
                std::thread::yield_now();
            }
            let (v, stats) = cached_query::<u32>(&h, "test-dedup-slot", "q".into(), true, || {
                unreachable!("the duplicate must adopt the in-flight answer")
            });
            let (vo, so) = owner.join().expect("owner completes");
            assert_eq!((vo, so.result_cache_hits), (99, 0), "one search ran");
            assert_eq!(v, 99, "waiter adopted the owner's answer");
            assert_eq!(stats.result_cache_hits, 1);
            assert_eq!(stats.inflight_dedup, 1, "the duplicate parked in flight");
            assert_eq!(stats.states, 3, "owner's engine counters replayed");
        });
    }

    #[test]
    fn cached_query_abandons_on_panic() {
        let h = generators::grid(2, 2);
        let attempt = std::panic::catch_unwind(|| {
            cached_query::<u32>(&h, "test-panic-slot", "x".into(), true, || {
                panic!("search blew up")
            })
        });
        assert!(attempt.is_err());
        // The claim was abandoned, not left Pending: a retry runs and
        // completes instead of parking forever.
        let (v, _) = cached_query(&h, "test-panic-slot", "x".into(), true, || {
            (3_u32, SearchStats::default())
        });
        assert_eq!(v, 3);
    }
}
