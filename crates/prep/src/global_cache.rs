//! The process-lifetime, fingerprint-keyed cross-call price cache.
//!
//! The per-search `ρ`/`ρ*` caches of PR 2 die with their search, so
//! repeated searches on one instance (`hgtool widths` running three
//! engines, `fhw_frac_search` iterating budgets, the strict-HD integer
//! search, the agreement test suites) re-price every bag from scratch.
//! This registry keeps one [`cover::ShardedCache`] per
//! `(hypergraph fingerprint, cache slot)` alive for the process lifetime,
//! so a bag priced once is priced never again — across calls, strategies
//! and thread counts.
//!
//! Soundness: a price is only valid for the instance it was computed on,
//! so the registry stores the full [`CanonicalForm`] next to the caches
//! and compares it on every lookup. A fingerprint collision (or any
//! mismatch) falls back to a fresh, unregistered session — never to wrong
//! prices. Eviction is FIFO over fingerprints, capped at
//! [`MAX_FINGERPRINTS`], which bounds memory across long test runs.
//!
//! Determinism: widths and witnesses are unaffected by reuse (prices are
//! exact values). The `price_*` counters of a session *are* affected —
//! that is the point — so the engine determinism tests run with
//! `reuse_prices` off and fresh caches instead.

use crate::fingerprint::{canonical_form, fingerprint_of_canon, CanonicalForm, Fingerprint};
use cover::ShardedCache;
use hypergraph::Hypergraph;
use std::any::Any;
use std::collections::HashMap;
use std::hash::Hash;
use std::sync::{Arc, Mutex, OnceLock};

/// Maximum registered fingerprints before FIFO eviction.
const MAX_FINGERPRINTS: usize = 64;

/// One registered instance: its exact incidence structure (collision
/// guard) and a slot map of type-erased shared caches.
struct Entry {
    canon: CanonicalForm,
    num_vertices: usize,
    slots: HashMap<&'static str, Arc<dyn Any + Send + Sync>>,
}

/// The process-lifetime registry. Obtain it through [`global`].
pub struct GlobalPriceCache {
    entries: Mutex<(HashMap<u128, Entry>, Vec<u128>)>,
}

/// The process-wide registry instance.
pub fn global() -> &'static GlobalPriceCache {
    static GLOBAL: OnceLock<GlobalPriceCache> = OnceLock::new();
    GLOBAL.get_or_init(|| GlobalPriceCache {
        entries: Mutex::new((HashMap::new(), Vec::new())),
    })
}

impl GlobalPriceCache {
    /// Opens a price session for `h`: cached slots of the same instance
    /// are shared (their generation advanced, so reuse shows up in
    /// [`cover::ShardedCache::warm_hits`]); an unknown instance is
    /// registered; a fingerprint collision yields a fresh unshared
    /// session.
    pub fn session(&self, h: &Hypergraph) -> PriceSession {
        let canon = canonical_form(h);
        let fp = fingerprint_of_canon(h.num_vertices(), &canon);
        let mut guard = self.entries.lock().expect("price registry poisoned");
        let (entries, order) = &mut *guard;
        match entries.get(&fp.0) {
            Some(entry) if entry.canon == canon && entry.num_vertices == h.num_vertices() => {
                PriceSession { registry: Some(fp) }
            }
            Some(_) => PriceSession::fresh(), // collision: never share
            None => {
                if order.len() >= MAX_FINGERPRINTS {
                    let evict = order.remove(0);
                    entries.remove(&evict);
                }
                entries.insert(
                    fp.0,
                    Entry {
                        canon,
                        num_vertices: h.num_vertices(),
                        slots: HashMap::new(),
                    },
                );
                order.push(fp.0);
                PriceSession { registry: Some(fp) }
            }
        }
    }

    /// The registered shared cache for `(fingerprint, slot)`, created on
    /// first use. `None` when the fingerprint was evicted meanwhile.
    fn slot<K, V>(&self, fp: Fingerprint, name: &'static str) -> Option<Arc<ShardedCache<K, V>>>
    where
        K: Eq + Hash + Send + Sync + 'static,
        V: Clone + Send + Sync + 'static,
    {
        let mut guard = self.entries.lock().expect("price registry poisoned");
        let (entries, _) = &mut *guard;
        let entry = entries.get_mut(&fp.0)?;
        let slot = entry
            .slots
            .entry(name)
            .or_insert_with(|| Arc::new(ShardedCache::<K, V>::new()) as Arc<dyn Any + Send + Sync>);
        let cache = Arc::clone(slot)
            .downcast::<ShardedCache<K, V>>()
            .expect("slot name reused with a different cache type");
        Some(cache)
    }

    /// Registered fingerprints (diagnostics).
    pub fn len(&self) -> usize {
        self.entries
            .lock()
            .expect("price registry poisoned")
            .1
            .len()
    }

    /// True when nothing is registered yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A per-search handle to the shared caches of one instance (or to fresh
/// private caches when reuse is off / collided / evicted).
pub struct PriceSession {
    /// `Some(fp)` when backed by the registry.
    registry: Option<Fingerprint>,
}

impl PriceSession {
    /// A session with private caches only (reuse disabled).
    pub fn fresh() -> Self {
        PriceSession { registry: None }
    }

    /// True when backed by the process-lifetime registry.
    pub fn is_shared(&self) -> bool {
        self.registry.is_some()
    }

    /// The cache for `slot`, shared across calls when the session is
    /// registry-backed (its generation is advanced so cross-call hits are
    /// counted as warm), private otherwise.
    pub fn cache<K, V>(&self, slot: &'static str) -> Arc<ShardedCache<K, V>>
    where
        K: Eq + Hash + Send + Sync + 'static,
        V: Clone + Send + Sync + 'static,
    {
        let shared = self.registry.and_then(|fp| global().slot::<K, V>(fp, slot));
        match shared {
            Some(cache) => {
                cache.advance_generation();
                cache
            }
            None => Arc::new(ShardedCache::new()),
        }
    }
}

/// One strategy cache checked out of a session, carrying the counter
/// baselines taken at checkout so a search can report *its own* traffic —
/// the shared cache's counters are cumulative across every search that
/// ever borrowed it. This is the one place the baseline/delta bookkeeping
/// lives; the strategy wrappers in `hd`/`ghd`/`fhd` all go through it.
pub struct SessionCache<K, V> {
    /// The (shared or private) cache itself.
    pub cache: Arc<ShardedCache<K, V>>,
    base_hits: usize,
    base_misses: usize,
    base_warm: usize,
}

impl<K, V> SessionCache<K, V>
where
    K: Eq + Hash + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
{
    /// Opens the `slot` cache for `h`: registry-backed when `reuse` asks
    /// for it (and `HGTOOL_NO_PREP` doesn't veto it), private otherwise —
    /// with counter baselines snapshotted for [`SessionCache::deltas`].
    pub fn open(h: &Hypergraph, slot: &'static str, reuse: bool) -> Self {
        let session = if crate::reuse_enabled(reuse) {
            global().session(h)
        } else {
            PriceSession::fresh()
        };
        let cache = session.cache::<K, V>(slot);
        let (base_hits, base_misses) = cache.counters();
        let base_warm = cache.warm_hits();
        SessionCache {
            cache,
            base_hits,
            base_misses,
            base_warm,
        }
    }

    /// `(hits, misses, warm_hits)` accumulated since checkout — what the
    /// strategy wrappers surface as `price_hits`/`price_misses`/
    /// `price_warm_hits`. Process-history-independent on private caches;
    /// on shared ones, concurrent borrowers' traffic is included (which is
    /// why the determinism suites run with reuse off).
    pub fn deltas(&self) -> (usize, usize, usize) {
        let (hits, misses) = self.cache.counters();
        (
            hits - self.base_hits,
            misses - self.base_misses,
            self.cache.warm_hits() - self.base_warm,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypergraph::generators;

    #[test]
    fn session_cache_reports_per_checkout_deltas() {
        let h = generators::path(3);
        let first: SessionCache<u32, u32> = SessionCache::open(&h, "test-slot-deltas", true);
        first.cache.get_or_insert_with(&1, || 10);
        first.cache.get_or_insert_with(&1, || 10);
        assert_eq!(first.deltas(), (1, 1, 0));
        let second: SessionCache<u32, u32> = SessionCache::open(&h, "test-slot-deltas", true);
        second.cache.get_or_insert_with(&1, || 10);
        assert_eq!(second.deltas(), (1, 0, 1), "cross-checkout hit is warm");
    }

    #[test]
    fn repeated_sessions_share_and_warm() {
        let h = generators::cycle(4);
        let s1 = global().session(&h);
        assert!(s1.is_shared());
        let c1 = s1.cache::<u32, u32>("test-slot-a");
        c1.complete(7, 9);
        let s2 = global().session(&h);
        let c2 = s2.cache::<u32, u32>("test-slot-a");
        assert_eq!(c2.get(&7), Some(9), "second session sees cached prices");
        assert!(c2.warm_hits() >= 1, "cross-call hit counted as warm");
    }

    #[test]
    fn fresh_sessions_are_private() {
        let h = generators::cycle(5);
        let s1 = PriceSession::fresh();
        let c1 = s1.cache::<u32, u32>("test-slot-b");
        c1.complete(1, 2);
        let s2 = PriceSession::fresh();
        let c2 = s2.cache::<u32, u32>("test-slot-b");
        assert_eq!(c2.get(&1), None);
        let _ = &h;
    }
}
