//! Biconnected-block splitting.
//!
//! A cut vertex of the primal (Gaifman) graph separates the width
//! computation: `ghw`/`fhw` of the whole hypergraph is the maximum over
//! its biconnected blocks, because (a) every hyperedge is a primal clique
//! and therefore lies inside exactly one block, (b) each block instance is
//! (up to useless singleton edges) an induced subhypergraph, so its width
//! is at most the whole's (Lemma 2.7 monotonicity), and (c) block
//! decompositions glue back: re-root the child block's tree at a node
//! containing the shared cut vertex and hang it under any node of the
//! parent block containing that vertex — connectivity, covers and width
//! are all preserved because distinct blocks share nothing but the cut
//! vertex. Re-rooting is what makes this a `ghw`/`fhw` (not `hw`)
//! transformation: the special condition is orientation-sensitive.

use hypergraph::{Hypergraph, VertexSet};

/// One biconnected block: its vertices, plus the cut vertex ("anchor")
/// linking it to an earlier block in the output order (`None` for the
/// first block of each connected component).
#[derive(Clone, Debug)]
pub struct Block {
    /// The block's vertices.
    pub vertices: VertexSet,
    /// A vertex shared with the union of all earlier blocks, if any.
    pub anchor: Option<usize>,
}

/// Splits `h` into biconnected blocks of its primal graph, ordered so
/// every block after the first of its component carries an `anchor` cut
/// vertex shared with an earlier block. Vertices without primal neighbors
/// (only singleton edges) become singleton blocks.
pub fn split(h: &Hypergraph) -> Vec<Block> {
    let adj = h.primal_graph();
    let raw = biconnected_components(&adj);
    order_with_anchors(raw)
}

/// Hopcroft–Tarjan biconnected components over an adjacency list, each
/// returned as its vertex set. Iterative (explicit DFS stack), so deep
/// paths cannot overflow the call stack.
fn biconnected_components(adj: &[VertexSet]) -> Vec<VertexSet> {
    let n = adj.len();
    let mut disc = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut timer = 0usize;
    let mut blocks: Vec<VertexSet> = Vec::new();
    let mut edge_stack: Vec<(usize, usize)> = Vec::new();

    for root in 0..n {
        if disc[root] != usize::MAX {
            continue;
        }
        if adj[root].is_empty() {
            // Primal-isolated vertex: its own (degenerate) block.
            blocks.push(VertexSet::from_iter([root]));
            continue;
        }
        // Frame: (vertex, parent, neighbor iterator position).
        let mut stack: Vec<(usize, usize, Vec<usize>, usize)> = Vec::new();
        disc[root] = timer;
        low[root] = timer;
        timer += 1;
        stack.push((root, usize::MAX, adj[root].to_vec(), 0));
        while let Some(frame) = stack.last_mut() {
            let (u, parent, neighbors, cursor) = (frame.0, frame.1, &frame.2, frame.3);
            if cursor < neighbors.len() {
                let v = neighbors[cursor];
                frame.3 += 1;
                if disc[v] == usize::MAX {
                    edge_stack.push((u, v));
                    disc[v] = timer;
                    low[v] = timer;
                    timer += 1;
                    stack.push((v, u, adj[v].to_vec(), 0));
                } else if v != parent && disc[v] < disc[u] {
                    edge_stack.push((u, v));
                    low[u] = low[u].min(disc[v]);
                }
            } else {
                stack.pop();
                if let Some(above) = stack.last_mut() {
                    let p = above.0;
                    low[p] = low[p].min(low[u]);
                    if low[u] >= disc[p] {
                        // `p` articulates `u`'s subtree: pop its block.
                        let mut block = VertexSet::new();
                        while let Some(&(a, b)) = edge_stack.last() {
                            if disc[a] >= disc[u] || (a, b) == (p, u) {
                                block.insert(a);
                                block.insert(b);
                                edge_stack.pop();
                                if (a, b) == (p, u) {
                                    break;
                                }
                            } else {
                                break;
                            }
                        }
                        if !block.is_empty() {
                            blocks.push(block);
                        }
                    }
                }
            }
        }
    }
    blocks
}

/// Orders blocks so each one (after its component's first) names a cut
/// vertex shared with an earlier block.
fn order_with_anchors(mut raw: Vec<VertexSet>) -> Vec<Block> {
    let mut out: Vec<Block> = Vec::new();
    let mut placed = VertexSet::new();
    while !raw.is_empty() {
        // First block touching the placed set; otherwise a new component.
        let pos = raw.iter().position(|b| b.intersects(&placed)).unwrap_or(0);
        let vertices = raw.remove(pos);
        let anchor = vertices.intersection(&placed).first();
        placed.union_with(&vertices);
        out.push(Block { vertices, anchor });
    }
    out
}

/// Assigns every edge of `h` to the unique block containing all its
/// vertices (singleton edges pick the first such block). Returns, per
/// block, the edge indices in ascending order.
pub fn assign_edges(h: &Hypergraph, blocks: &[Block]) -> Vec<Vec<usize>> {
    let mut per_block: Vec<Vec<usize>> = vec![Vec::new(); blocks.len()];
    for e in 0..h.num_edges() {
        let edge = h.edge(e);
        let slot = blocks
            .iter()
            .position(|b| edge.is_subset(&b.vertices))
            .unwrap_or_else(|| panic!("edge {e} crosses biconnected blocks"));
        per_block[slot].push(e);
    }
    per_block
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypergraph::generators;

    #[test]
    fn cycles_are_one_block() {
        let h = generators::cycle(5);
        let blocks = split(&h);
        assert_eq!(blocks.len(), 1);
        assert_eq!(blocks[0].vertices.len(), 5);
        assert_eq!(blocks[0].anchor, None);
    }

    #[test]
    fn two_triangles_sharing_a_vertex_split() {
        // Triangles {0,1,2} and {2,3,4} share the cut vertex 2.
        let h = Hypergraph::from_edges(
            5,
            vec![
                vec![0, 1],
                vec![1, 2],
                vec![2, 0],
                vec![2, 3],
                vec![3, 4],
                vec![4, 2],
            ],
        );
        let blocks = split(&h);
        assert_eq!(blocks.len(), 2);
        assert_eq!(blocks[0].anchor, None);
        assert_eq!(blocks[1].anchor, Some(2));
        let mut union = VertexSet::new();
        for b in &blocks {
            assert_eq!(b.vertices.len(), 3);
            union.union_with(&b.vertices);
        }
        assert_eq!(union, h.all_vertices());
        let edges = assign_edges(&h, &blocks);
        assert_eq!(edges.iter().map(Vec::len).sum::<usize>(), 6);
        assert!(edges.iter().all(|e| e.len() == 3));
    }

    #[test]
    fn bridges_are_their_own_blocks() {
        let h = generators::path(4);
        let blocks = split(&h);
        assert_eq!(blocks.len(), 3, "each path edge is a block");
        for b in &blocks[1..] {
            assert!(b.anchor.is_some());
        }
    }

    #[test]
    fn disconnected_components_get_no_anchor() {
        let h = Hypergraph::from_edges(4, vec![vec![0, 1], vec![2, 3]]);
        let blocks = split(&h);
        assert_eq!(blocks.len(), 2);
        assert_eq!(blocks[0].anchor, None);
        assert_eq!(blocks[1].anchor, None);
    }
}
