//! Canonical hypergraph fingerprints for the cross-call price cache.
//!
//! The fingerprint is a 128-bit hash of the *canonicalized incidence
//! structure*: the vertex count plus the edge contents (each edge as its
//! sorted vertex list), in edge-index order. Names never enter — only the
//! structure addressable by indices does. It is deliberately **not** a
//! graph canonical form, and deliberately **not** edge-order-independent
//! either: cached prices carry vertex *and edge* indices (a `ρ*` witness
//! is a sparse weight list by edge id), so a cached value is only valid
//! for an instance with the identical numbering of both. Two hypergraphs
//! with the same edge multiset but permuted edge ids — e.g. a cycle and a
//! clique on three vertices — must not share prices.
//!
//! Collisions are not trusted: the registry stores the canonical form next
//! to the caches and compares it on every lookup (see
//! [`crate::global_cache`]), so a colliding instance falls back to fresh
//! caches instead of reading wrong prices.

use hypergraph::Hypergraph;
use std::fmt;

/// A 128-bit hash of a hypergraph's incidence structure.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Fingerprint(pub u128);

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// The canonical incidence structure: every edge as its sorted vertex
/// list, in edge-index order. Together with the vertex count this
/// identifies the instance exactly (up to names), which is what the
/// registry compares to rule out hash collisions.
pub type CanonicalForm = Vec<Vec<usize>>;

/// Computes the canonical form of `h`.
pub fn canonical_form(h: &Hypergraph) -> CanonicalForm {
    h.edges().iter().map(|e| e.to_vec()).collect()
}

/// 64-bit FNV-1a over a word stream, with a caller-chosen basis so two
/// passes yield independent halves of the 128-bit fingerprint.
fn fnv1a(words: impl Iterator<Item = u64>, basis: u64) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut state = basis;
    for w in words {
        for byte in w.to_le_bytes() {
            state ^= byte as u64;
            state = state.wrapping_mul(PRIME);
        }
    }
    state
}

/// Fingerprints `h` (vertex- and edge-index-sensitive, name-blind).
pub fn fingerprint(h: &Hypergraph) -> Fingerprint {
    let canon = canonical_form(h);
    fingerprint_of_canon(h.num_vertices(), &canon)
}

/// Fingerprints an already-canonicalized incidence structure.
pub fn fingerprint_of_canon(num_vertices: usize, canon: &CanonicalForm) -> Fingerprint {
    // Word stream: |V|, then per edge its length followed by its vertices
    // (the explicit lengths make the stream prefix-free across edges).
    let words = |canon: &CanonicalForm| {
        let mut out: Vec<u64> =
            Vec::with_capacity(1 + canon.iter().map(|e| e.len() + 1).sum::<usize>());
        out.push(num_vertices as u64);
        for e in canon {
            out.push(e.len() as u64);
            out.extend(e.iter().map(|&v| v as u64));
        }
        out
    };
    let stream = words(canon);
    let lo = fnv1a(stream.iter().copied(), 0xcbf2_9ce4_8422_2325);
    let hi = fnv1a(stream.iter().copied(), 0x6c62_272e_07bb_0142);
    Fingerprint(((hi as u128) << 64) | lo as u128)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_order_matters_because_prices_are_index_addressed() {
        // A cached cover is a weight list by *edge id*, so instances with
        // permuted edge ids (cycle vs clique on 3 vertices!) must not
        // share a fingerprint.
        let a = Hypergraph::from_edges(3, vec![vec![0, 1], vec![1, 2]]);
        let b = Hypergraph::from_edges(3, vec![vec![1, 2], vec![0, 1]]);
        assert_ne!(fingerprint(&a), fingerprint(&b));
    }

    #[test]
    fn vertex_order_inside_an_edge_does_not_matter() {
        let a = Hypergraph::from_edges(3, vec![vec![0, 1, 2]]);
        let b = Hypergraph::from_edges(3, vec![vec![2, 0, 1]]);
        assert_eq!(fingerprint(&a), fingerprint(&b));
    }

    #[test]
    fn structure_matters() {
        let a = Hypergraph::from_edges(3, vec![vec![0, 1], vec![1, 2]]);
        let b = Hypergraph::from_edges(3, vec![vec![0, 1], vec![0, 2]]);
        let c = Hypergraph::from_edges(4, vec![vec![0, 1], vec![1, 2]]);
        assert_ne!(fingerprint(&a), fingerprint(&b), "different incidence");
        assert_ne!(fingerprint(&a), fingerprint(&c), "different vertex count");
    }

    #[test]
    fn names_do_not_matter() {
        let a = Hypergraph::from_parts(
            vec!["x".into(), "y".into()],
            vec!["r".into()],
            vec![vec![0, 1]],
        );
        let b = Hypergraph::from_edges(2, vec![vec![0, 1]]);
        assert_eq!(fingerprint(&a), fingerprint(&b));
    }
}
