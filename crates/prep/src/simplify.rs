//! Width-preserving simplification passes.
//!
//! Each pass shrinks the hypergraph while provably preserving the target
//! width notion, and records a [`Step`] so witnesses lift back (see
//! `crate::lift`). Passes run to a joint fixpoint — the combination of
//! [`Pass::DegreeOneVertices`] and [`Pass::SubsumedEdges`] iterated to
//! exhaustion is exactly the GYO ear-elimination: an α-acyclic hypergraph
//! reduces to a single edge.
//!
//! Safety matrix (which pass is exact for which width — see the crate
//! README for the proofs/arguments):
//!
//! | pass                | `hw` | `ghw` | `fhw` |
//! |---------------------|------|-------|-------|
//! | `DuplicateEdges`    |  ✓   |   ✓   |   ✓   |
//! | `TwinVertices`      |  ✓   |   ✓   |   ✓   |
//! | `SubsumedEdges`     |  ✗   |   ✓   |   ✓   |
//! | `DegreeOneVertices` |  ✗   |   ✓   |   ✓   |
//!
//! The two `✗`s are the special condition: replacing a subsumed edge by
//! its superset inside a `λ` enlarges `V(λ_b)`, and attaching a fresh leaf
//! for a reinstated degree-one vertex puts that vertex under ancestors
//! whose `λ` may use its edge — either can violate
//! `V(T_b) ∩ V(λ_b) ⊆ B_b`. Decision strategies bound to the (weak)
//! special condition therefore run the conservative profile.

use hypergraph::{Hypergraph, VertexSet};

/// One simplification pass.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Pass {
    /// Remove an edge whose content equals another's (the lower-indexed
    /// copy is kept). Safe for `hw`/`ghw`/`fhw`.
    DuplicateEdges,
    /// Remove an edge whose content is a *strict* subset of another's
    /// (edge domination). Safe for `ghw`/`fhw`.
    SubsumedEdges,
    /// Collapse vertices with identical incidence (mutually dominating
    /// "twins") onto the lowest-indexed representative. Safe for
    /// `hw`/`ghw`/`fhw`.
    TwinVertices,
    /// Remove a vertex that appears in exactly one edge (of size ≥ 2).
    /// Safe for `ghw`/`fhw`.
    DegreeOneVertices,
}

/// One recorded reduction step, in **original** vertex/edge indices.
/// Steps are recorded in application order; lifting replays them in
/// reverse.
#[derive(Clone, Debug)]
pub enum Step {
    /// Edge `removed` was dropped because its content (at that point) was
    /// contained in edge `kept`'s; `equal` distinguishes exact duplicates
    /// from strict subsumption.
    EdgeSubsumed {
        /// The dropped edge (original index).
        removed: usize,
        /// The covering edge (original index).
        kept: usize,
        /// True when the contents were identical.
        equal: bool,
    },
    /// Vertex `removed` had the same incidence as `twin` and was dropped.
    TwinVertex {
        /// The dropped vertex (original index).
        removed: usize,
        /// The kept representative (original index).
        twin: usize,
    },
    /// Vertex `vertex` appeared only in `edge`; `rest` is that edge's
    /// other content at removal time (original indices) — the anchor the
    /// lift attaches the reinstated leaf node to.
    DegreeOneVertex {
        /// The dropped vertex (original index).
        vertex: usize,
        /// Its single edge (original index).
        edge: usize,
        /// `edge`'s content minus `vertex` at removal time.
        rest: VertexSet,
    },
}

/// The outcome of running passes to fixpoint: the surviving structure (in
/// original indices) plus the step trace.
#[derive(Clone, Debug)]
pub struct Simplified {
    /// Steps in application order.
    pub steps: Vec<Step>,
    /// Surviving vertices (original indices).
    pub alive_vertices: VertexSet,
    /// Surviving edges (original indices, ascending).
    pub alive_edges: Vec<usize>,
}

impl Simplified {
    /// Vertices removed.
    pub fn vertices_removed(&self, h: &Hypergraph) -> usize {
        h.num_vertices() - self.alive_vertices.len()
    }

    /// Edges removed.
    pub fn edges_removed(&self, h: &Hypergraph) -> usize {
        h.num_edges() - self.alive_edges.len()
    }
}

/// Mutable reduction state over the original hypergraph: which vertices
/// and edges survive; an edge's *content* is its original vertex set
/// intersected with the alive set.
struct State<'a> {
    h: &'a Hypergraph,
    alive_v: VertexSet,
    alive_e: Vec<bool>,
    content: Vec<VertexSet>,
    steps: Vec<Step>,
}

impl State<'_> {
    fn alive_edges(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.h.num_edges()).filter(|&e| self.alive_e[e])
    }

    fn remove_vertex(&mut self, v: usize) {
        self.alive_v.remove(v);
        for e in 0..self.h.num_edges() {
            if self.alive_e[e] {
                self.content[e].remove(v);
            }
        }
    }

    /// One sweep of edge dedup/subsumption. `strict` also removes strict
    /// subsets; otherwise only exact duplicates go.
    fn edge_pass(&mut self, strict: bool) -> bool {
        let mut changed = false;
        let edges: Vec<usize> = self.alive_edges().collect();
        for &e in &edges {
            if !self.alive_e[e] {
                continue;
            }
            for &f in &edges {
                if e == f || !self.alive_e[f] || !self.alive_e[e] {
                    continue;
                }
                let equal = self.content[e] == self.content[f];
                // On equality drop the higher index, so the survivor is
                // deterministic whichever way the pair is visited.
                let drop_e = if equal {
                    e > f
                } else {
                    strict && self.content[e].is_subset(&self.content[f])
                };
                if drop_e {
                    self.alive_e[e] = false;
                    self.steps.push(Step::EdgeSubsumed {
                        removed: e,
                        kept: f,
                        equal,
                    });
                    changed = true;
                    break;
                }
            }
        }
        changed
    }

    /// One sweep of twin-vertex collapse: vertices with identical alive
    /// incidence collapse onto the lowest index (one pass over the
    /// incidence signatures, not a pairwise scan).
    fn twin_pass(&mut self) -> bool {
        let mut changed = false;
        let mut groups: std::collections::HashMap<Vec<usize>, usize> =
            std::collections::HashMap::new();
        for v in self.alive_v.to_vec() {
            let signature: Vec<usize> = self
                .alive_edges()
                .filter(|&e| self.content[e].contains(v))
                .collect();
            match groups.entry(signature) {
                std::collections::hash_map::Entry::Vacant(slot) => {
                    slot.insert(v);
                }
                std::collections::hash_map::Entry::Occupied(slot) => {
                    // `to_vec` iterates ascending, so the group holder is
                    // the lowest index.
                    let twin = *slot.get();
                    self.remove_vertex(v);
                    self.steps.push(Step::TwinVertex { removed: v, twin });
                    changed = true;
                }
            }
        }
        changed
    }

    /// One sweep of degree-one vertex removal: a vertex in exactly one
    /// alive edge of size ≥ 2 is dropped (recording the edge's remaining
    /// content as the lift anchor).
    fn degree_one_pass(&mut self) -> bool {
        let mut changed = false;
        for v in self.alive_v.to_vec() {
            let incident: Vec<usize> = self
                .alive_edges()
                .filter(|&e| self.content[e].contains(v))
                .take(2)
                .collect();
            let [only] = incident[..] else {
                continue; // several edges, or isolated (the caller's problem)
            };
            if self.content[only].len() < 2 {
                continue;
            }
            let mut rest = self.content[only].clone();
            rest.remove(v);
            self.remove_vertex(v);
            self.steps.push(Step::DegreeOneVertex {
                vertex: v,
                edge: only,
                rest,
            });
            changed = true;
        }
        changed
    }
}

/// Runs `passes` to a joint fixpoint on `h`. The pass order within one
/// round follows the slice; rounds repeat until nothing changes, so the
/// result is the closure (for the minimizer profile: the GYO reduction
/// interleaved with twin collapse).
pub fn simplify(h: &Hypergraph, passes: &[Pass]) -> Simplified {
    let mut state = State {
        h,
        alive_v: h.all_vertices(),
        alive_e: vec![true; h.num_edges()],
        content: h.edges().to_vec(),
        steps: Vec::new(),
    };
    loop {
        let mut changed = false;
        for pass in passes {
            changed |= match pass {
                Pass::DuplicateEdges => state.edge_pass(false),
                Pass::SubsumedEdges => state.edge_pass(true),
                Pass::TwinVertices => state.twin_pass(),
                Pass::DegreeOneVertices => state.degree_one_pass(),
            };
        }
        if !changed {
            break;
        }
    }
    Simplified {
        steps: state.steps,
        alive_vertices: state.alive_v,
        alive_edges: (0..h.num_edges()).filter(|&e| state.alive_e[e]).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypergraph::generators;

    const ALL: &[Pass] = &[
        Pass::DuplicateEdges,
        Pass::SubsumedEdges,
        Pass::TwinVertices,
        Pass::DegreeOneVertices,
    ];

    #[test]
    fn acyclic_reduces_to_a_single_small_edge() {
        // GYO: paths are α-acyclic, so the fixpoint is one tiny edge.
        let h = generators::path(6);
        let s = simplify(&h, ALL);
        assert_eq!(s.alive_edges.len(), 1);
        assert!(s.alive_vertices.len() <= 2);
    }

    #[test]
    fn cycles_are_irreducible() {
        let h = generators::cycle(5);
        let s = simplify(&h, ALL);
        assert!(s.steps.is_empty());
        assert_eq!(s.alive_edges.len(), 5);
        assert_eq!(s.alive_vertices.len(), 5);
    }

    #[test]
    fn twins_collapse_onto_the_lowest_index() {
        // Vertices 1 and 2 sit in exactly the same edges.
        let h = Hypergraph::from_edges(4, vec![vec![0, 1, 2], vec![1, 2, 3], vec![0, 3]]);
        let s = simplify(&h, &[Pass::TwinVertices]);
        assert!(!s.alive_vertices.contains(2));
        assert!(s.alive_vertices.contains(1));
        assert!(matches!(
            s.steps[..],
            [Step::TwinVertex {
                removed: 2,
                twin: 1
            }]
        ));
    }

    #[test]
    fn duplicate_edges_keep_the_first_copy() {
        let h = Hypergraph::from_edges(2, vec![vec![0, 1], vec![0, 1]]);
        let s = simplify(&h, &[Pass::DuplicateEdges]);
        assert_eq!(s.alive_edges, vec![0]);
    }

    #[test]
    fn conservative_profile_skips_strict_subsumption() {
        let h = Hypergraph::from_edges(3, vec![vec![0, 1, 2], vec![0, 1]]);
        let s = simplify(&h, &[Pass::DuplicateEdges]);
        assert_eq!(s.alive_edges.len(), 2, "strict subset must survive");
        let s = simplify(&h, &[Pass::SubsumedEdges]);
        assert_eq!(s.alive_edges, vec![0], "strict subset removed");
    }

    #[test]
    fn degree_one_never_empties_an_edge() {
        // A single 1-vertex edge: the vertex has degree one but removing
        // it would empty the edge, so nothing happens.
        let h = Hypergraph::from_edges(1, vec![vec![0]]);
        let s = simplify(&h, ALL);
        assert!(s.steps.is_empty());
        assert_eq!(s.alive_vertices.len(), 1);
    }
}
