//! The shared search-statistics record filled in by the engine, the
//! strategy wrappers and the preprocessing pipeline.
//!
//! `SearchStats` lives in this crate (not in `solver`) so that the
//! prepare→solve→lift wrappers ([`crate::run_decision`] /
//! [`crate::run_minimizer`]) can report preprocessing counters while `prep`
//! stays strictly below `solver` in the dependency order; `solver`
//! re-exports the type, so engine users keep addressing it as
//! `solver::SearchStats`.

use arith::Rational;

/// Counters of one width search, exposed through `SearchContext::stats`
/// for tests, `hgtool widths --stats` and the `baseline` bin. The engine
/// fills the state/candidate counters; the strategy wrappers merge their
/// shared cover-price cache deltas, the candidate-generator tallies and
/// the preprocessing reduction counts on top.
///
/// Deterministic: with speculation off (the default), every counter is
/// identical at every thread count and across runs — states are evaluated
/// exactly once (in-flight memo dedup) and candidates are admitted against
/// per-round bound snapshots.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Search states evaluated (memo misses; exactly once per state).
    pub states: usize,
    /// Memo hits (including waits on an in-flight evaluation).
    pub memo_hits: usize,
    /// Guesses pulled from candidate streams. With eager `Vec` proposal
    /// this used to equal the whole candidate space; streaming decision
    /// searches stop pulling at the first witness.
    pub streamed: usize,
    /// Guesses admitted (priced successfully under the bound).
    pub admitted: usize,
    /// Cover/LP price-cache hits (ρ/ρ* priced bags served from cache).
    pub price_hits: usize,
    /// Cover/LP price-cache misses (ρ/ρ* prices actually computed).
    pub price_misses: usize,
    /// Price lookups served from entries cached by an *earlier* search in
    /// this process (the fingerprint-keyed cross-call cache). Always 0
    /// with price reuse off.
    pub price_warm_hits: usize,
    /// Candidate bags produced by the `candgen` edge-union enumerator
    /// before its filters ran (0 on the subset-oracle and fallback paths).
    pub cand_generated: usize,
    /// Candidate bags the enumerator discarded (duplicates, connector or
    /// progress violations, balancedness, hoisted pre-pricing gates) —
    /// `cand_generated - cand_filtered` is what the engine actually
    /// streamed from `candgen`.
    pub cand_filtered: usize,
    /// States whose edge-union candidate prefix was skipped because the
    /// per-state stream bound hit the adaptive cap (the state fell back to
    /// subset streaming alone).
    pub cand_cap_hits: usize,
    /// Simplex (Bland) iterations across every `ρ*` LP solve. Each bag is
    /// priced exactly once and the engine path solves it cold, so this is
    /// a pure per-bag sum — identical at every thread count.
    pub lp_pivots: u64,
    /// `ρ*` LP solves that warm-started from a retained basis (only the
    /// deterministic sequential pricers — heuristic upper bounds,
    /// elimination orderings — warm-start; the parallel engine path never
    /// does).
    pub lp_warm_starts: u64,
    /// `ρ*` LP solves performed from scratch (including warm-start
    /// fallbacks after a basis infeasibility).
    pub lp_cold_solves: u64,
    /// The heuristic upper bound that seeded the search's width ramp
    /// (`None` when no heuristic ran, e.g. the decision strategies).
    /// Merged across per-block searches as the maximum, matching how the
    /// block widths recombine.
    pub ub_width: Option<Rational>,
    /// Vertices removed by the preprocessing pipeline (0 with prep off).
    pub prep_vertices_removed: usize,
    /// Edges removed by the preprocessing pipeline (0 with prep off).
    pub prep_edges_removed: usize,
    /// Biconnected blocks solved independently (0 with prep off; 1 when
    /// prep ran but the instance is a single block).
    pub prep_blocks: usize,
    /// Whole-query answers served from the cross-call result cache (the
    /// search itself never ran). Always 0 with result reuse off.
    pub result_cache_hits: usize,
    /// Whole-query requests that deduplicated against an identical search
    /// already in flight in this process (this call parked and adopted the
    /// other search's answer instead of running its own).
    pub inflight_dedup: usize,
    /// 1 when the shared worker pool was already spun up by an earlier
    /// search when this call entered (pool threads were reused, not
    /// spawned), 0 otherwise. Set by the strategy wrappers, never by the
    /// engine — engine counters stay thread-count- and history-invariant.
    pub pool_reuse: usize,
}

impl SearchStats {
    /// Price-cache hit rate over all price lookups.
    pub fn price_hit_rate(&self) -> f64 {
        let total = self.price_hits + self.price_misses;
        if total == 0 {
            return 0.0;
        }
        self.price_hits as f64 / total as f64
    }

    /// Accumulates another search's counters into this one (used when one
    /// logical call runs several searches: the det-k `k`-iteration, the
    /// per-block searches of the preprocessing pipeline).
    ///
    /// # Merge rule
    ///
    /// Each field merges by exactly one of three rules, chosen by what the
    /// field *means* across sub-searches:
    ///
    /// * **Sum** — work counters (`states`, `memo_hits`, `streamed`,
    ///   `admitted`, the price/candgen/LP tallies, the prep reduction
    ///   counts, `result_cache_hits`, `inflight_dedup`): the work of a
    ///   whole call is the work of its parts, so they add.
    /// * **Max** — `ub_width`: per-block heuristic seeds recombine exactly
    ///   like the block widths themselves do (a decomposition of the whole
    ///   instance is as wide as its widest block), so the merged seed is
    ///   the maximum, with `None` treated as "no seed ran", not zero.
    ///   Summing here would fabricate a bound no heuristic ever produced.
    /// * **Max-as-OR** — `pool_reuse`: a 0/1 process-state flag; merging
    ///   the per-block searches of one call must keep it a flag (the pool
    ///   was either warm when the call entered or it was not).
    ///
    /// The exhaustive `merge_rule_per_field` test pins every field to its
    /// class — adding a field without choosing its rule breaks the test.
    pub fn merge(&mut self, other: &SearchStats) {
        self.states += other.states;
        self.memo_hits += other.memo_hits;
        self.streamed += other.streamed;
        self.admitted += other.admitted;
        self.price_hits += other.price_hits;
        self.price_misses += other.price_misses;
        self.price_warm_hits += other.price_warm_hits;
        self.cand_generated += other.cand_generated;
        self.cand_filtered += other.cand_filtered;
        self.cand_cap_hits += other.cand_cap_hits;
        self.lp_pivots += other.lp_pivots;
        self.lp_warm_starts += other.lp_warm_starts;
        self.lp_cold_solves += other.lp_cold_solves;
        self.ub_width = match (self.ub_width.take(), other.ub_width.clone()) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
        self.prep_vertices_removed += other.prep_vertices_removed;
        self.prep_edges_removed += other.prep_edges_removed;
        self.prep_blocks += other.prep_blocks;
        self.result_cache_hits += other.result_cache_hits;
        self.inflight_dedup += other.inflight_dedup;
        // A 0/1 process-state flag, not a count: merging per-block searches
        // of one call keeps it a flag.
        self.pool_reuse = self.pool_reuse.max(other.pool_reuse);
    }

    /// Zeroes the process-history-dependent runtime counters
    /// (`result_cache_hits`, `inflight_dedup`, `pool_reuse`), leaving the
    /// deterministic engine counters. The identity test suites compare
    /// `stats.engine_only()` across cache-on/cache-off and thread-count
    /// runs — the runtime counters are *expected* to differ there.
    pub fn engine_only(&self) -> SearchStats {
        SearchStats {
            result_cache_hits: 0,
            inflight_dedup: 0,
            pool_reuse: 0,
            ..self.clone()
        }
    }
}

impl cover::MemSize for SearchStats {
    fn approx_bytes(&self) -> usize {
        let heap = self.ub_width.as_ref().map_or(0, |w| {
            cover::MemSize::approx_bytes(w).saturating_sub(std::mem::size_of::<Rational>())
        });
        std::mem::size_of::<Self>() + heap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sums_counters_and_maxes_the_seed() {
        let mut a = SearchStats {
            states: 2,
            cand_generated: 5,
            ub_width: Some(Rational::from_int(2)),
            ..SearchStats::default()
        };
        let b = SearchStats {
            states: 3,
            cand_filtered: 4,
            ub_width: Some(Rational::from_frac(3, 2)),
            ..SearchStats::default()
        };
        a.merge(&b);
        assert_eq!(a.states, 5);
        assert_eq!(a.cand_generated, 5);
        assert_eq!(a.cand_filtered, 4);
        assert_eq!(a.ub_width, Some(Rational::from_int(2)));
        let mut c = SearchStats::default();
        c.merge(&b);
        assert_eq!(c.ub_width, Some(Rational::from_frac(3, 2)));
    }

    /// Pins every field to its documented merge class: counters sum,
    /// `ub_width` maxes (block widths recombine as the maximum), and
    /// `pool_reuse` stays a 0/1 flag. The exhaustive struct literal (no
    /// `..Default::default()`) forces this test to be revisited whenever a
    /// field is added without choosing its rule.
    #[test]
    fn merge_rule_per_field() {
        let mut a = SearchStats {
            states: 1,
            memo_hits: 2,
            streamed: 3,
            admitted: 4,
            price_hits: 5,
            price_misses: 6,
            price_warm_hits: 7,
            cand_generated: 8,
            cand_filtered: 9,
            cand_cap_hits: 10,
            lp_pivots: 11,
            lp_warm_starts: 12,
            lp_cold_solves: 13,
            ub_width: Some(Rational::from_frac(5, 2)),
            prep_vertices_removed: 14,
            prep_edges_removed: 15,
            prep_blocks: 16,
            result_cache_hits: 17,
            inflight_dedup: 18,
            pool_reuse: 0,
        };
        let b = SearchStats {
            states: 100,
            memo_hits: 100,
            streamed: 100,
            admitted: 100,
            price_hits: 100,
            price_misses: 100,
            price_warm_hits: 100,
            cand_generated: 100,
            cand_filtered: 100,
            cand_cap_hits: 100,
            lp_pivots: 100,
            lp_warm_starts: 100,
            lp_cold_solves: 100,
            ub_width: Some(Rational::from_int(2)),
            prep_vertices_removed: 100,
            prep_edges_removed: 100,
            prep_blocks: 100,
            result_cache_hits: 100,
            inflight_dedup: 100,
            pool_reuse: 1,
        };
        a.merge(&b);
        let expected = SearchStats {
            // Summed work counters.
            states: 101,
            memo_hits: 102,
            streamed: 103,
            admitted: 104,
            price_hits: 105,
            price_misses: 106,
            price_warm_hits: 107,
            cand_generated: 108,
            cand_filtered: 109,
            cand_cap_hits: 110,
            lp_pivots: 111,
            lp_warm_starts: 112,
            lp_cold_solves: 113,
            // Maxed: 5/2 > 2, NOT 5/2 + 2.
            ub_width: Some(Rational::from_frac(5, 2)),
            prep_vertices_removed: 114,
            prep_edges_removed: 115,
            prep_blocks: 116,
            result_cache_hits: 117,
            inflight_dedup: 118,
            // Flag: maxed, not summed.
            pool_reuse: 1,
        };
        assert_eq!(a, expected);
        // `None` means "no seed ran", not zero: it never wins the max and
        // never blanks an existing seed.
        let mut none_side = SearchStats::default();
        none_side.merge(&expected);
        assert_eq!(none_side.ub_width, Some(Rational::from_frac(5, 2)));
        let mut seeded = expected.clone();
        seeded.merge(&SearchStats::default());
        assert_eq!(seeded.ub_width, Some(Rational::from_frac(5, 2)));
        // Merging is associative-compatible with the flag rule: a third
        // merge keeps pool_reuse a flag.
        seeded.merge(&expected);
        assert_eq!(seeded.pool_reuse, 1);
    }
}
