//! Width-preserving preprocessing for the width solvers.
//!
//! Real CQ/CSP instances shrink dramatically under simplifications that
//! provably preserve `hw`/`ghw`/`fhw` (HyperBench's headline observation),
//! and most of what survives splits at cut vertices into independently
//! solvable biconnected blocks. This crate is the front door every
//! strategy's `_with_stats` entry point walks through (opt-out via
//! `EngineOptions::prep` or the `HGTOOL_NO_PREP` env var):
//!
//! 1. [`simplify`] — composable passes (duplicate/subsumed edges, twin
//!    vertices, degree-one vertices; their fixpoint is the GYO
//!    ear-elimination), each recording a [`simplify::Step`] so witnesses
//!    lift back to the original instance;
//! 2. [`blocks`] — biconnected-block splitting: each block solves
//!    independently, the width recombines as the maximum, and the
//!    [`lift`] module stitches the block trees back into one witness;
//! 3. [`global_cache`] — a process-lifetime `ρ`/`ρ*` price cache keyed by
//!    the [`fingerprint`] of the (reduced, per-block) instance, so
//!    repeated searches reuse prices across calls.
//!
//! See `src/README.md` for the pass catalog, the trace/lift contract, the
//! fingerprint definition and the cache lifetime rules.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod anytime;
pub mod blocks;
pub mod fingerprint;
pub mod global_cache;
pub mod lift;
pub mod simplify;
pub mod stats;

pub use fingerprint::{fingerprint, Fingerprint};
pub use global_cache::{cached_query, global, GlobalPriceCache, PriceSession, SessionCache};
pub use simplify::{Pass, Step};
pub use stats::SearchStats;

use arith::Rational;
use decomp::Decomposition;
use hypergraph::Hypergraph;
use std::sync::Arc;

/// Which pipeline a strategy runs, determined by what its width notion and
/// witness conditions tolerate (see the safety matrix in [`simplify`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Profile {
    /// Minimizing subset searches (`ghw`/`fhw`): all passes (the full GYO
    /// closure) plus biconnected-block splitting.
    Minimizer,
    /// Decision searches bound to a (weak) special condition or strictness
    /// trace (`det-k-decomp`, `frac-decomp`, strict-HD): duplicate-edge
    /// and twin-vertex collapse only, no block splitting (re-rooting block
    /// trees is not special-condition-safe).
    Decision,
}

impl Profile {
    fn passes(self) -> &'static [Pass] {
        match self {
            Profile::Minimizer => &[
                Pass::DuplicateEdges,
                Pass::SubsumedEdges,
                Pass::TwinVertices,
                Pass::DegreeOneVertices,
            ],
            Profile::Decision => &[Pass::DuplicateEdges, Pass::TwinVertices],
        }
    }

    fn split_blocks(self) -> bool {
        matches!(self, Profile::Minimizer)
    }

    /// Short display name (trace span fields).
    fn name(self) -> &'static str {
        match self {
            Profile::Minimizer => "minimizer",
            Profile::Decision => "decision",
        }
    }
}

/// True when preprocessing should run: the per-call opt-in (the
/// `EngineOptions::prep` flag) unless the `HGTOOL_NO_PREP` environment
/// variable (any value) disables it process-wide.
pub fn enabled(opt_in: bool) -> bool {
    opt_in && std::env::var_os("HGTOOL_NO_PREP").is_none()
}

/// True when the cross-call price registry should be used: the per-call
/// opt-in (`EngineOptions::reuse_prices`) unless `HGTOOL_NO_PREP` is set —
/// the kill switch disables the *whole* prep subsystem, registry included,
/// so an A/B baseline taken under it never touches this crate's state.
pub fn reuse_enabled(opt_in: bool) -> bool {
    opt_in && std::env::var_os("HGTOOL_NO_PREP").is_none()
}

/// Aggregate counts of one [`prepare`] run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PrepStats {
    /// Vertices removed by the simplification passes.
    pub vertices_removed: usize,
    /// Edges removed by the simplification passes.
    pub edges_removed: usize,
    /// Number of independently solvable blocks (1 = no split happened).
    pub blocks: usize,
}

/// One independently solvable piece of the reduced instance.
pub struct BlockInstance {
    /// The block as a dense hypergraph, ready for any solver.
    pub hypergraph: Hypergraph,
    /// Block-local vertex index → original vertex index.
    pub vertex_origin: Vec<usize>,
    /// Block-local edge index → original edge index.
    pub edge_origin: Vec<usize>,
    /// The cut vertex (original index) shared with an earlier block.
    anchor: Option<usize>,
    /// The block's canonical fingerprint (the cross-call cache key).
    pub fingerprint: Fingerprint,
}

impl BlockInstance {
    /// Renumbers a decomposition of this block into original indices.
    pub fn translate(&self, d: &Decomposition) -> Decomposition {
        lift::translate(d, &self.vertex_origin, &self.edge_origin)
    }
}

/// The output of [`prepare`]: the reduction trace plus the blocks to
/// solve. Solve every block (same strategy, same cutoff), combine the
/// width as the maximum, and hand the block-local witnesses to
/// [`Prepared::lift`].
pub struct Prepared {
    steps: Vec<Step>,
    /// The blocks, in stitch order.
    pub blocks: Vec<BlockInstance>,
    /// Aggregate reduction counts.
    pub stats: PrepStats,
}

impl Prepared {
    /// Lifts block-local witnesses (aligned with [`Prepared::blocks`])
    /// back to one decomposition of the original hypergraph: translate,
    /// stitch along cut vertices, then undo the simplification steps in
    /// reverse. Width is preserved exactly.
    pub fn lift(&self, parts: Vec<Decomposition>) -> Decomposition {
        assert_eq!(parts.len(), self.blocks.len(), "one witness per block");
        let translated: Vec<(Decomposition, Option<usize>)> = parts
            .iter()
            .zip(&self.blocks)
            .map(|(d, b)| (b.translate(d), b.anchor))
            .collect();
        let mut out = lift::stitch(translated);
        lift::undo_steps(&mut out, &self.steps);
        out
    }

    /// The recorded simplification steps, in application order.
    pub fn steps(&self) -> &[Step] {
        &self.steps
    }
}

/// The prepare→solve→lift wrapper shared by the decision strategies
/// (`det-k-decomp`, `frac-decomp`, the strict-HD check): run the
/// conservative [`Profile::Decision`] passes, solve the single reduced
/// block with `solve`, record the reduction counts and lift the witness
/// back to `h`. With preprocessing disabled (per-call opt-out or the
/// `HGTOOL_NO_PREP` kill switch) `solve` runs directly on `h`.
///
/// `T` is whatever extra payload the strategy returns alongside its
/// witness (the accepted `k` of a width iteration, `()` for a plain
/// check). Callers keep their own up-front input validation (isolated
/// vertices, parameter checks).
pub fn run_decision<T>(
    h: &Hypergraph,
    opt_in: bool,
    solve: impl FnOnce(&Hypergraph) -> (Option<(T, Decomposition)>, SearchStats),
) -> (Option<(T, Decomposition)>, SearchStats) {
    if !enabled(opt_in) {
        return solve(h);
    }
    let prepared = Arc::new(prepare(h, Profile::Decision));
    let block = &prepared.blocks[0];
    // Anytime bounds reported inside `solve` carry *block-local*
    // witnesses; re-install the ambient sink with this run's lift so they
    // surface in original-instance terms (the decision profile always
    // produces exactly one block, so every witness lifts directly).
    let (result, mut stats) = match anytime::current() {
        Some(ctl) => {
            let lifting = Arc::clone(&prepared);
            let sink = ctl.sink.with_lift(move |d| lifting.lift(vec![d.clone()]));
            let ctl = anytime::RunCtl {
                cancel: ctl.cancel,
                sink,
            };
            anytime::with_ctl(ctl, || solve(&block.hypergraph))
        }
        None => solve(&block.hypergraph),
    };
    stats.prep_vertices_removed = prepared.stats.vertices_removed;
    stats.prep_edges_removed = prepared.stats.edges_removed;
    stats.prep_blocks = prepared.stats.blocks;
    (result.map(|(t, d)| (t, prepared.lift(vec![d]))), stats)
}

/// The prepare→solve→lift wrapper shared by the minimizing strategies
/// (`ghw`/`fhw`): run the full [`Profile::Minimizer`] pipeline, solve each
/// biconnected block independently with `solve`, combine the width as the
/// maximum over blocks, stitch the block witnesses and lift the result
/// back to `h`. Any block failing (`None`, e.g. too large for the exact
/// engines or cut off) fails the whole call, with the merged stats of the
/// blocks solved so far.
pub fn run_minimizer<C: PartialOrd + Clone + Into<Rational>>(
    h: &Hypergraph,
    opt_in: bool,
    mut solve: impl FnMut(&Hypergraph) -> (Option<(C, Decomposition)>, SearchStats),
) -> (Option<(C, Decomposition)>, SearchStats) {
    if !enabled(opt_in) {
        return solve(h);
    }
    let prepared = Arc::new(prepare(h, Profile::Minimizer));
    let mut stats = SearchStats {
        prep_vertices_removed: prepared.stats.vertices_removed,
        prep_edges_removed: prepared.stats.edges_removed,
        prep_blocks: prepared.stats.blocks,
        ..SearchStats::default()
    };
    let ctl = anytime::current();
    let single_block = prepared.blocks.len() == 1;
    let mut parts = Vec::with_capacity(prepared.blocks.len());
    let mut best: Option<C> = None;
    for block in &prepared.blocks {
        let (result, s) = match &ctl {
            // Single block: block witnesses certify the instance after a
            // lift, so upper bounds flow through. Multi-block: a block
            // width only bounds the instance from *below* (instance
            // width = max over blocks) — forward lower bounds, drop
            // block-local uppers.
            Some(ctl) => {
                let sink = if single_block {
                    let lifting = Arc::clone(&prepared);
                    ctl.sink.with_lift(move |d| lifting.lift(vec![d.clone()]))
                } else {
                    ctl.sink.lower_only()
                };
                let ctl = anytime::RunCtl {
                    cancel: ctl.cancel.clone(),
                    sink,
                };
                anytime::with_ctl(ctl, || solve(&block.hypergraph))
            }
            None => solve(&block.hypergraph),
        };
        stats.merge(&s);
        let Some((w, d)) = result else {
            return (None, stats);
        };
        if let Some(ctl) = &ctl {
            // A solved block's exact width is a certified instance lower
            // bound under the max-recombination rule.
            ctl.sink.report_lower(w.clone().into());
        }
        if best.as_ref().is_none_or(|b| w > *b) {
            best = Some(w);
        }
        parts.push(d);
    }
    let width = best.expect("at least one block");
    (Some((width, prepared.lift(parts))), stats)
}

/// Runs the `profile`'s simplification passes to fixpoint on `h`, splits
/// the result into biconnected blocks (minimizer profile only), and
/// returns the instances to solve together with the lift trace.
///
/// `h` must have no isolated vertices (the solvers reject those upstream).
/// There is always at least one block.
pub fn prepare(h: &Hypergraph, profile: Profile) -> Prepared {
    let span = obs::span!(
        "prep",
        profile = profile.name(),
        vertices = h.num_vertices(),
        edges = h.num_edges()
    );
    let simplified = simplify::simplify(h, profile.passes());
    let stats = PrepStats {
        vertices_removed: simplified.vertices_removed(h),
        edges_removed: simplified.edges_removed(h),
        blocks: 0,
    };

    // The reduced instance, densely renumbered: vertex/edge origin maps
    // translate back to `h`'s indices.
    let vertex_origin: Vec<usize> = simplified.alive_vertices.to_vec();
    let mut to_dense = vec![usize::MAX; h.num_vertices()];
    for (new, &old) in vertex_origin.iter().enumerate() {
        to_dense[old] = new;
    }
    let reduced_edges: Vec<Vec<usize>> = simplified
        .alive_edges
        .iter()
        .map(|&e| {
            h.edge(e)
                .iter()
                .filter(|v| simplified.alive_vertices.contains(*v))
                .map(|v| to_dense[v])
                .collect()
        })
        .collect();
    let reduced = Hypergraph::from_parts(
        vertex_origin
            .iter()
            .map(|&v| h.vertex_name(v).to_string())
            .collect(),
        simplified
            .alive_edges
            .iter()
            .map(|&e| h.edge_name(e).to_string())
            .collect(),
        reduced_edges,
    );

    let blocks = if profile.split_blocks() {
        let split = blocks::split(&reduced);
        let per_block_edges = blocks::assign_edges(&reduced, &split);
        split
            .into_iter()
            .zip(per_block_edges)
            .map(|(block, edges)| {
                block_instance(
                    &reduced,
                    &vertex_origin,
                    &simplified.alive_edges,
                    block,
                    edges,
                )
            })
            .collect()
    } else {
        vec![BlockInstance {
            fingerprint: fingerprint(&reduced),
            hypergraph: reduced,
            vertex_origin,
            edge_origin: simplified.alive_edges.clone(),
            anchor: None,
        }]
    };

    if let Some(span) = span.as_ref() {
        span.record("blocks", blocks.len());
    }
    Prepared {
        steps: simplified.steps,
        stats: PrepStats {
            blocks: blocks.len(),
            ..stats
        },
        blocks,
    }
}

/// Builds the dense sub-instance of one block of the reduced hypergraph,
/// with origin maps composed through to the original indices.
fn block_instance(
    reduced: &Hypergraph,
    reduced_vertex_origin: &[usize],
    reduced_edge_origin: &[usize],
    block: blocks::Block,
    edges: Vec<usize>,
) -> BlockInstance {
    let verts: Vec<usize> = block.vertices.to_vec();
    let mut to_local = vec![usize::MAX; reduced.num_vertices()];
    for (new, &old) in verts.iter().enumerate() {
        to_local[old] = new;
    }
    let contents: Vec<Vec<usize>> = edges
        .iter()
        .map(|&e| reduced.edge(e).iter().map(|v| to_local[v]).collect())
        .collect();
    let hypergraph = Hypergraph::from_parts(
        verts
            .iter()
            .map(|&v| reduced.vertex_name(v).to_string())
            .collect(),
        edges
            .iter()
            .map(|&e| reduced.edge_name(e).to_string())
            .collect(),
        contents,
    );
    BlockInstance {
        fingerprint: fingerprint(&hypergraph),
        hypergraph,
        vertex_origin: verts.iter().map(|&v| reduced_vertex_origin[v]).collect(),
        edge_origin: edges.iter().map(|&e| reduced_edge_origin[e]).collect(),
        anchor: block.anchor.map(|c| reduced_vertex_origin[c]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypergraph::generators;

    #[test]
    fn acyclic_instances_collapse_to_a_trivial_block() {
        let h = generators::cq_chain(4, 3, 1);
        let p = prepare(&h, Profile::Minimizer);
        assert!(p.stats.vertices_removed > 0);
        assert_eq!(p.blocks.len(), 1);
        assert!(p.blocks[0].hypergraph.num_vertices() <= 3);
    }

    #[test]
    fn decision_profile_is_conservative() {
        // The chain loses nothing under dup+twin... except twins inside
        // shared-attribute relations; crucially no blocks are split.
        let h = generators::grid(3, 3);
        let p = prepare(&h, Profile::Decision);
        assert_eq!(p.blocks.len(), 1);
    }

    #[test]
    fn cut_vertices_split_into_blocks() {
        // Two triangles joined at one vertex.
        let h = Hypergraph::from_edges(
            5,
            vec![
                vec![0, 1],
                vec![1, 2],
                vec![2, 0],
                vec![2, 3],
                vec![3, 4],
                vec![4, 2],
            ],
        );
        let p = prepare(&h, Profile::Minimizer);
        assert_eq!(p.blocks.len(), 2);
        assert_eq!(p.stats.blocks, 2);
        for b in &p.blocks {
            assert_eq!(b.hypergraph.num_vertices(), 3);
            assert_eq!(b.hypergraph.num_edges(), 3);
        }
    }

    #[test]
    fn env_override_disables_prep() {
        assert!(enabled(true) || std::env::var_os("HGTOOL_NO_PREP").is_some());
        assert!(!enabled(false));
    }
}
