//! The uniform `WidthRequest → Outcome` contract every width computation
//! sits behind, plus the anytime [`Backend`] trait the portfolio races.
//!
//! The five strategy entry points in `hd`/`ghd`/`fhd` historically were
//! five bespoke `_with_stats` functions with duplicated
//! prepare→seed→solve→lift plumbing. This module gives them one shape:
//!
//! * a [`WidthRequest`] names the measure and its parameters
//!   ([`Measure`]) plus the [`EngineOptions`] to run under;
//! * an [`Outcome`] carries the width (as an exact rational — integral
//!   for `hw`/`ghw`), the witness decomposition, the engine counters, and
//!   the *provenance* (which backend produced it);
//! * a [`Backend`] is one way of resolving a request: the edge-union
//!   engine search, the elimination DP, the subset-enumeration oracle,
//!   or a heuristic-ub-then-refine ladder. Backends self-select via
//!   [`Backend::eligible`] (vertex gates, `candgen::stream_size_bound`
//!   admission) and run under a [`RunCtl`]: a [`CancelToken`] polled by
//!   the engine's cancellation scopes and a [`BoundSink`] their anytime
//!   lower/upper bounds flow into (each accepted upper bound
//!   witness-backed, already lifted to the original instance).
//!
//! [`execute`] is the one driver: it installs the control as the ambient
//! channel of the calling thread (the engine root, the prep lift hooks
//! and the result-cache dedup all pick it up from there), runs the
//! backend, and closes the bounds on an exact answer so a finished run
//! always ends with `lb == ub == width`.
//!
//! The existing public `_with_stats` functions remain the plain
//! (non-racing) front doors and are byte-identical to what they returned
//! before this layer existed; backends reuse their internals rather than
//! wrapping their outputs.

use crate::{EngineOptions, SearchStats};
use arith::Rational;
use decomp::Decomposition;
use hypergraph::Hypergraph;

pub use prep::anytime::{
    current, current_cancel, current_sink, interrupt, interrupted, with_ctl, BoundEvent, BoundSink,
    Bounds, CancelToken, RunCtl,
};

/// Which width notion a request asks about, with the strategy-specific
/// parameters that define the answer.
#[derive(Clone, Debug, PartialEq)]
pub enum Measure {
    /// Hypertree width: the smallest `k ≤ max_k` accepted by
    /// `det-k-decomp`.
    Hw {
        /// Largest width to try before giving up.
        max_k: usize,
    },
    /// Exact generalized hypertree width, optionally cut off above.
    Ghw {
        /// Give up (report "> cutoff") beyond this width.
        cutoff: Option<usize>,
    },
    /// Exact fractional hypertree width, optionally cut off above.
    Fhw {
        /// Give up beyond this width.
        cutoff: Option<Rational>,
    },
    /// The Algorithm 3 `frac-decomp(k, ε, c)` decision.
    FracDecomp {
        /// Width parameter `k`.
        k: Rational,
        /// Approximation slack `ε` (must be positive).
        eps: Rational,
        /// Multi-intersection arity `c`.
        c: usize,
    },
    /// The Theorem 5.2 strict-HD `fhw ≤ k` check over `h_{d,k}` subedges.
    StrictHd {
        /// Width parameter `k`.
        k: Rational,
        /// `⋓` union arity of the subedge enumeration.
        union_arity: usize,
        /// Hard cap on generated subedges.
        max_subedges: usize,
    },
}

impl Measure {
    /// Short display name of the measure (stats tables, bench records).
    pub fn name(&self) -> &'static str {
        match self {
            Measure::Hw { .. } => "hw",
            Measure::Ghw { .. } => "ghw",
            Measure::Fhw { .. } => "fhw",
            Measure::FracDecomp { .. } => "frac-decomp",
            Measure::StrictHd { .. } => "strict-hd",
        }
    }
}

/// One width computation to perform: the instance-independent half of the
/// contract (the instance itself is passed alongside, so one request can
/// drive a whole corpus).
#[derive(Clone, Debug)]
pub struct WidthRequest {
    /// The measure and its parameters.
    pub measure: Measure,
    /// Scheduling/preprocessing options for the underlying engines.
    pub opts: EngineOptions,
}

/// Identifies a backend (stable, human-readable; used in cache keys,
/// deadline env knobs and the bench `portfolio` block).
pub type BackendId = &'static str;

/// The result of one backend run.
#[derive(Clone, Debug)]
pub struct Outcome {
    /// The exact width, when resolved affirmatively. Integral measures
    /// report integral rationals.
    pub width: Option<Rational>,
    /// The witness decomposition certifying `width` (or the decision's
    /// "yes"), lifted to the original instance.
    pub witness: Option<Decomposition>,
    /// True when the backend produced a definitive answer: an exact
    /// width, or a certified "no"/"> cutoff" (`width == None`). False
    /// when it gave up (instance out of range) or was interrupted.
    pub resolved: bool,
    /// Engine and cache counters of the run.
    pub stats: SearchStats,
    /// The backend that produced this outcome.
    pub provenance: BackendId,
}

impl Outcome {
    /// An exact affirmative answer.
    pub fn exact(
        provenance: BackendId,
        width: Rational,
        witness: Decomposition,
        stats: SearchStats,
    ) -> Self {
        Outcome {
            width: Some(width),
            witness: Some(witness),
            resolved: true,
            stats,
            provenance,
        }
    }

    /// An accepted decision (`frac-decomp`, `strict-hd`): the witness
    /// certifies "yes" but no exact width is claimed.
    pub fn accepted(provenance: BackendId, witness: Decomposition, stats: SearchStats) -> Self {
        Outcome {
            width: None,
            witness: Some(witness),
            resolved: true,
            stats,
            provenance,
        }
    }

    /// A certified negative answer (no decomposition within the
    /// cutoff/parameters).
    pub fn certified_no(provenance: BackendId, stats: SearchStats) -> Self {
        Outcome {
            width: None,
            witness: None,
            resolved: true,
            stats,
            provenance,
        }
    }

    /// The backend could not resolve the request (out of range, gave up).
    pub fn unresolved(provenance: BackendId, stats: SearchStats) -> Self {
        Outcome {
            width: None,
            witness: None,
            resolved: false,
            stats,
            provenance,
        }
    }
}

/// One way of resolving a [`WidthRequest`]: an anytime width algorithm.
///
/// Implementations must be pure with respect to the request (same
/// request, same instance → same width; witnesses and counters must be
/// deterministic at every thread count) and must poll
/// `ctl.cancel` cooperatively — directly in their own loops, and
/// implicitly through the engine's cancellation scopes whenever they run
/// a search. A canceled run exits by [`interrupt::raise`] (the engine
/// does this at its root) or by returning an
/// [`Outcome::unresolved`]; it must never return a fabricated answer.
pub trait Backend: Send + Sync {
    /// Stable identifier (provenance, cache-key slot, deadline knob).
    fn id(&self) -> BackendId;

    /// Whether this backend can take on `h` (vertex gates, candidate-
    /// space admission via `candgen::stream_size_bound`). The portfolio
    /// only races eligible backends; registries order an always-eligible
    /// backend first so every request has a taker.
    fn eligible(&self, _h: &Hypergraph, _req: &WidthRequest) -> bool {
        true
    }

    /// Resolves the request, reporting anytime bounds into `ctl.sink`.
    /// Prefer running through [`execute`], which installs the ambient
    /// channel and closes the bounds on exact answers.
    fn run(&self, h: &Hypergraph, req: &WidthRequest, ctl: &RunCtl) -> Outcome;
}

/// Runs `backend` under `ctl` installed as the calling thread's ambient
/// control: the engine root anchors its cancellation scopes to
/// `ctl.cancel`, the prep pipeline lifts reported witnesses through
/// `ctl.sink`, and the result-cache dedup makes the sink observable to
/// waiters. On an exact answer the bounds are closed
/// (`lb == ub == width`) before returning.
pub fn execute(backend: &dyn Backend, h: &Hypergraph, req: &WidthRequest, ctl: &RunCtl) -> Outcome {
    let outcome = with_ctl(ctl.clone(), || backend.run(h, req, ctl));
    if outcome.resolved {
        if let (Some(w), Some(d)) = (&outcome.width, &outcome.witness) {
            ctl.sink.report_lower(w.clone());
            ctl.sink.report_upper(w.clone(), Some(d));
        }
    }
    outcome
}
