//! The shared decomposition-search engine behind every exact width solver in
//! the workspace.
//!
//! `det-k-decomp` (Gottlob–Leone–Scarcello), the exact `ghw`/`fhw` baselines,
//! Algorithm 3 (`frac-decomp`) and the Theorem 5.2 strict-HD search all share
//! one recursion scheme: work on a pair `(C, conn)` where `C` is a connected
//! component of the hypergraph minus the separator chosen above, and `conn`
//! is the part of the parent separator visible from `C`; guess a
//! separator/bag for the node covering `conn`, split `C` into
//! sub-components, and recurse. The algorithms differ only in *which
//! candidate bags they enumerate* and *how a candidate is priced* (edge
//! counts, `ρ`, `ρ*`, or an LP for the fractional part).
//!
//! This crate owns the recursion: [`SearchContext`] carries the
//! `(component, connector)` memo table keyed on [`VertexSet`] tuples,
//! performs component splitting, applies the cutoff, and assembles the
//! witness [`Decomposition`] from the recorded plans. Concrete solvers
//! implement [`WidthSolver`] — a pure strategy that *streams* cheap
//! combinatorial guesses ([`WidthSolver::candidates`]) and then
//! prices/validates them ([`WidthSolver::admit`], where set covers and LPs
//! run).
//!
//! Three engine properties the strategies rely on:
//!
//! * **Streaming.** Candidates are pulled one at a time from a lazy
//!   [`CandidateStream`]; nothing is materialized ahead of the cursor
//!   (beyond one bounded round for minimizers), so decision strategies run
//!   in `O(depth)` candidate memory and short-circuit on the first witness.
//! * **Parallelism.** One persistent work-stealing worker pool per search:
//!   minimizing strategies evaluate candidate rounds across the pool over
//!   the sharded memo, with in-flight entry states guaranteeing each state
//!   is evaluated exactly once. Widths, witnesses *and* [`SearchStats`]
//!   are identical at every thread count. Decision strategies run
//!   sequentially by default; [`EngineOptions::speculate`] lets them race
//!   candidates across the pool with sibling cancellation.
//! * **State keys.** A strategy whose admissible candidates depend on more
//!   than `(C, conn)` (the strict-HD search couples to the parent
//!   separator's full vertex span) extends the memo key through
//!   [`WidthSolver::state_key`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use arith::Rational;
use cover::{Claim, ShardedCache};
use decomp::{Decomposition, Node};
use hypergraph::{components, Hypergraph, VertexSet};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, Once, OnceLock};

/// Practical vertex limit for the subset-enumerating bag stream
/// ([`stream_subset_bags`]): it proposes every bag `conn ⊆ B ⊆ conn ∪ C`,
/// which is exponential in `|C|`. Since the `candgen` edge-union generator
/// became the primary `ghw`/`fhw` candidate source, this gate no longer
/// bounds the exact range — the subset stream survives as the `fhw`
/// completeness tail and as the small-instance cross-check oracle
/// (`ghd::ghw_exact_subset_oracle` / `fhd::fhw_exact_subset_oracle`).
pub const MAX_SUBSET_SEARCH_VERTICES: usize = 18;

/// Recommended ceiling for routinely running the subset enumeration as a
/// cross-check oracle against the edge-union search (the full `2^n` bag
/// space stays cheap up to here; beyond it the oracle is test-only).
pub const MAX_SUBSET_ORACLE_VERTICES: usize = 12;

/// Upper bound on worker threads per search, whatever the host reports.
const MAX_THREADS: usize = 8;

/// Candidates per minimizer round once a best is known. Rounds are the
/// engine's determinism unit: every candidate of one round is admitted
/// against the *same* bound snapshot (the best cost achieved in earlier
/// rounds), so which candidates get priced — and therefore every
/// [`SearchStats`] counter — is a pure function of the strategy,
/// independent of thread count and scheduling. Until the first success a
/// state probes with rounds of size 1 (see
/// `SearchContext::evaluate_rounds`). Smaller rounds tighten the prune
/// faster; larger rounds expose more parallelism. The value matches
/// [`MAX_THREADS`] (wider rounds would add staleness without adding
/// parallel width) and is deliberately *not* scaled by the actual thread
/// count (that would make the counters depend on it).
const ROUND: usize = 8;

/// Consecutive non-improving width-1 rounds required before a minimizer
/// state starts ramping its round size (see
/// `SearchContext::evaluate_rounds`): a cheap deterministic signal that
/// the bound has settled and fanning out will not price candidates a
/// sequential scan would have rejected.
const STREAK: usize = 4;

/// The worker-thread budget used by [`SearchContext::new`] when
/// [`EngineOptions::threads`] is `None`: the `HGTOOL_THREADS` environment
/// variable if set to a positive integer, otherwise the host parallelism,
/// either way capped at the engine maximum of 8.
pub fn default_thread_count() -> usize {
    let host = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let configured = std::env::var("HGTOOL_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(host);
    configured.min(MAX_THREADS)
}

/// Scheduling and preprocessing options for a search.
///
/// The `threads`/`speculate` pair configures the [`SearchContext`] proper;
/// `prep`/`reuse_prices` are consumed by the strategy wrappers (the
/// `_with_stats` entry points of the five width solvers), which run the
/// `prep` crate's simplification/block pipeline and the fingerprint-keyed
/// cross-call price cache *around* the engine.
#[derive(Clone, Copy, Debug)]
pub struct EngineOptions {
    /// Worker-thread budget (`1` = strictly sequential). `None` picks
    /// [`default_thread_count`]. Values are clamped to `1..=8`.
    pub threads: Option<usize>,
    /// Let decision strategies speculate candidates across the pool: a
    /// round of candidates races, the first witness cancels its siblings
    /// (which abandon their in-flight memo claims). The yes/no answer and
    /// witness validity are unchanged, but `streamed`/`states` counters
    /// become schedule-dependent — so this is opt-in and off everywhere
    /// stats reproducibility matters.
    pub speculate: bool,
    /// Run the width-preserving preprocessing pipeline (simplification
    /// passes + biconnected-block splitting where the strategy supports
    /// it) before the search, lifting the witness back to the original
    /// hypergraph. On by default; `HGTOOL_NO_PREP` (any value) overrides
    /// it off process-wide.
    pub prep: bool,
    /// Serve `ρ`/`ρ*` (and strategy-specific LP) prices from the
    /// process-lifetime cache keyed by hypergraph fingerprint, so repeated
    /// searches on one instance reuse prices across calls. Widths and
    /// witnesses are unaffected, but the `price_*` counters then depend on
    /// process history — [`EngineOptions::sequential`] and
    /// [`EngineOptions::with_threads`] leave it off so stats stay
    /// reproducible in tests.
    pub reuse_prices: bool,
    /// Serve whole queries — width, lifted witness and engine stats — from
    /// the process-lifetime result cache keyed by `(fingerprint, strategy,
    /// cutoff)`, and dedup identical in-flight requests to one search. A
    /// hit replays the original search's result and engine counters
    /// byte-for-byte; only the runtime counters (`result_cache_hits`,
    /// `inflight_dedup`, `pool_reuse`) reflect the current call. Off under
    /// [`EngineOptions::sequential`] / [`EngineOptions::with_threads`] and
    /// whenever `speculate` is on (speculative stats are not replayable).
    pub reuse_results: bool,
}

impl Default for EngineOptions {
    /// Default scheduling: default thread count, no speculation,
    /// preprocessing on, cross-call price and result reuse on.
    fn default() -> Self {
        EngineOptions {
            threads: None,
            speculate: false,
            prep: true,
            reuse_prices: true,
            reuse_results: true,
        }
    }
}

impl EngineOptions {
    /// Sequential execution (one worker, no speculation, fresh per-search
    /// price caches — fully reproducible stats).
    pub fn sequential() -> Self {
        EngineOptions {
            threads: Some(1),
            speculate: false,
            prep: true,
            reuse_prices: false,
            reuse_results: false,
        }
    }

    /// A fixed worker budget (fresh per-search price caches — stats are
    /// identical at every thread count, which the determinism tests rely
    /// on).
    pub fn with_threads(threads: usize) -> Self {
        EngineOptions {
            threads: Some(threads),
            speculate: false,
            prep: true,
            reuse_prices: false,
            reuse_results: false,
        }
    }

    /// Enables decision-strategy speculation (see
    /// [`EngineOptions::speculate`]).
    pub fn speculative(mut self) -> Self {
        self.speculate = true;
        self
    }

    /// Disables the preprocessing pipeline (A/B debugging; also reachable
    /// via `hgtool widths --no-prep` and the `HGTOOL_NO_PREP` env var).
    pub fn without_prep(mut self) -> Self {
        self.prep = false;
        self
    }

    /// Enables the fingerprint-keyed cross-call price cache (see
    /// [`EngineOptions::reuse_prices`]).
    pub fn with_price_reuse(mut self) -> Self {
        self.reuse_prices = true;
        self
    }

    /// Enables the whole-query result cache (see
    /// [`EngineOptions::reuse_results`]).
    pub fn with_result_reuse(mut self) -> Self {
        self.reuse_results = true;
        self
    }

    /// Disables the whole-query result cache while keeping everything else
    /// (the cache-on/cache-off identity checks of the runtime tests).
    pub fn without_result_reuse(mut self) -> Self {
        self.reuse_results = false;
        self
    }
}

/// A cheap combinatorial guess for one search node, produced by the
/// strategy's [`CandidateStream`] before any cover/LP pricing runs. A guess
/// is deliberately *cheap* — combinatorial payload only, no derived vertex
/// sets beyond what the enumerator had in hand — so that decision
/// strategies keep their first-success early exit: the per-candidate set
/// unions, covers and LPs all run lazily in [`WidthSolver::admit`].
#[derive(Clone, Debug)]
pub struct Guess {
    /// The chosen integral separator edges (`supp(λ)`), if the strategy
    /// works with explicit edge sets.
    pub edges: Vec<usize>,
    /// Strategy-specific vertex payload: the candidate bag for the subset
    /// strategies, the fractional shadow `W_s` for `frac-decomp`, the
    /// separator union for the strict-HD search, empty for `det-k-decomp`.
    pub extra: VertexSet,
}

/// The priced result of admitting a [`Guess`]: the separator geometry plus
/// its cost and witness edge weights.
#[derive(Clone, Debug)]
pub struct Admission<C> {
    /// Vertices removed when splitting the component. Children are the
    /// `[split]`-components inside the current component, and a child's
    /// connector is `split ∩ ⋃ edges(child)`.
    ///
    /// `det-k-decomp` splits on the *full* `V(S)` (this is what enforces the
    /// special condition); the GHD/FHD strategies split on the clipped bag.
    pub split: VertexSet,
    /// The candidate bag before witness clipping; the final bag of the
    /// assembled node is `bag ∩ (component ∪ parent bag)`.
    pub bag: VertexSet,
    /// The cost the engine minimizes (maximum over the witness tree).
    pub cost: C,
    /// Sparse edge weights `(edge, weight)` recorded on the witness node.
    pub weights: Vec<(usize, Rational)>,
}

/// One `(component, connector)` search state, handed to the strategy.
///
/// `Copy`: the state is three-plus-one borrows, cheap to capture by value
/// inside the closures that make up a lazy [`CandidateStream`].
#[derive(Clone, Copy)]
pub struct SearchState<'a> {
    /// The current component `C`.
    pub comp: &'a VertexSet,
    /// The visible part of the parent separator,
    /// `conn = sep ∩ ⋃ edges(C)` — must be covered by every candidate bag.
    pub conn: &'a VertexSet,
    /// `edges(C)`: indices of edges intersecting `C`.
    pub comp_edges: &'a [usize],
    /// The parent node's *full* split set (`V(S)` of the node above; empty
    /// at the root). Most strategies ignore it — `conn` is the part that
    /// matters for the cover condition — but strategies with a
    /// [`WidthSolver::state_key`] (the strict-HD search) read the trace of
    /// the parent separator beyond `conn` from here.
    pub parent_split: &'a VertexSet,
}

/// A pull-based, lazily evaluated stream of [`Guess`]es for one search
/// state. Strategies build it from closures/iterators that enumerate their
/// candidate space on demand; the engine pulls guesses one at a time
/// (decision strategies) or in bounded rounds (parallel minimizers), so the
/// enumeration never materializes more than the engine's current window.
pub struct CandidateStream<'a> {
    inner: Box<dyn Iterator<Item = Guess> + Send + 'a>,
}

impl<'a> CandidateStream<'a> {
    /// Wraps any (sendable) iterator of guesses.
    pub fn new<I>(iter: I) -> Self
    where
        I: Iterator<Item = Guess> + Send + 'a,
    {
        CandidateStream {
            inner: Box::new(iter),
        }
    }

    /// The empty stream (no candidates for this state).
    pub fn empty() -> Self {
        CandidateStream {
            inner: Box::new(std::iter::empty()),
        }
    }
}

impl Iterator for CandidateStream<'_> {
    type Item = Guess;

    fn next(&mut self) -> Option<Guess> {
        self.inner.next()
    }
}

/// A width-solver strategy: everything that distinguishes `det-k-decomp`
/// from the exact `ghw`/`fhw` searches, `frac-decomp` and the strict-HD
/// search.
///
/// `Sync` + `&self` methods: the engine calls [`WidthSolver::admit`] from
/// worker threads, so per-strategy caches must be interior-mutable and
/// thread-safe (see `cover::cache::ShardedCache`).
pub trait WidthSolver: Sync {
    /// Cost type of a node (edge count, `ρ`, `ρ*`, ...).
    type Cost: Ord + Clone + Send + Sync;

    /// Decision strategies stop at the first admitted candidate whose
    /// sub-components all decompose; minimizers exhaust the space.
    fn is_decision(&self) -> bool;

    /// Global cutoff: admitted candidates with `cost >= cutoff` are
    /// discarded, so the search fails iff every decomposition reaches it.
    fn cutoff(&self) -> Option<Self::Cost> {
        None
    }

    /// Declares whether [`WidthSolver::state_key`] can return `Some`. When
    /// `false` (the default) the engine skips the per-state derivation
    /// (`edges_intersecting` + the state-key call) on the memo-hit fast
    /// path, so hits cost one probe.
    fn has_state_key(&self) -> bool {
        false
    }

    /// Extra memo-key component for strategies whose candidate space
    /// depends on more of the parent context than `(comp, conn)`. The
    /// strict-HD search returns the strictness `allowed` trace
    /// (`comp ∪ (parent_split ∩ span(candidate edges))`); everyone else
    /// keeps the default `None`. Implementors must also override
    /// [`WidthSolver::has_state_key`].
    fn state_key(&self, h: &Hypergraph, state: SearchState<'_>) -> Option<VertexSet> {
        let _ = (h, state);
        None
    }

    /// Opens the lazy candidate stream for a state. Cheap per pulled
    /// guess: no covers, LPs or per-candidate unions here — those run in
    /// [`WidthSolver::admit`], which the engine calls lazily (decision
    /// strategies often stop long before the stream is dry).
    fn candidates<'a>(&'a self, h: &'a Hypergraph, state: SearchState<'a>) -> CandidateStream<'a>;

    /// Prices and validates a guess — the expensive per-candidate work
    /// (set unions, covers, LPs) lives here. Returns the separator
    /// geometry, cost and witness weights; `None` rejects the candidate.
    ///
    /// `bound` is a pruning contract, not a hint: the engine discards any
    /// admission with `cost >= bound` (it is the minimum of the strategy
    /// cutoff and the best cost achieved in *earlier rounds* for this
    /// state), so the strategy may return `None` without pricing whenever a
    /// cheap lower bound on the cost already reaches `bound`. Skipping this
    /// way never changes the computed width, and because the bound is a
    /// per-round snapshot it is identical at every thread count.
    fn admit(
        &self,
        h: &Hypergraph,
        state: SearchState<'_>,
        guess: &Guess,
        bound: Option<&Self::Cost>,
    ) -> Option<Admission<Self::Cost>>;
}

/// A successful node choice recorded during the search; the plan arena plus
/// the memo table are what [`SearchContext::assemble`] replays into the
/// witness decomposition.
#[derive(Clone, Debug)]
struct Plan<C> {
    bag: VertexSet,
    weights: Vec<(usize, Rational)>,
    children: Vec<(VertexSet, usize)>,
    #[allow(dead_code)]
    cost: C,
}

/// Engine counters, exposed through [`SearchContext::stats`] for tests,
/// `hgtool widths --stats` and the `baseline` bin. The struct itself lives
/// in `prep` (so the prepare→solve→lift wrappers can fill the reduction
/// counters while staying below this crate) and is re-exported here; the
/// engine fills the state/candidate counters, the strategy wrappers merge
/// price-cache and candidate-generation tallies on top.
pub use prep::SearchStats;

pub mod backend;
pub mod portfolio;
pub mod runtime;
pub use runtime::{admission_estimate, solve_batch};

#[derive(Default)]
struct AtomicStats {
    streamed: AtomicUsize,
    admitted: AtomicUsize,
}

/// Counter increments accumulated locally and flushed on drop — one atomic
/// add per state instead of one per pulled candidate, on every exit path
/// (including cancellation unwinds).
struct Tally<'a> {
    counter: &'a AtomicUsize,
    pending: usize,
}

impl<'a> Tally<'a> {
    fn new(counter: &'a AtomicUsize) -> Self {
        Tally {
            counter,
            pending: 0,
        }
    }

    fn add(&mut self, n: usize) {
        self.pending += n;
    }
}

impl Drop for Tally<'_> {
    fn drop(&mut self) {
        if self.pending > 0 {
            self.counter.fetch_add(self.pending, Ordering::Relaxed);
        }
    }
}

/// Memo key: `(component, connector)` plus the optional strategy state key.
#[derive(Clone, PartialEq, Eq, Hash)]
struct MemoKey {
    comp: VertexSet,
    conn: VertexSet,
    skey: Option<VertexSet>,
}

/// The evaluation of this branch was interrupted by a cancellation scope
/// (a speculative sibling found a witness first). Never memoized — the
/// partial work is abandoned and the state stays re-claimable.
#[derive(Debug)]
struct Canceled;

/// A cooperative cancellation scope: one flag per speculative round,
/// chained to the enclosing scope so an ancestor's cancellation reaches
/// nested speculation, and optionally anchored to an *external*
/// [`prep::anytime::CancelToken`] at the root (the portfolio runner's
/// loser-cancellation and deadline channel). Checked between candidates
/// and before every child descent — cancellation is prompt but never
/// preempts a running LP.
struct CancelScope {
    flag: AtomicBool,
    parent: Option<Arc<CancelScope>>,
    external: Option<prep::anytime::CancelToken>,
}

impl CancelScope {
    /// A root scope observing an ambient [`prep::anytime::CancelToken`].
    fn anchored(token: prep::anytime::CancelToken) -> Self {
        CancelScope {
            flag: AtomicBool::new(false),
            parent: None,
            external: Some(token),
        }
    }

    fn is_canceled(&self) -> bool {
        if self.flag.load(Ordering::Relaxed) {
            return true;
        }
        if self.external.as_ref().is_some_and(|t| t.is_canceled()) {
            return true;
        }
        match &self.parent {
            Some(p) => p.is_canceled(),
            None => false,
        }
    }

    fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }
}

/// A queued unit of work: claims candidate slots from the batch it was
/// advertised for. Receives the pool and the executing worker's index so
/// nested rounds push to the right deque. Jobs are `'static` — they hold
/// only weak `Arc`s into their batch, never borrows of a search's stack.
type Job = Box<dyn FnOnce(&'static SharedPool, usize) + Send>;

/// The deque index used by threads that are not pool workers (the thread
/// that called [`SearchContext::run`]): their advertisements go to the
/// shared injector deque instead of a worker-owned one.
const EXTERNAL: usize = usize::MAX;

/// The process-wide work-stealing pool shared by every concurrent search.
///
/// PR 3's pool was per-`run`: scoped threads spawned and joined around
/// every search, which priced thread spawns into each of the thousands of
/// small queries a batched workload runs. This pool is spawned lazily once
/// ([`shared_pool`]), its [`MAX_THREADS`] workers park between searches,
/// and any number of concurrent searches multiplex onto it — per-search
/// [`Permits`] keep each search within its own [`EngineOptions::threads`]
/// budget, so determinism per search is untouched.
///
/// One deque per worker plus one injector for external threads. Workers
/// pop their own deque LIFO (hot working set), then the injector, then
/// steal the *oldest* job of another worker (biggest pending subtrees
/// first).
struct SharedPool {
    queues: Vec<Mutex<VecDeque<Job>>>,
    injector: Mutex<VecDeque<Job>>,
    /// Sleep gate: pushers notify under this lock so parked workers cannot
    /// miss a wakeup. The pool never shuts down — idle workers just park.
    gate: Mutex<()>,
    wake: Condvar,
}

static POOL: OnceLock<SharedPool> = OnceLock::new();
static POOL_START: Once = Once::new();

/// The lazily started process-wide pool. The first call constructs it and
/// spawns its [`MAX_THREADS`] workers; every later call is a pointer read.
fn shared_pool() -> &'static SharedPool {
    let pool = POOL.get_or_init(|| SharedPool {
        queues: (0..MAX_THREADS)
            .map(|_| Mutex::new(VecDeque::new()))
            .collect(),
        injector: Mutex::new(VecDeque::new()),
        gate: Mutex::new(()),
        wake: Condvar::new(),
    });
    POOL_START.call_once(|| {
        pool_metrics::handles().threads.set(MAX_THREADS as i64);
        for worker in 0..MAX_THREADS {
            std::thread::Builder::new()
                .name(format!("width-worker-{worker}"))
                .spawn(move || pool.worker_loop(worker))
                .expect("spawn pool worker");
        }
    });
    pool
}

/// True when the shared pool is already running — i.e. a search starting
/// now skips the pool spin-up entirely. Surfaced as the `pool_reuse`
/// runtime counter by the strategy wrappers.
pub fn pool_is_warm() -> bool {
    POOL.get().is_some()
}

impl SharedPool {
    /// Queues a job on `from`'s own deque (the injector for external
    /// threads) and wakes a parked worker.
    fn push(&self, from: usize, job: Job) {
        let queue = self.queues.get(from).unwrap_or(&self.injector);
        queue.lock().expect("pool queue poisoned").push_back(job);
        let _gate = self.gate.lock().expect("pool gate poisoned");
        self.wake.notify_all();
    }

    /// Pops `me`'s newest job, else an injected job, else steals the
    /// oldest job of another worker.
    fn grab(&self, me: usize) -> Option<Job> {
        if let Some(job) = self.queues[me]
            .lock()
            .expect("pool queue poisoned")
            .pop_back()
        {
            return Some(job);
        }
        if let Some(job) = self
            .injector
            .lock()
            .expect("pool queue poisoned")
            .pop_front()
        {
            return Some(job);
        }
        let n = self.queues.len();
        for delta in 1..n {
            let victim = (me + delta) % n;
            if let Some(job) = self.queues[victim]
                .lock()
                .expect("pool queue poisoned")
                .pop_front()
            {
                return Some(job);
            }
        }
        None
    }

    fn has_queued(&self) -> bool {
        self.queues
            .iter()
            .chain(std::iter::once(&self.injector))
            .any(|q| !q.lock().expect("pool queue poisoned").is_empty())
    }

    /// The workers' loop: run jobs forever, parking whenever every deque is
    /// empty. Stale advertisements of finished searches fail their weak
    /// upgrade and drop in O(1).
    fn worker_loop(&'static self, me: usize) {
        loop {
            if let Some(job) = self.grab(me) {
                pool_metrics::handles().jobs.inc();
                job(self, me);
                continue;
            }
            let guard = self.gate.lock().expect("pool gate poisoned");
            // Re-check under the gate: a push between our failed grab and
            // this lock already notified (notifications happen under the
            // gate), so waiting here cannot miss it.
            if self.has_queued() {
                continue;
            }
            drop(self.wake.wait(guard).expect("pool gate poisoned"));
        }
    }
}

/// Per-search worker-budget accounting on the shared pool: a search with
/// `threads = t` hands out at most `t - 1` permits, so at most `t - 1`
/// pool workers help it at any moment (the calling thread is the t-th).
/// Acquisition is non-blocking — an advert popped with no permit left is a
/// no-op and the batch owner evaluates the slot itself — so budgets cannot
/// deadlock against each other, and each search sees at most its own
/// configured parallelism whatever else shares the pool.
struct Permits(AtomicUsize);

impl Permits {
    fn new(n: usize) -> Self {
        Permits(AtomicUsize::new(n))
    }

    fn acquire(&self) -> bool {
        let mut left = self.0.load(Ordering::Relaxed);
        while left > 0 {
            match self
                .0
                .compare_exchange_weak(left, left - 1, Ordering::Acquire, Ordering::Relaxed)
            {
                Ok(_) => {
                    pool_metrics::handles().permits_in_use.add(1);
                    return true;
                }
                Err(now) => left = now,
            }
        }
        false
    }

    fn release(&self) {
        pool_metrics::handles().permits_in_use.sub(1);
        self.0.fetch_add(1, Ordering::Release);
    }
}

/// Process-lifetime pool metrics, mirrored into the `obs` registry.
/// Observational only: scheduling never reads them.
mod pool_metrics {
    use obs::metrics::{counter, gauge, Counter, Gauge};
    use std::sync::{Arc, OnceLock};

    pub(super) struct Handles {
        /// Worker permits currently held across every in-flight search.
        pub permits_in_use: Arc<Gauge>,
        /// Worker threads of the shared pool (0 until the pool starts).
        pub threads: Arc<Gauge>,
        /// Jobs the pool workers have executed.
        pub jobs: Arc<Counter>,
    }

    pub(super) fn handles() -> &'static Handles {
        static HANDLES: OnceLock<Handles> = OnceLock::new();
        HANDLES.get_or_init(|| Handles {
            permits_in_use: gauge(
                "hgtool_pool_permits_in_use",
                "Shared-pool worker permits currently held by in-flight searches",
            ),
            threads: gauge(
                "hgtool_pool_threads",
                "Worker threads of the process-wide search pool (0 until first parallel search)",
            ),
            jobs: counter(
                "hgtool_pool_jobs_total",
                "Jobs executed by the shared pool workers",
            ),
        })
    }
}

/// Per-branch execution handle threaded through the recursion: where this
/// branch runs (shared pool + deque index) and which cancellation scope
/// governs it.
struct Exec {
    pool: Option<&'static SharedPool>,
    worker: usize,
    cancel: Option<Arc<CancelScope>>,
}

impl Exec {
    /// No pool, no cancellation: the sequential engine.
    fn sequential() -> Self {
        Exec {
            pool: None,
            worker: EXTERNAL,
            cancel: None,
        }
    }

    fn is_canceled(&self) -> bool {
        match &self.cancel {
            Some(scope) => scope.is_canceled(),
            None => false,
        }
    }
}

/// A fully evaluated candidate: its achieved cost and recorded plan.
type Found<C> = (C, Plan<C>);

/// Outcome of evaluating one candidate. The engine's fan-out policy keys
/// on the `Rejected`/priced distinction: rounds whose candidates are all
/// bound-gated (`Rejected` without pricing) are pure scans not worth
/// dispatching to the pool.
enum Evaluated<C> {
    /// `admit` returned `None` (bound-gated or structurally hopeless) —
    /// no pricing ran.
    Rejected,
    /// Priced by the strategy, but discarded afterwards (engine checks,
    /// bound, or a failing sub-component).
    Admitted,
    /// Fully decomposed: cost and plan.
    Solved(Found<C>),
}

impl<C> Evaluated<C> {
    /// True iff the strategy actually priced the candidate.
    fn priced(&self) -> bool {
        !matches!(self, Evaluated::Rejected)
    }
}

/// The per-slot outcomes of one evaluation round, in stream order.
type RoundOutcome<C> = Vec<Option<Evaluated<C>>>;

/// Decision-speculation state of a batch: the scope that cancels losing
/// siblings and the winning candidate (lowest slot wins ties so repeated
/// runs prefer the same witness).
struct SpecState<C> {
    scope: Arc<CancelScope>,
    winner: Mutex<Option<(usize, Found<C>)>>,
}

/// One evaluation batch: a round of candidates of a single state, shared
/// with the pool via `Arc`. Workers claim slots through `cursor` (so an
/// advertisement popped after the batch is drained is a cheap no-op), write
/// into `results`, and the owner parks on `done` until every claimed slot
/// has finished. Owns a full [`Search`] handle plus clones of the state
/// sets — jobs outlive the owner's stack frame only through this `Arc`,
/// which is what keeps the whole pool free of `unsafe` even though the
/// pool itself now outlives every search.
struct BatchCtx<C, S> {
    search: Search<C, S>,
    comp: VertexSet,
    conn: VertexSet,
    parent_split: VertexSet,
    comp_edges: Vec<usize>,
    guesses: Vec<Guess>,
    /// The round's bound snapshot (minimizers) or the strategy cutoff
    /// (speculation).
    bound: Option<C>,
    /// The enclosing cancellation scope, if any.
    inherited: Option<Arc<CancelScope>>,
    /// `Some` for speculative decision rounds.
    spec: Option<SpecState<C>>,
    cursor: AtomicUsize,
    results: Mutex<RoundOutcome<C>>,
    /// Set when a slot was killed by an *ancestor* scope (not by a sibling
    /// win): the whole batch result is then discarded as canceled.
    failed: AtomicBool,
    remaining: Mutex<usize>,
    done: Condvar,
}

impl<C, S> BatchCtx<C, S>
where
    C: Ord + Clone + Send + Sync + 'static,
    S: WidthSolver<Cost = C> + Send + Sync + 'static,
{
    /// Claims and evaluates candidate slots until the batch is drained.
    /// Runs on the owner and on any worker that popped an advertisement.
    fn work(&self, pool: &'static SharedPool, worker: usize) {
        let cancel = match &self.spec {
            Some(spec) => Some(Arc::clone(&spec.scope)),
            None => self.inherited.clone(),
        };
        let exec = Exec {
            pool: Some(pool),
            worker,
            cancel,
        };
        loop {
            let slot = self.cursor.fetch_add(1, Ordering::Relaxed);
            if slot >= self.guesses.len() {
                return;
            }
            let state = SearchState {
                comp: &self.comp,
                conn: &self.conn,
                comp_edges: &self.comp_edges,
                parent_split: &self.parent_split,
            };
            let outcome = if exec.is_canceled() {
                Err(Canceled)
            } else {
                self.search.evaluate_candidate(
                    state,
                    &self.guesses[slot],
                    self.bound.as_ref(),
                    &exec,
                )
            };
            match outcome {
                Ok(Evaluated::Solved(found)) if self.spec.is_some() => {
                    let spec = self.spec.as_ref().expect("speculative batch");
                    let mut winner = spec.winner.lock().expect("winner poisoned");
                    let better = match &*winner {
                        None => true,
                        Some((best_slot, _)) => slot < *best_slot,
                    };
                    if better {
                        *winner = Some((slot, found));
                    }
                    drop(winner);
                    spec.scope.cancel();
                }
                Ok(_) if self.spec.is_some() => {}
                Ok(evaluated) => {
                    self.results.lock().expect("batch results poisoned")[slot] = Some(evaluated);
                }
                Err(Canceled) => {
                    // Losing a speculative race is the expected outcome;
                    // only an ancestor cancellation fails the batch itself.
                    let ancestor = match &self.inherited {
                        Some(scope) => scope.is_canceled(),
                        None => false,
                    };
                    if ancestor || self.spec.is_none() {
                        self.failed.store(true, Ordering::Release);
                    }
                }
            }
            let mut left = self.remaining.lock().expect("batch latch poisoned");
            *left -= 1;
            if *left == 0 {
                self.done.notify_all();
            }
        }
    }

    /// Parks the owner until every slot has finished (slots claimed by
    /// thieves keep running on their workers).
    fn wait(&self) {
        let mut left = self.remaining.lock().expect("batch latch poisoned");
        while *left > 0 {
            left = self.done.wait(left).expect("batch latch poisoned");
        }
    }
}

/// The interior of a [`SearchContext`], shared with the pool through
/// `Arc`s: the memo, the plan arena, the counters and the scheduling
/// configuration. Everything a pool worker needs to keep evaluating a
/// search after the submitting call frame has moved on.
struct Core<C> {
    memo: ShardedCache<MemoKey, Option<(C, usize)>>,
    plans: Mutex<Vec<Plan<C>>>,
    stats: AtomicStats,
    /// Configured worker-thread budget (1 = sequential).
    threads: usize,
    /// Decision-strategy speculation (see [`EngineOptions::speculate`]).
    speculate: bool,
}

/// The shared search engine: memoized `(component, connector[, state key])`
/// recursion with witness assembly. The memo is a concurrent
/// [`ShardedCache`] with in-flight entry states — a state racing into
/// multiple workers is evaluated by exactly one while the others park on
/// it — and every search method takes `&self`, so worker threads recurse
/// through one context concurrently. The cache's hit/miss counters double
/// as the `memo_hits`/`states` stats (every miss becomes a computed state,
/// computed exactly once).
///
/// Parallel evaluation runs on the process-wide [`SharedPool`] (lazily
/// started on the first parallel search, reused by every search after it),
/// with per-search [`Permits`] capping how many pool workers help any one
/// search at its configured `threads` budget.
pub struct SearchContext<C> {
    core: Arc<Core<C>>,
}

/// One in-flight search: the engine core plus owned handles to the
/// hypergraph and strategy. `Clone` is four `Arc` bumps — every pool job
/// carries one of these (via its batch), which is what lets jobs be
/// `'static` on the shared pool without a single borrow of the submitting
/// stack frame.
struct Search<C, S> {
    core: Arc<Core<C>>,
    h: Arc<Hypergraph>,
    strategy: Arc<S>,
    /// Helper budget for this search (see [`Permits`]).
    permits: Arc<Permits>,
}

impl<C, S> Clone for Search<C, S> {
    fn clone(&self) -> Self {
        Search {
            core: Arc::clone(&self.core),
            h: Arc::clone(&self.h),
            strategy: Arc::clone(&self.strategy),
            permits: Arc::clone(&self.permits),
        }
    }
}

impl<C: Ord + Clone + Send + Sync + 'static> SearchContext<C> {
    /// A context with the default parallelism ([`default_thread_count`])
    /// and no speculation.
    pub fn new() -> Self {
        Self::with_options(EngineOptions::default())
    }

    /// A context evaluating candidates on up to `threads` workers
    /// (`1` = strictly sequential; used by the determinism tests).
    pub fn with_threads(threads: usize) -> Self {
        Self::with_options(EngineOptions::with_threads(threads))
    }

    /// A context with explicit [`EngineOptions`]. A requested thread count
    /// of `0` is meaningless and clamps to `1` (debug builds assert).
    pub fn with_options(opts: EngineOptions) -> Self {
        let threads = match opts.threads {
            Some(n) => {
                debug_assert!(n > 0, "with_threads(0) is meaningless; it clamps to 1");
                n.clamp(1, MAX_THREADS)
            }
            None => default_thread_count(),
        };
        SearchContext {
            core: Arc::new(Core {
                memo: ShardedCache::new(),
                plans: Mutex::new(Vec::new()),
                stats: AtomicStats::default(),
                threads,
                speculate: opts.speculate,
            }),
        }
    }

    /// The resolved worker-thread budget of this context.
    pub fn threads(&self) -> usize {
        self.core.threads
    }

    /// Snapshot of the engine counters (the `price_*` fields are zero here;
    /// strategy wrappers merge their cache counters on top).
    pub fn stats(&self) -> SearchStats {
        let (memo_hits, states) = self.core.memo.counters();
        SearchStats {
            states,
            memo_hits,
            streamed: self.core.stats.streamed.load(Ordering::Relaxed),
            admitted: self.core.stats.admitted.load(Ordering::Relaxed),
            ..SearchStats::default()
        }
    }

    /// Decomposes the whole hypergraph with `strategy`; returns the achieved
    /// cost (maximum over nodes) and the witness.
    ///
    /// With `threads > 1` a parallel-capable search advertises its rounds
    /// on the process-wide [`SharedPool`] (started lazily on first use,
    /// then shared by every search in the process) while the calling
    /// thread works the rounds itself; [`Permits`] cap the helpers at
    /// `threads - 1` so results and stats match a dedicated `threads`-wide
    /// pool exactly.
    pub fn run<S>(&self, h: &Hypergraph, strategy: &Arc<S>) -> Option<(C, Decomposition)>
    where
        S: WidthSolver<Cost = C> + Send + Sync + 'static,
    {
        if h.num_vertices() == 0 {
            return None;
        }
        let root = h.all_vertices();
        let empty = VertexSet::new();
        let search = Search {
            core: Arc::clone(&self.core),
            h: Arc::new(h.clone()),
            strategy: Arc::clone(strategy),
            permits: Arc::new(Permits::new(self.core.threads.saturating_sub(1))),
        };
        // Decision strategies without speculation never push a job, so
        // routing them through the pool is pure overhead.
        let wants_pool = self.core.threads > 1 && (!strategy.is_decision() || self.core.speculate);
        // An ambient anytime control (portfolio racing, deadlines) anchors
        // the root scope to its token: every speculative descendant scope
        // chains back here, so external cancellation reaches pool-side
        // work through the ordinary scope walk.
        let ambient = prep::anytime::current_cancel();
        let cancel = ambient
            .as_ref()
            .map(|token| Arc::new(CancelScope::anchored(token.clone())));
        let exec = Exec {
            pool: wants_pool.then(shared_pool),
            worker: EXTERNAL,
            cancel,
        };
        let solved = search.solve_inner(&root, &empty, &empty, &exec);
        let entry = match solved {
            Ok(entry) => entry,
            // Only the ambient token can cancel the root branch; there is
            // no caller to hand `Canceled` back to, so unwind — the cache
            // claim guards abandon their entries on the way out and the
            // portfolio runner catches the payload at its thread boundary.
            Err(Canceled) => prep::anytime::interrupt::raise(),
        };
        let (cost, plan) = entry?;
        let d = self.assemble(&root, plan);
        Some((cost, d))
    }

    /// Solves one `(component, connector)` state sequentially: the minimum
    /// achievable maximum cost of a decomposition fragment covering `comp`
    /// whose apex bag contains `conn`, or `None` if none exists under the
    /// cutoff. Standalone entry point — [`SearchContext::run`] drives the
    /// same recursion through the worker pool.
    pub fn solve<S>(
        &self,
        h: &Hypergraph,
        strategy: &Arc<S>,
        comp: &VertexSet,
        conn: &VertexSet,
        parent_split: &VertexSet,
    ) -> Option<(C, usize)>
    where
        S: WidthSolver<Cost = C> + Send + Sync + 'static,
    {
        let search = Search {
            core: Arc::clone(&self.core),
            h: Arc::new(h.clone()),
            strategy: Arc::clone(strategy),
            permits: Arc::new(Permits::new(0)),
        };
        search
            .solve_inner(comp, conn, parent_split, &Exec::sequential())
            .expect("the sequential engine has no cancellation scope")
    }

    /// Materializes the witness decomposition rooted at `plan`. The root bag
    /// is used as-is; below, bags are clipped to `component ∪ parent bag`
    /// (the witness-tree construction every strategy shares).
    fn assemble(&self, root_comp: &VertexSet, plan: usize) -> Decomposition {
        let plans = self.core.plans.lock().expect("plan arena poisoned");
        let p = &plans[plan];
        let root_bag = p.bag.intersection(root_comp);
        let mut d = Decomposition::new(Node {
            bag: root_bag.clone(),
            weights: p.weights.clone(),
        });
        for (sub, child) in &p.children {
            attach(&plans, &mut d, 0, &root_bag, *child, sub);
        }
        d
    }
}

impl<C, S> Search<C, S>
where
    C: Ord + Clone + Send + Sync + 'static,
    S: WidthSolver<Cost = C> + Send + Sync + 'static,
{
    /// The memoized recursion step: claim the state's memo entry (parking
    /// through another worker's in-flight evaluation), evaluating it only
    /// as the claim owner.
    fn solve_inner(
        &self,
        comp: &VertexSet,
        conn: &VertexSet,
        parent_split: &VertexSet,
        exec: &Exec,
    ) -> Result<Option<(C, usize)>, Canceled> {
        if exec.is_canceled() {
            return Err(Canceled);
        }
        let h = self.h.as_ref();
        if self.strategy.has_state_key() {
            // The memo key needs the derived state, so build it up front.
            let comp_edges = h.edges_intersecting(comp);
            let state = SearchState {
                comp,
                conn,
                comp_edges: &comp_edges,
                parent_split,
            };
            let key = MemoKey {
                comp: comp.clone(),
                conn: conn.clone(),
                skey: self.strategy.state_key(h, state),
            };
            match self.core.memo.claim(&key) {
                Claim::Hit(hit) => Ok(hit),
                Claim::Owner => self.compute_claimed(state, key, exec),
            }
        } else {
            // Fast path: claim on `(comp, conn)` alone — a memo hit costs
            // one probe, no edge scan.
            let key = MemoKey {
                comp: comp.clone(),
                conn: conn.clone(),
                skey: None,
            };
            match self.core.memo.claim(&key) {
                Claim::Hit(hit) => Ok(hit),
                Claim::Owner => {
                    let comp_edges = h.edges_intersecting(comp);
                    let state = SearchState {
                        comp,
                        conn,
                        comp_edges: &comp_edges,
                        parent_split,
                    };
                    self.compute_claimed(state, key, exec)
                }
            }
        }
    }

    /// Evaluates a state this branch owns the memo claim for, completing
    /// the entry with the result — or abandoning the claim on cancellation
    /// and unwind, so parked waiters re-claim instead of hanging.
    fn compute_claimed(
        &self,
        state: SearchState<'_>,
        key: MemoKey,
        exec: &Exec,
    ) -> Result<Option<(C, usize)>, Canceled> {
        struct Release<'r, C: Clone> {
            memo: &'r ShardedCache<MemoKey, Option<(C, usize)>>,
            key: Option<MemoKey>,
        }
        impl<C: Clone> Drop for Release<'_, C> {
            fn drop(&mut self) {
                if let Some(key) = self.key.take() {
                    self.memo.abandon(&key);
                }
            }
        }
        let mut release = Release {
            memo: &self.core.memo,
            key: Some(key),
        };
        // Observational only: the engine never reads the trace back, so
        // scheduling and counters are identical with tracing on or off.
        let _span = obs::span!("state", comp = state.comp.len(), conn = state.conn.len());
        let best = self.evaluate_state(state, exec)?;
        let entry = best.map(|(cost, plan)| {
            let mut plans = self.core.plans.lock().expect("plan arena poisoned");
            plans.push(plan);
            (cost, plans.len() - 1)
        });
        let key = release.key.take().expect("claim released exactly once");
        self.core.memo.complete(key, entry.clone());
        Ok(entry)
    }

    /// Dispatches a freshly claimed state to its evaluation mode.
    fn evaluate_state(
        &self,
        state: SearchState<'_>,
        exec: &Exec,
    ) -> Result<Option<(C, Plan<C>)>, Canceled> {
        let stream = self.strategy.candidates(&self.h, state);
        if self.strategy.is_decision() {
            if self.core.speculate && exec.pool.is_some() {
                self.evaluate_speculative(state, stream, exec)
            } else {
                self.evaluate_sequential(state, stream, exec)
            }
        } else {
            self.evaluate_rounds(state, stream, exec)
        }
    }

    /// The sequential decision loop: pull, evaluate, return the first
    /// fully decomposing candidate.
    fn evaluate_sequential(
        &self,
        state: SearchState<'_>,
        stream: CandidateStream<'_>,
        exec: &Exec,
    ) -> Result<Option<(C, Plan<C>)>, Canceled> {
        let cutoff = self.strategy.cutoff();
        let mut streamed = Tally::new(&self.core.stats.streamed);
        for guess in stream {
            if exec.is_canceled() {
                return Err(Canceled);
            }
            streamed.add(1);
            if let Evaluated::Solved(found) =
                self.evaluate_candidate(state, &guess, cutoff.as_ref(), exec)?
            {
                return Ok(Some(found));
            }
        }
        Ok(None)
    }

    /// The minimizer loop: exhaust the stream in rounds, each round
    /// admitted against the bound snapshot from the rounds before it. The
    /// snapshot makes every counter — and the first-minimum merge makes
    /// the witness — independent of scheduling.
    ///
    /// The round schedule is the engine's pruning/parallelism balance, and
    /// it is a deterministic function of the evaluation results alone:
    ///
    /// * **Probe.** While no candidate has fully decomposed — and again
    ///   whenever the previous round improved the best — rounds have size
    ///   1: the bound tightens after *every* candidate, exactly like a
    ///   plain sequential scan, so successes (cheap-first streams put them
    ///   early) immediately arm the strategy's pre-pricing gates. Fanning
    ///   out while the bound is still dropping would price candidates the
    ///   sequential engine rejects, exploding the descent.
    /// * **Ramp.** Only after [`STREAK`] consecutive non-improving
    ///   candidates does the round size start growing, by one per round up
    ///   to [`ROUND`]. Staleness costs nothing in a round without an
    ///   improvement, so long scans earn full width; improvement-dense
    ///   phases (fractional costs often descend in many small steps) stay
    ///   at width 1, so almost no candidate ever sees a stale bound.
    /// * **Fan-out.** A round goes to the pool only when the *previous*
    ///   round priced at least two candidates. Rounds the gates reject
    ///   wholesale are microsecond scans; dispatching them would cost more
    ///   than the scan itself.
    fn evaluate_rounds(
        &self,
        state: SearchState<'_>,
        mut stream: CandidateStream<'_>,
        exec: &Exec,
    ) -> Result<Option<(C, Plan<C>)>, Canceled> {
        let cutoff = self.strategy.cutoff();
        let mut streamed = Tally::new(&self.core.stats.streamed);
        let mut best: Option<(C, Plan<C>)> = None;
        let mut fan_out = false;
        let mut improving = true;
        let mut stable = 0usize;
        let mut want = 1usize;
        loop {
            if exec.is_canceled() {
                return Err(Canceled);
            }
            want = if improving {
                stable = 0;
                1
            } else if want == 1 && stable < STREAK {
                stable += 1;
                1
            } else {
                (want + 1).min(ROUND)
            };
            if want == 1 {
                // Allocation-free fast path: probing rounds dominate the
                // candidate count, so they run exactly like the plain
                // sequential loop.
                let Some(guess) = stream.next() else {
                    return Ok(best);
                };
                streamed.add(1);
                let bound = tighter(cutoff.as_ref(), best.as_ref().map(|(c, _)| c));
                let evaluated = self.evaluate_candidate(state, &guess, bound, exec)?;
                improving = best.is_none();
                if let Evaluated::Solved(found) = evaluated {
                    let improves = match &best {
                        None => true,
                        Some((cost, _)) => found.0 < *cost,
                    };
                    if improves {
                        best = Some(found);
                        improving = true;
                    }
                }
                fan_out = false;
                continue;
            }
            let mut batch = Vec::with_capacity(want);
            while batch.len() < want {
                let Some(guess) = stream.next() else { break };
                batch.push(guess);
            }
            if batch.is_empty() {
                return Ok(best);
            }
            streamed.add(batch.len());
            let bound = tighter(cutoff.as_ref(), best.as_ref().map(|(c, _)| c)).cloned();
            let results = self.evaluate_batch(state, batch, bound, fan_out, exec)?;
            // Results arrive in slot (= stream) order, so a strict `<`
            // keeps the earliest candidate among equal costs — the same
            // witness the sequential engine picks.
            let mut priced = 0usize;
            improving = best.is_none();
            for evaluated in results.into_iter().flatten() {
                if evaluated.priced() {
                    priced += 1;
                }
                if let Evaluated::Solved(found) = evaluated {
                    let improves = match &best {
                        None => true,
                        Some((cost, _)) => found.0 < *cost,
                    };
                    if improves {
                        best = Some(found);
                        improving = true;
                    }
                }
            }
            fan_out = priced >= 2;
        }
    }

    /// Evaluates one round of candidates: across the pool when the round
    /// policy asks for it (the owner claims slots too, then parks until
    /// thieves finish theirs), inline otherwise.
    fn evaluate_batch(
        &self,
        state: SearchState<'_>,
        guesses: Vec<Guess>,
        bound: Option<C>,
        fan_out: bool,
        exec: &Exec,
    ) -> Result<RoundOutcome<C>, Canceled> {
        let pool = match exec.pool {
            Some(pool) if fan_out && guesses.len() > 1 => pool,
            _ => {
                let mut out = Vec::with_capacity(guesses.len());
                for guess in &guesses {
                    if exec.is_canceled() {
                        return Err(Canceled);
                    }
                    out.push(Some(self.evaluate_candidate(
                        state,
                        guess,
                        bound.as_ref(),
                        exec,
                    )?));
                }
                return Ok(out);
            }
        };
        let slots = guesses.len();
        let ctx = Arc::new(BatchCtx {
            search: self.clone(),
            comp: state.comp.clone(),
            conn: state.conn.clone(),
            parent_split: state.parent_split.clone(),
            comp_edges: state.comp_edges.to_vec(),
            guesses,
            bound,
            inherited: exec.cancel.clone(),
            spec: None,
            cursor: AtomicUsize::new(0),
            results: Mutex::new((0..slots).map(|_| None).collect()),
            failed: AtomicBool::new(false),
            remaining: Mutex::new(slots),
            done: Condvar::new(),
        });
        self.offer_and_work(pool, exec.worker, &ctx);
        if ctx.failed.load(Ordering::Acquire) {
            return Err(Canceled);
        }
        let results = std::mem::take(&mut *ctx.results.lock().expect("batch results poisoned"));
        Ok(results)
    }

    /// The speculative decision loop: rounds of `threads` candidates race
    /// across the pool under a fresh cancellation scope; the first witness
    /// (ties broken toward the lowest slot) cancels its siblings, which
    /// abandon their in-flight memo claims mid-descent.
    fn evaluate_speculative(
        &self,
        state: SearchState<'_>,
        mut stream: CandidateStream<'_>,
        exec: &Exec,
    ) -> Result<Option<(C, Plan<C>)>, Canceled> {
        let pool = exec.pool.expect("speculation requires a pool");
        let cutoff = self.strategy.cutoff();
        let mut streamed = Tally::new(&self.core.stats.streamed);
        loop {
            if exec.is_canceled() {
                return Err(Canceled);
            }
            let mut batch = Vec::with_capacity(self.core.threads);
            while batch.len() < self.core.threads {
                let Some(guess) = stream.next() else { break };
                batch.push(guess);
            }
            if batch.is_empty() {
                return Ok(None);
            }
            streamed.add(batch.len());
            if batch.len() == 1 {
                if let Evaluated::Solved(found) =
                    self.evaluate_candidate(state, &batch[0], cutoff.as_ref(), exec)?
                {
                    return Ok(Some(found));
                }
                continue;
            }
            let slots = batch.len();
            let scope = Arc::new(CancelScope {
                flag: AtomicBool::new(false),
                parent: exec.cancel.clone(),
                external: None,
            });
            let ctx = Arc::new(BatchCtx {
                search: self.clone(),
                comp: state.comp.clone(),
                conn: state.conn.clone(),
                parent_split: state.parent_split.clone(),
                comp_edges: state.comp_edges.to_vec(),
                guesses: batch,
                bound: cutoff.clone(),
                inherited: exec.cancel.clone(),
                spec: Some(SpecState {
                    scope,
                    winner: Mutex::new(None),
                }),
                cursor: AtomicUsize::new(0),
                results: Mutex::new(Vec::new()),
                failed: AtomicBool::new(false),
                remaining: Mutex::new(slots),
                done: Condvar::new(),
            });
            self.offer_and_work(pool, exec.worker, &ctx);
            if ctx.failed.load(Ordering::Acquire) {
                return Err(Canceled);
            }
            let spec = ctx.spec.as_ref().expect("speculative batch");
            let winner = spec.winner.lock().expect("winner poisoned").take();
            if let Some((_, found)) = winner {
                return Ok(Some(found));
            }
            // No winner and no ancestor cancellation: every candidate of
            // the round genuinely failed — keep streaming.
        }
    }

    /// Advertises a batch to the pool (one job per slot a helper could
    /// take), works it on the calling thread, and parks until stolen slots
    /// finish.
    fn offer_and_work(&self, pool: &'static SharedPool, worker: usize, ctx: &Arc<BatchCtx<C, S>>) {
        let helpers = (ctx.guesses.len() - 1).min(self.core.threads - 1);
        for _ in 0..helpers {
            // Weak adverts: a queued job never extends the round's life.
            // Once the owner returns from wait() and drops its Arc, stale
            // adverts still sitting in a deque fail to upgrade and are
            // no-ops — the round's guesses and results free immediately
            // instead of lingering until some worker pops them. A helper
            // additionally needs one of the search's permits: the pool is
            // shared, and the permits are what cap this search's active
            // workers at its own `threads` budget (the batch owner claims
            // any slot no helper takes, so a skipped advert costs nothing
            // but parallelism).
            let advert = Arc::downgrade(ctx);
            pool.push(
                worker,
                Box::new(move |pool, me| {
                    if let Some(ctx) = advert.upgrade() {
                        if ctx.search.permits.acquire() {
                            ctx.work(pool, me);
                            ctx.search.permits.release();
                        }
                    }
                }),
            );
        }
        ctx.work(pool, worker);
        ctx.wait();
    }

    /// Admits one guess and, if it survives the structural checks, solves
    /// all sub-components; returns the candidate's achieved cost and plan.
    fn evaluate_candidate(
        &self,
        state: SearchState<'_>,
        guess: &Guess,
        bound: Option<&C>,
        exec: &Exec,
    ) -> Result<Evaluated<C>, Canceled> {
        let h = self.h.as_ref();
        // Admission runs first — it derives the separator geometry and
        // prices it, rejecting structurally or cost-wise hopeless guesses
        // without the engine ever materializing them.
        let Some(admission) = self.strategy.admit(h, state, guess, bound) else {
            return Ok(Evaluated::Rejected);
        };
        self.core.stats.admitted.fetch_add(1, Ordering::Relaxed);
        // Progress: the separator must eat into the component.
        if !admission.split.intersects(state.comp) {
            return Ok(Evaluated::Admitted);
        }
        // Cover condition: the connector must sit inside the bag.
        if !state.conn.is_subset(&admission.bag) {
            return Ok(Evaluated::Admitted);
        }
        if let Some(b) = bound {
            // Covers the strategy cutoff and the best-so-far prune alike:
            // max(cost, children) >= cost >= bound cannot improve.
            if &admission.cost >= b {
                return Ok(Evaluated::Admitted);
            }
        }
        // Split into sub-components and make sure no component edge is
        // lost: each edge of the region must lie inside the bag's span
        // or continue into exactly one sub-component.
        let subs: Vec<VertexSet> = components::components(h, &admission.split)
            .into_iter()
            .filter(|sub| sub.is_subset(state.comp))
            .collect();
        for &e in state.comp_edges {
            let edge = h.edge(e);
            if edge.is_subset(&admission.split) {
                continue;
            }
            let remainder = edge.difference(&admission.split);
            if !subs.iter().any(|sub| remainder.is_subset(sub)) {
                return Ok(Evaluated::Admitted);
            }
        }
        let mut total = admission.cost.clone();
        let mut children = Vec::with_capacity(subs.len());
        for sub in &subs {
            if exec.is_canceled() {
                return Err(Canceled);
            }
            let sub_edges = h.edges_intersecting(sub);
            let span = h.union_of_edges(sub_edges.iter().copied());
            let sub_conn = admission.split.intersection(&span);
            let Some((child_cost, child_plan)) =
                self.solve_inner(sub, &sub_conn, &admission.split, exec)?
            else {
                return Ok(Evaluated::Admitted);
            };
            total = total.max(child_cost);
            children.push((sub.clone(), child_plan));
        }
        Ok(Evaluated::Solved((
            total.clone(),
            Plan {
                bag: admission.bag,
                weights: admission.weights,
                children,
                cost: total,
            },
        )))
    }
}

fn attach<C>(
    plans: &[Plan<C>],
    d: &mut Decomposition,
    parent: usize,
    parent_bag: &VertexSet,
    plan: usize,
    comp: &VertexSet,
) {
    let p = &plans[plan];
    let bag = p.bag.intersection(&comp.union(parent_bag));
    let id = d.add_child(
        parent,
        Node {
            bag: bag.clone(),
            weights: p.weights.clone(),
        },
    );
    for (sub, child) in &p.children {
        attach(plans, d, id, &bag, *child, sub);
    }
}

/// The tighter of the cutoff and the best-so-far cost — the engine's
/// discard bound for new admissions.
fn tighter<'a, C: Ord>(cutoff: Option<&'a C>, best: Option<&'a C>) -> Option<&'a C> {
    match (cutoff, best) {
        (None, None) => None,
        (Some(c), None) => Some(c),
        (None, Some(b)) => Some(b),
        (Some(c), Some(b)) => Some(c.min(b)),
    }
}

impl<C: Ord + Clone + Send + Sync + 'static> Default for SearchContext<C> {
    fn default() -> Self {
        Self::new()
    }
}

/// Streams every bag `conn ⊆ B ⊆ conn ∪ C` (smallest first) as the `extra`
/// payload — the candidate space of the exact `ghw`/`fhw` strategies, which
/// price bags by `ρ` / `ρ*` at admission and split on the bag itself.
/// Empty when the component exceeds [`MAX_SUBSET_SEARCH_VERTICES`].
///
/// Lazy: each pull advances one Gosper-hack mask, so the `2^|C| - 1` bags
/// are never materialized; small bags come first, which finds cheap covers
/// early and tightens the engine's best-so-far prune.
pub fn stream_subset_bags<'a>(state: SearchState<'a>) -> CandidateStream<'a> {
    stream_subset_bags_excluding(state, &[])
}

/// The subset mask (over ascending positions of `free`) whose bag equals
/// `conn ∪ S` — `None` when `bag` is not of that shape (it then never
/// appears in the subset stream) or is `conn` itself (the empty subset is
/// never streamed).
fn subset_mask_of(bag: &VertexSet, conn: &VertexSet, free: &[usize]) -> Option<u64> {
    if !conn.is_subset(bag) {
        return None;
    }
    let mut mask = 0u64;
    for v in bag.difference(conn).iter() {
        let pos = free.binary_search(&v).ok()?;
        mask |= 1u64 << pos;
    }
    if mask == 0 {
        return None;
    }
    Some(mask)
}

/// [`stream_subset_bags`] minus the bags in `exclude` — the completing
/// tail of the hybrid strategies, which must not re-stream a bag their
/// edge-union prefix already produced. The exclusions are translated to
/// subset masks and sorted into stream order (size class, then Gosper
/// rank) up front, so each pull pays one integer comparison against the
/// next pending skip instead of a per-candidate hash lookup.
pub fn stream_subset_bags_excluding<'a>(
    state: SearchState<'a>,
    exclude: &[VertexSet],
) -> CandidateStream<'a> {
    let free: Vec<usize> = state.comp.to_vec();
    let m = free.len();
    if m == 0 || m > MAX_SUBSET_SEARCH_VERTICES {
        return CandidateStream::empty();
    }
    let mut skips: Vec<u64> = exclude
        .iter()
        .filter_map(|bag| subset_mask_of(bag, state.conn, &free))
        .collect();
    skips.sort_unstable_by_key(|&mk| (mk.count_ones(), mk));
    skips.dedup();
    let mut ptr = 0usize;
    let conn = state.conn.clone();
    let limit: u64 = 1u64 << m;
    let mut size = 1usize;
    let mut mask: u64 = 1;
    // Two-block fast path: when the connector and every free vertex fit
    // the inline representation (vertices `< 128` — the entire exact
    // subset-search regime), each bag is accumulated in two registers and
    // materialized with `from_two_blocks` — no clone, no per-member
    // branches. This loop builds every tail candidate the engine streams.
    if let (Some((c0, c1)), true) = (state.conn.two_blocks(), free.iter().all(|&v| v < 128)) {
        let masks: Vec<(u64, u64)> = free
            .iter()
            .map(|&v| {
                if v < 64 {
                    (1u64 << v, 0)
                } else {
                    (0, 1u64 << (v - 64))
                }
            })
            .collect();
        return CandidateStream::new(std::iter::from_fn(move || {
            while size <= m {
                if mask < limit {
                    let cur = mask;
                    // Next mask of the same popcount (Gosper's hack; exits
                    // the popcount class via `mask < limit`).
                    let low = cur & cur.wrapping_neg();
                    let ripple = cur + low;
                    mask = (((ripple ^ cur) >> 2) / low) | ripple;
                    if ptr < skips.len() && skips[ptr] == cur {
                        ptr += 1;
                        continue;
                    }
                    let (mut b0, mut b1) = (c0, c1);
                    let mut bits = cur;
                    while bits != 0 {
                        let (m0, m1) = masks[bits.trailing_zeros() as usize];
                        bits &= bits - 1;
                        b0 |= m0;
                        b1 |= m1;
                    }
                    return Some(Guess {
                        edges: Vec::new(),
                        extra: VertexSet::from_two_blocks(b0, b1),
                    });
                }
                size += 1;
                mask = (1u64 << size) - 1;
            }
            None
        }));
    }
    // General path (vertices beyond the inline range): each free vertex as
    // its (block, bit) pair, one OR per subset member.
    let free_bits: Vec<(usize, u64)> = free.iter().map(|&v| (v / 64, 1u64 << (v % 64))).collect();
    CandidateStream::new(std::iter::from_fn(move || {
        while size <= m {
            if mask < limit {
                let cur = mask;
                // Next mask of the same popcount (Gosper's hack; exits the
                // popcount class via `mask < limit`).
                let low = cur & cur.wrapping_neg();
                let ripple = cur + low;
                mask = (((ripple ^ cur) >> 2) / low) | ripple;
                if ptr < skips.len() && skips[ptr] == cur {
                    ptr += 1;
                    continue;
                }
                let mut bag = conn.clone();
                let mut bits = cur;
                while bits != 0 {
                    let (block, bit) = free_bits[bits.trailing_zeros() as usize];
                    bits &= bits - 1;
                    bag.insert_mask_block(block, bit);
                }
                return Some(Guess {
                    edges: Vec::new(),
                    extra: bag,
                });
            }
            size += 1;
            mask = (1u64 << size) - 1;
        }
        None
    }))
}

/// Lazily enumerates all subsets of `items` with `1 <= size <= max_size` in
/// order of increasing size (small separators first — the order every
/// strategy wants), lexicographic within a size. Shared by the
/// edge-separator strategies; the streaming replacement for the retired
/// eager `subsets_up_to`.
pub fn stream_subsets_up_to<T: Copy + Send>(
    items: Vec<T>,
    max_size: usize,
) -> impl Iterator<Item = Vec<T>> + Send {
    let max_size = max_size.min(items.len());
    // Combination odometer: `idx` holds the current positions for the
    // current size; advancing finds the rightmost index that can move.
    let mut size = 1usize;
    let mut idx: Vec<usize> = Vec::new();
    let mut fresh = true;
    std::iter::from_fn(move || loop {
        if size > max_size || items.is_empty() {
            return None;
        }
        if fresh {
            idx = (0..size).collect();
            fresh = false;
            return Some(idx.iter().map(|&i| items[i]).collect());
        }
        // Advance the odometer.
        let n = items.len();
        let mut pos = size;
        loop {
            if pos == 0 {
                size += 1;
                fresh = true;
                break;
            }
            pos -= 1;
            if idx[pos] < n - (size - pos) {
                idx[pos] += 1;
                for j in pos + 1..size {
                    idx[j] = idx[j - 1] + 1;
                }
                return Some(idx.iter().map(|&i| items[i]).collect());
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy decision strategy: bags are single full edges (width-1 HD
    /// search), enough to exercise the engine plumbing end to end.
    struct SingleEdge;

    impl WidthSolver for SingleEdge {
        type Cost = usize;

        fn is_decision(&self) -> bool {
            true
        }

        fn candidates<'a>(
            &'a self,
            _h: &'a Hypergraph,
            state: SearchState<'a>,
        ) -> CandidateStream<'a> {
            CandidateStream::new(state.comp_edges.iter().map(|&e| Guess {
                edges: vec![e],
                extra: VertexSet::new(),
            }))
        }

        fn admit(
            &self,
            h: &Hypergraph,
            _state: SearchState<'_>,
            guess: &Guess,
            _bound: Option<&usize>,
        ) -> Option<Admission<usize>> {
            let vs = h.union_of_edges(guess.edges.iter().copied());
            Some(Admission {
                split: vs.clone(),
                bag: vs,
                cost: guess.edges.len(),
                weights: guess.edges.iter().map(|&e| (e, Rational::one())).collect(),
            })
        }
    }

    /// A minimizing variant of [`SingleEdge`] whose cost is the bag size —
    /// exercises the round-based pool evaluation path (minimizers fan out).
    struct SmallestEdge;

    impl WidthSolver for SmallestEdge {
        type Cost = usize;

        fn is_decision(&self) -> bool {
            false
        }

        fn candidates<'a>(
            &'a self,
            _h: &'a Hypergraph,
            state: SearchState<'a>,
        ) -> CandidateStream<'a> {
            CandidateStream::new(state.comp_edges.iter().map(|&e| Guess {
                edges: vec![e],
                extra: VertexSet::new(),
            }))
        }

        fn admit(
            &self,
            h: &Hypergraph,
            _state: SearchState<'_>,
            guess: &Guess,
            bound: Option<&usize>,
        ) -> Option<Admission<usize>> {
            let vs = h.union_of_edges(guess.edges.iter().copied());
            let cost = vs.len();
            if let Some(b) = bound {
                if &cost >= b {
                    return None;
                }
            }
            Some(Admission {
                split: vs.clone(),
                bag: vs,
                cost,
                weights: guess.edges.iter().map(|&e| (e, Rational::one())).collect(),
            })
        }
    }

    fn path(n: usize) -> Hypergraph {
        Hypergraph::from_edges(n, (0..n - 1).map(|i| vec![i, i + 1]).collect())
    }

    fn triangle() -> Hypergraph {
        Hypergraph::from_edges(3, vec![vec![0, 1], vec![1, 2], vec![2, 0]])
    }

    #[test]
    fn acyclic_instances_decompose_with_single_edges() {
        let h = path(5);
        let cx = SearchContext::new();
        let (cost, d) = cx.run(&h, &Arc::new(SingleEdge)).expect("paths have hw 1");
        assert_eq!(cost, 1);
        assert_eq!(decomp::validate_hd(&h, &d), Ok(()), "{}", d.render(&h));
        assert!(cx.stats().states > 0);
    }

    #[test]
    fn cyclic_instances_fail_with_single_edges() {
        let h = triangle();
        let cx = SearchContext::new();
        assert!(cx.run(&h, &Arc::new(SingleEdge)).is_none());
    }

    #[test]
    fn memo_is_keyed_on_component_and_connector() {
        // A star: every leaf component after removing the center edge is a
        // fresh state; re-solving the same hypergraph reuses the memo.
        let h = Hypergraph::from_edges(4, vec![vec![0, 1], vec![0, 2], vec![0, 3]]);
        let cx = SearchContext::new();
        cx.run(&h, &Arc::new(SingleEdge)).expect("stars have hw 1");
        let states = cx.stats().states;
        cx.run(&h, &Arc::new(SingleEdge)).expect("second run");
        assert_eq!(cx.stats().states, states, "second run is all memo hits");
        assert!(cx.stats().memo_hits > 0);
    }

    #[test]
    fn decision_streams_stop_at_the_first_witness() {
        // A path decomposes with the very first candidates; far fewer
        // guesses must be pulled than the full per-state edge count.
        let h = path(6);
        let cx = SearchContext::new();
        cx.run(&h, &Arc::new(SingleEdge)).expect("paths have hw 1");
        let stats = cx.stats();
        assert!(
            stats.streamed <= stats.states * 3,
            "decision search pulled {} guesses over {} states",
            stats.streamed,
            stats.states
        );
    }

    #[test]
    fn parallel_and_sequential_minimization_agree() {
        for n in 3..7 {
            let h = path(n);
            let seq = SearchContext::with_threads(1)
                .run(&h, &Arc::new(SmallestEdge))
                .map(|(c, _)| c);
            let par = SearchContext::with_threads(4)
                .run(&h, &Arc::new(SmallestEdge))
                .map(|(c, _)| c);
            assert_eq!(seq, par, "path({n})");
        }
        let h = triangle();
        let seq = SearchContext::with_threads(1)
            .run(&h, &Arc::new(SmallestEdge))
            .map(|(c, _)| c);
        let par = SearchContext::with_threads(4)
            .run(&h, &Arc::new(SmallestEdge))
            .map(|(c, _)| c);
        assert_eq!(seq, par, "triangle");
    }

    #[test]
    fn stats_and_witnesses_are_thread_count_invariant() {
        // The in-flight memo dedup plus round-snapshot bounds make every
        // counter — and the first-minimum merge makes the witness — a pure
        // function of the strategy, whatever the worker count.
        for n in [4usize, 6, 9] {
            let h = path(n);
            let seq = SearchContext::with_threads(1);
            let baseline = seq.run(&h, &Arc::new(SmallestEdge));
            for threads in [2usize, 4, 8] {
                let par = SearchContext::with_threads(threads);
                let result = par.run(&h, &Arc::new(SmallestEdge));
                assert_eq!(baseline, result, "path({n}) at {threads} threads");
                assert_eq!(
                    seq.stats(),
                    par.stats(),
                    "path({n}) stats at {threads} threads"
                );
            }
        }
    }

    #[test]
    fn speculative_decision_searches_agree_with_sequential() {
        // Speculation may pick a different (equally valid) witness but
        // must return the same yes/no and cost on decision strategies.
        for n in 3..8 {
            let h = path(n);
            let seq = SearchContext::with_threads(1)
                .run(&h, &Arc::new(SingleEdge))
                .map(|(c, _)| c);
            let cx = SearchContext::with_options(EngineOptions::with_threads(4).speculative());
            let spec = cx.run(&h, &Arc::new(SingleEdge));
            assert_eq!(seq, spec.as_ref().map(|(c, _)| *c), "path({n})");
            if let Some((_, d)) = spec {
                assert_eq!(decomp::validate_hd(&h, &d), Ok(()), "{}", d.render(&h));
            }
        }
        let h = triangle();
        let cx = SearchContext::with_options(EngineOptions::with_threads(4).speculative());
        assert!(
            cx.run(&h, &Arc::new(SingleEdge)).is_none(),
            "no width-1 HD exists"
        );
    }

    #[test]
    #[cfg_attr(
        debug_assertions,
        should_panic(expected = "with_threads(0) is meaningless")
    )]
    fn with_threads_zero_clamps_to_one() {
        // Debug builds assert on the nonsensical request; release builds
        // clamp to a well-defined sequential context.
        let cx = SearchContext::<usize>::with_threads(0);
        assert_eq!(cx.threads(), 1);
    }

    #[test]
    fn default_thread_count_is_positive_and_capped() {
        let n = default_thread_count();
        assert!((1..=8).contains(&n));
    }

    #[test]
    fn subset_stream_orders_by_size() {
        let subs: Vec<Vec<i32>> = stream_subsets_up_to(vec![1, 2, 3], 2).collect();
        assert_eq!(
            subs,
            vec![
                vec![1],
                vec![2],
                vec![3],
                vec![1, 2],
                vec![1, 3],
                vec![2, 3]
            ]
        );
        assert_eq!(stream_subsets_up_to::<i32>(Vec::new(), 3).count(), 0);
        // Full powerset (minus the empty set) when max_size >= len.
        assert_eq!(stream_subsets_up_to(vec![1, 2, 3, 4], 9).count(), 15);
    }

    #[test]
    fn subset_bag_stream_is_lazy_and_complete() {
        let comp = VertexSet::from_iter([0, 1, 2]);
        let conn = VertexSet::new();
        let edges: Vec<usize> = Vec::new();
        let parent = VertexSet::new();
        let state = SearchState {
            comp: &comp,
            conn: &conn,
            comp_edges: &edges,
            parent_split: &parent,
        };
        let bags: Vec<VertexSet> = stream_subset_bags(state).map(|g| g.extra).collect();
        assert_eq!(bags.len(), 7, "2^3 - 1 bags");
        // Ordered by size.
        let sizes: Vec<usize> = bags.iter().map(|b| b.len()).collect();
        let mut sorted = sizes.clone();
        sorted.sort_unstable();
        assert_eq!(sizes, sorted);
        // All distinct.
        let set: std::collections::HashSet<_> = bags.iter().map(|b| b.to_vec()).collect();
        assert_eq!(set.len(), 7);
    }

    #[test]
    fn empty_hypergraph_refused() {
        let h = Hypergraph::from_edges(0, vec![]);
        assert!(SearchContext::new()
            .run(&h, &Arc::new(SingleEdge))
            .is_none());
    }
}
