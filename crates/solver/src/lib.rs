//! The shared decomposition-search engine behind every exact width solver in
//! the workspace.
//!
//! `det-k-decomp` (Gottlob–Leone–Scarcello), the exact `ghw`/`fhw` baselines
//! and Algorithm 3 (`frac-decomp`) all share one recursion scheme: work on a
//! pair `(C, conn)` where `C` is a connected component of the hypergraph
//! minus the separator chosen above, and `conn` is the part of the parent
//! separator visible from `C`; guess a separator/bag for the node covering
//! `conn`, split `C` into sub-components, and recurse. The algorithms differ
//! only in *which candidate bags they enumerate* and *how a candidate is
//! priced* (edge counts, `ρ`, `ρ*`, or an LP for the fractional part).
//!
//! This crate owns the recursion: [`SearchContext`] carries the
//! `(component, connector)` memo table keyed on [`VertexSet`] pairs, performs
//! component splitting, applies the cutoff, and assembles the witness
//! [`Decomposition`] from the recorded plans. Concrete solvers implement
//! [`WidthSolver`] — a pure strategy that proposes cheap combinatorial
//! guesses ([`WidthSolver::propose`]) and then prices/validates them
//! ([`WidthSolver::admit`], where set covers and LPs run).
//!
//! Decision strategies (`Check(HD, k)`, `frac-decomp`) accept the first
//! admitted candidate whose sub-components all decompose; minimizing
//! strategies (exact `ghw` / `fhw`) exhaust the candidate space and return
//! the smallest achievable maximum cost.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use arith::Rational;
use decomp::{Decomposition, Node};
use hypergraph::{components, Hypergraph, VertexSet};
use std::collections::HashMap;

/// Practical vertex limit for the subset-enumerating exact strategies
/// (`ghw`/`fhw` baselines): those strategies propose every bag
/// `conn ⊆ B ⊆ conn ∪ C`, which is exponential in `|C|`.
pub const MAX_SUBSET_SEARCH_VERTICES: usize = 18;

/// A cheap combinatorial guess for one search node, produced by
/// [`WidthSolver::propose`] before any cover/LP pricing runs. A guess is
/// deliberately *cheap* — combinatorial payload only, no derived vertex
/// sets — so that decision strategies keep their first-success early exit:
/// the per-candidate set unions, covers and LPs all run lazily in
/// [`WidthSolver::admit`].
#[derive(Clone, Debug)]
pub struct Guess {
    /// The chosen integral separator edges (`supp(λ)`), if the strategy
    /// works with explicit edge sets.
    pub edges: Vec<usize>,
    /// Strategy-specific vertex payload: the candidate bag for the subset
    /// strategies, the fractional shadow `W_s` for `frac-decomp`, empty
    /// for `det-k-decomp`.
    pub extra: VertexSet,
}

/// The priced result of admitting a [`Guess`]: the separator geometry plus
/// its cost and witness edge weights.
#[derive(Clone, Debug)]
pub struct Admission<C> {
    /// Vertices removed when splitting the component. Children are the
    /// `[split]`-components inside the current component, and a child's
    /// connector is `split ∩ ⋃ edges(child)`.
    ///
    /// `det-k-decomp` splits on the *full* `V(S)` (this is what enforces the
    /// special condition); the GHD/FHD strategies split on the clipped bag.
    pub split: VertexSet,
    /// The candidate bag before witness clipping; the final bag of the
    /// assembled node is `bag ∩ (component ∪ parent bag)`.
    pub bag: VertexSet,
    /// The cost the engine minimizes (maximum over the witness tree).
    pub cost: C,
    /// Sparse edge weights `(edge, weight)` recorded on the witness node.
    pub weights: Vec<(usize, Rational)>,
}

/// One `(component, connector)` search state, handed to the strategy.
pub struct SearchState<'a> {
    /// The current component `C`.
    pub comp: &'a VertexSet,
    /// The visible part of the parent separator,
    /// `conn = sep ∩ ⋃ edges(C)` — must be covered by every candidate bag.
    pub conn: &'a VertexSet,
    /// `edges(C)`: indices of edges intersecting `C`.
    pub comp_edges: &'a [usize],
}

/// A width-solver strategy: everything that distinguishes `det-k-decomp`
/// from the exact `ghw`/`fhw` searches and from `frac-decomp`.
pub trait WidthSolver {
    /// Cost type of a node (edge count, `ρ`, `ρ*`, ...).
    type Cost: Ord + Clone;

    /// Decision strategies stop at the first admitted candidate whose
    /// sub-components all decompose; minimizers exhaust the space.
    fn is_decision(&self) -> bool;

    /// Global cutoff: admitted candidates with `cost >= cutoff` are
    /// discarded, so the search fails iff every decomposition reaches it.
    fn cutoff(&self) -> Option<Self::Cost> {
        None
    }

    /// Enumerates combinatorial candidates for a state. Cheap: no covers,
    /// LPs or per-candidate unions here — those run in
    /// [`WidthSolver::admit`], which the engine calls lazily (decision
    /// strategies often stop long before the end of the candidate list).
    fn propose(&mut self, h: &Hypergraph, state: &SearchState<'_>) -> Vec<Guess>;

    /// Prices and validates a guess — the expensive per-candidate work
    /// (set unions, covers, LPs) lives here. Returns the separator
    /// geometry, cost and witness weights; `None` rejects the candidate.
    fn admit(
        &mut self,
        h: &Hypergraph,
        state: &SearchState<'_>,
        guess: &Guess,
    ) -> Option<Admission<Self::Cost>>;
}

/// A successful node choice recorded during the search; the plan arena plus
/// the memo table are what [`SearchContext::assemble`] replays into the
/// witness decomposition.
#[derive(Clone, Debug)]
struct Plan<C> {
    bag: VertexSet,
    weights: Vec<(usize, Rational)>,
    children: Vec<(VertexSet, usize)>,
    #[allow(dead_code)]
    cost: C,
}

/// Counters exposed for tests and benchmarks.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Search states entered (memo misses).
    pub states: usize,
    /// Memo hits.
    pub memo_hits: usize,
    /// Guesses proposed by the strategy.
    pub proposed: usize,
    /// Guesses admitted (priced successfully).
    pub admitted: usize,
}

/// The shared search engine: memoized `(component, connector)` recursion
/// with witness assembly.
pub struct SearchContext<C> {
    /// `(component, connector) -> (best cost, plan)`; `None` records failure.
    memo: HashMap<(VertexSet, VertexSet), Option<(C, usize)>>,
    plans: Vec<Plan<C>>,
    /// Search counters.
    pub stats: SearchStats,
}

impl<C: Ord + Clone> SearchContext<C> {
    /// An empty context.
    pub fn new() -> Self {
        SearchContext {
            memo: HashMap::new(),
            plans: Vec::new(),
            stats: SearchStats::default(),
        }
    }

    /// Decomposes the whole hypergraph with `strategy`; returns the achieved
    /// cost (maximum over nodes) and the witness.
    pub fn run<S: WidthSolver<Cost = C>>(
        &mut self,
        h: &Hypergraph,
        strategy: &mut S,
    ) -> Option<(C, Decomposition)> {
        if h.num_vertices() == 0 {
            return None;
        }
        let root = h.all_vertices();
        let (cost, plan) = self.solve(h, strategy, &root, &VertexSet::new())?;
        let d = self.assemble(&root, plan);
        Some((cost, d))
    }

    /// Solves one `(component, connector)` state: the minimum achievable
    /// maximum cost of a decomposition fragment covering `comp` whose apex
    /// bag contains `conn`, or `None` if none exists under the cutoff.
    pub fn solve<S: WidthSolver<Cost = C>>(
        &mut self,
        h: &Hypergraph,
        strategy: &mut S,
        comp: &VertexSet,
        conn: &VertexSet,
    ) -> Option<(C, usize)> {
        let key = (comp.clone(), conn.clone());
        if let Some(hit) = self.memo.get(&key) {
            self.stats.memo_hits += 1;
            return hit.clone();
        }
        self.stats.states += 1;
        let comp_edges = h.edges_intersecting(comp);
        let state = SearchState {
            comp,
            conn,
            comp_edges: &comp_edges,
        };
        let guesses = strategy.propose(h, &state);
        self.stats.proposed += guesses.len();
        let cutoff = strategy.cutoff();
        let decision = strategy.is_decision();
        let mut best: Option<(C, usize)> = None;

        'guesses: for guess in &guesses {
            // Admission runs first — it derives the separator geometry and
            // prices it, rejecting structurally or cost-wise hopeless
            // guesses without the engine ever materializing them.
            let Some(admission) = strategy.admit(h, &state, guess) else {
                continue;
            };
            self.stats.admitted += 1;
            // Progress: the separator must eat into the component.
            if !admission.split.intersects(comp) {
                continue;
            }
            // Cover condition: the connector must sit inside the bag.
            if !conn.is_subset(&admission.bag) {
                continue;
            }
            if let Some(cut) = &cutoff {
                if &admission.cost >= cut {
                    continue;
                }
            }
            if let Some((best_cost, _)) = &best {
                // max(cost, children) >= cost, so this cannot improve.
                if &admission.cost >= best_cost {
                    continue;
                }
            }
            // Split into sub-components and make sure no component edge is
            // lost: each edge of the region must lie inside the bag's span
            // or continue into exactly one sub-component.
            let subs: Vec<VertexSet> = components::components(h, &admission.split)
                .into_iter()
                .filter(|sub| sub.is_subset(comp))
                .collect();
            for &e in &comp_edges {
                let edge = h.edge(e);
                if edge.is_subset(&admission.split) {
                    continue;
                }
                let remainder = edge.difference(&admission.split);
                if !subs.iter().any(|sub| remainder.is_subset(sub)) {
                    continue 'guesses;
                }
            }
            let mut total = admission.cost.clone();
            let mut children = Vec::with_capacity(subs.len());
            for sub in &subs {
                let sub_edges = h.edges_intersecting(sub);
                let span = h.union_of_edges(sub_edges.iter().copied());
                let sub_conn = admission.split.intersection(&span);
                let Some((child_cost, child_plan)) = self.solve(h, strategy, sub, &sub_conn) else {
                    continue 'guesses;
                };
                total = total.max(child_cost);
                children.push((sub.clone(), child_plan));
            }
            let improves = match &best {
                None => true,
                Some((best_cost, _)) => &total < best_cost,
            };
            if improves {
                self.plans.push(Plan {
                    bag: admission.bag,
                    weights: admission.weights,
                    children,
                    cost: total.clone(),
                });
                best = Some((total, self.plans.len() - 1));
                if decision {
                    break;
                }
            }
        }
        self.memo.insert(key, best.clone());
        best
    }

    /// Materializes the witness decomposition rooted at `plan`. The root bag
    /// is used as-is; below, bags are clipped to `component ∪ parent bag`
    /// (the witness-tree construction every strategy shares).
    fn assemble(&self, root_comp: &VertexSet, plan: usize) -> Decomposition {
        let p = &self.plans[plan];
        let root_bag = p.bag.intersection(root_comp);
        let mut d = Decomposition::new(Node {
            bag: root_bag.clone(),
            weights: p.weights.clone(),
        });
        for (sub, child) in &p.children {
            self.attach(&mut d, 0, &root_bag, *child, sub);
        }
        d
    }

    fn attach(
        &self,
        d: &mut Decomposition,
        parent: usize,
        parent_bag: &VertexSet,
        plan: usize,
        comp: &VertexSet,
    ) {
        let p = &self.plans[plan];
        let bag = p.bag.intersection(&comp.union(parent_bag));
        let id = d.add_child(
            parent,
            Node {
                bag: bag.clone(),
                weights: p.weights.clone(),
            },
        );
        for (sub, child) in &p.children {
            self.attach(d, id, &bag, *child, sub);
        }
    }
}

impl<C: Ord + Clone> Default for SearchContext<C> {
    fn default() -> Self {
        Self::new()
    }
}

/// Enumerates every bag `conn ⊆ B ⊆ conn ∪ C` (smallest first) as the
/// `extra` payload, splitting on the bag itself — the candidate space of
/// the exact `ghw`/`fhw` strategies, which price bags by `ρ` / `ρ*` at
/// admission. Returns nothing when the component exceeds
/// [`MAX_SUBSET_SEARCH_VERTICES`].
pub fn propose_subset_bags(state: &SearchState<'_>) -> Vec<Guess> {
    let free: Vec<usize> = state.comp.to_vec();
    let m = free.len();
    if m == 0 || m > MAX_SUBSET_SEARCH_VERTICES {
        return Vec::new();
    }
    // Emit small bags first (cheap covers early, which tightens the
    // engine's best-so-far prune) by walking each popcount class with
    // Gosper's hack instead of materializing-and-sorting.
    let limit: u64 = 1u64 << m;
    let mut out: Vec<Guess> = Vec::with_capacity(limit as usize - 1);
    for size in 1..=m {
        let mut mask: u64 = (1u64 << size) - 1;
        while mask < limit {
            let mut bag = state.conn.clone();
            for (i, &v) in free.iter().enumerate() {
                if mask >> i & 1 == 1 {
                    bag.insert(v);
                }
            }
            out.push(Guess {
                edges: Vec::new(),
                extra: bag,
            });
            // Next mask of the same popcount (exits via `mask < limit`).
            let low = mask & mask.wrapping_neg();
            let ripple = mask + low;
            mask = (((ripple ^ mask) >> 2) / low) | ripple;
        }
    }
    out
}

/// Enumerates all subsets of `items` with `1 <= size <= max_size` in order
/// of increasing size (small separators first — the order every strategy
/// wants). Shared by the edge-separator strategies.
pub fn subsets_up_to<T: Copy>(items: &[T], max_size: usize) -> Vec<Vec<T>> {
    let mut out = Vec::new();
    let mut current = Vec::new();
    for size in 1..=max_size.min(items.len()) {
        subsets_rec(items, size, 0, &mut current, &mut out);
    }
    out
}

fn subsets_rec<T: Copy>(
    items: &[T],
    size: usize,
    start: usize,
    current: &mut Vec<T>,
    out: &mut Vec<Vec<T>>,
) {
    if current.len() == size {
        out.push(current.clone());
        return;
    }
    let needed = size - current.len();
    for i in start..=items.len().saturating_sub(needed) {
        current.push(items[i]);
        subsets_rec(items, size, i + 1, current, out);
        current.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy decision strategy: bags are single full edges (width-1 HD
    /// search), enough to exercise the engine plumbing end to end.
    struct SingleEdge;

    impl WidthSolver for SingleEdge {
        type Cost = usize;

        fn is_decision(&self) -> bool {
            true
        }

        fn propose(&mut self, _h: &Hypergraph, state: &SearchState<'_>) -> Vec<Guess> {
            state
                .comp_edges
                .iter()
                .map(|&e| Guess {
                    edges: vec![e],
                    extra: VertexSet::new(),
                })
                .collect()
        }

        fn admit(
            &mut self,
            h: &Hypergraph,
            _state: &SearchState<'_>,
            guess: &Guess,
        ) -> Option<Admission<usize>> {
            let vs = h.union_of_edges(guess.edges.iter().copied());
            Some(Admission {
                split: vs.clone(),
                bag: vs,
                cost: guess.edges.len(),
                weights: guess.edges.iter().map(|&e| (e, Rational::one())).collect(),
            })
        }
    }

    fn path(n: usize) -> Hypergraph {
        Hypergraph::from_edges(n, (0..n - 1).map(|i| vec![i, i + 1]).collect())
    }

    fn triangle() -> Hypergraph {
        Hypergraph::from_edges(3, vec![vec![0, 1], vec![1, 2], vec![2, 0]])
    }

    #[test]
    fn acyclic_instances_decompose_with_single_edges() {
        let h = path(5);
        let mut cx = SearchContext::new();
        let (cost, d) = cx.run(&h, &mut SingleEdge).expect("paths have hw 1");
        assert_eq!(cost, 1);
        assert_eq!(decomp::validate_hd(&h, &d), Ok(()), "{}", d.render(&h));
        assert!(cx.stats.states > 0);
    }

    #[test]
    fn cyclic_instances_fail_with_single_edges() {
        let h = triangle();
        let mut cx = SearchContext::new();
        assert!(cx.run(&h, &mut SingleEdge).is_none());
    }

    #[test]
    fn memo_is_keyed_on_component_and_connector() {
        // A star: every leaf component after removing the center edge is a
        // fresh state; re-solving the same hypergraph reuses the memo.
        let h = Hypergraph::from_edges(4, vec![vec![0, 1], vec![0, 2], vec![0, 3]]);
        let mut cx = SearchContext::new();
        cx.run(&h, &mut SingleEdge).expect("stars have hw 1");
        let states = cx.stats.states;
        cx.run(&h, &mut SingleEdge).expect("second run");
        assert_eq!(cx.stats.states, states, "second run is all memo hits");
        assert!(cx.stats.memo_hits > 0);
    }

    #[test]
    fn subset_enumeration_orders_by_size() {
        let subs = subsets_up_to(&[1, 2, 3], 2);
        assert_eq!(
            subs,
            vec![
                vec![1],
                vec![2],
                vec![3],
                vec![1, 2],
                vec![1, 3],
                vec![2, 3]
            ]
        );
        assert!(subsets_up_to::<usize>(&[], 3).is_empty());
    }

    #[test]
    fn empty_hypergraph_refused() {
        let h = Hypergraph::from_edges(0, vec![]);
        assert!(SearchContext::new().run(&h, &mut SingleEdge).is_none());
    }
}
