//! The shared decomposition-search engine behind every exact width solver in
//! the workspace.
//!
//! `det-k-decomp` (Gottlob–Leone–Scarcello), the exact `ghw`/`fhw` baselines,
//! Algorithm 3 (`frac-decomp`) and the Theorem 5.2 strict-HD search all share
//! one recursion scheme: work on a pair `(C, conn)` where `C` is a connected
//! component of the hypergraph minus the separator chosen above, and `conn`
//! is the part of the parent separator visible from `C`; guess a
//! separator/bag for the node covering `conn`, split `C` into
//! sub-components, and recurse. The algorithms differ only in *which
//! candidate bags they enumerate* and *how a candidate is priced* (edge
//! counts, `ρ`, `ρ*`, or an LP for the fractional part).
//!
//! This crate owns the recursion: [`SearchContext`] carries the
//! `(component, connector)` memo table keyed on [`VertexSet`] tuples,
//! performs component splitting, applies the cutoff, and assembles the
//! witness [`Decomposition`] from the recorded plans. Concrete solvers
//! implement [`WidthSolver`] — a pure strategy that *streams* cheap
//! combinatorial guesses ([`WidthSolver::candidates`]) and then
//! prices/validates them ([`WidthSolver::admit`], where set covers and LPs
//! run).
//!
//! Three engine properties the strategies rely on:
//!
//! * **Streaming.** Candidates are pulled one at a time from a lazy
//!   [`CandidateStream`]; nothing is materialized ahead of the cursor, so
//!   decision strategies run in `O(depth)` candidate memory and
//!   short-circuit on the first witness.
//! * **Parallelism.** Minimizing strategies must exhaust their candidate
//!   space, so independent candidates of one node are evaluated across
//!   worker threads (std scoped threads) over the sharded memo. The result
//!   is deterministic — the minimum over an exhausted candidate space does
//!   not depend on evaluation order — only the witness choice among
//!   equal-cost decompositions may vary.
//! * **State keys.** A strategy whose admissible candidates depend on more
//!   than `(C, conn)` (the strict-HD search couples to the parent
//!   separator's full vertex span) extends the memo key through
//!   [`WidthSolver::state_key`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use arith::Rational;
use cover::ShardedCache;
use decomp::{Decomposition, Node};
use hypergraph::{components, Hypergraph, VertexSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Practical vertex limit for the subset-enumerating exact strategies
/// (`ghw`/`fhw` baselines): those strategies propose every bag
/// `conn ⊆ B ⊆ conn ∪ C`, which is exponential in `|C|`.
pub const MAX_SUBSET_SEARCH_VERTICES: usize = 18;

/// Upper bound on worker threads per search, whatever the host reports.
const MAX_THREADS: usize = 8;

/// A cheap combinatorial guess for one search node, produced by the
/// strategy's [`CandidateStream`] before any cover/LP pricing runs. A guess
/// is deliberately *cheap* — combinatorial payload only, no derived vertex
/// sets beyond what the enumerator had in hand — so that decision
/// strategies keep their first-success early exit: the per-candidate set
/// unions, covers and LPs all run lazily in [`WidthSolver::admit`].
#[derive(Clone, Debug)]
pub struct Guess {
    /// The chosen integral separator edges (`supp(λ)`), if the strategy
    /// works with explicit edge sets.
    pub edges: Vec<usize>,
    /// Strategy-specific vertex payload: the candidate bag for the subset
    /// strategies, the fractional shadow `W_s` for `frac-decomp`, the
    /// separator union for the strict-HD search, empty for `det-k-decomp`.
    pub extra: VertexSet,
}

/// The priced result of admitting a [`Guess`]: the separator geometry plus
/// its cost and witness edge weights.
#[derive(Clone, Debug)]
pub struct Admission<C> {
    /// Vertices removed when splitting the component. Children are the
    /// `[split]`-components inside the current component, and a child's
    /// connector is `split ∩ ⋃ edges(child)`.
    ///
    /// `det-k-decomp` splits on the *full* `V(S)` (this is what enforces the
    /// special condition); the GHD/FHD strategies split on the clipped bag.
    pub split: VertexSet,
    /// The candidate bag before witness clipping; the final bag of the
    /// assembled node is `bag ∩ (component ∪ parent bag)`.
    pub bag: VertexSet,
    /// The cost the engine minimizes (maximum over the witness tree).
    pub cost: C,
    /// Sparse edge weights `(edge, weight)` recorded on the witness node.
    pub weights: Vec<(usize, Rational)>,
}

/// One `(component, connector)` search state, handed to the strategy.
///
/// `Copy`: the state is three-plus-one borrows, cheap to capture by value
/// inside the closures that make up a lazy [`CandidateStream`].
#[derive(Clone, Copy)]
pub struct SearchState<'a> {
    /// The current component `C`.
    pub comp: &'a VertexSet,
    /// The visible part of the parent separator,
    /// `conn = sep ∩ ⋃ edges(C)` — must be covered by every candidate bag.
    pub conn: &'a VertexSet,
    /// `edges(C)`: indices of edges intersecting `C`.
    pub comp_edges: &'a [usize],
    /// The parent node's *full* split set (`V(S)` of the node above; empty
    /// at the root). Most strategies ignore it — `conn` is the part that
    /// matters for the cover condition — but strategies with a
    /// [`WidthSolver::state_key`] (the strict-HD search) read the trace of
    /// the parent separator beyond `conn` from here.
    pub parent_split: &'a VertexSet,
}

/// A pull-based, lazily evaluated stream of [`Guess`]es for one search
/// state. Strategies build it from closures/iterators that enumerate their
/// candidate space on demand; the engine pulls guesses one at a time
/// (decision strategies) or in bounded rounds (parallel minimizers), so the
/// enumeration never materializes more than the engine's current window.
pub struct CandidateStream<'a> {
    inner: Box<dyn Iterator<Item = Guess> + Send + 'a>,
}

impl<'a> CandidateStream<'a> {
    /// Wraps any (sendable) iterator of guesses.
    pub fn new<I>(iter: I) -> Self
    where
        I: Iterator<Item = Guess> + Send + 'a,
    {
        CandidateStream {
            inner: Box::new(iter),
        }
    }

    /// The empty stream (no candidates for this state).
    pub fn empty() -> Self {
        CandidateStream {
            inner: Box::new(std::iter::empty()),
        }
    }
}

impl Iterator for CandidateStream<'_> {
    type Item = Guess;

    fn next(&mut self) -> Option<Guess> {
        self.inner.next()
    }
}

/// A width-solver strategy: everything that distinguishes `det-k-decomp`
/// from the exact `ghw`/`fhw` searches, `frac-decomp` and the strict-HD
/// search.
///
/// `Sync` + `&self` methods: the engine calls [`WidthSolver::admit`] from
/// worker threads, so per-strategy caches must be interior-mutable and
/// thread-safe (see `cover::cache::ShardedCache`).
pub trait WidthSolver: Sync {
    /// Cost type of a node (edge count, `ρ`, `ρ*`, ...).
    type Cost: Ord + Clone + Send + Sync;

    /// Decision strategies stop at the first admitted candidate whose
    /// sub-components all decompose; minimizers exhaust the space.
    fn is_decision(&self) -> bool;

    /// Global cutoff: admitted candidates with `cost >= cutoff` are
    /// discarded, so the search fails iff every decomposition reaches it.
    fn cutoff(&self) -> Option<Self::Cost> {
        None
    }

    /// Declares whether [`WidthSolver::state_key`] can return `Some`. When
    /// `false` (the default) the engine skips the per-state derivation
    /// (`edges_intersecting` + the state-key call) on the memo-hit fast
    /// path, so hits cost one probe.
    fn has_state_key(&self) -> bool {
        false
    }

    /// Extra memo-key component for strategies whose candidate space
    /// depends on more of the parent context than `(comp, conn)`. The
    /// strict-HD search returns the strictness `allowed` trace
    /// (`comp ∪ (parent_split ∩ span(candidate edges))`); everyone else
    /// keeps the default `None`. Implementors must also override
    /// [`WidthSolver::has_state_key`].
    fn state_key(&self, h: &Hypergraph, state: SearchState<'_>) -> Option<VertexSet> {
        let _ = (h, state);
        None
    }

    /// Opens the lazy candidate stream for a state. Cheap per pulled
    /// guess: no covers, LPs or per-candidate unions here — those run in
    /// [`WidthSolver::admit`], which the engine calls lazily (decision
    /// strategies often stop long before the stream is dry).
    fn candidates<'a>(&'a self, h: &'a Hypergraph, state: SearchState<'a>) -> CandidateStream<'a>;

    /// Prices and validates a guess — the expensive per-candidate work
    /// (set unions, covers, LPs) lives here. Returns the separator
    /// geometry, cost and witness weights; `None` rejects the candidate.
    ///
    /// `bound` is a pruning contract, not a hint: the engine discards any
    /// admission with `cost >= bound` (it is the minimum of the strategy
    /// cutoff and the best cost already achieved for this state), so the
    /// strategy may return `None` without pricing whenever a cheap lower
    /// bound on the cost already reaches `bound`. Skipping this way never
    /// changes the computed width.
    fn admit(
        &self,
        h: &Hypergraph,
        state: SearchState<'_>,
        guess: &Guess,
        bound: Option<&Self::Cost>,
    ) -> Option<Admission<Self::Cost>>;
}

/// A successful node choice recorded during the search; the plan arena plus
/// the memo table are what [`SearchContext::assemble`] replays into the
/// witness decomposition.
#[derive(Clone, Debug)]
struct Plan<C> {
    bag: VertexSet,
    weights: Vec<(usize, Rational)>,
    children: Vec<(VertexSet, usize)>,
    #[allow(dead_code)]
    cost: C,
}

/// Engine counters, exposed through [`SearchContext::stats`] for tests,
/// `hgtool widths --stats` and the `baseline` bin. The `price_*` fields are
/// filled in by the strategy wrappers from their shared cover-price caches
/// (the engine itself never prices anything).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Search states entered (memo misses).
    pub states: usize,
    /// Memo hits.
    pub memo_hits: usize,
    /// Guesses pulled from candidate streams. With eager `Vec` proposal
    /// this used to equal the whole candidate space; streaming decision
    /// searches stop pulling at the first witness.
    pub streamed: usize,
    /// Guesses admitted (priced successfully under the bound).
    pub admitted: usize,
    /// Cover/LP price-cache hits (ρ/ρ* priced bags served from cache).
    pub price_hits: usize,
    /// Cover/LP price-cache misses (ρ/ρ* prices actually computed).
    pub price_misses: usize,
}

impl SearchStats {
    /// Price-cache hit rate over all price lookups.
    pub fn price_hit_rate(&self) -> f64 {
        let total = self.price_hits + self.price_misses;
        if total == 0 {
            return 0.0;
        }
        self.price_hits as f64 / total as f64
    }
}

#[derive(Default)]
struct AtomicStats {
    streamed: AtomicUsize,
    admitted: AtomicUsize,
}

/// Memo key: `(component, connector)` plus the optional strategy state key.
#[derive(Clone, PartialEq, Eq, Hash)]
struct MemoKey {
    comp: VertexSet,
    conn: VertexSet,
    skey: Option<VertexSet>,
}

/// The shared search engine: memoized `(component, connector[, state key])`
/// recursion with witness assembly. The memo is a concurrent
/// [`ShardedCache`] and every search method takes `&self`, so worker
/// threads evaluating sibling candidates recurse through one context
/// concurrently. The cache's hit/miss counters double as the
/// `memo_hits`/`states` stats (every miss becomes a computed state).
pub struct SearchContext<C> {
    memo: ShardedCache<MemoKey, Option<(C, usize)>>,
    plans: Mutex<Vec<Plan<C>>>,
    stats: AtomicStats,
    /// Configured worker-thread budget (1 = sequential).
    threads: usize,
    /// Spare worker permits; states fan out only while permits last, which
    /// caps total live threads at `threads` without nested oversubscription.
    permits: AtomicUsize,
}

impl<C: Ord + Clone + Send + Sync> SearchContext<C> {
    /// A context with the default parallelism (host parallelism, capped).
    /// Decision strategies always run sequentially regardless — parallel
    /// speculation would break their first-witness short-circuit.
    pub fn new() -> Self {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(MAX_THREADS);
        Self::with_threads(threads)
    }

    /// A context evaluating candidates on up to `threads` workers
    /// (`1` = strictly sequential; used by the determinism tests).
    pub fn with_threads(threads: usize) -> Self {
        let threads = threads.max(1);
        SearchContext {
            memo: ShardedCache::new(),
            plans: Mutex::new(Vec::new()),
            stats: AtomicStats::default(),
            threads,
            permits: AtomicUsize::new(threads - 1),
        }
    }

    /// Snapshot of the engine counters (the `price_*` fields are zero here;
    /// strategy wrappers merge their cache counters on top).
    pub fn stats(&self) -> SearchStats {
        let (memo_hits, states) = self.memo.counters();
        SearchStats {
            states,
            memo_hits,
            streamed: self.stats.streamed.load(Ordering::Relaxed),
            admitted: self.stats.admitted.load(Ordering::Relaxed),
            price_hits: 0,
            price_misses: 0,
        }
    }

    /// Decomposes the whole hypergraph with `strategy`; returns the achieved
    /// cost (maximum over nodes) and the witness.
    pub fn run<S: WidthSolver<Cost = C>>(
        &self,
        h: &Hypergraph,
        strategy: &S,
    ) -> Option<(C, Decomposition)> {
        if h.num_vertices() == 0 {
            return None;
        }
        let root = h.all_vertices();
        let empty = VertexSet::new();
        let (cost, plan) = self.solve(h, strategy, &root, &empty, &empty)?;
        let d = self.assemble(&root, plan);
        Some((cost, d))
    }

    /// Solves one `(component, connector)` state: the minimum achievable
    /// maximum cost of a decomposition fragment covering `comp` whose apex
    /// bag contains `conn`, or `None` if none exists under the cutoff.
    pub fn solve<S: WidthSolver<Cost = C>>(
        &self,
        h: &Hypergraph,
        strategy: &S,
        comp: &VertexSet,
        conn: &VertexSet,
        parent_split: &VertexSet,
    ) -> Option<(C, usize)> {
        if strategy.has_state_key() {
            // The memo key needs the derived state, so build it up front.
            let comp_edges = h.edges_intersecting(comp);
            let state = SearchState {
                comp,
                conn,
                comp_edges: &comp_edges,
                parent_split,
            };
            let key = MemoKey {
                comp: comp.clone(),
                conn: conn.clone(),
                skey: strategy.state_key(h, state),
            };
            if let Some(hit) = self.memo.get(&key) {
                return hit;
            }
            self.compute_state(h, strategy, state, key)
        } else {
            // Fast path: probe on `(comp, conn)` alone — a memo hit costs
            // one lookup, no edge scan.
            let key = MemoKey {
                comp: comp.clone(),
                conn: conn.clone(),
                skey: None,
            };
            if let Some(hit) = self.memo.get(&key) {
                return hit;
            }
            let comp_edges = h.edges_intersecting(comp);
            let state = SearchState {
                comp,
                conn,
                comp_edges: &comp_edges,
                parent_split,
            };
            self.compute_state(h, strategy, state, key)
        }
    }

    /// Evaluates a freshly entered (memo-missed) state and records the
    /// result.
    fn compute_state<S: WidthSolver<Cost = C>>(
        &self,
        h: &Hypergraph,
        strategy: &S,
        state: SearchState<'_>,
        key: MemoKey,
    ) -> Option<(C, usize)> {
        let decision = strategy.is_decision();
        let stream = strategy.candidates(h, state);
        let best: Option<(C, Plan<C>)> = if decision || self.threads == 1 {
            self.evaluate_sequential(h, strategy, state, stream, decision)
        } else {
            self.evaluate_parallel(h, strategy, state, stream)
        };

        let entry = best.map(|(cost, plan)| {
            let mut plans = self.plans.lock().expect("plan arena poisoned");
            plans.push(plan);
            (cost, plans.len() - 1)
        });
        self.memo.insert(key, entry.clone());
        entry
    }

    /// The sequential candidate loop: pull, evaluate, keep the minimum.
    /// Decision strategies return at the first fully decomposing candidate.
    fn evaluate_sequential<S: WidthSolver<Cost = C>>(
        &self,
        h: &Hypergraph,
        strategy: &S,
        state: SearchState<'_>,
        stream: CandidateStream<'_>,
        decision: bool,
    ) -> Option<(C, Plan<C>)> {
        let cutoff = strategy.cutoff();
        let mut best: Option<(C, Plan<C>)> = None;
        let mut streamed = 0usize;
        for guess in stream {
            streamed += 1;
            let bound = tighter(cutoff.as_ref(), best.as_ref().map(|(c, _)| c));
            if let Some(found) = self.evaluate_candidate(h, strategy, state, &guess, bound) {
                let improves = match &best {
                    None => true,
                    Some((best_cost, _)) => &found.0 < best_cost,
                };
                if improves {
                    best = Some(found);
                    if decision {
                        break;
                    }
                }
            }
        }
        self.stats.streamed.fetch_add(streamed, Ordering::Relaxed);
        best
    }

    /// The parallel candidate loop for minimizing strategies: one set of
    /// scoped worker threads per state, each pulling guesses from the
    /// shared stream (one at a time — nothing is materialized) and running
    /// admission, pricing and the recursive descent through the sharded
    /// memo independently, merging into the shared best. The minimum over
    /// the exhausted space is order-independent, so the returned cost
    /// equals the sequential one.
    ///
    /// The whole state holds its worker permits until the stream is dry;
    /// states deeper in the recursion find no spare permits and run
    /// sequentially, which caps live threads at the configured budget
    /// without nested oversubscription.
    fn evaluate_parallel<S: WidthSolver<Cost = C>>(
        &self,
        h: &Hypergraph,
        strategy: &S,
        state: SearchState<'_>,
        stream: CandidateStream<'_>,
    ) -> Option<(C, Plan<C>)> {
        let extra = self.acquire_permits(self.threads - 1);
        if extra == 0 {
            return self.evaluate_sequential(h, strategy, state, stream, false);
        }
        let cutoff = strategy.cutoff();
        let stream = Mutex::new(stream);
        let best: Mutex<Option<(C, Plan<C>)>> = Mutex::new(None);
        let worker = || {
            let mut streamed = 0usize;
            loop {
                let Some(guess) = stream.lock().expect("stream poisoned").next() else {
                    break;
                };
                streamed += 1;
                let bound: Option<C> = {
                    let slot = best.lock().expect("best poisoned");
                    tighter(cutoff.as_ref(), slot.as_ref().map(|(c, _)| c)).cloned()
                };
                if let Some(found) =
                    self.evaluate_candidate(h, strategy, state, &guess, bound.as_ref())
                {
                    merge_min(&best, found);
                }
            }
            self.stats.streamed.fetch_add(streamed, Ordering::Relaxed);
        };
        std::thread::scope(|scope| {
            for _ in 0..extra {
                scope.spawn(worker);
            }
            worker();
        });
        self.release_permits(extra);
        best.into_inner().expect("best poisoned")
    }

    /// Admits one guess and, if it survives the structural checks, solves
    /// all sub-components; returns the candidate's achieved cost and plan.
    fn evaluate_candidate<S: WidthSolver<Cost = C>>(
        &self,
        h: &Hypergraph,
        strategy: &S,
        state: SearchState<'_>,
        guess: &Guess,
        bound: Option<&C>,
    ) -> Option<(C, Plan<C>)> {
        // Admission runs first — it derives the separator geometry and
        // prices it, rejecting structurally or cost-wise hopeless guesses
        // without the engine ever materializing them.
        let admission = strategy.admit(h, state, guess, bound)?;
        self.stats.admitted.fetch_add(1, Ordering::Relaxed);
        // Progress: the separator must eat into the component.
        if !admission.split.intersects(state.comp) {
            return None;
        }
        // Cover condition: the connector must sit inside the bag.
        if !state.conn.is_subset(&admission.bag) {
            return None;
        }
        if let Some(b) = bound {
            // Covers the strategy cutoff and the best-so-far prune alike:
            // max(cost, children) >= cost >= bound cannot improve.
            if &admission.cost >= b {
                return None;
            }
        }
        // Split into sub-components and make sure no component edge is
        // lost: each edge of the region must lie inside the bag's span
        // or continue into exactly one sub-component.
        let subs: Vec<VertexSet> = components::components(h, &admission.split)
            .into_iter()
            .filter(|sub| sub.is_subset(state.comp))
            .collect();
        for &e in state.comp_edges {
            let edge = h.edge(e);
            if edge.is_subset(&admission.split) {
                continue;
            }
            let remainder = edge.difference(&admission.split);
            if !subs.iter().any(|sub| remainder.is_subset(sub)) {
                return None;
            }
        }
        let mut total = admission.cost.clone();
        let mut children = Vec::with_capacity(subs.len());
        for sub in &subs {
            let sub_edges = h.edges_intersecting(sub);
            let span = h.union_of_edges(sub_edges.iter().copied());
            let sub_conn = admission.split.intersection(&span);
            let (child_cost, child_plan) =
                self.solve(h, strategy, sub, &sub_conn, &admission.split)?;
            total = total.max(child_cost);
            children.push((sub.clone(), child_plan));
        }
        Some((
            total.clone(),
            Plan {
                bag: admission.bag,
                weights: admission.weights,
                children,
                cost: total,
            },
        ))
    }

    fn acquire_permits(&self, want: usize) -> usize {
        if want == 0 {
            return 0;
        }
        let mut got = 0;
        let _ = self
            .permits
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |avail| {
                got = avail.min(want);
                Some(avail - got)
            });
        got
    }

    fn release_permits(&self, n: usize) {
        if n > 0 {
            self.permits.fetch_add(n, Ordering::AcqRel);
        }
    }

    /// Materializes the witness decomposition rooted at `plan`. The root bag
    /// is used as-is; below, bags are clipped to `component ∪ parent bag`
    /// (the witness-tree construction every strategy shares).
    fn assemble(&self, root_comp: &VertexSet, plan: usize) -> Decomposition {
        let plans = self.plans.lock().expect("plan arena poisoned");
        let p = &plans[plan];
        let root_bag = p.bag.intersection(root_comp);
        let mut d = Decomposition::new(Node {
            bag: root_bag.clone(),
            weights: p.weights.clone(),
        });
        for (sub, child) in &p.children {
            attach(&plans, &mut d, 0, &root_bag, *child, sub);
        }
        d
    }
}

fn attach<C>(
    plans: &[Plan<C>],
    d: &mut Decomposition,
    parent: usize,
    parent_bag: &VertexSet,
    plan: usize,
    comp: &VertexSet,
) {
    let p = &plans[plan];
    let bag = p.bag.intersection(&comp.union(parent_bag));
    let id = d.add_child(
        parent,
        Node {
            bag: bag.clone(),
            weights: p.weights.clone(),
        },
    );
    for (sub, child) in &p.children {
        attach(plans, d, id, &bag, *child, sub);
    }
}

/// The tighter of the cutoff and the best-so-far cost — the engine's
/// discard bound for new admissions.
fn tighter<'a, C: Ord>(cutoff: Option<&'a C>, best: Option<&'a C>) -> Option<&'a C> {
    match (cutoff, best) {
        (None, None) => None,
        (Some(c), None) => Some(c),
        (None, Some(b)) => Some(b),
        (Some(c), Some(b)) => Some(c.min(b)),
    }
}

fn merge_min<C: Ord + Clone>(best: &Mutex<Option<(C, Plan<C>)>>, found: (C, Plan<C>)) {
    let mut slot = best.lock().expect("best poisoned");
    let improves = match &*slot {
        None => true,
        Some((cost, _)) => found.0 < *cost,
    };
    if improves {
        *slot = Some(found);
    }
}

impl<C: Ord + Clone + Send + Sync> Default for SearchContext<C> {
    fn default() -> Self {
        Self::new()
    }
}

/// Streams every bag `conn ⊆ B ⊆ conn ∪ C` (smallest first) as the `extra`
/// payload — the candidate space of the exact `ghw`/`fhw` strategies, which
/// price bags by `ρ` / `ρ*` at admission and split on the bag itself.
/// Empty when the component exceeds [`MAX_SUBSET_SEARCH_VERTICES`].
///
/// Lazy: each pull advances one Gosper-hack mask, so the `2^|C| - 1` bags
/// are never materialized; small bags come first, which finds cheap covers
/// early and tightens the engine's best-so-far prune.
pub fn stream_subset_bags<'a>(state: SearchState<'a>) -> CandidateStream<'a> {
    let free: Vec<usize> = state.comp.to_vec();
    let m = free.len();
    if m == 0 || m > MAX_SUBSET_SEARCH_VERTICES {
        return CandidateStream::empty();
    }
    let conn = state.conn.clone();
    let limit: u64 = 1u64 << m;
    let mut size = 1usize;
    let mut mask: u64 = 1;
    CandidateStream::new(std::iter::from_fn(move || {
        while size <= m {
            if mask < limit {
                let cur = mask;
                // Next mask of the same popcount (Gosper's hack; exits the
                // popcount class via `mask < limit`).
                let low = cur & cur.wrapping_neg();
                let ripple = cur + low;
                mask = (((ripple ^ cur) >> 2) / low) | ripple;
                let mut bag = conn.clone();
                for (i, &v) in free.iter().enumerate() {
                    if cur >> i & 1 == 1 {
                        bag.insert(v);
                    }
                }
                return Some(Guess {
                    edges: Vec::new(),
                    extra: bag,
                });
            }
            size += 1;
            mask = (1u64 << size) - 1;
        }
        None
    }))
}

/// Lazily enumerates all subsets of `items` with `1 <= size <= max_size` in
/// order of increasing size (small separators first — the order every
/// strategy wants), lexicographic within a size. Shared by the
/// edge-separator strategies; the streaming replacement for the retired
/// eager `subsets_up_to`.
pub fn stream_subsets_up_to<T: Copy + Send>(
    items: Vec<T>,
    max_size: usize,
) -> impl Iterator<Item = Vec<T>> + Send {
    let max_size = max_size.min(items.len());
    // Combination odometer: `idx` holds the current positions for the
    // current size; advancing finds the rightmost index that can move.
    let mut size = 1usize;
    let mut idx: Vec<usize> = Vec::new();
    let mut fresh = true;
    std::iter::from_fn(move || loop {
        if size > max_size || items.is_empty() {
            return None;
        }
        if fresh {
            idx = (0..size).collect();
            fresh = false;
            return Some(idx.iter().map(|&i| items[i]).collect());
        }
        // Advance the odometer.
        let n = items.len();
        let mut pos = size;
        loop {
            if pos == 0 {
                size += 1;
                fresh = true;
                break;
            }
            pos -= 1;
            if idx[pos] < n - (size - pos) {
                idx[pos] += 1;
                for j in pos + 1..size {
                    idx[j] = idx[j - 1] + 1;
                }
                return Some(idx.iter().map(|&i| items[i]).collect());
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy decision strategy: bags are single full edges (width-1 HD
    /// search), enough to exercise the engine plumbing end to end.
    struct SingleEdge;

    impl WidthSolver for SingleEdge {
        type Cost = usize;

        fn is_decision(&self) -> bool {
            true
        }

        fn candidates<'a>(
            &'a self,
            _h: &'a Hypergraph,
            state: SearchState<'a>,
        ) -> CandidateStream<'a> {
            CandidateStream::new(state.comp_edges.iter().map(|&e| Guess {
                edges: vec![e],
                extra: VertexSet::new(),
            }))
        }

        fn admit(
            &self,
            h: &Hypergraph,
            _state: SearchState<'_>,
            guess: &Guess,
            _bound: Option<&usize>,
        ) -> Option<Admission<usize>> {
            let vs = h.union_of_edges(guess.edges.iter().copied());
            Some(Admission {
                split: vs.clone(),
                bag: vs,
                cost: guess.edges.len(),
                weights: guess.edges.iter().map(|&e| (e, Rational::one())).collect(),
            })
        }
    }

    /// A minimizing variant of [`SingleEdge`] whose cost is the bag size —
    /// exercises the parallel evaluation path (minimizers fan out).
    struct SmallestEdge;

    impl WidthSolver for SmallestEdge {
        type Cost = usize;

        fn is_decision(&self) -> bool {
            false
        }

        fn candidates<'a>(
            &'a self,
            _h: &'a Hypergraph,
            state: SearchState<'a>,
        ) -> CandidateStream<'a> {
            CandidateStream::new(state.comp_edges.iter().map(|&e| Guess {
                edges: vec![e],
                extra: VertexSet::new(),
            }))
        }

        fn admit(
            &self,
            h: &Hypergraph,
            _state: SearchState<'_>,
            guess: &Guess,
            bound: Option<&usize>,
        ) -> Option<Admission<usize>> {
            let vs = h.union_of_edges(guess.edges.iter().copied());
            let cost = vs.len();
            if let Some(b) = bound {
                if &cost >= b {
                    return None;
                }
            }
            Some(Admission {
                split: vs.clone(),
                bag: vs,
                cost,
                weights: guess.edges.iter().map(|&e| (e, Rational::one())).collect(),
            })
        }
    }

    fn path(n: usize) -> Hypergraph {
        Hypergraph::from_edges(n, (0..n - 1).map(|i| vec![i, i + 1]).collect())
    }

    fn triangle() -> Hypergraph {
        Hypergraph::from_edges(3, vec![vec![0, 1], vec![1, 2], vec![2, 0]])
    }

    #[test]
    fn acyclic_instances_decompose_with_single_edges() {
        let h = path(5);
        let cx = SearchContext::new();
        let (cost, d) = cx.run(&h, &SingleEdge).expect("paths have hw 1");
        assert_eq!(cost, 1);
        assert_eq!(decomp::validate_hd(&h, &d), Ok(()), "{}", d.render(&h));
        assert!(cx.stats().states > 0);
    }

    #[test]
    fn cyclic_instances_fail_with_single_edges() {
        let h = triangle();
        let cx = SearchContext::new();
        assert!(cx.run(&h, &SingleEdge).is_none());
    }

    #[test]
    fn memo_is_keyed_on_component_and_connector() {
        // A star: every leaf component after removing the center edge is a
        // fresh state; re-solving the same hypergraph reuses the memo.
        let h = Hypergraph::from_edges(4, vec![vec![0, 1], vec![0, 2], vec![0, 3]]);
        let cx = SearchContext::new();
        cx.run(&h, &SingleEdge).expect("stars have hw 1");
        let states = cx.stats().states;
        cx.run(&h, &SingleEdge).expect("second run");
        assert_eq!(cx.stats().states, states, "second run is all memo hits");
        assert!(cx.stats().memo_hits > 0);
    }

    #[test]
    fn decision_streams_stop_at_the_first_witness() {
        // A path decomposes with the very first candidates; far fewer
        // guesses must be pulled than the full per-state edge count.
        let h = path(6);
        let cx = SearchContext::new();
        cx.run(&h, &SingleEdge).expect("paths have hw 1");
        let stats = cx.stats();
        assert!(
            stats.streamed <= stats.states * 3,
            "decision search pulled {} guesses over {} states",
            stats.streamed,
            stats.states
        );
    }

    #[test]
    fn parallel_and_sequential_minimization_agree() {
        for n in 3..7 {
            let h = path(n);
            let seq = SearchContext::with_threads(1)
                .run(&h, &SmallestEdge)
                .map(|(c, _)| c);
            let par = SearchContext::with_threads(4)
                .run(&h, &SmallestEdge)
                .map(|(c, _)| c);
            assert_eq!(seq, par, "path({n})");
        }
        let h = triangle();
        let seq = SearchContext::with_threads(1)
            .run(&h, &SmallestEdge)
            .map(|(c, _)| c);
        let par = SearchContext::with_threads(4)
            .run(&h, &SmallestEdge)
            .map(|(c, _)| c);
        assert_eq!(seq, par, "triangle");
    }

    #[test]
    fn subset_stream_orders_by_size() {
        let subs: Vec<Vec<i32>> = stream_subsets_up_to(vec![1, 2, 3], 2).collect();
        assert_eq!(
            subs,
            vec![
                vec![1],
                vec![2],
                vec![3],
                vec![1, 2],
                vec![1, 3],
                vec![2, 3]
            ]
        );
        assert_eq!(stream_subsets_up_to::<i32>(Vec::new(), 3).count(), 0);
        // Full powerset (minus the empty set) when max_size >= len.
        assert_eq!(stream_subsets_up_to(vec![1, 2, 3, 4], 9).count(), 15);
    }

    #[test]
    fn subset_bag_stream_is_lazy_and_complete() {
        let comp = VertexSet::from_iter([0, 1, 2]);
        let conn = VertexSet::new();
        let edges: Vec<usize> = Vec::new();
        let parent = VertexSet::new();
        let state = SearchState {
            comp: &comp,
            conn: &conn,
            comp_edges: &edges,
            parent_split: &parent,
        };
        let bags: Vec<VertexSet> = stream_subset_bags(state).map(|g| g.extra).collect();
        assert_eq!(bags.len(), 7, "2^3 - 1 bags");
        // Ordered by size.
        let sizes: Vec<usize> = bags.iter().map(|b| b.len()).collect();
        let mut sorted = sizes.clone();
        sorted.sort_unstable();
        assert_eq!(sizes, sorted);
        // All distinct.
        let set: std::collections::HashSet<_> = bags.iter().map(|b| b.to_vec()).collect();
        assert_eq!(set.len(), 7);
    }

    #[test]
    fn empty_hypergraph_refused() {
        let h = Hypergraph::from_edges(0, vec![]);
        assert!(SearchContext::new().run(&h, &SingleEdge).is_none());
    }
}
