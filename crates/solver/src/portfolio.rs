//! The portfolio runner: race several [`Backend`]s per request, first
//! exact answer wins, losers are cancelled through the engine's
//! `CancelScope` chains, and best-so-far anytime bounds are what you get
//! when everything times out.
//!
//! No single width algorithm dominates on real corpora (the HyperBench
//! observation): the edge-union engine wins on large sparse instances,
//! the elimination DP on small dense ones, the subset oracle on tiny
//! ones, and a heuristic upper bound is often all a caller needs
//! quickly. [`race`] runs 2–4 eligible backends concurrently — each on
//! its own thread, all multiplexing the shared worker pool underneath —
//! under one merged [`BoundSink`], with:
//!
//! * **admission**: only [`Backend::eligible`] members race (vertex
//!   gates, `candgen::stream_size_bound` candidate-space admission), at
//!   most [`PortfolioOptions::max_backends`] of them;
//! * **deadlines**: a global deadline ([`DEADLINE_ENV`], milliseconds)
//!   and per-backend knobs (`HGTOOL_DEADLINE_<ID>_MS`, or programmatic
//!   [`PortfolioOptions::backend_deadlines`]) armed on each backend's
//!   [`CancelToken`] — deadline expiry *is* cancellation;
//! * **loser cancellation**: the first backend to return a resolved
//!   outcome cancels every sibling token; the engine roots observe the
//!   token through their anchored cancellation scopes, unwind, and
//!   abandon their result-cache claims on the way out. [`race`] joins
//!   every backend thread before returning, so no portfolio work — pool
//!   rounds included — survives the race;
//! * **anytime reporting**: all backends feed one monotone sink, so the
//!   caller observes the tightest bounds any member achieved; on an
//!   exact win the sink closes at `lb == ub == width`.

use crate::backend::{execute, Backend, BackendId, Bounds, Outcome, WidthRequest};
use hypergraph::Hypergraph;
use prep::anytime::{self, interrupt, BoundEvent, BoundSink, CancelToken, RunCtl};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Environment variable: global portfolio deadline in milliseconds.
pub const DEADLINE_ENV: &str = "HGTOOL_DEADLINE_MS";

/// How many eligible backends one race admits by default.
const DEFAULT_MAX_BACKENDS: usize = 4;

/// Tuning knobs of one portfolio race.
#[derive(Clone, Debug)]
pub struct PortfolioOptions {
    /// Global deadline for the whole race (all backends).
    pub deadline: Option<Duration>,
    /// Per-backend deadlines by [`BackendId`]; backends not listed fall
    /// back to their `HGTOOL_DEADLINE_<ID>_MS` env knob, then to no
    /// per-backend deadline.
    pub backend_deadlines: Vec<(BackendId, Duration)>,
    /// At most this many eligible backends race (the rest are dropped in
    /// registry order). Clamped to at least 1.
    pub max_backends: usize,
}

impl Default for PortfolioOptions {
    fn default() -> Self {
        PortfolioOptions {
            deadline: None,
            backend_deadlines: Vec::new(),
            max_backends: DEFAULT_MAX_BACKENDS,
        }
    }
}

impl PortfolioOptions {
    /// Options with the global deadline taken from [`DEADLINE_ENV`]
    /// (milliseconds; absent or unparsable means no deadline).
    pub fn from_env() -> Self {
        PortfolioOptions {
            deadline: env_millis(DEADLINE_ENV),
            ..PortfolioOptions::default()
        }
    }

    /// The effective deadline for one backend: the programmatic entry,
    /// else its `HGTOOL_DEADLINE_<ID>_MS` env knob (id upper-cased,
    /// `-` → `_`).
    fn backend_deadline(&self, id: BackendId) -> Option<Duration> {
        if let Some((_, d)) = self.backend_deadlines.iter().find(|(b, _)| *b == id) {
            return Some(*d);
        }
        let knob = format!("HGTOOL_DEADLINE_{}_MS", id.to_uppercase().replace('-', "_"));
        env_millis(&knob)
    }
}

fn env_millis(var: &str) -> Option<Duration> {
    std::env::var(var)
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .map(Duration::from_millis)
}

/// What one [`race`] produced.
#[derive(Clone, Debug)]
pub struct RaceReport {
    /// The winning outcome (first resolved answer), or an unresolved
    /// outcome carrying the best witness the sink saw when everything
    /// timed out or gave up.
    pub outcome: Outcome,
    /// The winner's id; `None` when no backend resolved the request.
    pub winner: Option<BackendId>,
    /// The backends admitted to the race, in registry order.
    pub raced: Vec<BackendId>,
    /// How many backends were cancelled (unwound losers).
    pub canceled: usize,
    /// Best-so-far bounds at the end of the race.
    pub bounds: Bounds,
    /// The accepted bound-report sequence of the merged sink.
    pub trace: Vec<BoundEvent>,
    /// Time from race start to the first accepted bound.
    pub time_to_first_bound: Option<Duration>,
    /// Time from race start to the winning exact answer.
    pub time_to_exact: Option<Duration>,
}

/// Races `backends` on `h`: eligible members run concurrently (each
/// backend's root on its own thread; their searches multiplex the shared
/// worker pool), the first resolved answer cancels the rest, and every
/// backend thread is joined before this returns. If the caller itself
/// runs under an ambient [`RunCtl`], the race chains to it: the caller's
/// cancellation reaches every member, and the merged bounds forward to
/// the caller's sink.
pub fn race(
    h: &Hypergraph,
    req: &WidthRequest,
    backends: &[Box<dyn Backend>],
    opts: &PortfolioOptions,
) -> RaceReport {
    assert!(
        !backends.is_empty(),
        "a portfolio needs at least one backend"
    );
    let mut admitted: Vec<&dyn Backend> = backends
        .iter()
        .map(|b| b.as_ref())
        .filter(|b| b.eligible(h, req))
        .collect();
    if admitted.is_empty() {
        // Nothing self-selected (registries normally lead with an
        // always-eligible engine): fall back to the first backend so the
        // request still gets a definitive attempt.
        admitted.push(backends[0].as_ref());
    }
    admitted.truncate(opts.max_backends.max(1));
    let raced: Vec<BackendId> = admitted.iter().map(|b| b.id()).collect();
    let race_span = obs::span!("race", measure = req.measure.name(), backends = raced.len());

    let sink = BoundSink::new();
    if let Some(outer) = anytime::current_sink() {
        sink.attach(outer);
    }
    let root = match anytime::current_cancel() {
        Some(t) => t.child_with_deadline(opts.deadline),
        None => match opts.deadline {
            Some(d) => CancelToken::with_deadline(d),
            None => CancelToken::new(),
        },
    };
    let tokens: Vec<CancelToken> = admitted
        .iter()
        .map(|b| root.child_with_deadline(opts.backend_deadline(b.id())))
        .collect();

    let start = Instant::now();
    // First resolved answer wins; the mutex is the tiebreak.
    let winner: Mutex<Option<(usize, Outcome, Duration)>> = Mutex::new(None);
    let mut canceled = 0usize;

    std::thread::scope(|scope| {
        let handles: Vec<_> = admitted
            .iter()
            .enumerate()
            .map(|(i, backend)| {
                let ctl = RunCtl {
                    cancel: tokens[i].clone(),
                    sink: sink.clone(),
                };
                let winner = &winner;
                let tokens = &tokens;
                scope.spawn(move || {
                    // A cancelled loser unwinds out of `execute`; the span
                    // guard still closes (Drop runs during unwinds), it just
                    // never gets its `resolved`/`won` fields.
                    let span = obs::span!("backend", id = backend.id());
                    let outcome = execute(*backend, h, req, &ctl);
                    if let Some(span) = span.as_ref() {
                        span.record("resolved", outcome.resolved);
                    }
                    if outcome.resolved {
                        let mut w = winner.lock().expect("portfolio winner poisoned");
                        if w.is_none() {
                            *w = Some((i, outcome, start.elapsed()));
                            drop(w);
                            if let Some(span) = span.as_ref() {
                                span.record("won", true);
                            }
                            for (j, t) in tokens.iter().enumerate() {
                                if j != i {
                                    t.cancel();
                                }
                            }
                        }
                    }
                })
            })
            .collect();
        for handle in handles {
            if let Err(payload) = handle.join() {
                if interrupt::is_interrupt(payload.as_ref()) {
                    canceled += 1;
                } else {
                    std::panic::resume_unwind(payload);
                }
            }
        }
    });

    let won = winner.into_inner().expect("portfolio winner poisoned");
    if let Some(span) = race_span.as_ref() {
        span.record("canceled", canceled);
        span.record("won", won.is_some());
    }
    let bounds = sink.snapshot();
    let trace = sink.trace();
    let time_to_first_bound = sink.time_to_first_bound();
    if let (Some(span), Some(d)) = (race_span.as_ref(), time_to_first_bound) {
        span.record("first_bound_us", d.as_micros() as u64);
    }
    match won {
        Some((i, outcome, elapsed)) => RaceReport {
            winner: Some(raced[i]),
            outcome,
            raced,
            canceled,
            bounds,
            trace,
            time_to_first_bound,
            time_to_exact: Some(elapsed),
        },
        None => RaceReport {
            outcome: Outcome {
                width: None,
                witness: bounds.witness.clone(),
                resolved: false,
                stats: crate::SearchStats::default(),
                provenance: "portfolio",
            },
            winner: None,
            raced,
            canceled,
            bounds,
            trace,
            time_to_first_bound,
            time_to_exact: None,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::RunCtl;
    use crate::EngineOptions;
    use arith::Rational;
    use decomp::{Decomposition, Node};
    use hypergraph::{generators, VertexSet};

    fn trivial_witness() -> Decomposition {
        let mut bag = VertexSet::new();
        bag.insert(0);
        Decomposition::new(Node {
            bag,
            weights: Vec::new(),
        })
    }

    fn request() -> WidthRequest {
        WidthRequest {
            measure: crate::backend::Measure::Ghw { cutoff: None },
            opts: EngineOptions::default(),
        }
    }

    /// Resolves instantly with width `2`.
    struct Fast;
    impl Backend for Fast {
        fn id(&self) -> BackendId {
            "fast"
        }
        fn run(&self, _h: &Hypergraph, _req: &WidthRequest, ctl: &RunCtl) -> Outcome {
            ctl.sink.report_lower(Rational::one());
            Outcome::exact(
                self.id(),
                Rational::from(2usize),
                trivial_witness(),
                crate::SearchStats::default(),
            )
        }
    }

    /// Spins until cancelled (a deliberately-slow backend); raises the
    /// interrupt unwind like the engine root would.
    struct Slow;
    impl Backend for Slow {
        fn id(&self) -> BackendId {
            "slow"
        }
        fn run(&self, _h: &Hypergraph, _req: &WidthRequest, ctl: &RunCtl) -> Outcome {
            let gave_up = Instant::now() + Duration::from_secs(30);
            while !ctl.cancel.is_canceled() {
                assert!(Instant::now() < gave_up, "slow backend was never cancelled");
                std::thread::sleep(Duration::from_millis(1));
            }
            interrupt::raise()
        }
    }

    /// Ineligible everywhere.
    struct Picky;
    impl Backend for Picky {
        fn id(&self) -> BackendId {
            "picky"
        }
        fn eligible(&self, _h: &Hypergraph, _req: &WidthRequest) -> bool {
            false
        }
        fn run(&self, _h: &Hypergraph, _req: &WidthRequest, _ctl: &RunCtl) -> Outcome {
            unreachable!("ineligible backend must not run")
        }
    }

    #[test]
    fn fast_exact_answer_cancels_the_slow_loser() {
        let h = generators::cycle(4);
        let backends: Vec<Box<dyn Backend>> = vec![Box::new(Slow), Box::new(Fast)];
        let started = Instant::now();
        let report = race(&h, &request(), &backends, &PortfolioOptions::default());
        assert!(
            started.elapsed() < Duration::from_secs(10),
            "the racer returned long before the slow backend's horizon"
        );
        assert_eq!(report.winner, Some("fast"));
        assert_eq!(report.outcome.width, Some(Rational::from(2usize)));
        assert!(report.outcome.witness.is_some());
        assert_eq!(report.canceled, 1, "the slow loser was cancelled");
        assert_eq!(report.raced, vec!["slow", "fast"]);
        // The exact win closed the bounds.
        assert_eq!(report.bounds.lower, report.bounds.upper);
        assert!(report.time_to_exact.is_some());
        assert!(report.time_to_first_bound.is_some());
    }

    #[test]
    fn per_backend_deadline_cancels_a_stuck_member() {
        let h = generators::cycle(4);
        let backends: Vec<Box<dyn Backend>> = vec![Box::new(Slow)];
        let opts = PortfolioOptions {
            backend_deadlines: vec![("slow", Duration::from_millis(20))],
            ..PortfolioOptions::default()
        };
        let report = race(&h, &request(), &backends, &opts);
        assert_eq!(report.winner, None);
        assert!(!report.outcome.resolved);
        assert_eq!(report.canceled, 1, "deadline expiry is cancellation");
    }

    #[test]
    fn global_deadline_reports_best_so_far_bounds() {
        let h = generators::cycle(4);
        /// Reports a witnessed upper bound, then hangs until cancelled.
        struct Bounder;
        impl Backend for Bounder {
            fn id(&self) -> BackendId {
                "bounder"
            }
            fn run(&self, _h: &Hypergraph, _req: &WidthRequest, ctl: &RunCtl) -> Outcome {
                ctl.sink
                    .report_upper(Rational::from(3usize), Some(&trivial_witness()));
                while !ctl.cancel.is_canceled() {
                    std::thread::sleep(Duration::from_millis(1));
                }
                interrupt::raise()
            }
        }
        let backends: Vec<Box<dyn Backend>> = vec![Box::new(Bounder)];
        let opts = PortfolioOptions {
            deadline: Some(Duration::from_millis(25)),
            ..PortfolioOptions::default()
        };
        let report = race(&h, &request(), &backends, &opts);
        assert_eq!(report.winner, None);
        assert_eq!(report.bounds.upper, Some(Rational::from(3usize)));
        assert!(
            report.outcome.witness.is_some(),
            "the timeout answer carries the best witness seen"
        );
    }

    #[test]
    fn ineligible_backends_are_not_raced() {
        let h = generators::cycle(4);
        let backends: Vec<Box<dyn Backend>> = vec![Box::new(Picky), Box::new(Fast)];
        let report = race(&h, &request(), &backends, &PortfolioOptions::default());
        assert_eq!(report.raced, vec!["fast"]);
        assert_eq!(report.winner, Some("fast"));
    }
}
