//! The process-wide search runtime: batch admission control on top of the
//! shared worker pool and the cross-call result registry.
//!
//! A single search already multiplexes the process-wide worker pool (see
//! the pool plumbing in the crate root) and routes its whole-query answer
//! through `prep`'s result registry. What is left for a *batch* of
//! instances — `hgtool widths` over a corpus, the bench harness, an
//! embedding application resolving many queries — is admission control:
//! which instance to admit next. [`solve_batch`] orders admission by a
//! cheap candidate-space estimate ([`admission_estimate`], the
//! `candgen::stream_size_bound` feasibility count the strategy wrappers
//! gate the edge-union engine on), so small instances are never starved
//! behind a monster that saturates the pool for seconds, and duplicate
//! instances admitted back-to-back resolve through the result cache
//! instead of re-searching.
//!
//! Searches are admitted one at a time — each search saturates the shared
//! pool by itself, so overlapping two batch members would only thrash the
//! memo caches — but the admission *order* is the scheduling decision,
//! and results are returned in input order regardless.

use crate::SearchStats;
use hypergraph::Hypergraph;

/// The union arity the admission estimate prices the candidate space at.
/// Three is the smallest fan-out that separates trivially-acyclic
/// instances (whose space collapses after one union) from genuinely
/// combinatorial ones; the estimate only ranks, so the absolute scale is
/// irrelevant.
const ADMISSION_UNION_ARITY: usize = 3;

/// A cheap, deterministic hardness estimate for batch admission: the size
/// of the edge-union candidate space at a small fixed fan-out, saturating
/// at [`candgen::DEFAULT_STREAM_CAP`] (everything at the cap ties and
/// falls back to the size tie-break of [`solve_batch`]).
pub fn admission_estimate(h: &Hypergraph) -> u64 {
    candgen::stream_size_bound(
        h.num_edges(),
        ADMISSION_UNION_ARITY,
        candgen::DEFAULT_STREAM_CAP,
    )
}

/// Solves a batch of instances through one runtime: admission ordered by
/// [`admission_estimate`] (ascending, ties broken by vertex count, edge
/// count, then input position — fully deterministic), executed one search
/// at a time over the shared pool, results returned in *input* order.
///
/// `solve` receives the input index alongside the instance, so callers
/// can vary per-instance parameters (cutoffs, strategy choices) while the
/// runtime owns the schedule. Every per-instance result carries its own
/// [`SearchStats`]; with result reuse on, duplicate instances in one
/// batch report `result_cache_hits` for every admission after the first.
pub fn solve_batch<R>(
    instances: &[Hypergraph],
    mut solve: impl FnMut(usize, &Hypergraph) -> (R, SearchStats),
) -> Vec<(R, SearchStats)> {
    let keys: Vec<(u64, usize, usize)> = instances
        .iter()
        .map(|h| (admission_estimate(h), h.num_vertices(), h.num_edges()))
        .collect();
    let mut order: Vec<usize> = (0..instances.len()).collect();
    order.sort_by_key(|&i| (keys[i], i));
    let mut results: Vec<Option<(R, SearchStats)>> = (0..instances.len()).map(|_| None).collect();
    for i in order {
        results[i] = Some(solve(i, &instances[i]));
    }
    results
        .into_iter()
        .map(|r| r.expect("every admitted instance produced a result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypergraph::generators;

    #[test]
    fn results_come_back_in_input_order() {
        let instances = vec![
            generators::clique(6),
            generators::path(3),
            generators::cycle(5),
        ];
        let mut admitted: Vec<usize> = Vec::new();
        let results = solve_batch(&instances, |i, h| {
            admitted.push(i);
            ((i, h.num_edges()), SearchStats::default())
        });
        // Input order out...
        let indices: Vec<usize> = results.iter().map(|((i, _), _)| *i).collect();
        assert_eq!(indices, vec![0, 1, 2]);
        // ...but the path (2 edges) was admitted before the cycle
        // (5 edges) before the clique (15 edges).
        assert_eq!(admitted, vec![1, 2, 0]);
    }

    #[test]
    fn estimate_orders_by_candidate_space() {
        let small = admission_estimate(&generators::path(3));
        let large = admission_estimate(&generators::clique(6));
        assert!(small < large);
    }
}
