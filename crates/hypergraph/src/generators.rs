//! Hypergraph families: the paper's worked examples plus the synthetic
//! CQ/CSP-style workloads used by the experiment harness (Section 1
//! motivation, HyperBench-style corpus of \[23\]).

#![allow(clippy::needless_range_loop)]

use crate::hypergraph::Hypergraph;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// The complete graph `K_n` as a hypergraph of 2-edges.
///
/// Widths: `hw = ghw = ⌈n/2⌉`, `fhw = n/2` (Lemma 2.3 for even `n`).
pub fn clique(n: usize) -> Hypergraph {
    assert!(n >= 2);
    let mut edges = Vec::new();
    for a in 0..n {
        for b in (a + 1)..n {
            edges.push(vec![a, b]);
        }
    }
    Hypergraph::from_edges(n, edges)
}

/// The cycle `C_n` (2-edges). Not α-acyclic; `hw = ghw = 2` for all `n >= 3`,
/// `fhw(C_3) = 3/2`, `fhw(C_n) = 2` for `n >= 4`.
pub fn cycle(n: usize) -> Hypergraph {
    assert!(n >= 3);
    let edges = (0..n).map(|i| vec![i, (i + 1) % n]).collect();
    Hypergraph::from_edges(n, edges)
}

/// The path `P_n` on `n` vertices (acyclic; every width is 1).
pub fn path(n: usize) -> Hypergraph {
    assert!(n >= 2);
    let edges = (0..n - 1).map(|i| vec![i, i + 1]).collect();
    Hypergraph::from_edges(n, edges)
}

/// A star: center `0` joined to `n - 1` leaves (acyclic).
pub fn star(n: usize) -> Hypergraph {
    assert!(n >= 2);
    let edges = (1..n).map(|i| vec![0, i]).collect();
    Hypergraph::from_edges(n, edges)
}

/// The `rows × cols` grid graph as 2-edges. Grids have unbounded widths but
/// enjoy the 1-BIP, so they witness the non-triviality of the BIP criterion
/// (Section 4).
pub fn grid(rows: usize, cols: usize) -> Hypergraph {
    assert!(rows >= 1 && cols >= 1 && rows * cols >= 2);
    let id = |r: usize, c: usize| r * cols + c;
    let mut edges = Vec::new();
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                edges.push(vec![id(r, c), id(r, c + 1)]);
            }
            if r + 1 < rows {
                edges.push(vec![id(r, c), id(r + 1, c)]);
            }
        }
    }
    Hypergraph::from_edges(rows * cols, edges)
}

/// The hypergraph `H0` of Example 4.3 (Figure 4): `ghw(H0) = 2` but
/// `hw(H0) = 3`. Eight edges around an 8-ring `v1..v8` with two "hub"
/// vertices `v9`, `v10` each shared by exactly three edges, reconstructed
/// from the constraints stated in the paper:
/// `e2 = {v2,v3,v9}` (Example 4.4), intersection width 1,
/// 3-multi-intersection width 1, 4-multi-intersection width 0 (Example 4.3),
/// and the decompositions of Figures 5 and 6.
pub fn example_4_3() -> Hypergraph {
    // Vertex i is named v{i+1} to match the paper's 1-based labels.
    let names: Vec<String> = (1..=10).map(|i| format!("v{i}")).collect();
    let edge_names: Vec<String> = (1..=8).map(|i| format!("e{i}")).collect();
    let v = |i: usize| i - 1;
    let edges = vec![
        vec![v(1), v(2)],        // e1
        vec![v(2), v(3), v(9)],  // e2
        vec![v(3), v(4), v(10)], // e3
        vec![v(4), v(5)],        // e4
        vec![v(5), v(6), v(9)],  // e5
        vec![v(6), v(7), v(10)], // e6
        vec![v(7), v(8), v(9)],  // e7
        vec![v(8), v(1), v(10)], // e8
    ];
    Hypergraph::from_parts(names, edge_names, edges)
}

/// The hypergraph `H_n` of Example 5.1: `V = {v0..vn}`,
/// `E = {{v0, vi}} ∪ {{v1..vn}}`. `iwidth = 1`, but the optimal fractional
/// edge cover has unbounded support: `rho* = 2 − 1/n` with weight `1/n` on
/// every small edge.
pub fn example_5_1(n: usize) -> Hypergraph {
    assert!(n >= 2);
    let mut edges: Vec<Vec<usize>> = (1..=n).map(|i| vec![0, i]).collect();
    edges.push((1..=n).collect());
    Hypergraph::from_edges(n + 1, edges)
}

/// The family from Lemma 6.24: `V = {v1..vn}`, `E = {V \ {vi}}`. Bounded
/// VC-dimension (`< 2`) but unbounded `c`-multi-intersection width, so
/// bounded VC-dimension does not imply the BMIP.
pub fn lemma_6_24_family(n: usize) -> Hypergraph {
    assert!(n >= 3);
    let edges = (0..n)
        .map(|skip| (0..n).filter(|&v| v != skip).collect())
        .collect();
    Hypergraph::from_edges(n, edges)
}

/// A chain join query `R_1(x_1,x_2), R_2(x_2,x_3), ...` with relations of
/// arity `arity` overlapping in `overlap` variables (acyclic for
/// `overlap >= 1`).
pub fn cq_chain(relations: usize, arity: usize, overlap: usize) -> Hypergraph {
    assert!(relations >= 1 && arity >= 2 && overlap >= 1 && overlap < arity);
    let step = arity - overlap;
    let n = arity + step * (relations - 1);
    let edges = (0..relations)
        .map(|i| (i * step..i * step + arity).collect())
        .collect();
    Hypergraph::from_edges(n, edges)
}

/// A star join: one fact relation of arity `dims + keys`, joined to `dims`
/// dimension relations on disjoint key sets of size `keys` (acyclic).
pub fn cq_star(dims: usize, keys: usize) -> Hypergraph {
    assert!(dims >= 1 && keys >= 1);
    let mut edges = Vec::new();
    // Fact: key blocks 0..dims*keys.
    let fact: Vec<usize> = (0..dims * keys).collect();
    let mut next = dims * keys;
    for d in 0..dims {
        let mut rel: Vec<usize> = (d * keys..(d + 1) * keys).collect();
        rel.push(next); // a private attribute per dimension
        next += 1;
        edges.push(rel);
    }
    edges.push(fact);
    Hypergraph::from_edges(next, edges)
}

/// The `d`-dimensional hypercube graph `Q_d` as 2-edges: `2^d` vertices,
/// `d·2^{d-1}` edges; 1-BIP with treewidth (and widths) growing in `d`.
pub fn hypercube(d: usize) -> Hypergraph {
    assert!((1..=6).contains(&d), "hypercube dimension in 1..=6");
    let n = 1usize << d;
    let mut edges = Vec::new();
    for v in 0..n {
        for bit in 0..d {
            let u = v ^ (1 << bit);
            if v < u {
                edges.push(vec![v, u]);
            }
        }
    }
    Hypergraph::from_edges(n, edges)
}

/// A snowflake join: a star of `branches` chains, each of `depth` binary
/// relations (acyclic — the classic data-warehouse shape).
pub fn cq_snowflake(branches: usize, depth: usize) -> Hypergraph {
    assert!(branches >= 1 && depth >= 1);
    let mut edges = Vec::new();
    let mut next = 1usize; // vertex 0 is the hub
    for _ in 0..branches {
        let mut prev = 0usize;
        for _ in 0..depth {
            edges.push(vec![prev, next]);
            prev = next;
            next += 1;
        }
    }
    Hypergraph::from_edges(next, edges)
}

/// A "triangle cascade": `k` triangles glued along shared vertices — the
/// classic family of non-acyclic queries with `ghw = 2` that motivates
/// Research Challenge 2.
pub fn triangle_chain(k: usize) -> Hypergraph {
    assert!(k >= 1);
    let mut edges = Vec::new();
    for t in 0..k {
        let a = t * 2;
        let (b, c) = (a + 1, a + 2);
        edges.push(vec![a, b]);
        edges.push(vec![b, c]);
        edges.push(vec![a, c]);
    }
    Hypergraph::from_edges(2 * k + 1, edges)
}

/// A random hypergraph with `m` edges of size up to `max_edge` over `n`
/// vertices whose pairwise intersections are at most `i` (rejection
/// sampling), i.e. an `i`-BIP instance. Deterministic in `seed`.
pub fn random_bip(n: usize, m: usize, i: usize, max_edge: usize, seed: u64) -> Hypergraph {
    assert!(n >= 2 && max_edge >= 2 && max_edge <= n);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges: Vec<Vec<usize>> = Vec::new();
    let mut attempts = 0usize;
    while edges.len() < m && attempts < 100_000 {
        attempts += 1;
        let size = rng.gen_range(2..=max_edge);
        let mut pool: Vec<usize> = (0..n).collect();
        pool.shuffle(&mut rng);
        let cand: Vec<usize> = pool.into_iter().take(size).collect();
        let cand_set: std::collections::HashSet<usize> = cand.iter().copied().collect();
        let ok = edges.iter().all(|e| {
            let inter = e.iter().filter(|v| cand_set.contains(v)).count();
            inter <= i && inter < e.len().min(cand.len())
        });
        if ok {
            edges.push(cand);
        }
    }
    cover_isolated(n, edges)
}

/// A random hypergraph of degree at most `d` (each vertex in at most `d`
/// edges): a BDP instance for Theorem 5.2. Deterministic in `seed`.
pub fn random_bounded_degree(
    n: usize,
    m: usize,
    d: usize,
    max_edge: usize,
    seed: u64,
) -> Hypergraph {
    assert!(n >= 2 && d >= 1 && max_edge >= 2);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut deg = vec![0usize; n];
    let mut edges: Vec<Vec<usize>> = Vec::new();
    let mut attempts = 0usize;
    while edges.len() < m && attempts < 100_000 {
        attempts += 1;
        let size = rng.gen_range(2..=max_edge);
        let avail: Vec<usize> = (0..n).filter(|&v| deg[v] < d).collect();
        if avail.len() < size {
            break;
        }
        let mut pool = avail;
        pool.shuffle(&mut rng);
        let cand: Vec<usize> = pool.into_iter().take(size).collect();
        if edges.iter().any(|e| e == &cand) {
            continue;
        }
        for &v in &cand {
            deg[v] += 1;
        }
        edges.push(cand);
    }
    cover_isolated(n, edges)
}

/// A random α-acyclic hypergraph built from a random join tree. Every width
/// equals 1, so these are the "trivially easy" baseline instances.
pub fn random_acyclic(relations: usize, arity: usize, seed: u64) -> Hypergraph {
    assert!(relations >= 1 && arity >= 2);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges: Vec<Vec<usize>> = Vec::new();
    let mut next_vertex = 0usize;
    let fresh = |k: usize, next: &mut usize| -> Vec<usize> {
        let out = (*next..*next + k).collect();
        *next += k;
        out
    };
    edges.push(fresh(arity, &mut next_vertex));
    for _ in 1..relations {
        // Connect to a random existing edge, sharing a random subset of it.
        let parent = rng.gen_range(0..edges.len());
        let share = rng.gen_range(1..arity);
        let mut shared: Vec<usize> = edges[parent].clone();
        shared.shuffle(&mut rng);
        shared.truncate(share.min(edges[parent].len()));
        let mut e = shared;
        e.extend(fresh(arity - e.len(), &mut next_vertex));
        edges.push(e);
    }
    Hypergraph::from_edges(next_vertex, edges)
}

/// Ensures no isolated vertices by shrinking the universe to used vertices.
fn cover_isolated(n: usize, edges: Vec<Vec<usize>>) -> Hypergraph {
    let mut used = vec![false; n];
    for e in &edges {
        for &v in e {
            used[v] = true;
        }
    }
    let mut renumber = vec![usize::MAX; n];
    let mut count = 0usize;
    for v in 0..n {
        if used[v] {
            renumber[v] = count;
            count += 1;
        }
    }
    let edges = edges
        .into_iter()
        .map(|e| e.into_iter().map(|v| renumber[v]).collect())
        .collect();
    Hypergraph::from_edges(count, edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::properties;

    #[test]
    fn clique_counts() {
        let h = clique(5);
        assert_eq!(h.num_vertices(), 5);
        assert_eq!(h.num_edges(), 10);
        assert_eq!(properties::intersection_width(&h), 1);
    }

    #[test]
    fn example_4_3_shape() {
        let h = example_4_3();
        assert_eq!(h.num_vertices(), 10);
        assert_eq!(h.num_edges(), 8);
        // e2 = {v2, v3, v9} as stated in Example 4.4.
        let e2 = h.edge_by_name("e2").unwrap();
        let members: Vec<&str> = h.edge(e2).iter().map(|v| h.vertex_name(v)).collect();
        assert_eq!(members, vec!["v2", "v3", "v9"]);
        assert!(!properties::is_alpha_acyclic(&h));
    }

    #[test]
    fn example_5_1_shape() {
        let h = example_5_1(5);
        assert_eq!(h.num_vertices(), 6);
        assert_eq!(h.num_edges(), 6);
        assert_eq!(properties::intersection_width(&h), 1);
        assert_eq!(properties::degree(&h), 5); // v0
    }

    #[test]
    fn chains_and_stars_are_acyclic() {
        assert!(properties::is_alpha_acyclic(&cq_chain(5, 3, 1)));
        assert!(properties::is_alpha_acyclic(&cq_star(4, 2)));
        assert!(properties::is_alpha_acyclic(&random_acyclic(8, 3, 42)));
    }

    #[test]
    fn triangle_chain_is_cyclic_with_shared_vertices() {
        let h = triangle_chain(3);
        assert_eq!(h.num_vertices(), 7);
        assert_eq!(h.num_edges(), 9);
        assert!(!properties::is_alpha_acyclic(&h));
    }

    #[test]
    fn random_bip_respects_intersection_bound() {
        for seed in 0..5u64 {
            let h = random_bip(14, 10, 2, 4, seed);
            assert!(properties::intersection_width(&h) <= 2, "seed {seed}");
            assert!(!h.has_isolated_vertices());
        }
    }

    #[test]
    fn random_bounded_degree_respects_degree() {
        for seed in 0..5u64 {
            let h = random_bounded_degree(16, 12, 3, 4, seed);
            assert!(properties::degree(&h) <= 3, "seed {seed}");
            assert!(!h.has_isolated_vertices());
        }
    }

    #[test]
    fn grid_is_one_bip() {
        let h = grid(3, 4);
        assert_eq!(h.num_vertices(), 12);
        assert_eq!(properties::intersection_width(&h), 1);
    }

    #[test]
    fn hypercube_counts() {
        let h = hypercube(3);
        assert_eq!(h.num_vertices(), 8);
        assert_eq!(h.num_edges(), 12);
        assert_eq!(properties::intersection_width(&h), 1);
        assert!(!properties::is_alpha_acyclic(&h));
    }

    #[test]
    fn snowflake_is_acyclic() {
        let h = cq_snowflake(3, 2);
        assert_eq!(h.num_vertices(), 7);
        assert_eq!(h.num_edges(), 6);
        assert!(properties::is_alpha_acyclic(&h));
    }

    #[test]
    fn generators_are_deterministic() {
        let a = random_bip(12, 8, 2, 4, 7).to_string();
        let b = random_bip(12, 8, 2, 4, 7).to_string();
        assert_eq!(a, b);
    }
}
