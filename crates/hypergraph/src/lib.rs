//! Hypergraphs and their structural machinery (Section 2.1 of the paper),
//! plus the restriction criteria of Sections 4–6 (BIP, BMIP, BDP,
//! VC-dimension), generators for every worked example, and a parser for the
//! HyperBench text format.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod components;
pub mod dual;
pub mod fx;
pub mod generators;
#[allow(clippy::module_inception)]
mod hypergraph;
pub mod parser;
pub mod properties;
mod vertex_set;

pub use hypergraph::Hypergraph;
pub use vertex_set::VertexSet;
