//! `[C]`-connectivity (Section 2.1): adjacency, paths, and components.
//!
//! Two vertices are `[C]`-adjacent if some edge contains both outside `C`;
//! a `[C]`-component is a maximal `[C]`-connected subset of `V(H) \ C`.
//! Components drive both `det-k-decomp` and every normal-form argument.

use crate::hypergraph::Hypergraph;
use crate::vertex_set::VertexSet;

/// All `[sep]`-components of `h`, each as a vertex set, in order of their
/// smallest vertex.
pub fn components(h: &Hypergraph, sep: &VertexSet) -> Vec<VertexSet> {
    let mut seen = sep.clone();
    let mut out = Vec::new();
    for start in 0..h.num_vertices() {
        if seen.contains(start) {
            continue;
        }
        let comp = expand_component(h, sep, start);
        seen.union_with(&comp);
        out.push(comp);
    }
    out
}

/// The `[sep]`-component containing `start` (which must lie outside `sep`).
pub fn component_of(h: &Hypergraph, sep: &VertexSet, start: usize) -> VertexSet {
    assert!(!sep.contains(start), "start vertex lies in the separator");
    expand_component(h, sep, start)
}

fn expand_component(h: &Hypergraph, sep: &VertexSet, start: usize) -> VertexSet {
    let mut comp = VertexSet::new();
    comp.insert(start);
    let mut stack = vec![start];
    while let Some(v) = stack.pop() {
        for &e in h.incident_edges(v) {
            // All vertices of e \ sep are pairwise [sep]-adjacent.
            for u in h.edge(e).iter() {
                if !sep.contains(u) && comp.insert(u) {
                    stack.push(u);
                }
            }
        }
    }
    comp
}

/// True iff all of `w` lies in one `[sep]`-component (i.e. `w` is
/// `[sep]`-connected). The empty set and singletons outside `sep` are
/// trivially connected; vertices of `w` inside `sep` make it disconnected
/// per the definition (components live outside `C`).
pub fn is_connected_outside(h: &Hypergraph, sep: &VertexSet, w: &VertexSet) -> bool {
    if w.intersects(sep) {
        return false;
    }
    match w.first() {
        None => true,
        Some(start) => w.is_subset(&expand_component(h, sep, start)),
    }
}

/// True iff the hypergraph is connected (one `[∅]`-component or empty).
pub fn is_connected(h: &Hypergraph) -> bool {
    components(h, &VertexSet::new()).len() <= 1
}

/// A `[C]`-path as a witness: alternating vertices and edge indices.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CPath {
    /// The vertex sequence `v0, ..., vh`.
    pub vertices: Vec<usize>,
    /// The edge sequence `e0, ..., e(h-1)` with `{vi, vi+1} ⊆ ei \ C`.
    pub edges: Vec<usize>,
}

/// Finds a `[sep]`-path from `from` to `to`, if one exists.
pub fn find_path(h: &Hypergraph, sep: &VertexSet, from: usize, to: usize) -> Option<CPath> {
    if sep.contains(from) || sep.contains(to) {
        return None;
    }
    if from == to {
        return Some(CPath {
            vertices: vec![from],
            edges: vec![],
        });
    }
    // BFS storing (parent vertex, connecting edge).
    let mut prev: Vec<Option<(usize, usize)>> = vec![None; h.num_vertices()];
    let mut visited = VertexSet::new();
    visited.insert(from);
    let mut queue = std::collections::VecDeque::from([from]);
    'bfs: while let Some(v) = queue.pop_front() {
        for &e in h.incident_edges(v) {
            if sep.contains(v) {
                continue;
            }
            for u in h.edge(e).iter() {
                if u == v || sep.contains(u) || visited.contains(u) {
                    continue;
                }
                visited.insert(u);
                prev[u] = Some((v, e));
                if u == to {
                    break 'bfs;
                }
                queue.push_back(u);
            }
        }
    }
    prev[to]?;
    let mut vertices = vec![to];
    let mut edges = Vec::new();
    let mut cur = to;
    while let Some((p, e)) = prev[cur] {
        edges.push(e);
        vertices.push(p);
        cur = p;
    }
    vertices.reverse();
    edges.reverse();
    Some(CPath { vertices, edges })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Path hypergraph a-b-c-d with 2-edges.
    fn path4() -> Hypergraph {
        Hypergraph::from_edges(4, vec![vec![0, 1], vec![1, 2], vec![2, 3]])
    }

    #[test]
    fn empty_separator_single_component() {
        let h = path4();
        let comps = components(&h, &VertexSet::new());
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].len(), 4);
        assert!(is_connected(&h));
    }

    #[test]
    fn cut_vertex_splits() {
        let h = path4();
        let sep = VertexSet::from_iter([1]);
        let comps = components(&h, &sep);
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0].to_vec(), vec![0]);
        assert_eq!(comps[1].to_vec(), vec![2, 3]);
    }

    #[test]
    fn components_partition_the_rest() {
        let h = path4();
        for sep_vs in [vec![], vec![0], vec![1], vec![1, 2], vec![0, 3]] {
            let sep = VertexSet::from_iter(sep_vs);
            let comps = components(&h, &sep);
            let mut union = VertexSet::new();
            let mut total = 0;
            for c in &comps {
                assert!(!c.is_empty());
                assert!(c.is_disjoint(&sep));
                total += c.len();
                union.union_with(c);
            }
            assert_eq!(total, union.len(), "components must be disjoint");
            assert_eq!(union, h.all_vertices().difference(&sep));
        }
    }

    #[test]
    fn hyperedge_makes_clique() {
        // One big edge: removing any single vertex keeps the rest connected.
        let h = Hypergraph::from_edges(4, vec![vec![0, 1, 2, 3]]);
        let sep = VertexSet::from_iter([2]);
        assert_eq!(components(&h, &sep).len(), 1);
    }

    #[test]
    fn connectivity_queries() {
        let h = path4();
        let sep = VertexSet::from_iter([1]);
        assert!(is_connected_outside(
            &h,
            &sep,
            &VertexSet::from_iter([2, 3])
        ));
        assert!(!is_connected_outside(
            &h,
            &sep,
            &VertexSet::from_iter([0, 2])
        ));
        assert!(!is_connected_outside(&h, &sep, &VertexSet::from_iter([1])));
        assert!(is_connected_outside(&h, &sep, &VertexSet::new()));
    }

    #[test]
    fn paths_are_valid_witnesses() {
        let h = path4();
        let p = find_path(&h, &VertexSet::new(), 0, 3).unwrap();
        assert_eq!(p.vertices, vec![0, 1, 2, 3]);
        assert_eq!(p.edges, vec![0, 1, 2]);
        // Blocked by the separator.
        assert!(find_path(&h, &VertexSet::from_iter([2]), 0, 3).is_none());
        // Trivial path.
        let t = find_path(&h, &VertexSet::new(), 2, 2).unwrap();
        assert_eq!(t.vertices, vec![2]);
        assert!(t.edges.is_empty());
    }
}
