//! Compact vertex sets backed by 64-bit blocks.
//!
//! All set machinery of the paper — bags `B_u`, separators `[C]`, edge
//! contents, components — lives on this type. The representation is
//! normalized (no trailing zero blocks) so equality and hashing are
//! structural, which lets sets serve as memoization keys inside
//! `det-k-decomp` and the elimination-order DP.

use std::fmt;

/// A set of vertex indices.
#[derive(Clone, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VertexSet {
    blocks: Vec<u64>,
}

impl VertexSet {
    /// The empty set.
    pub fn new() -> Self {
        VertexSet { blocks: Vec::new() }
    }

    /// A set containing `0..n`, materialized block-wise: whole blocks are
    /// written as `u64::MAX` and the boundary block as a mask, instead of
    /// `n` repeated `insert` calls.
    pub fn full(n: usize) -> Self {
        let mut blocks = vec![u64::MAX; n / 64];
        let rem = n % 64;
        if rem > 0 {
            blocks.push((1u64 << rem) - 1);
        }
        VertexSet { blocks }
    }

    /// Builds a set from an iterator of vertex indices (also available
    /// through the `FromIterator` impl; kept as an inherent method for
    /// call-site clarity).
    #[allow(clippy::should_implement_trait)]
    pub fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let mut s = VertexSet::new();
        for v in iter {
            s.insert(v);
        }
        s
    }

    fn trim(&mut self) {
        while self.blocks.last() == Some(&0) {
            self.blocks.pop();
        }
    }

    /// Inserts a vertex; returns true if it was not present.
    pub fn insert(&mut self, v: usize) -> bool {
        let (b, off) = (v / 64, v % 64);
        if b >= self.blocks.len() {
            self.blocks.resize(b + 1, 0);
        }
        let was = (self.blocks[b] >> off) & 1;
        self.blocks[b] |= 1 << off;
        was == 0
    }

    /// Removes a vertex; returns true if it was present.
    pub fn remove(&mut self, v: usize) -> bool {
        let (b, off) = (v / 64, v % 64);
        if b >= self.blocks.len() {
            return false;
        }
        let was = (self.blocks[b] >> off) & 1;
        self.blocks[b] &= !(1 << off);
        self.trim();
        was == 1
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, v: usize) -> bool {
        let (b, off) = (v / 64, v % 64);
        b < self.blocks.len() && (self.blocks[b] >> off) & 1 == 1
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.blocks.iter().map(|b| b.count_ones() as usize).sum()
    }

    /// True iff empty.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Iterates elements in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.blocks.iter().enumerate().flat_map(|(i, &block)| {
            let mut b = block;
            std::iter::from_fn(move || {
                if b == 0 {
                    None
                } else {
                    let t = b.trailing_zeros() as usize;
                    b &= b - 1;
                    Some(i * 64 + t)
                }
            })
        })
    }

    /// Smallest element, if any.
    pub fn first(&self) -> Option<usize> {
        self.iter().next()
    }

    /// In-place union.
    pub fn union_with(&mut self, other: &VertexSet) {
        if other.blocks.len() > self.blocks.len() {
            self.blocks.resize(other.blocks.len(), 0);
        }
        for (i, &b) in other.blocks.iter().enumerate() {
            self.blocks[i] |= b;
        }
    }

    /// In-place intersection.
    pub fn intersect_with(&mut self, other: &VertexSet) {
        let n = self.blocks.len().min(other.blocks.len());
        self.blocks.truncate(n);
        for i in 0..n {
            self.blocks[i] &= other.blocks[i];
        }
        self.trim();
    }

    /// In-place difference (`self \ other`).
    pub fn difference_with(&mut self, other: &VertexSet) {
        let n = self.blocks.len().min(other.blocks.len());
        for i in 0..n {
            self.blocks[i] &= !other.blocks[i];
        }
        self.trim();
    }

    /// Owned union.
    pub fn union(&self, other: &VertexSet) -> VertexSet {
        let mut s = self.clone();
        s.union_with(other);
        s
    }

    /// Owned intersection.
    pub fn intersection(&self, other: &VertexSet) -> VertexSet {
        let mut s = self.clone();
        s.intersect_with(other);
        s
    }

    /// Owned difference.
    pub fn difference(&self, other: &VertexSet) -> VertexSet {
        let mut s = self.clone();
        s.difference_with(other);
        s
    }

    /// `|self ∩ other|` without materializing the intersection — the hot
    /// primitive behind the width searches' cover lower bounds.
    #[inline]
    pub fn intersection_len(&self, other: &VertexSet) -> usize {
        self.blocks
            .iter()
            .zip(other.blocks.iter())
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// True iff `self ⊆ other`.
    #[inline]
    pub fn is_subset(&self, other: &VertexSet) -> bool {
        if self.blocks.len() > other.blocks.len() {
            return false;
        }
        self.blocks
            .iter()
            .zip(other.blocks.iter())
            .all(|(a, b)| a & !b == 0)
    }

    /// True iff the sets share no element.
    #[inline]
    pub fn is_disjoint(&self, other: &VertexSet) -> bool {
        self.blocks
            .iter()
            .zip(other.blocks.iter())
            .all(|(a, b)| a & b == 0)
    }

    /// True iff the sets share at least one element.
    #[inline]
    pub fn intersects(&self, other: &VertexSet) -> bool {
        !self.is_disjoint(other)
    }

    /// Removes all elements.
    pub fn clear(&mut self) {
        self.blocks.clear();
    }

    /// Collects into a sorted `Vec`.
    pub fn to_vec(&self) -> Vec<usize> {
        self.iter().collect()
    }
}

impl FromIterator<usize> for VertexSet {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        VertexSet::from_iter(iter)
    }
}

impl Extend<usize> for VertexSet {
    fn extend<I: IntoIterator<Item = usize>>(&mut self, iter: I) {
        for v in iter {
            self.insert(v);
        }
    }
}

impl fmt::Debug for VertexSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, v) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = VertexSet::new();
        assert!(s.insert(5));
        assert!(!s.insert(5));
        assert!(s.contains(5));
        assert!(!s.contains(4));
        assert!(s.insert(200));
        assert_eq!(s.len(), 2);
        assert!(s.remove(200));
        assert!(!s.remove(200));
        assert_eq!(s.to_vec(), vec![5]);
    }

    #[test]
    fn normalization_makes_equality_structural() {
        let mut a = VertexSet::from_iter([1, 300]);
        a.remove(300);
        let b = VertexSet::from_iter([1]);
        assert_eq!(a, b);
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut h1 = DefaultHasher::new();
        let mut h2 = DefaultHasher::new();
        a.hash(&mut h1);
        b.hash(&mut h2);
        assert_eq!(h1.finish(), h2.finish());
    }

    #[test]
    fn set_algebra() {
        let a = VertexSet::from_iter([1, 2, 3, 64]);
        let b = VertexSet::from_iter([3, 64, 65]);
        assert_eq!(a.union(&b).to_vec(), vec![1, 2, 3, 64, 65]);
        assert_eq!(a.intersection(&b).to_vec(), vec![3, 64]);
        assert_eq!(a.intersection_len(&b), 2);
        assert_eq!(a.intersection_len(&VertexSet::new()), 0);
        assert_eq!(a.difference(&b).to_vec(), vec![1, 2]);
        assert!(a.intersection(&b).is_subset(&a));
        assert!(a.intersection(&b).is_subset(&b));
        assert!(!a.is_subset(&b));
        assert!(VertexSet::new().is_subset(&a));
    }

    #[test]
    fn disjointness() {
        let a = VertexSet::from_iter([0, 2]);
        let b = VertexSet::from_iter([1, 3]);
        assert!(a.is_disjoint(&b));
        assert!(!a.intersects(&b));
        let c = VertexSet::from_iter([2, 3]);
        assert!(a.intersects(&c));
    }

    #[test]
    fn iteration_order() {
        let s = VertexSet::from_iter([129, 3, 64, 0]);
        assert_eq!(s.to_vec(), vec![0, 3, 64, 129]);
        assert_eq!(s.first(), Some(0));
        assert_eq!(VertexSet::new().first(), None);
    }

    #[test]
    fn full_universe() {
        let s = VertexSet::full(70);
        assert_eq!(s.len(), 70);
        assert!(s.contains(0) && s.contains(69) && !s.contains(70));
    }
}
