//! Compact vertex sets backed by 64-bit blocks.
//!
//! All set machinery of the paper — bags `B_u`, separators `[C]`, edge
//! contents, components — lives on this type. The representation is
//! normalized (no trailing zero blocks) so equality and hashing are
//! structural, which lets sets serve as memoization keys inside
//! `det-k-decomp` and the elimination-order DP.
//!
//! Sets of up to [`INLINE_BLOCKS`]` * 64` vertices are stored inline —
//! no heap allocation for construction, cloning or set algebra — and
//! spill to a heap `Vec` only beyond that. The width searches clone and
//! build sets in every candidate pull, so the inline representation is a
//! large constant factor on instances that fit (the entire exact-search
//! regime does). The two representations are kept canonical (a set that
//! fits inline *is* inline), so equality, ordering and hashing can
//! compare the logical block slice without cross-representation cases.

use std::fmt;

/// Number of 64-bit blocks stored inline before spilling to the heap.
const INLINE_BLOCKS: usize = 2;

/// Normalized block storage: `Inline` holds up to [`INLINE_BLOCKS`]
/// blocks (unused slots kept zero), `Heap` always holds more than
/// [`INLINE_BLOCKS`] blocks. Both are trimmed — the last block is
/// nonzero.
#[derive(Clone)]
enum Repr {
    Inline { len: u8, data: [u64; INLINE_BLOCKS] },
    Heap(Vec<u64>),
}

/// A set of vertex indices.
#[derive(Clone)]
pub struct VertexSet {
    repr: Repr,
}

impl VertexSet {
    /// The empty set.
    pub fn new() -> Self {
        VertexSet {
            repr: Repr::Inline {
                len: 0,
                data: [0; INLINE_BLOCKS],
            },
        }
    }

    /// A set containing `0..n`, materialized block-wise: whole blocks are
    /// written as `u64::MAX` and the boundary block as a mask, instead of
    /// `n` repeated `insert` calls.
    pub fn full(n: usize) -> Self {
        let mut s = VertexSet::new();
        let whole = n / 64;
        s.grow_blocks(whole + usize::from(!n.is_multiple_of(64)));
        let blocks = s.blocks_mut();
        for b in &mut blocks[..whole] {
            *b = u64::MAX;
        }
        let rem = n % 64;
        if rem > 0 {
            blocks[whole] = (1u64 << rem) - 1;
        }
        s
    }

    /// Builds a set from an iterator of vertex indices (also available
    /// through the `FromIterator` impl; kept as an inherent method for
    /// call-site clarity).
    #[allow(clippy::should_implement_trait)]
    pub fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let mut s = VertexSet::new();
        for v in iter {
            s.insert(v);
        }
        s
    }

    /// The logical blocks, trimmed of trailing zeros.
    #[inline]
    fn blocks(&self) -> &[u64] {
        match &self.repr {
            Repr::Inline { len, data } => &data[..*len as usize],
            Repr::Heap(v) => v,
        }
    }

    #[inline]
    fn blocks_mut(&mut self) -> &mut [u64] {
        match &mut self.repr {
            Repr::Inline { len, data } => &mut data[..*len as usize],
            Repr::Heap(v) => v,
        }
    }

    #[inline]
    fn num_blocks(&self) -> usize {
        match &self.repr {
            Repr::Inline { len, .. } => *len as usize,
            Repr::Heap(v) => v.len(),
        }
    }

    /// Extends the block storage with zeros to at least `n` blocks,
    /// promoting to the heap representation when `n` outgrows the inline
    /// buffer. Never shrinks.
    fn grow_blocks(&mut self, n: usize) {
        match &mut self.repr {
            Repr::Inline { len, data } => {
                if n <= INLINE_BLOCKS {
                    // Slots beyond `len` are zero by invariant.
                    *len = (*len).max(n as u8);
                } else {
                    let mut v = Vec::with_capacity(n);
                    v.extend_from_slice(&data[..*len as usize]);
                    v.resize(n, 0);
                    self.repr = Repr::Heap(v);
                }
            }
            Repr::Heap(v) => {
                if n > v.len() {
                    v.resize(n, 0);
                }
            }
        }
    }

    /// Drops trailing zero blocks and re-canonicalizes (a heap set that
    /// now fits inline moves back, so representation stays a function of
    /// the set's contents).
    fn trim(&mut self) {
        match &mut self.repr {
            Repr::Inline { len, data } => {
                while *len > 0 && data[*len as usize - 1] == 0 {
                    *len -= 1;
                }
            }
            Repr::Heap(v) => {
                while v.last() == Some(&0) {
                    v.pop();
                }
            }
        }
        let demoted = match &self.repr {
            Repr::Heap(v) if v.len() <= INLINE_BLOCKS => {
                let mut data = [0; INLINE_BLOCKS];
                data[..v.len()].copy_from_slice(v);
                Some(Repr::Inline {
                    len: v.len() as u8,
                    data,
                })
            }
            _ => None,
        };
        if let Some(inline) = demoted {
            self.repr = inline;
        }
    }

    /// Inserts a vertex; returns true if it was not present.
    pub fn insert(&mut self, v: usize) -> bool {
        let (b, off) = (v / 64, v % 64);
        if b >= self.num_blocks() {
            self.grow_blocks(b + 1);
        }
        let block = &mut self.blocks_mut()[b];
        let was = (*block >> off) & 1;
        *block |= 1 << off;
        was == 0
    }

    /// Inserts every vertex `block * 64 + i` for each set bit `i` of
    /// `mask` — the bulk form of [`VertexSet::insert`] for callers that
    /// already hold their vertices as block masks (one OR instead of a
    /// per-bit loop; the subset streams build millions of bags this way).
    #[inline]
    pub fn insert_mask_block(&mut self, block: usize, mask: u64) {
        if mask == 0 {
            return;
        }
        if block >= self.num_blocks() {
            self.grow_blocks(block + 1);
        }
        self.blocks_mut()[block] |= mask;
    }

    /// The first two blocks as a pair when the whole set fits in them
    /// (every vertex `< 128`), `None` otherwise — the extraction half of
    /// [`VertexSet::from_two_blocks`].
    #[inline]
    pub fn two_blocks(&self) -> Option<(u64, u64)> {
        let b = self.blocks();
        match b.len() {
            0 => Some((0, 0)),
            1 => Some((b[0], 0)),
            2 => Some((b[0], b[1])),
            _ => None,
        }
    }

    /// Builds a set directly from its first two 64-bit blocks (vertices
    /// `0..128`). The tightest constructor on the subset-stream hot path:
    /// callers accumulate a bag in two registers and materialize it with
    /// no clone, no branches per member, no allocation.
    #[inline]
    pub fn from_two_blocks(b0: u64, b1: u64) -> Self {
        let len = if b1 != 0 { 2 } else { u8::from(b0 != 0) };
        VertexSet {
            repr: Repr::Inline {
                len,
                data: [b0, b1],
            },
        }
    }

    /// Removes a vertex; returns true if it was present.
    pub fn remove(&mut self, v: usize) -> bool {
        let (b, off) = (v / 64, v % 64);
        if b >= self.num_blocks() {
            return false;
        }
        let block = &mut self.blocks_mut()[b];
        let was = (*block >> off) & 1;
        *block &= !(1 << off);
        self.trim();
        was == 1
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, v: usize) -> bool {
        let (b, off) = (v / 64, v % 64);
        let blocks = self.blocks();
        b < blocks.len() && (blocks[b] >> off) & 1 == 1
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.blocks().iter().map(|b| b.count_ones() as usize).sum()
    }

    /// True iff empty.
    pub fn is_empty(&self) -> bool {
        self.num_blocks() == 0
    }

    /// Iterates elements in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.blocks().iter().enumerate().flat_map(|(i, &block)| {
            let mut b = block;
            std::iter::from_fn(move || {
                if b == 0 {
                    None
                } else {
                    let t = b.trailing_zeros() as usize;
                    b &= b - 1;
                    Some(i * 64 + t)
                }
            })
        })
    }

    /// Smallest element, if any.
    pub fn first(&self) -> Option<usize> {
        self.iter().next()
    }

    /// Smallest element of `self \ other` without materializing the
    /// difference — the greedy scattered-set bound calls this once per
    /// streamed candidate bag.
    #[inline]
    pub fn first_not_in(&self, other: &VertexSet) -> Option<usize> {
        let o = other.blocks();
        for (i, &b) in self.blocks().iter().enumerate() {
            let rest = b & !o.get(i).copied().unwrap_or(0);
            if rest != 0 {
                return Some(i * 64 + rest.trailing_zeros() as usize);
            }
        }
        None
    }

    /// In-place union.
    pub fn union_with(&mut self, other: &VertexSet) {
        if other.num_blocks() > self.num_blocks() {
            self.grow_blocks(other.num_blocks());
        }
        let blocks = self.blocks_mut();
        for (i, &b) in other.blocks().iter().enumerate() {
            blocks[i] |= b;
        }
    }

    /// In-place intersection.
    pub fn intersect_with(&mut self, other: &VertexSet) {
        let n = self.num_blocks().min(other.num_blocks());
        let ob = other.blocks();
        let blocks = self.blocks_mut();
        for i in 0..n {
            blocks[i] &= ob[i];
        }
        for b in &mut blocks[n..] {
            *b = 0;
        }
        self.trim();
    }

    /// In-place difference (`self \ other`).
    pub fn difference_with(&mut self, other: &VertexSet) {
        let n = self.num_blocks().min(other.num_blocks());
        let ob = other.blocks();
        let blocks = self.blocks_mut();
        for i in 0..n {
            blocks[i] &= !ob[i];
        }
        self.trim();
    }

    /// Owned union.
    pub fn union(&self, other: &VertexSet) -> VertexSet {
        let mut s = self.clone();
        s.union_with(other);
        s
    }

    /// Owned intersection.
    pub fn intersection(&self, other: &VertexSet) -> VertexSet {
        let mut s = self.clone();
        s.intersect_with(other);
        s
    }

    /// Owned difference.
    pub fn difference(&self, other: &VertexSet) -> VertexSet {
        let mut s = self.clone();
        s.difference_with(other);
        s
    }

    /// `|self ∩ other|` without materializing the intersection — the hot
    /// primitive behind the width searches' cover lower bounds.
    #[inline]
    pub fn intersection_len(&self, other: &VertexSet) -> usize {
        self.blocks()
            .iter()
            .zip(other.blocks().iter())
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// True iff `self ⊆ other`.
    #[inline]
    pub fn is_subset(&self, other: &VertexSet) -> bool {
        let (a, b) = (self.blocks(), other.blocks());
        if a.len() > b.len() {
            return false;
        }
        a.iter().zip(b.iter()).all(|(x, y)| x & !y == 0)
    }

    /// True iff the sets share no element.
    #[inline]
    pub fn is_disjoint(&self, other: &VertexSet) -> bool {
        self.blocks()
            .iter()
            .zip(other.blocks().iter())
            .all(|(a, b)| a & b == 0)
    }

    /// True iff the sets share at least one element.
    #[inline]
    pub fn intersects(&self, other: &VertexSet) -> bool {
        !self.is_disjoint(other)
    }

    /// Removes all elements.
    pub fn clear(&mut self) {
        self.repr = Repr::Inline {
            len: 0,
            data: [0; INLINE_BLOCKS],
        };
    }

    /// Collects into a sorted `Vec`.
    pub fn to_vec(&self) -> Vec<usize> {
        self.iter().collect()
    }
}

impl Default for VertexSet {
    fn default() -> Self {
        VertexSet::new()
    }
}

impl PartialEq for VertexSet {
    fn eq(&self, other: &Self) -> bool {
        self.blocks() == other.blocks()
    }
}

impl Eq for VertexSet {}

impl std::hash::Hash for VertexSet {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        // Hash the logical slice (length-prefixed, like `Vec`'s impl), so
        // the hash is representation-independent.
        self.blocks().hash(state);
    }
}

impl PartialOrd for VertexSet {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for VertexSet {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.blocks().cmp(other.blocks())
    }
}

impl FromIterator<usize> for VertexSet {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        VertexSet::from_iter(iter)
    }
}

impl Extend<usize> for VertexSet {
    fn extend<I: IntoIterator<Item = usize>>(&mut self, iter: I) {
        for v in iter {
            self.insert(v);
        }
    }
}

impl fmt::Debug for VertexSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, v) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = VertexSet::new();
        assert!(s.insert(5));
        assert!(!s.insert(5));
        assert!(s.contains(5));
        assert!(!s.contains(4));
        assert!(s.insert(200));
        assert_eq!(s.len(), 2);
        assert!(s.remove(200));
        assert!(!s.remove(200));
        assert_eq!(s.to_vec(), vec![5]);
    }

    #[test]
    fn normalization_makes_equality_structural() {
        let mut a = VertexSet::from_iter([1, 300]);
        a.remove(300);
        let b = VertexSet::from_iter([1]);
        assert_eq!(a, b);
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut h1 = DefaultHasher::new();
        let mut h2 = DefaultHasher::new();
        a.hash(&mut h1);
        b.hash(&mut h2);
        assert_eq!(h1.finish(), h2.finish());
    }

    #[test]
    fn heap_sets_demote_when_they_fit_inline() {
        // Crossing the inline boundary in both directions preserves
        // structural equality, ordering and hashing.
        let mut a = VertexSet::from_iter([1, 300]);
        assert!(matches!(a.repr, Repr::Heap(_)));
        a.remove(300);
        assert!(matches!(a.repr, Repr::Inline { .. }));
        let mut b = VertexSet::from_iter([0, 500]);
        b.intersect_with(&VertexSet::from_iter([0]));
        assert_eq!(b, VertexSet::from_iter([0]));
        assert!(matches!(b.repr, Repr::Inline { .. }));
        let mut c = VertexSet::from_iter([700]);
        c.clear();
        assert_eq!(c, VertexSet::new());
        assert!(c.is_empty());
    }

    #[test]
    fn set_algebra() {
        let a = VertexSet::from_iter([1, 2, 3, 64]);
        let b = VertexSet::from_iter([3, 64, 65]);
        assert_eq!(a.union(&b).to_vec(), vec![1, 2, 3, 64, 65]);
        assert_eq!(a.intersection(&b).to_vec(), vec![3, 64]);
        assert_eq!(a.intersection_len(&b), 2);
        assert_eq!(a.intersection_len(&VertexSet::new()), 0);
        assert_eq!(a.difference(&b).to_vec(), vec![1, 2]);
        assert!(a.intersection(&b).is_subset(&a));
        assert!(a.intersection(&b).is_subset(&b));
        assert!(!a.is_subset(&b));
        assert!(VertexSet::new().is_subset(&a));
    }

    #[test]
    fn set_algebra_across_the_inline_boundary() {
        let small = VertexSet::from_iter([1, 2]);
        let big = VertexSet::from_iter([2, 200]);
        assert_eq!(small.union(&big).to_vec(), vec![1, 2, 200]);
        assert_eq!(big.intersection(&small).to_vec(), vec![2]);
        assert_eq!(big.difference(&small).to_vec(), vec![200]);
        assert!(small.intersects(&big));
        assert!(!small.is_subset(&big));
        assert!(VertexSet::from_iter([2]).is_subset(&big));
        assert_eq!(small.intersection_len(&big), 1);
    }

    #[test]
    fn disjointness() {
        let a = VertexSet::from_iter([0, 2]);
        let b = VertexSet::from_iter([1, 3]);
        assert!(a.is_disjoint(&b));
        assert!(!a.intersects(&b));
        let c = VertexSet::from_iter([2, 3]);
        assert!(a.intersects(&c));
    }

    #[test]
    fn iteration_order() {
        let s = VertexSet::from_iter([129, 3, 64, 0]);
        assert_eq!(s.to_vec(), vec![0, 3, 64, 129]);
        assert_eq!(s.first(), Some(0));
        assert_eq!(VertexSet::new().first(), None);
    }

    #[test]
    fn full_universe() {
        let s = VertexSet::full(70);
        assert_eq!(s.len(), 70);
        assert!(s.contains(0) && s.contains(69) && !s.contains(70));
        let big = VertexSet::full(200);
        assert_eq!(big.len(), 200);
        assert!(big.contains(199) && !big.contains(200));
    }
}
