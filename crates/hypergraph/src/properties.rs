//! Structural hypergraph properties used by the paper's tractability
//! criteria: degree (BDP), intersection width (BIP), multi-intersection
//! width (BMIP), rank, VC-dimension (Section 6.2), and α-acyclicity.

use crate::hypergraph::Hypergraph;
use crate::vertex_set::VertexSet;
use std::collections::HashSet;

/// The degree of `H` (Section 1): the maximum number of edges any vertex
/// occurs in. Zero for edgeless hypergraphs.
pub fn degree(h: &Hypergraph) -> usize {
    (0..h.num_vertices())
        .map(|v| h.incident_edges(v).len())
        .max()
        .unwrap_or(0)
}

/// The rank of `H`: the maximum edge cardinality.
pub fn rank(h: &Hypergraph) -> usize {
    h.edges().iter().map(|e| e.len()).max().unwrap_or(0)
}

/// The intersection width (Definition 4.1): the maximum cardinality of
/// `e1 ∩ e2` over distinct edges. `H` has the `i`-BIP iff `iwidth(H) <= i`.
pub fn intersection_width(h: &Hypergraph) -> usize {
    let m = h.num_edges();
    let mut best = 0;
    for a in 0..m {
        for b in (a + 1)..m {
            let isec = h.edge(a).intersection(h.edge(b));
            best = best.max(isec.len());
        }
    }
    best
}

/// The `c`-multi-intersection width (Definition 4.2): the maximum
/// cardinality of an intersection of `c` distinct edges. `H` has the
/// `i`-bounded `c`-multi-intersection property iff this is `<= i`.
///
/// Panics if `c == 0`; for `c` larger than the number of edges the result
/// is 0 (no `c` distinct edges exist).
pub fn multi_intersection_width(h: &Hypergraph, c: usize) -> usize {
    assert!(c >= 1, "multi-intersection width needs c >= 1");
    let m = h.num_edges();
    if c > m {
        return 0;
    }
    if c == 1 {
        return rank(h);
    }
    let mut best = 0usize;
    // DFS over edge combinations with monotone pruning: intersections only
    // shrink, so any partial intersection no bigger than `best` is dead.
    fn rec(
        h: &Hypergraph,
        next: usize,
        chosen: usize,
        c: usize,
        cur: &VertexSet,
        best: &mut usize,
    ) {
        if chosen == c {
            *best = (*best).max(cur.len());
            return;
        }
        if cur.len() <= *best {
            return;
        }
        let remaining_needed = c - chosen;
        let m = h.num_edges();
        for e in next..m {
            if m - e < remaining_needed {
                break;
            }
            let isec = cur.intersection(h.edge(e));
            if isec.len() > *best || (chosen + 1 < c && !isec.is_empty()) || chosen + 1 == c {
                rec(h, e + 1, chosen + 1, c, &isec, best);
            }
        }
    }
    let all = h.all_vertices();
    rec(h, 0, 0, c, &all, &mut best);
    best
}

/// The VC-dimension (Definition 6.21): the maximum cardinality of a
/// shattered vertex set `X` (every subset of `X` arises as `X ∩ e`).
///
/// Exponential-time exact computation (the problem is hard in general); the
/// search extends shattered sets one vertex at a time, which is sound because
/// subsets of shattered sets are shattered.
pub fn vc_dimension(h: &Hypergraph) -> usize {
    let mut best = 0usize;
    let mut current = Vec::new();
    rec_vc(h, 0, &mut current, &mut best);
    best
}

fn rec_vc(h: &Hypergraph, next: usize, current: &mut Vec<usize>, best: &mut usize) {
    *best = (*best).max(current.len());
    for v in next..h.num_vertices() {
        current.push(v);
        if is_shattered(h, current) {
            rec_vc(h, v + 1, current, best);
        }
        current.pop();
    }
}

/// True iff `x` is shattered by the edges of `h` (Definition 6.21).
pub fn is_shattered(h: &Hypergraph, x: &[usize]) -> bool {
    assert!(x.len() <= 63, "shattering test limited to 63 vertices");
    let needed: u64 = 1u64 << x.len();
    let mut traces: HashSet<u64> = HashSet::with_capacity(needed as usize);
    // The empty trace requires an edge disjoint from x OR... note E|X must
    // contain the empty set too, realized by any edge avoiding all of x.
    for e in h.edges() {
        let mut mask = 0u64;
        for (i, &v) in x.iter().enumerate() {
            if e.contains(v) {
                mask |= 1 << i;
            }
        }
        traces.insert(mask);
        if traces.len() as u64 == needed {
            return true;
        }
    }
    traces.len() as u64 == needed
}

/// α-acyclicity via GYO reduction: repeatedly (a) delete vertices occurring
/// in at most one edge, (b) delete edges contained in other edges. `H` is
/// α-acyclic iff everything is eventually deleted. This is exactly the
/// `hw(H) = 1` / `ghw(H) = 1` criterion used throughout the paper.
pub fn is_alpha_acyclic(h: &Hypergraph) -> bool {
    let mut edges: Vec<VertexSet> = h.edges().to_vec();
    let mut alive: Vec<bool> = vec![true; edges.len()];
    loop {
        let mut changed = false;
        // (a) remove ear vertices: occurring in <= 1 live edge.
        let mut occurs: Vec<usize> = vec![0; h.num_vertices()];
        for (ei, e) in edges.iter().enumerate() {
            if alive[ei] {
                for v in e.iter() {
                    occurs[v] += 1;
                }
            }
        }
        for (ei, e) in edges.iter_mut().enumerate() {
            if !alive[ei] {
                continue;
            }
            let lonely: Vec<usize> = e.iter().filter(|&v| occurs[v] <= 1).collect();
            for v in lonely {
                e.remove(v);
                changed = true;
            }
            if e.is_empty() {
                alive[ei] = false;
            }
        }
        // (b) remove edges contained in another live edge.
        for i in 0..edges.len() {
            if !alive[i] {
                continue;
            }
            for j in 0..edges.len() {
                if i != j && alive[j] && edges[i].is_subset(&edges[j]) {
                    alive[i] = false;
                    changed = true;
                    break;
                }
            }
        }
        if !changed {
            break;
        }
    }
    alive.iter().all(|a| !a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn degree_and_rank() {
        let h = Hypergraph::from_edges(4, vec![vec![0, 1, 2], vec![0, 3], vec![0, 2]]);
        assert_eq!(degree(&h), 3); // v0 in all three edges
        assert_eq!(rank(&h), 3);
    }

    #[test]
    fn intersection_width_examples() {
        let tri = Hypergraph::from_edges(3, vec![vec![0, 1], vec![1, 2], vec![2, 0]]);
        assert_eq!(intersection_width(&tri), 1);
        let h = Hypergraph::from_edges(4, vec![vec![0, 1, 2], vec![1, 2, 3]]);
        assert_eq!(intersection_width(&h), 2);
        let single = Hypergraph::from_edges(2, vec![vec![0, 1]]);
        assert_eq!(intersection_width(&single), 0);
    }

    #[test]
    fn example_4_3_has_the_stated_intersection_profile() {
        // "The BIP and the 3-BMIP of H0 is 1. Starting from c=4, the c-BMIP is 0."
        let h = generators::example_4_3();
        assert_eq!(intersection_width(&h), 1);
        assert_eq!(multi_intersection_width(&h, 2), 1);
        assert_eq!(multi_intersection_width(&h, 3), 1);
        assert_eq!(multi_intersection_width(&h, 4), 0);
        assert_eq!(multi_intersection_width(&h, 5), 0);
    }

    #[test]
    fn miwidth_monotone_in_c() {
        let h = generators::clique(6);
        let mut last = usize::MAX;
        for c in 1..=4 {
            let w = multi_intersection_width(&h, c);
            assert!(w <= last);
            last = w;
        }
    }

    #[test]
    fn vc_dimension_of_small_families() {
        // A clique (graph) has VC-dimension 2 for n >= 3: any pair {a,b} is
        // shattered via edges ab, a-c, b-c, and a disjoint edge; triples are
        // not (no edge contains 3 vertices).
        let h = generators::clique(4);
        assert_eq!(vc_dimension(&h), 2);
        // A single edge shatters only singletons: {v} has traces {v} but the
        // empty trace requires an edge avoiding v.
        let single = Hypergraph::from_edges(3, vec![vec![0, 1, 2]]);
        assert_eq!(vc_dimension(&single), 0);
    }

    #[test]
    fn lemma_6_24_family_has_small_vc_but_large_miwidth() {
        // H_n with edges V \ {v_i} has vc < 2 and c-miwidth >= n - c.
        for n in [4usize, 6, 8] {
            let h = generators::lemma_6_24_family(n);
            assert!(vc_dimension(&h) < 2, "n = {n}");
            for c in 1..=3usize {
                assert!(multi_intersection_width(&h, c) >= n - c, "n={n}, c={c}");
            }
        }
    }

    #[test]
    fn shattering_matches_definition() {
        let h = Hypergraph::from_edges(3, vec![vec![0], vec![1], vec![0, 1], vec![2]]);
        assert!(is_shattered(&h, &[0, 1])); // traces: {}, {0}, {1}, {0,1}
        assert!(!is_shattered(&h, &[0, 2])); // {0,2} never co-occur
    }

    #[test]
    fn acyclicity_classic_cases() {
        // A path is acyclic, a cycle is not, a triangle graph is not,
        // but a triangle *covered by one 3-edge* is.
        assert!(is_alpha_acyclic(&generators::path(5)));
        assert!(!is_alpha_acyclic(&generators::cycle(4)));
        assert!(!is_alpha_acyclic(&generators::cycle(3)));
        let covered =
            Hypergraph::from_edges(3, vec![vec![0, 1], vec![1, 2], vec![0, 2], vec![0, 1, 2]]);
        assert!(is_alpha_acyclic(&covered));
        // α-acyclicity is not closed under subhypergraphs — the classic
        // example: big edge plus a cycle inside it.
        assert!(is_alpha_acyclic(&generators::star(5)));
    }
}
