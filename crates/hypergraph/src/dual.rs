//! Dual and reduced hypergraphs (Section 5).
//!
//! The bounded-support theorem (Corollary 5.5) is proved through the duality
//! `rho*(H) = tau*(H^d)`; equality needs the "reduced" normal form of the
//! paper: no isolated vertices, no empty edges, no two vertices of the same
//! edge-type, no duplicate edges. Then `(H^d)^d = H` up to renaming.

#![allow(clippy::needless_range_loop)]

use crate::hypergraph::Hypergraph;
use crate::vertex_set::VertexSet;
use std::collections::HashMap;

/// The dual hypergraph `H^d`: one vertex per edge of `H`, and for every
/// vertex `v` of `H` one edge `{e | v ∈ e}`.
///
/// Panics if `H` has isolated vertices (their dual edge would be empty).
pub fn dual(h: &Hypergraph) -> Hypergraph {
    assert!(
        !h.has_isolated_vertices(),
        "dual undefined for hypergraphs with isolated vertices"
    );
    let vertex_names: Vec<String> = (0..h.num_edges())
        .map(|e| h.edge_name(e).to_string())
        .collect();
    let edge_names: Vec<String> = (0..h.num_vertices())
        .map(|v| h.vertex_name(v).to_string())
        .collect();
    let edges: Vec<Vec<usize>> = (0..h.num_vertices())
        .map(|v| h.incident_edges(v).to_vec())
        .collect();
    Hypergraph::from_parts(vertex_names, edge_names, edges)
}

/// Result of reducing a hypergraph (assumptions (1)–(4) of Section 5).
#[derive(Clone, Debug)]
pub struct Reduced {
    /// The reduced hypergraph.
    pub hypergraph: Hypergraph,
    /// For every original vertex, its representative vertex in the reduction.
    pub vertex_map: Vec<usize>,
    /// For every original edge, its representative edge in the reduction.
    pub edge_map: Vec<usize>,
}

/// Fuses vertices with identical edge-type and removes duplicate edges.
///
/// Panics if `h` has isolated vertices (assumption (1)); empty edges are
/// impossible by construction (assumption (2)).
pub fn reduce(h: &Hypergraph) -> Reduced {
    assert!(
        !h.has_isolated_vertices(),
        "reduce requires no isolated vertices"
    );
    // Group vertices by edge-type.
    let mut type_repr: HashMap<Vec<usize>, usize> = HashMap::new();
    let mut vertex_map = vec![0usize; h.num_vertices()];
    let mut new_vertex_names: Vec<String> = Vec::new();
    for v in 0..h.num_vertices() {
        let ty = h.incident_edges(v).to_vec();
        let next = new_vertex_names.len();
        let repr = *type_repr.entry(ty).or_insert(next);
        if repr == next {
            new_vertex_names.push(h.vertex_name(v).to_string());
        }
        vertex_map[v] = repr;
    }
    // Rewrite edges over representatives and deduplicate.
    let mut edge_repr: HashMap<VertexSet, usize> = HashMap::new();
    let mut new_edges: Vec<Vec<usize>> = Vec::new();
    let mut new_edge_names: Vec<String> = Vec::new();
    let mut edge_map = vec![0usize; h.num_edges()];
    for e in 0..h.num_edges() {
        let rewritten: VertexSet = h.edge(e).iter().map(|v| vertex_map[v]).collect();
        let next = new_edges.len();
        let repr = *edge_repr.entry(rewritten.clone()).or_insert(next);
        if repr == next {
            new_edges.push(rewritten.to_vec());
            new_edge_names.push(h.edge_name(e).to_string());
        }
        edge_map[e] = repr;
    }
    Reduced {
        hypergraph: Hypergraph::from_parts(new_vertex_names, new_edge_names, new_edges),
        vertex_map,
        edge_map,
    }
}

/// True iff `h` is reduced: no isolated vertices, no two vertices with the
/// same edge-type, no duplicate edges.
pub fn is_reduced(h: &Hypergraph) -> bool {
    if h.has_isolated_vertices() {
        return false;
    }
    let r = reduce(h);
    r.hypergraph.num_vertices() == h.num_vertices() && r.hypergraph.num_edges() == h.num_edges()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn dual_swaps_counts() {
        let h = generators::cycle(5);
        let d = dual(&h);
        assert_eq!(d.num_vertices(), h.num_edges());
        assert_eq!(d.num_edges(), h.num_vertices());
    }

    #[test]
    fn double_dual_of_reduced_is_identity() {
        // A cycle is reduced; H^dd should equal H up to names/order.
        let h = generators::cycle(6);
        assert!(is_reduced(&h));
        let dd = dual(&dual(&h));
        assert_eq!(dd.num_vertices(), h.num_vertices());
        assert_eq!(dd.num_edges(), h.num_edges());
        // Compare edge sets as unordered collections of vertex sets.
        let mut a: Vec<Vec<usize>> = h.edges().iter().map(|e| e.to_vec()).collect();
        let mut b: Vec<Vec<usize>> = dd.edges().iter().map(|e| e.to_vec()).collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn reduce_fuses_same_type_vertices() {
        // Section 5's example: V = {a,b,c}, E = {{a,b,c}} reduces to a
        // single vertex with a single edge.
        let h = Hypergraph::from_edges(3, vec![vec![0, 1, 2]]);
        let r = reduce(&h);
        assert_eq!(r.hypergraph.num_vertices(), 1);
        assert_eq!(r.hypergraph.num_edges(), 1);
        assert_eq!(r.vertex_map, vec![0, 0, 0]);
        assert!(!is_reduced(&h));
    }

    #[test]
    fn reduce_deduplicates_edges() {
        let h = Hypergraph::from_edges(3, vec![vec![0, 1], vec![0, 1], vec![1, 2]]);
        let r = reduce(&h);
        assert_eq!(r.hypergraph.num_edges(), 2);
        assert_eq!(r.edge_map[0], r.edge_map[1]);
    }

    #[test]
    fn dual_of_section_5_example() {
        // H0: V(H0)={a,b,c}, E={e={a,b,c}}. H0^d has one vertex `e` and one
        // edge {e}; (H0^d)^d is NOT H0 — the paper's point about assumptions.
        let h = Hypergraph::from_edges(3, vec![vec![0, 1, 2]]);
        let d = dual(&h);
        assert_eq!(d.num_vertices(), 1);
        assert_eq!(d.num_edges(), 3); // three duplicate edges {e}
        let dd = dual(&reduce(&d).hypergraph);
        assert_eq!(dd.num_vertices(), 1);
        assert_ne!(dd.num_vertices(), h.num_vertices());
    }
}
