//! Parser for the HyperBench / `detkdecomp` text format:
//!
//! ```text
//! edge1(a, b, c),
//! edge2(c, d),
//! edge3(d, e).
//! ```
//!
//! Edge separators may be `,` or newlines; an optional trailing `.` ends
//! the list. The parser tolerates the variants found across the public
//! HyperBench corpus referenced by the paper (\[23\]): comment lines and
//! inline comments (`%`, `#`, `//` to end of line), blank lines (including
//! whitespace-only ones), trailing whitespace and CRLF line endings.
//! Comment markers are reserved characters — they cannot occur inside
//! vertex or edge names.

use crate::hypergraph::Hypergraph;
use std::collections::HashMap;

/// A parse failure with a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Explanation of the failure.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "hypergraph parse error: {}", self.message)
    }
}

impl std::error::Error for ParseError {}

fn err<T>(message: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError {
        message: message.into(),
    })
}

/// Parses a hypergraph from HyperBench syntax.
pub fn parse(input: &str) -> Result<Hypergraph, ParseError> {
    let mut vertex_ids: HashMap<String, usize> = HashMap::new();
    let mut vertex_names: Vec<String> = Vec::new();
    let mut edge_names: Vec<String> = Vec::new();
    let mut edges: Vec<Vec<usize>> = Vec::new();

    // Strip comments (whole-line or inline; `%` is HyperBench's marker,
    // `#` and `//` occur in converted corpora) and normalize line endings;
    // blank and whitespace-only lines fall out via separator trimming.
    let cleaned: String = input
        .lines()
        .map(|l| {
            let mut line = l;
            for marker in ["%", "#", "//"] {
                if let Some(i) = line.find(marker) {
                    line = &line[..i];
                }
            }
            line.trim_end()
        })
        .collect::<Vec<_>>()
        .join("\n");

    let mut rest = cleaned.trim();
    while !rest.is_empty() {
        // strip leading separators
        rest = rest.trim_start_matches([',', '\n', '\r', ' ', '\t']);
        if rest.is_empty() || rest == "." {
            break;
        }
        let open = match rest.find('(') {
            Some(i) => i,
            None => return err(format!("expected '(' in {rest:?}")),
        };
        let name = rest[..open].trim();
        if name.is_empty() {
            return err("edge with empty name");
        }
        let close = match rest[open..].find(')') {
            Some(i) => open + i,
            None => return err(format!("unclosed '(' for edge {name:?}")),
        };
        let args = &rest[open + 1..close];
        let mut edge = Vec::new();
        for raw in args.split(',') {
            let v = raw.trim();
            if v.is_empty() {
                return err(format!("empty vertex name in edge {name:?}"));
            }
            let next = vertex_names.len();
            let id = *vertex_ids.entry(v.to_string()).or_insert(next);
            if id == next {
                vertex_names.push(v.to_string());
            }
            if !edge.contains(&id) {
                edge.push(id);
            }
        }
        if edge.is_empty() {
            return err(format!("edge {name:?} has no vertices"));
        }
        if edge_names.iter().any(|n| n == name) {
            return err(format!("duplicate edge name {name:?}"));
        }
        edge_names.push(name.to_string());
        edges.push(edge);
        rest = rest[close + 1..].trim_start();
        if let Some(stripped) = rest.strip_prefix('.') {
            rest = stripped.trim_start();
            if !rest.is_empty() {
                return err("content after final '.'");
            }
            break;
        }
    }
    if edges.is_empty() {
        return err("no edges found");
    }
    Ok(Hypergraph::from_parts(vertex_names, edge_names, edges))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_basic_example() {
        let h = parse("r1(a,b,c),\nr2(c,d),\nr3(d,a).").unwrap();
        assert_eq!(h.num_vertices(), 4);
        assert_eq!(h.num_edges(), 3);
        assert_eq!(h.edge_by_name("r2"), Some(1));
        assert_eq!(h.vertex_by_name("d"), Some(3));
    }

    #[test]
    fn round_trips_display() {
        let original = "q1(x,y),\nq2(y,z)";
        let h = parse(original).unwrap();
        let reparsed = parse(&h.to_string()).unwrap();
        assert_eq!(h, reparsed);
    }

    #[test]
    fn ignores_comments_and_whitespace() {
        let h = parse("% a comment\n  r1( a , b ) ,\n% another\nr2(b,c)\n").unwrap();
        assert_eq!(h.num_edges(), 2);
        assert_eq!(h.num_vertices(), 3);
    }

    #[test]
    fn deduplicates_repeated_vertices_in_an_edge() {
        let h = parse("r1(a,a,b)").unwrap();
        assert_eq!(h.edge(0).len(), 2);
    }

    #[test]
    fn hash_comment_lines_are_ignored() {
        let h = parse("# generated by a converter\nr1(a,b),\n# midway\nr2(b,c)").unwrap();
        assert_eq!(h.num_edges(), 2);
        assert_eq!(h.num_vertices(), 3);
    }

    #[test]
    fn slash_slash_comment_lines_are_ignored() {
        let h = parse("// header\nr1(a,b),\nr2(b,c)\n// trailer").unwrap();
        assert_eq!(h.num_edges(), 2);
    }

    #[test]
    fn inline_comments_are_stripped() {
        let h = parse("r1(a,b), % first relation\nr2(b,c) // second\nr3(c,a) # third").unwrap();
        assert_eq!(h.num_edges(), 3);
        assert_eq!(h.num_vertices(), 3);
    }

    #[test]
    fn blank_and_whitespace_only_lines_are_ignored() {
        let h = parse("\nr1(a,b),\n\n   \n\t\nr2(b,c)\n\n").unwrap();
        assert_eq!(h.num_edges(), 2);
    }

    #[test]
    fn trailing_whitespace_is_tolerated() {
        let h = parse("r1(a,b),   \nr2(b,c).   \n   ").unwrap();
        assert_eq!(h.num_edges(), 2);
    }

    #[test]
    fn crlf_line_endings_are_tolerated() {
        let h = parse("r1(a,b),\r\nr2(b,c)\r\n").unwrap();
        assert_eq!(h.num_edges(), 2);
        assert_eq!(h.vertex_by_name("b"), Some(1), "no \\r glued onto names");
    }

    #[test]
    fn comment_after_final_period_is_tolerated() {
        let h = parse("r1(a,b).\n% done\n").unwrap();
        assert_eq!(h.num_edges(), 1);
    }

    #[test]
    fn rejects_malformed_inputs() {
        assert!(parse("").is_err());
        assert!(parse("r1").is_err());
        assert!(parse("r1(").is_err());
        assert!(parse("r1()").is_err());
        assert!(parse("r1(a), r1(b)").is_err());
        assert!(parse("r1(a). trailing").is_err());
    }
}
