//! The hypergraph structure of Section 2.1.

use crate::vertex_set::VertexSet;
use std::collections::HashMap;
use std::fmt;

/// A hypergraph `H = (V(H), E(H))` with named vertices and edges.
///
/// Vertices and edges are addressed by dense indices; names are kept for
/// display and parsing. Per the paper's convention (Section 2.1) hypergraphs
/// should have no isolated vertices; [`Hypergraph::has_isolated_vertices`]
/// reports violations and the algorithm crates reject such inputs.
#[derive(Clone, PartialEq, Eq)]
pub struct Hypergraph {
    vertex_names: Vec<String>,
    edge_names: Vec<String>,
    edges: Vec<VertexSet>,
    /// `incidence[v]` = indices of edges containing `v`.
    incidence: Vec<Vec<usize>>,
}

impl Hypergraph {
    /// Builds a hypergraph over `num_vertices` vertices with default names
    /// (`v0`, `v1`, ...; edges `e0`, `e1`, ...).
    pub fn from_edges(num_vertices: usize, edges: Vec<Vec<usize>>) -> Self {
        let vertex_names = (0..num_vertices).map(|i| format!("v{i}")).collect();
        let edge_names = (0..edges.len()).map(|i| format!("e{i}")).collect();
        Self::from_parts(vertex_names, edge_names, edges)
    }

    /// Builds a hypergraph with explicit vertex and edge names.
    ///
    /// Panics if an edge references an out-of-range vertex or is empty.
    pub fn from_parts(
        vertex_names: Vec<String>,
        edge_names: Vec<String>,
        edges: Vec<Vec<usize>>,
    ) -> Self {
        assert_eq!(edge_names.len(), edges.len());
        let n = vertex_names.len();
        let mut sets = Vec::with_capacity(edges.len());
        let mut incidence = vec![Vec::new(); n];
        for (ei, edge) in edges.iter().enumerate() {
            assert!(!edge.is_empty(), "edge {ei} is empty");
            let mut s = VertexSet::new();
            for &v in edge {
                assert!(v < n, "edge {ei} references vertex {v} >= {n}");
                if s.insert(v) {
                    incidence[v].push(ei);
                }
            }
            sets.push(s);
        }
        Hypergraph {
            vertex_names,
            edge_names,
            edges: sets,
            incidence,
        }
    }

    /// Number of vertices `|V(H)|`.
    pub fn num_vertices(&self) -> usize {
        self.vertex_names.len()
    }

    /// Number of edges `|E(H)|`.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Total size (sum of edge cardinalities) — the `n` used by the paper's
    /// logarithmic bounds.
    pub fn size(&self) -> usize {
        self.edges.iter().map(|e| e.len()).sum()
    }

    /// The vertex set of edge `e`.
    pub fn edge(&self, e: usize) -> &VertexSet {
        &self.edges[e]
    }

    /// All edges as vertex sets.
    pub fn edges(&self) -> &[VertexSet] {
        &self.edges
    }

    /// Name of vertex `v`.
    pub fn vertex_name(&self, v: usize) -> &str {
        &self.vertex_names[v]
    }

    /// Name of edge `e`.
    pub fn edge_name(&self, e: usize) -> &str {
        &self.edge_names[e]
    }

    /// Index of the vertex with the given name, if any.
    pub fn vertex_by_name(&self, name: &str) -> Option<usize> {
        self.vertex_names.iter().position(|n| n == name)
    }

    /// Index of the edge with the given name, if any.
    pub fn edge_by_name(&self, name: &str) -> Option<usize> {
        self.edge_names.iter().position(|n| n == name)
    }

    /// Indices of edges containing vertex `v`.
    pub fn incident_edges(&self, v: usize) -> &[usize] {
        &self.incidence[v]
    }

    /// `edges(C)` of the paper: edges with non-empty intersection with `C`.
    pub fn edges_intersecting(&self, c: &VertexSet) -> Vec<usize> {
        (0..self.num_edges())
            .filter(|&e| self.edges[e].intersects(c))
            .collect()
    }

    /// The full vertex set `V(H)`.
    pub fn all_vertices(&self) -> VertexSet {
        VertexSet::full(self.num_vertices())
    }

    /// `⋃ S`: the union of the edges in `S` (by index).
    pub fn union_of_edges<I: IntoIterator<Item = usize>>(&self, s: I) -> VertexSet {
        let mut out = VertexSet::new();
        for e in s {
            out.union_with(&self.edges[e]);
        }
        out
    }

    /// `⋂ S`: the intersection of the edges in `S` (by index).
    /// Returns `V(H)` when `S` is empty.
    pub fn intersection_of_edges<I: IntoIterator<Item = usize>>(&self, s: I) -> VertexSet {
        let mut iter = s.into_iter();
        let mut out = match iter.next() {
            Some(e) => self.edges[e].clone(),
            None => return self.all_vertices(),
        };
        for e in iter {
            out.intersect_with(&self.edges[e]);
        }
        out
    }

    /// True iff some vertex belongs to no edge.
    pub fn has_isolated_vertices(&self) -> bool {
        self.incidence.iter().any(|inc| inc.is_empty())
    }

    /// Appends a new edge (used by subedge augmentation); returns its index.
    pub fn add_edge(&mut self, name: String, vertices: &VertexSet) -> usize {
        assert!(!vertices.is_empty(), "cannot add an empty edge");
        let ei = self.edges.len();
        for v in vertices.iter() {
            assert!(v < self.num_vertices());
            self.incidence[v].push(ei);
        }
        self.edges.push(vertices.clone());
        self.edge_names.push(name);
        ei
    }

    /// The vertex-induced subhypergraph `H[W]` of Lemma 2.7: vertices are
    /// renumbered densely; each original edge is restricted to `W` and kept
    /// if non-empty (duplicates are preserved so edge indices stay mappable).
    ///
    /// Returns the subhypergraph together with the dense renumbering
    /// (`old vertex -> new vertex`) and, for each new edge, its originator
    /// edge index in `self`.
    pub fn induced(&self, w: &VertexSet) -> (Hypergraph, HashMap<usize, usize>, Vec<usize>) {
        let mut renumber = HashMap::new();
        let mut vertex_names = Vec::new();
        for v in w.iter() {
            renumber.insert(v, vertex_names.len());
            vertex_names.push(self.vertex_names[v].clone());
        }
        let mut edges = Vec::new();
        let mut edge_names = Vec::new();
        let mut originators = Vec::new();
        for (ei, e) in self.edges.iter().enumerate() {
            let restricted: Vec<usize> = e.iter().filter(|v| w.contains(*v)).collect();
            if restricted.is_empty() {
                continue;
            }
            edges.push(restricted.iter().map(|v| renumber[v]).collect());
            edge_names.push(self.edge_names[ei].clone());
            originators.push(ei);
        }
        (
            Hypergraph::from_parts(vertex_names, edge_names, edges),
            renumber,
            originators,
        )
    }

    /// The primal (Gaifman) graph: `adj[v]` = vertices sharing an edge with
    /// `v` (excluding `v` itself).
    pub fn primal_graph(&self) -> Vec<VertexSet> {
        let mut adj = vec![VertexSet::new(); self.num_vertices()];
        for e in &self.edges {
            for v in e.iter() {
                adj[v].union_with(e);
            }
        }
        for (v, a) in adj.iter_mut().enumerate() {
            a.remove(v);
        }
        adj
    }
}

impl fmt::Debug for Hypergraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Hypergraph(|V|={}, |E|={})",
            self.num_vertices(),
            self.num_edges()
        )?;
        for (i, e) in self.edges.iter().enumerate() {
            let members: Vec<&str> = e.iter().map(|v| self.vertex_name(v)).collect();
            writeln!(f, "  {}({})", self.edge_name(i), members.join(","))?;
        }
        Ok(())
    }
}

impl fmt::Display for Hypergraph {
    /// HyperBench / `detkdecomp` syntax: one `name(v1,v2,...)` per line with
    /// trailing commas except on the last line.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, e) in self.edges.iter().enumerate() {
            let members: Vec<&str> = e.iter().map(|v| self.vertex_name(v)).collect();
            let sep = if i + 1 == self.edges.len() { "" } else { "," };
            writeln!(f, "{}({}){}", self.edge_name(i), members.join(","), sep)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Hypergraph {
        Hypergraph::from_edges(3, vec![vec![0, 1], vec![1, 2], vec![2, 0]])
    }

    #[test]
    fn basic_accessors() {
        let h = triangle();
        assert_eq!(h.num_vertices(), 3);
        assert_eq!(h.num_edges(), 3);
        assert_eq!(h.size(), 6);
        assert_eq!(h.edge(0).to_vec(), vec![0, 1]);
        assert_eq!(h.incident_edges(1), &[0, 1]);
        assert!(!h.has_isolated_vertices());
        assert_eq!(h.vertex_by_name("v2"), Some(2));
        assert_eq!(h.edge_by_name("e1"), Some(1));
    }

    #[test]
    fn unions_and_intersections_of_edge_sets() {
        let h = triangle();
        assert_eq!(h.union_of_edges([0, 1]).to_vec(), vec![0, 1, 2]);
        assert_eq!(h.intersection_of_edges([0, 1]).to_vec(), vec![1]);
        assert_eq!(h.intersection_of_edges([]).len(), 3);
    }

    #[test]
    fn edges_intersecting_matches_definition() {
        let h = triangle();
        let c = VertexSet::from_iter([0]);
        assert_eq!(h.edges_intersecting(&c), vec![0, 2]);
    }

    #[test]
    fn induced_subhypergraph() {
        let h = triangle();
        let w = VertexSet::from_iter([0, 1]);
        let (sub, renumber, orig) = h.induced(&w);
        assert_eq!(sub.num_vertices(), 2);
        // e0 = {0,1} survives whole; e1 = {1}, e2 = {0} shrink to singletons.
        assert_eq!(sub.num_edges(), 3);
        assert_eq!(orig, vec![0, 1, 2]);
        assert_eq!(renumber[&0], 0);
        assert_eq!(renumber[&1], 1);
        assert_eq!(sub.edge(0).len(), 2);
    }

    #[test]
    fn isolated_vertices_detected() {
        let h = Hypergraph::from_edges(3, vec![vec![0, 1]]);
        assert!(h.has_isolated_vertices());
    }

    #[test]
    fn primal_graph_of_triangle() {
        let h = triangle();
        let adj = h.primal_graph();
        assert_eq!(adj[0].to_vec(), vec![1, 2]);
        assert_eq!(adj[1].to_vec(), vec![0, 2]);
    }

    #[test]
    fn add_edge_updates_incidence() {
        let mut h = triangle();
        let e = h.add_edge("sub".into(), &VertexSet::from_iter([0]));
        assert_eq!(e, 3);
        assert_eq!(h.incident_edges(0), &[0, 2, 3]);
        assert_eq!(h.edge_by_name("sub"), Some(3));
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_edges_rejected() {
        Hypergraph::from_edges(2, vec![vec![]]);
    }

    #[test]
    fn display_round_trip_format() {
        let h = triangle();
        let text = h.to_string();
        assert!(text.starts_with("e0(v0,v1),"));
        assert!(text.trim_end().ends_with("e2(v0,v2)"));
    }
}
