//! A tiny deterministic multiply-rotate hasher for the search hot path.
//!
//! The width searches hash [`crate::VertexSet`]s millions of times —
//! candidate dedup sets, the engine's state memo, the sharded price
//! caches — and the standard library's DoS-resistant SipHash is the
//! wrong trade there: the keys are machine words produced by the search
//! itself, not attacker-controlled input. This is the multiply-rotate
//! scheme of rustc's `FxHasher` (public domain algorithm): one rotate,
//! one xor and one multiply per 64-bit word, fixed seed, so hashes are
//! deterministic across runs and thread counts (membership queries only
//! — no iteration-order dependence escapes into search results).

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplier with a good bit-dispersion pattern (the golden-ratio
/// constant used by rustc's hasher).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The hasher state: a single 64-bit accumulator.
#[derive(Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Cold path: the hot keys (block slices, integers) arrive through
        // the word-sized writes below.
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add(i);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.add(i as u64);
        self.add((i >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add(i as u64);
    }

    #[inline]
    fn write_i64(&mut self, i: i64) {
        self.add(i as u64);
    }
}

/// `BuildHasher` producing [`FxHasher`]s (fixed seed, zero state).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed through [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` hashed through [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::VertexSet;

    #[test]
    fn deterministic_and_representation_independent() {
        use std::hash::BuildHasher;
        let build = FxBuildHasher::default();
        let hash = |s: &VertexSet| build.hash_one(s);
        let mut a = VertexSet::from_iter([1, 300]);
        a.remove(300);
        let b = VertexSet::from_iter([1]);
        assert_eq!(hash(&a), hash(&b));
        assert_ne!(hash(&b), hash(&VertexSet::from_iter([2])));
    }

    #[test]
    fn maps_and_sets_work() {
        let mut set: FxHashSet<VertexSet> = FxHashSet::default();
        assert!(set.insert(VertexSet::from_iter([0, 5])));
        assert!(!set.insert(VertexSet::from_iter([0, 5])));
        let mut map: FxHashMap<u64, usize> = FxHashMap::default();
        map.insert(7, 1);
        assert_eq!(map.get(&7), Some(&1));
    }

    #[test]
    fn byte_stream_matches_word_stream_layout() {
        // `write` folds whole 8-byte words like `write_u64` so mixed-width
        // keys still disperse; just check it runs and differs by content.
        let mut h1 = FxHasher::default();
        h1.write(b"abcdefghij");
        let mut h2 = FxHasher::default();
        h2.write(b"abcdefghik");
        assert_ne!(h1.finish(), h2.finish());
    }
}
