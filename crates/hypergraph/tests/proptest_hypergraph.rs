//! Property-based structural invariants for hypergraphs.

use hypergraph::{components, dual, generators, properties, Hypergraph, VertexSet};
use proptest::prelude::*;

fn arb_hypergraph() -> impl Strategy<Value = Hypergraph> {
    (4usize..12, 0u64..500).prop_map(|(n, seed)| match seed % 3 {
        0 => generators::random_bip(n, n.saturating_sub(2).max(2), 2, 3, seed),
        1 => generators::random_bounded_degree(n, n.saturating_sub(2).max(2), 3, 4, seed),
        _ => generators::random_acyclic(n.max(2), 3, seed),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn sauer_shelah_vc_bound(h in arb_hypergraph()) {
        // A shattered set of size d needs 2^d distinct traces, hence
        // vc(H) <= log2(|E(H)|) (+1 would even be loose here because the
        // empty trace also needs an edge... log2(m) suffices as a bound
        // since traces are produced by edges only).
        prop_assume!(h.num_vertices() <= 12);
        let vc = properties::vc_dimension(&h);
        prop_assert!(2usize.pow(vc as u32) <= h.num_edges().max(1) + 1);
    }

    #[test]
    fn miwidth_is_antitone_in_c(h in arb_hypergraph()) {
        let mut last = properties::rank(&h);
        for c in 1..=4usize {
            let w = properties::multi_intersection_width(&h, c);
            prop_assert!(w <= last, "c={} width {} > previous {}", c, w, last);
            last = w;
        }
    }

    #[test]
    fn degree_bounds_nonempty_intersections(h in arb_hypergraph()) {
        // Any d+1 distinct edges intersect emptily (Corollary 4.14's logic).
        let d = properties::degree(&h);
        prop_assert_eq!(properties::multi_intersection_width(&h, d + 1), 0);
    }

    #[test]
    fn double_dual_preserves_reduced_hypergraphs(h in arb_hypergraph()) {
        prop_assume!(!h.has_isolated_vertices());
        let reduced = dual::reduce(&h).hypergraph;
        let dd = dual::dual(&dual::dual(&reduced));
        prop_assert_eq!(dd.num_vertices(), reduced.num_vertices());
        prop_assert_eq!(dd.num_edges(), reduced.num_edges());
        let mut a: Vec<Vec<usize>> = reduced.edges().iter().map(|e| e.to_vec()).collect();
        let mut b: Vec<Vec<usize>> = dd.edges().iter().map(|e| e.to_vec()).collect();
        a.sort();
        b.sort();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn component_of_agrees_with_components(h in arb_hypergraph(), pick in 0usize..12) {
        let sep = VertexSet::new();
        let comps = components::components(&h, &sep);
        let v = pick % h.num_vertices();
        let via_single = components::component_of(&h, &sep, v);
        let via_all = comps.iter().find(|c| c.contains(v)).unwrap();
        prop_assert_eq!(&via_single, via_all);
    }

    #[test]
    fn paths_exist_exactly_within_components(h in arb_hypergraph(), s in 0u64..32) {
        let sep: VertexSet = (0..h.num_vertices()).filter(|v| (s >> (v % 5)) & 1 == 1).collect();
        let comps = components::components(&h, &sep);
        for c in comps.iter().take(2) {
            let vs = c.to_vec();
            if vs.len() >= 2 {
                let p = components::find_path(&h, &sep, vs[0], vs[1]);
                prop_assert!(p.is_some(), "path within a component must exist");
                let p = p.unwrap();
                // Witness validity: consecutive vertices share the edge, all
                // outside the separator.
                for w in p.vertices.windows(2).zip(p.edges.iter()) {
                    let (pair, &e) = w;
                    prop_assert!(h.edge(e).contains(pair[0]));
                    prop_assert!(h.edge(e).contains(pair[1]));
                    prop_assert!(!sep.contains(pair[0]) && !sep.contains(pair[1]));
                }
            }
        }
        // And across different components no path exists.
        if comps.len() >= 2 {
            let a = comps[0].first().unwrap();
            let b = comps[1].first().unwrap();
            prop_assert!(components::find_path(&h, &sep, a, b).is_none());
        }
    }

    #[test]
    fn induced_subhypergraph_edges_are_restrictions(h in arb_hypergraph(), drop in 0usize..12) {
        let mut w = h.all_vertices();
        if h.num_vertices() > 1 {
            w.remove(drop % h.num_vertices());
        }
        let (sub, renumber, originators) = h.induced(&w);
        for (new_e, &orig) in originators.iter().enumerate() {
            let expected: VertexSet = h
                .edge(orig)
                .iter()
                .filter(|v| w.contains(*v))
                .map(|v| renumber[&v])
                .collect();
            prop_assert_eq!(sub.edge(new_e), &expected);
        }
    }

    #[test]
    fn alpha_acyclic_families_stay_acyclic_under_edge_removal_of_leaves(seed in 0u64..100) {
        // GYO-stability smoke test: random acyclic instances are acyclic.
        let h = generators::random_acyclic(6, 3, seed);
        prop_assert!(properties::is_alpha_acyclic(&h));
    }
}
