//! Exact arbitrary-precision arithmetic for hypertree decomposition widths.
//!
//! Fractional hypertree widths are rational numbers and the paper's
//! correctness arguments (e.g. Lemmas 3.5/3.6) rely on exact ties between
//! fractional edge weights, so every width and every LP pivot in this
//! workspace is computed over [`Rational`] — never floating point.
//!
//! [`Rational`] is two-tier: values whose reduced numerator and
//! denominator fit an `i64` live inline (no heap traffic — the entire LP
//! pricing hot path stays in this tier) and promote to [`BigInt`] pairs
//! only beyond that; the representation is canonical in both directions,
//! so `Eq`/`Hash` stay structural. `Rational::as_small` exposes the
//! inline pair for division-free cross-multiplied comparisons (the width
//! searches' admission gates). See `rational` module docs for the
//! invariants.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bigint;
mod rational;

pub use bigint::BigInt;
pub use rational::Rational;

/// Convenience constructor: the rational `p/q`.
///
/// Panics if `q == 0`.
pub fn rat(p: i64, q: i64) -> Rational {
    Rational::from_frac(p, q)
}
