//! Exact rational numbers over [`BigInt`].
//!
//! Values are kept normalized: the denominator is strictly positive and
//! `gcd(|num|, den) == 1` (zero is `0/1`), so structural equality and hashing
//! coincide with numeric equality.

use crate::bigint::BigInt;
use std::cmp::Ordering;
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};
use std::str::FromStr;

/// An exact rational number.
///
/// This is the width type of the library: fractional hypertree widths are
/// genuinely rational (e.g. `fhw(C3) = 3/2`, `rho*` of Example 5.1 is
/// `2 - 1/n`) and the NP-hardness analysis of the paper depends on exact
/// ties between fractional weights, so floating point is not an option.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Rational {
    num: BigInt,
    den: BigInt,
}

impl Rational {
    /// Builds a rational from numerator and denominator, normalizing.
    ///
    /// Panics if `den` is zero.
    pub fn new(num: BigInt, den: BigInt) -> Self {
        assert!(!den.is_zero(), "rational with zero denominator");
        let (num, den) = if den.is_negative() {
            (-num, -den)
        } else {
            (num, den)
        };
        let g = num.gcd(&den);
        if g.is_zero() || g == BigInt::one() {
            Rational { num, den }
        } else {
            Rational {
                num: &num / &g,
                den: &den / &g,
            }
        }
    }

    /// `p/q` from machine integers. Panics if `q == 0`.
    pub fn from_frac(p: i64, q: i64) -> Self {
        Rational::new(BigInt::from(p), BigInt::from(q))
    }

    /// The integer `v` as a rational.
    pub fn from_int(v: i64) -> Self {
        Rational {
            num: BigInt::from(v),
            den: BigInt::one(),
        }
    }

    /// Zero.
    pub fn zero() -> Self {
        Rational::from_int(0)
    }

    /// One.
    pub fn one() -> Self {
        Rational::from_int(1)
    }

    /// Numerator (sign-carrying).
    pub fn numer(&self) -> &BigInt {
        &self.num
    }

    /// Denominator (always positive).
    pub fn denom(&self) -> &BigInt {
        &self.den
    }

    /// True iff the value is zero.
    pub fn is_zero(&self) -> bool {
        self.num.is_zero()
    }

    /// True iff the value is strictly negative.
    pub fn is_negative(&self) -> bool {
        self.num.is_negative()
    }

    /// True iff the value is strictly positive.
    pub fn is_positive(&self) -> bool {
        self.num.is_positive()
    }

    /// True iff the value is an integer.
    pub fn is_integer(&self) -> bool {
        self.den == BigInt::one()
    }

    /// Absolute value.
    pub fn abs(&self) -> Rational {
        Rational {
            num: self.num.abs(),
            den: self.den.clone(),
        }
    }

    /// Multiplicative inverse. Panics on zero.
    pub fn recip(&self) -> Rational {
        assert!(!self.is_zero(), "reciprocal of zero");
        Rational::new(self.den.clone(), self.num.clone())
    }

    /// Largest integer `<= self`.
    pub fn floor(&self) -> BigInt {
        let (q, r) = self.num.div_rem(&self.den);
        if self.num.is_negative() && !r.is_zero() {
            q - BigInt::one()
        } else {
            q
        }
    }

    /// Smallest integer `>= self`.
    pub fn ceil(&self) -> BigInt {
        -((-self).floor())
    }

    /// Approximate `f64` value (for reporting only — never for decisions).
    pub fn to_f64(&self) -> f64 {
        self.num.to_f64() / self.den.to_f64()
    }

    /// The smaller of two rationals.
    pub fn min(self, other: Rational) -> Rational {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// The larger of two rationals.
    pub fn max(self, other: Rational) -> Rational {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl Default for Rational {
    fn default() -> Self {
        Rational::zero()
    }
}

impl From<i64> for Rational {
    fn from(v: i64) -> Self {
        Rational::from_int(v)
    }
}

impl From<u32> for Rational {
    fn from(v: u32) -> Self {
        Rational::from_int(v as i64)
    }
}

impl From<usize> for Rational {
    fn from(v: usize) -> Self {
        Rational {
            num: BigInt::from(v),
            den: BigInt::one(),
        }
    }
}

impl From<BigInt> for Rational {
    fn from(v: BigInt) -> Self {
        Rational {
            num: v,
            den: BigInt::one(),
        }
    }
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rational {
    fn cmp(&self, other: &Self) -> Ordering {
        // Denominators are positive, so cross-multiplication preserves order.
        (&self.num * &other.den).cmp(&(&other.num * &self.den))
    }
}

impl Neg for Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        Rational {
            num: -self.num,
            den: self.den,
        }
    }
}

impl Neg for &Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        Rational {
            num: -&self.num,
            den: self.den.clone(),
        }
    }
}

impl Add for &Rational {
    type Output = Rational;
    fn add(self, rhs: &Rational) -> Rational {
        Rational::new(
            &self.num * &rhs.den + &rhs.num * &self.den,
            &self.den * &rhs.den,
        )
    }
}

impl Sub for &Rational {
    type Output = Rational;
    fn sub(self, rhs: &Rational) -> Rational {
        self + &(-rhs)
    }
}

impl Mul for &Rational {
    type Output = Rational;
    fn mul(self, rhs: &Rational) -> Rational {
        Rational::new(&self.num * &rhs.num, &self.den * &rhs.den)
    }
}

impl Div for &Rational {
    type Output = Rational;
    fn div(self, rhs: &Rational) -> Rational {
        assert!(!rhs.is_zero(), "division by zero rational");
        Rational::new(&self.num * &rhs.den, &self.den * &rhs.num)
    }
}

macro_rules! forward_binop {
    ($trait:ident, $method:ident) => {
        impl $trait for Rational {
            type Output = Rational;
            fn $method(self, rhs: Rational) -> Rational {
                (&self).$method(&rhs)
            }
        }
        impl $trait<&Rational> for Rational {
            type Output = Rational;
            fn $method(self, rhs: &Rational) -> Rational {
                (&self).$method(rhs)
            }
        }
        impl $trait<Rational> for &Rational {
            type Output = Rational;
            fn $method(self, rhs: Rational) -> Rational {
                self.$method(&rhs)
            }
        }
    };
}

forward_binop!(Add, add);
forward_binop!(Sub, sub);
forward_binop!(Mul, mul);
forward_binop!(Div, div);

impl AddAssign<&Rational> for Rational {
    fn add_assign(&mut self, rhs: &Rational) {
        *self = &*self + rhs;
    }
}

impl AddAssign for Rational {
    fn add_assign(&mut self, rhs: Rational) {
        *self = &*self + &rhs;
    }
}

impl SubAssign<&Rational> for Rational {
    fn sub_assign(&mut self, rhs: &Rational) {
        *self = &*self - rhs;
    }
}

impl Sum for Rational {
    fn sum<I: Iterator<Item = Rational>>(iter: I) -> Rational {
        iter.fold(Rational::zero(), |acc, x| acc + x)
    }
}

impl<'a> Sum<&'a Rational> for Rational {
    fn sum<I: Iterator<Item = &'a Rational>>(iter: I) -> Rational {
        iter.fold(Rational::zero(), |acc, x| &acc + x)
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_integer() {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl fmt::Debug for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl FromStr for Rational {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.split_once('/') {
            Some((p, q)) => {
                let num: BigInt = p.trim().parse()?;
                let den: BigInt = q.trim().parse()?;
                if den.is_zero() {
                    return Err("zero denominator".into());
                }
                Ok(Rational::new(num, den))
            }
            None => Ok(Rational::from(s.trim().parse::<BigInt>()?)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(p: i64, q: i64) -> Rational {
        Rational::from_frac(p, q)
    }

    #[test]
    fn normalization() {
        assert_eq!(r(2, 4), r(1, 2));
        assert_eq!(r(-2, -4), r(1, 2));
        assert_eq!(r(2, -4), r(-1, 2));
        assert_eq!(r(0, 7), Rational::zero());
        assert_eq!(r(0, 7).denom(), &BigInt::one());
    }

    #[test]
    fn field_operations() {
        assert_eq!(r(1, 2) + r(1, 3), r(5, 6));
        assert_eq!(r(1, 2) - r(1, 3), r(1, 6));
        assert_eq!(r(2, 3) * r(3, 4), r(1, 2));
        assert_eq!(r(1, 2) / r(1, 4), r(2, 1));
        assert_eq!(-r(1, 2), r(-1, 2));
        assert_eq!(r(1, 2).recip(), r(2, 1));
    }

    #[test]
    fn ordering() {
        assert!(r(1, 3) < r(1, 2));
        assert!(r(-1, 2) < r(-1, 3));
        assert!(r(7, 7) == Rational::one());
        assert!(r(2, 1).max(r(3, 2)) == r(2, 1));
        assert!(r(2, 1).min(r(3, 2)) == r(3, 2));
    }

    #[test]
    fn floor_and_ceil() {
        assert_eq!(r(7, 2).floor(), BigInt::from(3i64));
        assert_eq!(r(7, 2).ceil(), BigInt::from(4i64));
        assert_eq!(r(-7, 2).floor(), BigInt::from(-4i64));
        assert_eq!(r(-7, 2).ceil(), BigInt::from(-3i64));
        assert_eq!(r(4, 2).floor(), BigInt::from(2i64));
        assert_eq!(r(4, 2).ceil(), BigInt::from(2i64));
    }

    #[test]
    fn parse_and_display() {
        assert_eq!("3/4".parse::<Rational>().unwrap(), r(3, 4));
        assert_eq!("-6/8".parse::<Rational>().unwrap(), r(-3, 4));
        assert_eq!("5".parse::<Rational>().unwrap(), r(5, 1));
        assert_eq!(r(3, 4).to_string(), "3/4");
        assert_eq!(r(4, 2).to_string(), "2");
    }

    #[test]
    fn sums() {
        // Example 5.1: n edges of weight 1/n plus one of weight 1 - 1/n
        // total 2 - 1/n.
        let n = 7i64;
        let total: Rational = (0..n)
            .map(|_| r(1, n))
            .chain(std::iter::once(Rational::one() - r(1, n)))
            .sum();
        assert_eq!(total, Rational::from_int(2) - r(1, n));
    }

    #[test]
    fn to_f64_is_close() {
        assert!((r(1, 3).to_f64() - 1.0 / 3.0).abs() < 1e-12);
        assert!((r(-22, 7).to_f64() + 22.0 / 7.0).abs() < 1e-12);
    }
}
