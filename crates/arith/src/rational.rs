//! Exact rational numbers with an inline small-value fast path.
//!
//! Values are kept normalized: the denominator is strictly positive and
//! `gcd(|num|, den) == 1` (zero is `0/1`), so structural equality and hashing
//! coincide with numeric equality.
//!
//! # Representation
//!
//! The overwhelmingly common case in the LP pricing hot path is a rational
//! whose numerator and denominator both fit an `i64` — simplex pivots over
//! edge-cover programs stay tiny. Those values are stored inline as
//! [`Repr::Small`] and never touch the heap: the four field operations run
//! on `i128` intermediates (two `i64` products can never overflow `i128`),
//! normalize with a machine-word gcd, and only *promote* to the
//! [`BigInt`]-backed [`Repr::Big`] when a reduced component falls outside
//! the `i64` range. Promotion is exact and canonical in the other direction
//! too: any `Big` whose reduced components fit `i64` is demoted on
//! construction, so the representation of a value is unique and the derived
//! `Eq`/`Hash` remain structural.

use crate::bigint::BigInt;
use std::cmp::Ordering;
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};
use std::str::FromStr;

/// An exact rational number.
///
/// This is the width type of the library: fractional hypertree widths are
/// genuinely rational (e.g. `fhw(C3) = 3/2`, `rho*` of Example 5.1 is
/// `2 - 1/n`) and the NP-hardness analysis of the paper depends on exact
/// ties between fractional weights, so floating point is not an option.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Rational {
    repr: Repr,
}

/// Canonical two-tier storage: `Small` iff both reduced components fit
/// `i64` (denominator positive, gcd 1), `Big` otherwise. The invariant
/// makes the representation of every value unique, so the derived
/// structural `Eq`/`Hash` agree with numeric equality.
#[derive(Clone, PartialEq, Eq, Hash)]
enum Repr {
    Small(i64, i64),
    Big(Box<(BigInt, BigInt)>),
}

/// `gcd(|a|, |b|)` over machine words. The inputs come from `i128`
/// products of `i64`s, so `unsigned_abs` never overflows.
fn gcd_i128(a: i128, b: i128) -> u128 {
    let (mut a, mut b) = (a.unsigned_abs(), b.unsigned_abs());
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

/// Builds the canonical rational for `num/den` with `den > 0`, both in the
/// range reachable by products/sums of `i64` pairs (no `i128` overflow).
fn make_small(num: i128, den: i128) -> Rational {
    debug_assert!(den > 0);
    let (num, den) = if num == 0 {
        (0, 1)
    } else {
        let g = gcd_i128(num, den) as i128;
        (num / g, den / g)
    };
    match (i64::try_from(num), i64::try_from(den)) {
        (Ok(n), Ok(d)) => Rational {
            repr: Repr::Small(n, d),
        },
        _ => Rational {
            repr: Repr::Big(Box::new((BigInt::from(num), BigInt::from(den)))),
        },
    }
}

/// Builds the canonical rational for a reduced `num/den` with `den > 0`
/// (demoting to `Small` when both components fit `i64`).
fn make_big_reduced(num: BigInt, den: BigInt) -> Rational {
    debug_assert!(den.is_positive());
    match (num.to_i64(), den.to_i64()) {
        (Some(n), Some(d)) => Rational {
            repr: Repr::Small(n, d),
        },
        _ => Rational {
            repr: Repr::Big(Box::new((num, den))),
        },
    }
}

/// Normalizes an arbitrary `num/den` over [`BigInt`] (the slow path).
fn make_big(num: BigInt, den: BigInt) -> Rational {
    assert!(!den.is_zero(), "rational with zero denominator");
    let (num, den) = if den.is_negative() {
        (-num, -den)
    } else {
        (num, den)
    };
    if num.is_zero() {
        return Rational::zero();
    }
    let g = num.gcd(&den);
    if g == BigInt::one() {
        make_big_reduced(num, den)
    } else {
        make_big_reduced(&num / &g, &den / &g)
    }
}

impl Rational {
    /// Builds a rational from numerator and denominator, normalizing.
    ///
    /// Panics if `den` is zero.
    pub fn new(num: BigInt, den: BigInt) -> Self {
        match (num.to_i64(), den.to_i64()) {
            (Some(n), Some(d)) => Rational::from_frac(n, d),
            _ => make_big(num, den),
        }
    }

    /// `p/q` from machine integers. Panics if `q == 0`.
    pub fn from_frac(p: i64, q: i64) -> Self {
        assert!(q != 0, "rational with zero denominator");
        let (num, den) = if q < 0 {
            (-(p as i128), -(q as i128))
        } else {
            (p as i128, q as i128)
        };
        make_small(num, den)
    }

    /// The integer `v` as a rational.
    pub fn from_int(v: i64) -> Self {
        Rational {
            repr: Repr::Small(v, 1),
        }
    }

    /// Zero.
    pub fn zero() -> Self {
        Rational::from_int(0)
    }

    /// One.
    pub fn one() -> Self {
        Rational::from_int(1)
    }

    /// Numerator (sign-carrying).
    pub fn numer(&self) -> BigInt {
        match &self.repr {
            Repr::Small(n, _) => BigInt::from(*n),
            Repr::Big(b) => b.0.clone(),
        }
    }

    /// Denominator (always positive).
    pub fn denom(&self) -> BigInt {
        match &self.repr {
            Repr::Small(_, d) => BigInt::from(*d),
            Repr::Big(b) => b.1.clone(),
        }
    }

    /// The inline `(numerator, denominator)` pair when the value is stored
    /// small (always, unless a component exceeds the `i64` range).
    pub fn as_small(&self) -> Option<(i64, i64)> {
        match &self.repr {
            Repr::Small(n, d) => Some((*n, *d)),
            Repr::Big(_) => None,
        }
    }

    /// True iff the value is zero.
    pub fn is_zero(&self) -> bool {
        match &self.repr {
            Repr::Small(n, _) => *n == 0,
            Repr::Big(b) => b.0.is_zero(),
        }
    }

    /// True iff the value is strictly negative.
    pub fn is_negative(&self) -> bool {
        match &self.repr {
            Repr::Small(n, _) => *n < 0,
            Repr::Big(b) => b.0.is_negative(),
        }
    }

    /// True iff the value is strictly positive.
    pub fn is_positive(&self) -> bool {
        match &self.repr {
            Repr::Small(n, _) => *n > 0,
            Repr::Big(b) => b.0.is_positive(),
        }
    }

    /// True iff the value is an integer.
    pub fn is_integer(&self) -> bool {
        match &self.repr {
            Repr::Small(_, d) => *d == 1,
            Repr::Big(b) => b.1 == BigInt::one(),
        }
    }

    /// Absolute value.
    pub fn abs(&self) -> Rational {
        match &self.repr {
            Repr::Small(n, d) => make_small((*n as i128).abs(), *d as i128),
            Repr::Big(b) => make_big_reduced(b.0.abs(), b.1.clone()),
        }
    }

    /// Multiplicative inverse. Panics on zero.
    pub fn recip(&self) -> Rational {
        assert!(!self.is_zero(), "reciprocal of zero");
        match &self.repr {
            Repr::Small(n, d) => {
                let (n, d) = (*n as i128, *d as i128);
                if n < 0 {
                    make_small(-d, -n)
                } else {
                    make_small(d, n)
                }
            }
            Repr::Big(b) => {
                if b.0.is_negative() {
                    make_big_reduced(-&b.1, -&b.0)
                } else {
                    make_big_reduced(b.1.clone(), b.0.clone())
                }
            }
        }
    }

    /// Largest integer `<= self`.
    pub fn floor(&self) -> BigInt {
        match &self.repr {
            Repr::Small(n, d) => BigInt::from((*n as i128).div_euclid(*d as i128)),
            Repr::Big(b) => {
                let (q, r) = b.0.div_rem(&b.1);
                if b.0.is_negative() && !r.is_zero() {
                    q - BigInt::one()
                } else {
                    q
                }
            }
        }
    }

    /// Smallest integer `>= self`.
    pub fn ceil(&self) -> BigInt {
        -((-self).floor())
    }

    /// Approximate `f64` value (for reporting only — never for decisions).
    pub fn to_f64(&self) -> f64 {
        match &self.repr {
            Repr::Small(n, d) => *n as f64 / *d as f64,
            Repr::Big(b) => b.0.to_f64() / b.1.to_f64(),
        }
    }

    /// The smaller of two rationals.
    pub fn min(self, other: Rational) -> Rational {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// The larger of two rationals.
    pub fn max(self, other: Rational) -> Rational {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// The `(num, den)` pair as big integers (slow-path glue).
    fn to_big_parts(&self) -> (BigInt, BigInt) {
        match &self.repr {
            Repr::Small(n, d) => (BigInt::from(*n), BigInt::from(*d)),
            Repr::Big(b) => (b.0.clone(), b.1.clone()),
        }
    }
}

impl Default for Rational {
    fn default() -> Self {
        Rational::zero()
    }
}

impl From<i64> for Rational {
    fn from(v: i64) -> Self {
        Rational::from_int(v)
    }
}

impl From<u32> for Rational {
    fn from(v: u32) -> Self {
        Rational::from_int(v as i64)
    }
}

impl From<usize> for Rational {
    fn from(v: usize) -> Self {
        match i64::try_from(v) {
            Ok(v) => Rational::from_int(v),
            Err(_) => make_big_reduced(BigInt::from(v), BigInt::one()),
        }
    }
}

impl From<BigInt> for Rational {
    fn from(v: BigInt) -> Self {
        make_big_reduced(v, BigInt::one())
    }
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rational {
    fn cmp(&self, other: &Self) -> Ordering {
        // Denominators are positive, so cross-multiplication preserves order.
        match (&self.repr, &other.repr) {
            (Repr::Small(a, b), Repr::Small(c, d)) => {
                (*a as i128 * *d as i128).cmp(&(*c as i128 * *b as i128))
            }
            _ => {
                let (an, ad) = self.to_big_parts();
                let (bn, bd) = other.to_big_parts();
                (&an * &bd).cmp(&(&bn * &ad))
            }
        }
    }
}

impl Neg for Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        match self.repr {
            Repr::Small(n, d) => make_small(-(n as i128), d as i128),
            Repr::Big(b) => make_big_reduced(-&b.0, b.1.clone()),
        }
    }
}

impl Neg for &Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        self.clone().neg()
    }
}

impl Add for &Rational {
    type Output = Rational;
    fn add(self, rhs: &Rational) -> Rational {
        match (&self.repr, &rhs.repr) {
            (Repr::Small(a, b), Repr::Small(c, d)) => {
                let (a, b, c, d) = (*a as i128, *b as i128, *c as i128, *d as i128);
                // |a*d + c*b| <= 2 * 2^63 * (2^63 - 1) < i128::MAX, and
                // b*d <= (2^63 - 1)^2: no overflow is possible.
                make_small(a * d + c * b, b * d)
            }
            _ => {
                let (an, ad) = self.to_big_parts();
                let (bn, bd) = rhs.to_big_parts();
                make_big(&an * &bd + &bn * &ad, &ad * &bd)
            }
        }
    }
}

impl Sub for &Rational {
    type Output = Rational;
    fn sub(self, rhs: &Rational) -> Rational {
        match (&self.repr, &rhs.repr) {
            (Repr::Small(a, b), Repr::Small(c, d)) => {
                let (a, b, c, d) = (*a as i128, *b as i128, *c as i128, *d as i128);
                make_small(a * d - c * b, b * d)
            }
            _ => self + &(-rhs),
        }
    }
}

impl Mul for &Rational {
    type Output = Rational;
    fn mul(self, rhs: &Rational) -> Rational {
        match (&self.repr, &rhs.repr) {
            (Repr::Small(a, b), Repr::Small(c, d)) => {
                make_small(*a as i128 * *c as i128, *b as i128 * *d as i128)
            }
            _ => {
                let (an, ad) = self.to_big_parts();
                let (bn, bd) = rhs.to_big_parts();
                make_big(&an * &bn, &ad * &bd)
            }
        }
    }
}

impl Div for &Rational {
    type Output = Rational;
    fn div(self, rhs: &Rational) -> Rational {
        assert!(!rhs.is_zero(), "division by zero rational");
        match (&self.repr, &rhs.repr) {
            (Repr::Small(a, b), Repr::Small(c, d)) => {
                let (a, b, c, d) = (*a as i128, *b as i128, *c as i128, *d as i128);
                if c < 0 {
                    make_small(a * -d, b * -c)
                } else {
                    make_small(a * d, b * c)
                }
            }
            _ => {
                let (an, ad) = self.to_big_parts();
                let (bn, bd) = rhs.to_big_parts();
                make_big(&an * &bd, &ad * &bn)
            }
        }
    }
}

macro_rules! forward_binop {
    ($trait:ident, $method:ident) => {
        impl $trait for Rational {
            type Output = Rational;
            fn $method(self, rhs: Rational) -> Rational {
                (&self).$method(&rhs)
            }
        }
        impl $trait<&Rational> for Rational {
            type Output = Rational;
            fn $method(self, rhs: &Rational) -> Rational {
                (&self).$method(rhs)
            }
        }
        impl $trait<Rational> for &Rational {
            type Output = Rational;
            fn $method(self, rhs: Rational) -> Rational {
                self.$method(&rhs)
            }
        }
    };
}

forward_binop!(Add, add);
forward_binop!(Sub, sub);
forward_binop!(Mul, mul);
forward_binop!(Div, div);

impl AddAssign<&Rational> for Rational {
    fn add_assign(&mut self, rhs: &Rational) {
        *self = &*self + rhs;
    }
}

impl AddAssign for Rational {
    fn add_assign(&mut self, rhs: Rational) {
        *self = &*self + &rhs;
    }
}

impl SubAssign<&Rational> for Rational {
    fn sub_assign(&mut self, rhs: &Rational) {
        *self = &*self - rhs;
    }
}

impl Sum for Rational {
    fn sum<I: Iterator<Item = Rational>>(iter: I) -> Rational {
        iter.fold(Rational::zero(), |acc, x| acc + x)
    }
}

impl<'a> Sum<&'a Rational> for Rational {
    fn sum<I: Iterator<Item = &'a Rational>>(iter: I) -> Rational {
        iter.fold(Rational::zero(), |acc, x| &acc + x)
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.repr {
            Repr::Small(n, d) => {
                if *d == 1 {
                    write!(f, "{n}")
                } else {
                    write!(f, "{n}/{d}")
                }
            }
            Repr::Big(b) => {
                if b.1 == BigInt::one() {
                    write!(f, "{}", b.0)
                } else {
                    write!(f, "{}/{}", b.0, b.1)
                }
            }
        }
    }
}

impl fmt::Debug for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl FromStr for Rational {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.split_once('/') {
            Some((p, q)) => {
                let num: BigInt = p.trim().parse()?;
                let den: BigInt = q.trim().parse()?;
                if den.is_zero() {
                    return Err("zero denominator".into());
                }
                Ok(Rational::new(num, den))
            }
            None => Ok(Rational::from(s.trim().parse::<BigInt>()?)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(p: i64, q: i64) -> Rational {
        Rational::from_frac(p, q)
    }

    #[test]
    fn normalization() {
        assert_eq!(r(2, 4), r(1, 2));
        assert_eq!(r(-2, -4), r(1, 2));
        assert_eq!(r(2, -4), r(-1, 2));
        assert_eq!(r(0, 7), Rational::zero());
        assert_eq!(r(0, 7).denom(), BigInt::one());
    }

    #[test]
    fn field_operations() {
        assert_eq!(r(1, 2) + r(1, 3), r(5, 6));
        assert_eq!(r(1, 2) - r(1, 3), r(1, 6));
        assert_eq!(r(2, 3) * r(3, 4), r(1, 2));
        assert_eq!(r(1, 2) / r(1, 4), r(2, 1));
        assert_eq!(-r(1, 2), r(-1, 2));
        assert_eq!(r(1, 2).recip(), r(2, 1));
    }

    #[test]
    fn ordering() {
        assert!(r(1, 3) < r(1, 2));
        assert!(r(-1, 2) < r(-1, 3));
        assert!(r(7, 7) == Rational::one());
        assert!(r(2, 1).max(r(3, 2)) == r(2, 1));
        assert!(r(2, 1).min(r(3, 2)) == r(3, 2));
    }

    #[test]
    fn floor_and_ceil() {
        assert_eq!(r(7, 2).floor(), BigInt::from(3i64));
        assert_eq!(r(7, 2).ceil(), BigInt::from(4i64));
        assert_eq!(r(-7, 2).floor(), BigInt::from(-4i64));
        assert_eq!(r(-7, 2).ceil(), BigInt::from(-3i64));
        assert_eq!(r(4, 2).floor(), BigInt::from(2i64));
        assert_eq!(r(4, 2).ceil(), BigInt::from(2i64));
    }

    #[test]
    fn parse_and_display() {
        assert_eq!("3/4".parse::<Rational>().unwrap(), r(3, 4));
        assert_eq!("-6/8".parse::<Rational>().unwrap(), r(-3, 4));
        assert_eq!("5".parse::<Rational>().unwrap(), r(5, 1));
        assert_eq!(r(3, 4).to_string(), "3/4");
        assert_eq!(r(4, 2).to_string(), "2");
    }

    #[test]
    fn sums() {
        // Example 5.1: n edges of weight 1/n plus one of weight 1 - 1/n
        // total 2 - 1/n.
        let n = 7i64;
        let total: Rational = (0..n)
            .map(|_| r(1, n))
            .chain(std::iter::once(Rational::one() - r(1, n)))
            .sum();
        assert_eq!(total, Rational::from_int(2) - r(1, n));
    }

    #[test]
    fn to_f64_is_close() {
        assert!((r(1, 3).to_f64() - 1.0 / 3.0).abs() < 1e-12);
        assert!((r(-22, 7).to_f64() + 22.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn small_values_stay_inline() {
        assert!(r(3, 2).as_small().is_some());
        assert!((r(1, 3) + r(1, 2)).as_small().is_some());
        assert_eq!(r(-6, 8).as_small(), Some((-3, 4)));
        assert_eq!(Rational::from_int(i64::MIN).as_small(), Some((i64::MIN, 1)));
    }

    #[test]
    fn overflow_promotes_and_demotes_canonically() {
        let huge = Rational::from_int(i64::MAX);
        // (2^63 - 1)^2 does not fit an i64: the product must promote.
        let sq = &huge * &huge;
        assert!(sq.as_small().is_none());
        assert_eq!(
            sq.to_string(),
            (i64::MAX as i128 * i64::MAX as i128).to_string()
        );
        // Dividing back demotes to the inline representation.
        let back = &sq / &huge;
        assert_eq!(back.as_small(), Some((i64::MAX, 1)));
        assert_eq!(back, huge);
        // A big-denominator value round-trips through negation.
        let tiny = Rational::one() / &sq;
        assert!(tiny.as_small().is_none());
        assert_eq!(-(-tiny.clone()), tiny);
    }

    #[test]
    fn mixed_repr_arithmetic_agrees() {
        let big = Rational::from_int(i64::MAX) * Rational::from_int(4);
        let small = r(1, 2);
        assert_eq!(
            &big * &small,
            Rational::from_int(i64::MAX) * Rational::from_int(2)
        );
        assert_eq!(&(&big + &small) - &big, small);
        assert!(big > small);
        assert!((&big / &big).as_small() == Some((1, 1)));
    }

    #[test]
    fn i64_min_edges() {
        let m = Rational::from_int(i64::MIN);
        assert_eq!((-&m).to_string(), "9223372036854775808");
        assert!((-&m).as_small().is_none());
        assert_eq!(m.abs(), -&m);
        assert_eq!(m.recip().to_string(), "-1/9223372036854775808");
        assert_eq!(&m + &(-&m), Rational::zero());
        assert_eq!(r(i64::MIN, i64::MIN), Rational::one());
    }
}
