//! Arbitrary-precision signed integers.
//!
//! Sign-magnitude representation with little-endian `u64` limbs. The
//! magnitude never has trailing zero limbs and `sign == 0` iff the magnitude
//! is empty, so equality and hashing can be derived structurally.
//!
//! The implementation favours correctness over asymptotic speed: the numbers
//! appearing in exact simplex pivots over hypergraph covering LPs stay small
//! (tens of digits), so schoolbook multiplication and binary long division
//! are more than adequate.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Rem, Sub, SubAssign};
use std::str::FromStr;

/// An arbitrary-precision signed integer.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BigInt {
    /// -1, 0 or 1; zero iff `mag` is empty.
    sign: i8,
    /// Little-endian base-2^64 magnitude without trailing zero limbs.
    mag: Vec<u64>,
}

fn trim(mag: &mut Vec<u64>) {
    while mag.last() == Some(&0) {
        mag.pop();
    }
}

fn mag_cmp(a: &[u64], b: &[u64]) -> Ordering {
    if a.len() != b.len() {
        return a.len().cmp(&b.len());
    }
    for (x, y) in a.iter().rev().zip(b.iter().rev()) {
        match x.cmp(y) {
            Ordering::Equal => continue,
            ord => return ord,
        }
    }
    Ordering::Equal
}

#[allow(clippy::needless_range_loop)]
fn mag_add(a: &[u64], b: &[u64]) -> Vec<u64> {
    let (long, short) = if a.len() >= b.len() { (a, b) } else { (b, a) };
    let mut out = Vec::with_capacity(long.len() + 1);
    let mut carry = 0u64;
    for i in 0..long.len() {
        let s = short.get(i).copied().unwrap_or(0);
        let (x, c1) = long[i].overflowing_add(s);
        let (x, c2) = x.overflowing_add(carry);
        carry = (c1 as u64) + (c2 as u64);
        out.push(x);
    }
    if carry != 0 {
        out.push(carry);
    }
    out
}

/// Requires `a >= b` (by magnitude).
#[allow(clippy::needless_range_loop)]
fn mag_sub(a: &[u64], b: &[u64]) -> Vec<u64> {
    debug_assert!(mag_cmp(a, b) != Ordering::Less);
    let mut out = Vec::with_capacity(a.len());
    let mut borrow = 0u64;
    for i in 0..a.len() {
        let s = b.get(i).copied().unwrap_or(0);
        let (x, b1) = a[i].overflowing_sub(s);
        let (x, b2) = x.overflowing_sub(borrow);
        borrow = (b1 as u64) + (b2 as u64);
        out.push(x);
    }
    debug_assert_eq!(borrow, 0);
    trim(&mut out);
    out
}

fn mag_mul(a: &[u64], b: &[u64]) -> Vec<u64> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    let mut out = vec![0u64; a.len() + b.len()];
    for (i, &x) in a.iter().enumerate() {
        if x == 0 {
            continue;
        }
        let mut carry = 0u128;
        for (j, &y) in b.iter().enumerate() {
            let cur = out[i + j] as u128 + (x as u128) * (y as u128) + carry;
            out[i + j] = cur as u64;
            carry = cur >> 64;
        }
        let mut k = i + b.len();
        while carry != 0 {
            let cur = out[k] as u128 + carry;
            out[k] = cur as u64;
            carry = cur >> 64;
            k += 1;
        }
    }
    trim(&mut out);
    out
}

fn mag_bits(a: &[u64]) -> usize {
    match a.last() {
        None => 0,
        Some(&top) => 64 * (a.len() - 1) + (64 - top.leading_zeros() as usize),
    }
}

fn mag_bit(a: &[u64], i: usize) -> bool {
    let limb = i / 64;
    let off = i % 64;
    limb < a.len() && (a[limb] >> off) & 1 == 1
}

/// Shift-subtract binary long division of magnitudes; returns `(q, r)` with
/// `a = q*b + r` and `0 <= r < b`. Panics if `b` is zero.
fn mag_divrem(a: &[u64], b: &[u64]) -> (Vec<u64>, Vec<u64>) {
    assert!(!b.is_empty(), "division by zero");
    if mag_cmp(a, b) == Ordering::Less {
        return (Vec::new(), a.to_vec());
    }
    let n = mag_bits(a);
    let mut q = vec![0u64; a.len()];
    let mut r: Vec<u64> = Vec::new();
    for i in (0..n).rev() {
        // r = (r << 1) | bit(a, i)
        let mut carry = u64::from(mag_bit(a, i));
        for limb in r.iter_mut() {
            let new_carry = *limb >> 63;
            *limb = (*limb << 1) | carry;
            carry = new_carry;
        }
        if carry != 0 {
            r.push(carry);
        }
        if mag_cmp(&r, b) != Ordering::Less {
            r = mag_sub(&r, b);
            q[i / 64] |= 1 << (i % 64);
        }
    }
    trim(&mut q);
    trim(&mut r);
    (q, r)
}

impl BigInt {
    /// The integer zero.
    pub fn zero() -> Self {
        BigInt {
            sign: 0,
            mag: Vec::new(),
        }
    }

    /// The integer one.
    pub fn one() -> Self {
        BigInt::from(1i64)
    }

    /// Returns true iff this is zero.
    pub fn is_zero(&self) -> bool {
        self.sign == 0
    }

    /// Returns true iff this is strictly negative.
    pub fn is_negative(&self) -> bool {
        self.sign < 0
    }

    /// Returns true iff this is strictly positive.
    pub fn is_positive(&self) -> bool {
        self.sign > 0
    }

    /// The sign as -1, 0 or 1.
    pub fn signum(&self) -> i8 {
        self.sign
    }

    /// Absolute value.
    pub fn abs(&self) -> BigInt {
        BigInt {
            sign: self.sign.abs(),
            mag: self.mag.clone(),
        }
    }

    fn from_mag(sign: i8, mut mag: Vec<u64>) -> BigInt {
        trim(&mut mag);
        if mag.is_empty() {
            BigInt::zero()
        } else {
            BigInt { sign, mag }
        }
    }

    /// Truncated division with remainder: `self = q * rhs + r`, `|r| < |rhs|`,
    /// `r` has the sign of `self` (or is zero).
    pub fn div_rem(&self, rhs: &BigInt) -> (BigInt, BigInt) {
        assert!(!rhs.is_zero(), "division by zero");
        if self.is_zero() {
            return (BigInt::zero(), BigInt::zero());
        }
        let (q, r) = mag_divrem(&self.mag, &rhs.mag);
        (
            BigInt::from_mag(self.sign * rhs.sign, q),
            BigInt::from_mag(self.sign, r),
        )
    }

    /// Greatest common divisor of the absolute values; `gcd(0, 0) = 0`.
    pub fn gcd(&self, rhs: &BigInt) -> BigInt {
        let mut a = self.mag.clone();
        let mut b = rhs.mag.clone();
        while !b.is_empty() {
            let (_, r) = mag_divrem(&a, &b);
            a = b;
            b = r;
        }
        BigInt::from_mag(if a.is_empty() { 0 } else { 1 }, a)
    }

    /// Converts to `f64`, saturating for huge magnitudes.
    pub fn to_f64(&self) -> f64 {
        let mut v = 0.0f64;
        for &limb in self.mag.iter().rev() {
            v = v * 1.8446744073709552e19 + limb as f64;
        }
        if self.sign < 0 {
            -v
        } else {
            v
        }
    }

    /// Returns `Some(i64)` when the value fits.
    pub fn to_i64(&self) -> Option<i64> {
        match self.mag.len() {
            0 => Some(0),
            1 => {
                let m = self.mag[0];
                if self.sign > 0 && m <= i64::MAX as u64 {
                    Some(m as i64)
                } else if self.sign < 0 && m <= (i64::MAX as u64) + 1 {
                    Some(-(m as i128) as i64)
                } else {
                    None
                }
            }
            _ => None,
        }
    }

    /// `self^exp` by repeated squaring.
    pub fn pow(&self, mut exp: u32) -> BigInt {
        let mut base = self.clone();
        let mut acc = BigInt::one();
        while exp > 0 {
            if exp & 1 == 1 {
                acc = &acc * &base;
            }
            base = &base * &base;
            exp >>= 1;
        }
        acc
    }
}

impl Default for BigInt {
    fn default() -> Self {
        BigInt::zero()
    }
}

impl From<i64> for BigInt {
    fn from(v: i64) -> Self {
        match v.cmp(&0) {
            Ordering::Equal => BigInt::zero(),
            Ordering::Greater => BigInt {
                sign: 1,
                mag: vec![v as u64],
            },
            Ordering::Less => BigInt {
                sign: -1,
                mag: vec![(v as i128).unsigned_abs() as u64],
            },
        }
    }
}

impl From<u64> for BigInt {
    fn from(v: u64) -> Self {
        if v == 0 {
            BigInt::zero()
        } else {
            BigInt {
                sign: 1,
                mag: vec![v],
            }
        }
    }
}

impl From<i32> for BigInt {
    fn from(v: i32) -> Self {
        BigInt::from(v as i64)
    }
}

impl From<usize> for BigInt {
    fn from(v: usize) -> Self {
        BigInt::from(v as u64)
    }
}

impl From<i128> for BigInt {
    fn from(v: i128) -> Self {
        let sign: i8 = match v.cmp(&0) {
            Ordering::Equal => return BigInt::zero(),
            Ordering::Greater => 1,
            Ordering::Less => -1,
        };
        let m = v.unsigned_abs();
        BigInt::from_mag(sign, vec![m as u64, (m >> 64) as u64])
    }
}

impl PartialOrd for BigInt {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigInt {
    fn cmp(&self, other: &Self) -> Ordering {
        match self.sign.cmp(&other.sign) {
            Ordering::Equal => {}
            ord => return ord,
        }
        let mag = mag_cmp(&self.mag, &other.mag);
        if self.sign < 0 {
            mag.reverse()
        } else {
            mag
        }
    }
}

impl Neg for BigInt {
    type Output = BigInt;
    fn neg(mut self) -> BigInt {
        self.sign = -self.sign;
        self
    }
}

impl Neg for &BigInt {
    type Output = BigInt;
    fn neg(self) -> BigInt {
        BigInt {
            sign: -self.sign,
            mag: self.mag.clone(),
        }
    }
}

impl Add for &BigInt {
    type Output = BigInt;
    fn add(self, rhs: &BigInt) -> BigInt {
        if self.is_zero() {
            return rhs.clone();
        }
        if rhs.is_zero() {
            return self.clone();
        }
        if self.sign == rhs.sign {
            BigInt::from_mag(self.sign, mag_add(&self.mag, &rhs.mag))
        } else {
            match mag_cmp(&self.mag, &rhs.mag) {
                Ordering::Equal => BigInt::zero(),
                Ordering::Greater => BigInt::from_mag(self.sign, mag_sub(&self.mag, &rhs.mag)),
                Ordering::Less => BigInt::from_mag(rhs.sign, mag_sub(&rhs.mag, &self.mag)),
            }
        }
    }
}

impl Sub for &BigInt {
    type Output = BigInt;
    fn sub(self, rhs: &BigInt) -> BigInt {
        self + &(-rhs)
    }
}

impl Mul for &BigInt {
    type Output = BigInt;
    fn mul(self, rhs: &BigInt) -> BigInt {
        BigInt::from_mag(self.sign * rhs.sign, mag_mul(&self.mag, &rhs.mag))
    }
}

impl Div for &BigInt {
    type Output = BigInt;
    fn div(self, rhs: &BigInt) -> BigInt {
        self.div_rem(rhs).0
    }
}

impl Rem for &BigInt {
    type Output = BigInt;
    fn rem(self, rhs: &BigInt) -> BigInt {
        self.div_rem(rhs).1
    }
}

macro_rules! forward_binop {
    ($trait:ident, $method:ident) => {
        impl $trait for BigInt {
            type Output = BigInt;
            fn $method(self, rhs: BigInt) -> BigInt {
                (&self).$method(&rhs)
            }
        }
        impl $trait<&BigInt> for BigInt {
            type Output = BigInt;
            fn $method(self, rhs: &BigInt) -> BigInt {
                (&self).$method(rhs)
            }
        }
        impl $trait<BigInt> for &BigInt {
            type Output = BigInt;
            fn $method(self, rhs: BigInt) -> BigInt {
                self.$method(&rhs)
            }
        }
    };
}

forward_binop!(Add, add);
forward_binop!(Sub, sub);
forward_binop!(Mul, mul);
forward_binop!(Div, div);
forward_binop!(Rem, rem);

impl AddAssign<&BigInt> for BigInt {
    fn add_assign(&mut self, rhs: &BigInt) {
        *self = &*self + rhs;
    }
}

impl SubAssign<&BigInt> for BigInt {
    fn sub_assign(&mut self, rhs: &BigInt) {
        *self = &*self - rhs;
    }
}

impl fmt::Display for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        let mut digits = Vec::new();
        let mut cur = self.mag.clone();
        let ten = vec![10u64];
        while !cur.is_empty() {
            let (q, r) = mag_divrem(&cur, &ten);
            digits.push(char::from(b'0' + r.first().copied().unwrap_or(0) as u8));
            cur = q;
        }
        if self.sign < 0 {
            write!(f, "-")?;
        }
        for d in digits.iter().rev() {
            write!(f, "{d}")?;
        }
        Ok(())
    }
}

impl fmt::Debug for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl FromStr for BigInt {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (sign, body) = match s.strip_prefix('-') {
            Some(rest) => (-1i8, rest),
            None => (1i8, s.strip_prefix('+').unwrap_or(s)),
        };
        if body.is_empty() {
            return Err("empty integer literal".into());
        }
        let mut acc = BigInt::zero();
        let ten = BigInt::from(10i64);
        for ch in body.chars() {
            let d = ch.to_digit(10).ok_or_else(|| format!("bad digit {ch:?}"))?;
            acc = &(&acc * &ten) + &BigInt::from(d as i64);
        }
        if sign < 0 {
            acc = -acc;
        }
        Ok(acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(v: i64) -> BigInt {
        BigInt::from(v)
    }

    #[test]
    fn basic_arithmetic() {
        assert_eq!(b(2) + b(3), b(5));
        assert_eq!(b(-2) + b(3), b(1));
        assert_eq!(b(2) - b(3), b(-1));
        assert_eq!(b(-4) * b(5), b(-20));
        assert_eq!(b(0) * b(5), b(0));
        assert_eq!(b(7) / b(2), b(3));
        assert_eq!(b(7) % b(2), b(1));
        assert_eq!(b(-7) / b(2), b(-3));
        assert_eq!(b(-7) % b(2), b(-1));
    }

    #[test]
    fn large_multiplication_and_division() {
        let big = BigInt::from(u64::MAX) * BigInt::from(u64::MAX);
        let expected: BigInt = "340282366920938463426481119284349108225".parse().unwrap();
        assert_eq!(big, expected);
        let (q, r) = expected.div_rem(&BigInt::from(u64::MAX));
        assert_eq!(q, BigInt::from(u64::MAX));
        assert!(r.is_zero());
    }

    #[test]
    fn display_round_trips() {
        for s in [
            "0",
            "1",
            "-1",
            "123456789012345678901234567890",
            "-987654321",
        ] {
            let v: BigInt = s.parse().unwrap();
            assert_eq!(v.to_string(), s);
        }
    }

    #[test]
    fn gcd_matches_euclid() {
        assert_eq!(b(48).gcd(&b(18)), b(6));
        assert_eq!(b(-48).gcd(&b(18)), b(6));
        assert_eq!(b(0).gcd(&b(5)), b(5));
        assert_eq!(b(5).gcd(&b(0)), b(5));
        assert_eq!(b(0).gcd(&b(0)), b(0));
    }

    #[test]
    fn ordering_spans_signs() {
        assert!(b(-5) < b(-1));
        assert!(b(-1) < b(0));
        assert!(b(0) < b(3));
        let big: BigInt = "123456789012345678901234567890".parse().unwrap();
        assert!(b(i64::MAX) < big);
        assert!(-&big < b(i64::MIN));
    }

    #[test]
    fn pow_small_cases() {
        assert_eq!(b(2).pow(10), b(1024));
        assert_eq!(b(3).pow(0), b(1));
        assert_eq!(b(-2).pow(3), b(-8));
        assert_eq!(b(10).pow(20).to_string(), "100000000000000000000");
    }

    #[test]
    fn i128_conversion() {
        let v = BigInt::from(i128::MAX);
        assert_eq!(v.to_string(), i128::MAX.to_string());
        let w = BigInt::from(i128::MIN + 1);
        assert_eq!(w.to_string(), (i128::MIN + 1).to_string());
    }

    #[test]
    fn to_i64_boundaries() {
        assert_eq!(b(i64::MAX).to_i64(), Some(i64::MAX));
        assert_eq!(b(i64::MIN).to_i64(), Some(i64::MIN));
        assert_eq!((b(i64::MAX) + b(1)).to_i64(), None);
        assert_eq!(b(0).to_i64(), Some(0));
    }
}
