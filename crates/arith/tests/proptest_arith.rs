//! Property-based tests: ring/field axioms and agreement with i128 arithmetic.

use arith::{rat, BigInt, Rational};
use proptest::prelude::*;

fn big(v: i64) -> BigInt {
    BigInt::from(v)
}

proptest! {
    #[test]
    fn bigint_add_matches_i128(a in any::<i64>(), b in any::<i64>()) {
        let sum = big(a) + big(b);
        prop_assert_eq!(sum.to_string(), (a as i128 + b as i128).to_string());
    }

    #[test]
    fn bigint_mul_matches_i128(a in any::<i64>(), b in any::<i64>()) {
        let prod = big(a) * big(b);
        prop_assert_eq!(prod.to_string(), (a as i128 * b as i128).to_string());
    }

    #[test]
    fn bigint_div_rem_invariant(a in any::<i64>(), b in any::<i64>().prop_filter("nonzero", |v| *v != 0)) {
        let (q, r) = big(a).div_rem(&big(b));
        prop_assert_eq!(&q * &big(b) + &r, big(a));
        prop_assert!(r.abs() < big(b).abs());
        // Remainder carries the dividend's sign (or is zero).
        prop_assert!(r.is_zero() || r.is_negative() == big(a).is_negative());
    }

    #[test]
    fn bigint_gcd_divides_both(a in any::<i32>(), b in any::<i32>()) {
        let g = big(a as i64).gcd(&big(b as i64));
        if !g.is_zero() {
            prop_assert!((big(a as i64) % &g).is_zero());
            prop_assert!((big(b as i64) % &g).is_zero());
        } else {
            prop_assert_eq!(a, 0);
            prop_assert_eq!(b, 0);
        }
    }

    #[test]
    fn bigint_parse_round_trip(a in any::<i128>()) {
        let v = BigInt::from(a);
        let parsed: BigInt = v.to_string().parse().unwrap();
        prop_assert_eq!(parsed, v);
    }

    #[test]
    fn rational_field_axioms(
        p1 in -1000i64..1000, q1 in 1i64..60,
        p2 in -1000i64..1000, q2 in 1i64..60,
        p3 in -1000i64..1000, q3 in 1i64..60,
    ) {
        let a = rat(p1, q1);
        let b = rat(p2, q2);
        let c = rat(p3, q3);
        prop_assert_eq!(&a + &b, &b + &a);
        prop_assert_eq!(&a * &b, &b * &a);
        prop_assert_eq!(&(&a + &b) + &c, &a + &(&b + &c));
        prop_assert_eq!(&(&a * &b) * &c, &a * &(&b * &c));
        prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
        prop_assert_eq!(&a - &a, Rational::zero());
        if !b.is_zero() {
            prop_assert_eq!(&(&a / &b) * &b, a);
        }
    }

    #[test]
    fn rational_ordering_total(
        p1 in -100i64..100, q1 in 1i64..30,
        p2 in -100i64..100, q2 in 1i64..30,
    ) {
        let a = rat(p1, q1);
        let b = rat(p2, q2);
        let diff = &a - &b;
        match a.cmp(&b) {
            std::cmp::Ordering::Less => prop_assert!(diff.is_negative()),
            std::cmp::Ordering::Equal => prop_assert!(diff.is_zero()),
            std::cmp::Ordering::Greater => prop_assert!(diff.is_positive()),
        }
    }

    #[test]
    fn rational_floor_ceil_bracket(p in -5000i64..5000, q in 1i64..200) {
        let x = rat(p, q);
        let fl = Rational::from(x.floor());
        let ce = Rational::from(x.ceil());
        prop_assert!(fl <= x && x <= ce);
        prop_assert!(&ce - &fl <= Rational::one());
        if x.is_integer() {
            prop_assert_eq!(fl, ce);
        }
    }
}
