//! Property-based tests: ring/field axioms and agreement with i128 arithmetic.

use arith::{rat, BigInt, Rational};
use proptest::prelude::*;

fn big(v: i64) -> BigInt {
    BigInt::from(v)
}

proptest! {
    #[test]
    fn bigint_add_matches_i128(a in any::<i64>(), b in any::<i64>()) {
        let sum = big(a) + big(b);
        prop_assert_eq!(sum.to_string(), (a as i128 + b as i128).to_string());
    }

    #[test]
    fn bigint_mul_matches_i128(a in any::<i64>(), b in any::<i64>()) {
        let prod = big(a) * big(b);
        prop_assert_eq!(prod.to_string(), (a as i128 * b as i128).to_string());
    }

    #[test]
    fn bigint_div_rem_invariant(a in any::<i64>(), b in any::<i64>().prop_filter("nonzero", |v| *v != 0)) {
        let (q, r) = big(a).div_rem(&big(b));
        prop_assert_eq!(&q * &big(b) + &r, big(a));
        prop_assert!(r.abs() < big(b).abs());
        // Remainder carries the dividend's sign (or is zero).
        prop_assert!(r.is_zero() || r.is_negative() == big(a).is_negative());
    }

    #[test]
    fn bigint_gcd_divides_both(a in any::<i32>(), b in any::<i32>()) {
        let g = big(a as i64).gcd(&big(b as i64));
        if !g.is_zero() {
            prop_assert!((big(a as i64) % &g).is_zero());
            prop_assert!((big(b as i64) % &g).is_zero());
        } else {
            prop_assert_eq!(a, 0);
            prop_assert_eq!(b, 0);
        }
    }

    #[test]
    fn bigint_parse_round_trip(a in any::<i128>()) {
        let v = BigInt::from(a);
        let parsed: BigInt = v.to_string().parse().unwrap();
        prop_assert_eq!(parsed, v);
    }

    #[test]
    fn rational_field_axioms(
        p1 in -1000i64..1000, q1 in 1i64..60,
        p2 in -1000i64..1000, q2 in 1i64..60,
        p3 in -1000i64..1000, q3 in 1i64..60,
    ) {
        let a = rat(p1, q1);
        let b = rat(p2, q2);
        let c = rat(p3, q3);
        prop_assert_eq!(&a + &b, &b + &a);
        prop_assert_eq!(&a * &b, &b * &a);
        prop_assert_eq!(&(&a + &b) + &c, &a + &(&b + &c));
        prop_assert_eq!(&(&a * &b) * &c, &a * &(&b * &c));
        prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
        prop_assert_eq!(&a - &a, Rational::zero());
        if !b.is_zero() {
            prop_assert_eq!(&(&a / &b) * &b, a);
        }
    }

    #[test]
    fn rational_ordering_total(
        p1 in -100i64..100, q1 in 1i64..30,
        p2 in -100i64..100, q2 in 1i64..30,
    ) {
        let a = rat(p1, q1);
        let b = rat(p2, q2);
        let diff = &a - &b;
        match a.cmp(&b) {
            std::cmp::Ordering::Less => prop_assert!(diff.is_negative()),
            std::cmp::Ordering::Equal => prop_assert!(diff.is_zero()),
            std::cmp::Ordering::Greater => prop_assert!(diff.is_positive()),
        }
    }

    #[test]
    fn rational_floor_ceil_bracket(p in -5000i64..5000, q in 1i64..200) {
        let x = rat(p, q);
        let fl = Rational::from(x.floor());
        let ce = Rational::from(x.ceil());
        prop_assert!(fl <= x && x <= ce);
        prop_assert!(&ce - &fl <= Rational::one());
        if x.is_integer() {
            prop_assert_eq!(fl, ce);
        }
    }
}

/// Reference implementation of a field operation straight over [`BigInt`]
/// components — the path every value takes when it does not fit the inline
/// small representation. Agreement with the `Rational` operators proves the
/// small fast path and the promotion logic compute the same field.
fn via_bigint(a: &Rational, b: &Rational, op: char) -> Rational {
    let (an, ad) = (a.numer(), a.denom());
    let (bn, bd) = (b.numer(), b.denom());
    match op {
        '+' => Rational::new(&an * &bd + &bn * &ad, &ad * &bd),
        '-' => Rational::new(&an * &bd - &bn * &ad, &ad * &bd),
        '*' => Rational::new(&an * &bn, &ad * &bd),
        '/' => Rational::new(&an * &bd, &ad * &bn),
        _ => unreachable!(),
    }
}

/// Full-range numerators hit the `i64` overflow boundaries (`i64::MIN`,
/// products near `2^126`), so promotion and demotion both fire.
fn boundary_rational() -> impl Strategy<Value = Rational> {
    (any::<u8>(), any::<i64>(), any::<i64>()).prop_map(|(sel, p, q)| {
        let p = match sel % 4 {
            0 => i64::MIN,
            1 => i64::MAX,
            2 => i64::MAX - (p.unsigned_abs() % 9) as i64,
            _ => p,
        };
        let q = match (sel / 4) % 4 {
            0 => i64::MIN,
            1 => i64::MAX,
            2 => 1 + (q.unsigned_abs() % 15) as i64,
            _ if q == 0 => 1,
            _ => q,
        };
        rat(p, q)
    })
}

proptest! {
    #[test]
    fn small_big_agreement(
        a in boundary_rational(),
        b in boundary_rational(),
        c in boundary_rational(),
    ) {
        // Force mixed representations: products of boundary values promote.
        let big = &a * &b;
        for (x, y) in [(&a, &b), (&big, &c), (&a, &big)] {
            prop_assert_eq!(x + y, via_bigint(x, y, '+'));
            prop_assert_eq!(x - y, via_bigint(x, y, '-'));
            prop_assert_eq!(x * y, via_bigint(x, y, '*'));
            if !y.is_zero() {
                prop_assert_eq!(x / y, via_bigint(x, y, '/'));
            }
            // Ordering agrees with the sign of the exact difference.
            let diff = via_bigint(x, y, '-');
            match x.cmp(y) {
                std::cmp::Ordering::Less => prop_assert!(diff.is_negative()),
                std::cmp::Ordering::Equal => prop_assert!(diff.is_zero()),
                std::cmp::Ordering::Greater => prop_assert!(diff.is_positive()),
            }
        }
    }

    #[test]
    fn representation_is_canonical(a in boundary_rational(), b in boundary_rational()) {
        // A value is stored inline iff both reduced components fit i64 —
        // the invariant that keeps derived Eq/Hash structural.
        for x in [&a * &b, &a + &b, a.recip_or_zero()] {
            let fits = x.numer().to_i64().is_some() && x.denom().to_i64().is_some();
            prop_assert_eq!(x.as_small().is_some(), fits, "non-canonical repr for {}", x);
            if let Some((n, d)) = x.as_small() {
                prop_assert_eq!(BigInt::from(n), x.numer());
                prop_assert_eq!(BigInt::from(d), x.denom());
            }
            // Round-trip through the BigInt constructor lands on the same
            // representation (Eq is structural).
            prop_assert_eq!(Rational::new(x.numer(), x.denom()), x);
        }
    }
}

/// `recip` that maps zero to zero, so strategies need no zero filter.
trait RecipOrZero {
    fn recip_or_zero(&self) -> Rational;
}

impl RecipOrZero for Rational {
    fn recip_or_zero(&self) -> Rational {
        if self.is_zero() {
            Rational::zero()
        } else {
            self.recip()
        }
    }
}
