//! Transversals (hitting sets) and fractional transversals
//! (Definitions 5.3 and 6.22): `tau`, `tau*`, and the duality
//! `rho*(H) = tau*(H^d)` that powers Corollary 5.5 and Theorem 6.23.

use arith::Rational;
use hypergraph::{Hypergraph, VertexSet};
use lp::{Cmp, LinearProgram, LpResult};

/// A fractional vertex cover (fractional transversal): one weight per vertex.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FractionalTransversal {
    /// Total weight `Σ_v w(v)`.
    pub weight: Rational,
    /// `w(v)` per vertex index.
    pub weights: Vec<Rational>,
}

impl FractionalTransversal {
    /// `vsupp(w)`: vertices with non-zero weight (Definition 5.3).
    pub fn support(&self) -> Vec<usize> {
        self.weights
            .iter()
            .enumerate()
            .filter(|(_, w)| !w.is_zero())
            .map(|(v, _)| v)
            .collect()
    }
}

/// `tau*(H)`: minimum-weight fractional vertex cover (every edge receives
/// total weight >= 1). Always feasible because edges are non-empty.
pub fn fractional_transversal(h: &Hypergraph) -> FractionalTransversal {
    let mut prog = LinearProgram::minimize(h.num_vertices());
    for v in 0..h.num_vertices() {
        prog.set_objective(v, Rational::one());
    }
    for e in h.edges() {
        let coeffs = e.iter().map(|v| (v, Rational::one())).collect();
        prog.add_constraint(coeffs, Cmp::Ge, Rational::one());
    }
    match prog.solve() {
        LpResult::Optimal { value, solution } => FractionalTransversal {
            weight: value,
            weights: solution,
        },
        other => unreachable!("transversal LP cannot be {other:?}"),
    }
}

/// `tau*(H)` as a value.
pub fn tau_star(h: &Hypergraph) -> Rational {
    fractional_transversal(h).weight
}

/// `tau(H)`: minimum-cardinality transversal by branch-and-bound.
pub fn tau(h: &Hypergraph) -> usize {
    let mut best = greedy_transversal(h).len();
    let alive: Vec<usize> = (0..h.num_edges()).collect();
    let mut chosen = Vec::new();
    branch(h, &alive, &mut chosen, &mut best);
    best
}

fn greedy_transversal(h: &Hypergraph) -> Vec<usize> {
    let mut hit = vec![false; h.num_edges()];
    let mut out = Vec::new();
    loop {
        let Some((_, v)) = (0..h.num_vertices())
            .map(|v| {
                let gain = h.incident_edges(v).iter().filter(|&&e| !hit[e]).count();
                (gain, v)
            })
            .filter(|&(gain, _)| gain > 0)
            .max()
        else {
            return out;
        };
        out.push(v);
        for &e in h.incident_edges(v) {
            hit[e] = true;
        }
    }
}

fn branch(h: &Hypergraph, alive: &[usize], chosen: &mut Vec<usize>, best: &mut usize) {
    if chosen.len() >= *best {
        return;
    }
    // Pick the smallest un-hit edge and branch on its vertices.
    let Some(&e) = alive.iter().min_by_key(|&&e| h.edge(e).len()) else {
        *best = chosen.len();
        return;
    };
    for v in h.edge(e).iter() {
        chosen.push(v);
        let rest: Vec<usize> = alive
            .iter()
            .copied()
            .filter(|&e2| !h.edge(e2).contains(v))
            .collect();
        branch(h, &rest, chosen, best);
        chosen.pop();
    }
}

/// A transversal as a vertex set, exact minimum.
pub fn minimum_transversal(h: &Hypergraph) -> VertexSet {
    // Re-run the branch-and-bound keeping the witness.
    let mut best_set: Option<Vec<usize>> = Some(greedy_transversal(h));
    let mut best = best_set.as_ref().map_or(usize::MAX, |s| s.len());
    fn rec(
        h: &Hypergraph,
        alive: &[usize],
        chosen: &mut Vec<usize>,
        best: &mut usize,
        best_set: &mut Option<Vec<usize>>,
    ) {
        if chosen.len() >= *best {
            return;
        }
        let Some(&e) = alive.iter().min_by_key(|&&e| h.edge(e).len()) else {
            *best = chosen.len();
            *best_set = Some(chosen.clone());
            return;
        };
        for v in h.edge(e).iter() {
            chosen.push(v);
            let rest: Vec<usize> = alive
                .iter()
                .copied()
                .filter(|&e2| !h.edge(e2).contains(v))
                .collect();
            rec(h, &rest, chosen, best, best_set);
            chosen.pop();
        }
    }
    let alive: Vec<usize> = (0..h.num_edges()).collect();
    rec(h, &alive, &mut Vec::new(), &mut best, &mut best_set);
    VertexSet::from_iter(best_set.unwrap_or_default())
}

/// The transversal integrality gap `tigap(H) = tau(H)/tau*(H)`
/// (Definition 6.22).
pub fn tigap(h: &Hypergraph) -> Rational {
    Rational::from(tau(h)) / tau_star(h)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fractional::rho_star;
    use arith::rat;
    use hypergraph::{dual, generators};

    #[test]
    fn triangle_transversals() {
        let h = generators::cycle(3);
        assert_eq!(tau(&h), 2);
        assert_eq!(tau_star(&h), rat(3, 2));
        assert_eq!(tigap(&h), rat(4, 3));
    }

    #[test]
    fn star_needs_only_center() {
        let h = generators::star(6);
        assert_eq!(tau(&h), 1);
        assert_eq!(tau_star(&h), Rational::one());
        let t = minimum_transversal(&h);
        assert_eq!(t.to_vec(), vec![0]);
    }

    #[test]
    fn duality_rho_star_equals_tau_star_of_dual() {
        // rho*(H) = tau*(H^d) — exercised exactly on several families.
        for h in [
            generators::cycle(5),
            generators::clique(5),
            generators::example_4_3(),
            generators::example_5_1(4),
            generators::random_bip(10, 7, 2, 4, 3),
        ] {
            let d = dual::dual(&h);
            assert_eq!(rho_star(&h).unwrap(), tau_star(&d));
        }
    }

    #[test]
    fn transversal_weight_below_integral() {
        for seed in 0..4u64 {
            let h = generators::random_bounded_degree(10, 8, 3, 3, seed);
            assert!(tau_star(&h) <= Rational::from(tau(&h)));
        }
    }

    #[test]
    fn minimum_transversal_hits_everything() {
        for seed in 0..4u64 {
            let h = generators::random_bip(10, 8, 2, 4, seed);
            let t = minimum_transversal(&h);
            assert_eq!(t.len(), tau(&h));
            for e in h.edges() {
                assert!(e.intersects(&t));
            }
        }
    }
}
