//! Fractional edge covers `rho*` (Definition 2.2) via exact LP.

use arith::Rational;
use hypergraph::{Hypergraph, VertexSet};
use lp::{Cmp, LinearProgram, LpResult};

/// An (optimal) fractional edge cover: one weight per edge of the
/// hypergraph, plus its total weight.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FractionalCover {
    /// `weight(γ) = Σ_e γ(e)`.
    pub weight: Rational,
    /// `γ(e)` per edge index (length = number of edges).
    pub weights: Vec<Rational>,
}

impl FractionalCover {
    /// `supp(γ)`: indices of edges with non-zero weight.
    pub fn support(&self) -> Vec<usize> {
        self.weights
            .iter()
            .enumerate()
            .filter(|(_, w)| !w.is_zero())
            .map(|(e, _)| e)
            .collect()
    }

    /// `B(γ)`: the vertices covered with total weight >= 1 (Section 2.2).
    pub fn covered_set(&self, h: &Hypergraph) -> VertexSet {
        covered_vertices(h, &self.weights)
    }
}

/// `max_e |e ∩ bag|`: the largest number of bag vertices any single edge
/// covers. Since a cover's total coverage satisfies
/// `Σ_e γ(e)·|e ∩ bag| >= |bag|`, this yields the counting lower bounds
/// `rho*(bag) >= |bag| / bag_rank` and `rho(bag) >= ⌈|bag| / bag_rank⌉`
/// that gate the width searches' pricing. Zero iff no edge meets the bag.
pub fn bag_rank(h: &Hypergraph, bag: &VertexSet) -> usize {
    (0..h.num_edges())
        .map(|e| h.edge(e).intersection_len(bag))
        .max()
        .unwrap_or(0)
}

/// A scattered-set lower bound on cover prices: any set of bag vertices
/// that pairwise share no edge have disjoint incident edge sets, and each
/// needs incident weight `>= 1`, so `rho*(bag) >=` its size (and a greedy
/// maximal such set is found in one pass over the bag). Precomputes the
/// closed neighborhoods once so the per-bag bound is a few block ops.
pub struct ScatterBound {
    /// `nbrs[v] = ⋃ {e : v ∈ e}` — every vertex reachable from `v` in one
    /// edge (including `v` itself when it is not isolated).
    nbrs: Vec<VertexSet>,
}

impl ScatterBound {
    /// Precomputes the closed neighborhoods of `h`.
    pub fn new(h: &Hypergraph) -> Self {
        let mut nbrs = vec![VertexSet::new(); h.num_vertices()];
        for e in 0..h.num_edges() {
            let edge = h.edge(e);
            for v in edge.iter() {
                nbrs[v].union_with(edge);
            }
        }
        ScatterBound { nbrs }
    }

    /// Greedy maximal scattered subset of `bag`: a valid lower bound on
    /// `rho*(bag)` (hence on `rho(bag)`).
    pub fn lower_bound(&self, bag: &VertexSet) -> usize {
        let mut blocked = VertexSet::new();
        let mut count = 0;
        for v in bag.iter() {
            if !blocked.contains(v) {
                count += 1;
                blocked.union_with(&self.nbrs[v]);
            }
        }
        count
    }

    /// True iff [`ScatterBound::lower_bound`] would reach `t`, stopping at
    /// the `t`-th scattered vertex instead of completing the greedy pass —
    /// the admission gates only compare the bound against a threshold, and
    /// most streamed bags cross it within their first few vertices. Each
    /// scattered vertex is found block-wise (one masked scan, not a
    /// per-vertex walk), so the common `t = 2` rejection costs two scans.
    pub fn at_least(&self, bag: &VertexSet, t: usize) -> bool {
        if t == 0 {
            return true;
        }
        let mut blocked = VertexSet::new();
        let mut count = 0;
        while let Some(v) = bag.first_not_in(&blocked) {
            count += 1;
            if count >= t {
                return true;
            }
            blocked.union_with(&self.nbrs[v]);
        }
        false
    }

    /// [`ScatterBound::at_least`] against the rational threshold `⌈n/d⌉`
    /// (`n, d > 0`) without ever computing the ceiling: an integer count
    /// crosses it exactly when `count·d >= n`, so the 128-bit division a
    /// `threshold` call would pay on every streamed candidate becomes one
    /// multiply per scattered vertex.
    pub fn at_least_ratio(&self, bag: &VertexSet, n: i64, d: i64) -> bool {
        debug_assert!(n > 0 && d > 0);
        let mut blocked = VertexSet::new();
        let mut count: i128 = 0;
        while let Some(v) = bag.first_not_in(&blocked) {
            count += 1;
            if count * d as i128 >= n as i128 {
                return true;
            }
            blocked.union_with(&self.nbrs[v]);
        }
        false
    }
}

/// Total weight incident to `v`, accumulated by reference (no per-edge
/// clones — this runs once per vertex on every cover check).
fn incident_weight(h: &Hypergraph, weights: &[Rational], v: usize) -> Rational {
    let mut total = Rational::zero();
    for &e in h.incident_edges(v) {
        total = &total + &weights[e];
    }
    total
}

/// `B(γ)` for an arbitrary edge-weight function.
pub fn covered_vertices(h: &Hypergraph, weights: &[Rational]) -> VertexSet {
    let mut out = VertexSet::new();
    for v in 0..h.num_vertices() {
        if incident_weight(h, weights, v) >= Rational::one() {
            out.insert(v);
        }
    }
    out
}

/// True iff `weights` is a fractional edge cover of `target`. Checks the
/// target vertices directly instead of materializing the full covered set.
pub fn is_fractional_cover(h: &Hypergraph, weights: &[Rational], target: &VertexSet) -> bool {
    target
        .iter()
        .all(|v| incident_weight(h, weights, v) >= Rational::one())
}

/// Minimum-weight fractional edge cover of `target ⊆ V(H)` using only the
/// edges of `h`. Returns `None` when some target vertex lies in no edge.
///
/// The optimum returned by the exact simplex is a *basic* solution, so by
/// (the dual of) Füredi's theorem (Corollary 5.5) its support automatically
/// satisfies `|supp(γ)| <= degree(H[target]) · rho*(target)`.
pub fn fractional_cover(h: &Hypergraph, target: &VertexSet) -> Option<FractionalCover> {
    if target.is_empty() {
        return Some(FractionalCover {
            weight: Rational::zero(),
            weights: vec![Rational::zero(); h.num_edges()],
        });
    }
    // Only edges intersecting the target can contribute.
    let useful = h.edges_intersecting(target);
    let col_of: std::collections::HashMap<usize, usize> = useful
        .iter()
        .enumerate()
        .map(|(col, &e)| (e, col))
        .collect();
    let mut prog = LinearProgram::minimize(useful.len());
    for col in 0..useful.len() {
        prog.set_objective(col, Rational::one());
    }
    for v in target.iter() {
        let coeffs: Vec<(usize, Rational)> = h
            .incident_edges(v)
            .iter()
            .filter_map(|e| col_of.get(e).map(|&col| (col, Rational::one())))
            .collect();
        if coeffs.is_empty() {
            return None; // v is not coverable
        }
        prog.add_constraint(coeffs, Cmp::Ge, Rational::one());
    }
    match prog.solve() {
        LpResult::Optimal { value, solution } => {
            let mut weights = vec![Rational::zero(); h.num_edges()];
            for (col, &e) in useful.iter().enumerate() {
                weights[e] = solution[col].clone();
            }
            debug_assert!(is_fractional_cover(h, &weights, target));
            Some(FractionalCover {
                weight: value,
                weights,
            })
        }
        // Covering LPs with all-ones costs are feasible iff every vertex is
        // coverable (checked above) and never unbounded.
        other => unreachable!("covering LP cannot be {other:?}"),
    }
}

/// `rho*(H)`: minimum weight of a fractional edge cover of all of `V(H)`.
/// Returns `None` when `H` has isolated vertices.
pub fn rho_star(h: &Hypergraph) -> Option<Rational> {
    fractional_cover(h, &h.all_vertices()).map(|c| c.weight)
}

#[cfg(test)]
mod tests {
    use super::*;
    use arith::rat;
    use hypergraph::generators;

    #[test]
    fn lemma_2_3_even_cliques() {
        // rho(K_2n) = rho*(K_2n) = n.
        for n in 1..5usize {
            let h = generators::clique(2 * n);
            assert_eq!(rho_star(&h), Some(Rational::from(n)));
        }
    }

    #[test]
    fn odd_cliques_are_properly_fractional() {
        // rho*(K_m) = m/2 for odd m >= 3.
        for m in [3i64, 5, 7] {
            let h = generators::clique(m as usize);
            assert_eq!(rho_star(&h), Some(rat(m, 2)));
        }
    }

    #[test]
    fn example_5_1_weight_and_support() {
        for n in 2..8usize {
            let h = generators::example_5_1(n);
            let c = fractional_cover(&h, &h.all_vertices()).unwrap();
            assert_eq!(c.weight, Rational::from(2usize) - rat(1, n as i64));
            // The unique optimum uses all n+1 edges (Example 5.1).
            assert_eq!(c.support().len(), n + 1, "n = {n}");
            assert_eq!(c.covered_set(&h), h.all_vertices());
        }
    }

    #[test]
    fn partial_targets() {
        let h = generators::cycle(5);
        // A single vertex costs exactly 1.
        let t = VertexSet::from_iter([2]);
        assert_eq!(fractional_cover(&h, &t).unwrap().weight, Rational::one());
        // The empty set costs 0.
        let none = fractional_cover(&h, &VertexSet::new()).unwrap();
        assert!(none.weight.is_zero());
    }

    #[test]
    fn uncoverable_target_rejected() {
        let h = hypergraph::Hypergraph::from_edges(3, vec![vec![0, 1]]);
        let t = VertexSet::from_iter([2]);
        assert_eq!(fractional_cover(&h, &t), None);
        assert_eq!(rho_star(&h), None);
    }

    #[test]
    fn acyclic_instances_cost_number_of_leaves_at_most() {
        let h = generators::star(6);
        // One edge covers {center, leaf}; covering all 5 leaves needs all 5
        // edges fully: rho* = 5 - epsilon? No: each leaf needs weight 1 on
        // its unique edge, so rho* = 5.
        assert_eq!(rho_star(&h), Some(Rational::from(5usize)));
    }

    #[test]
    fn triangle_fractional_cover_is_three_halves() {
        assert_eq!(rho_star(&generators::cycle(3)), Some(rat(3, 2)));
    }
}
