//! Integral edge covers `rho` (Definition 2.1) by branch-and-bound over the
//! covering ILP, plus the greedy ln(n)-approximation used for the
//! O(k·log k) pipeline of Theorem 6.23.

use hypergraph::{Hypergraph, VertexSet};

/// An (optimal) integral edge cover.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IntegralCover {
    /// Indices of the chosen edges (`λ(e) = 1`).
    pub edges: Vec<usize>,
}

impl IntegralCover {
    /// `weight(λ)` = number of chosen edges.
    pub fn weight(&self) -> usize {
        self.edges.len()
    }

    /// `B(λ)`: union of the chosen edges.
    pub fn covered_set(&self, h: &Hypergraph) -> VertexSet {
        h.union_of_edges(self.edges.iter().copied())
    }
}

/// Minimum-cardinality set of edges covering `target`. Exact
/// branch-and-bound (the problem is NP-hard in general; bags are small).
/// Returns `None` if some target vertex lies in no edge.
pub fn integral_cover(h: &Hypergraph, target: &VertexSet) -> Option<IntegralCover> {
    integral_cover_bounded(h, target, usize::MAX)
}

/// As [`integral_cover`] but abandons branches of size >= `limit`;
/// returns `None` if no cover smaller than `limit` exists.
pub fn integral_cover_bounded(
    h: &Hypergraph,
    target: &VertexSet,
    limit: usize,
) -> Option<IntegralCover> {
    for v in target.iter() {
        if h.incident_edges(v).is_empty() {
            return None;
        }
    }
    // Greedy upper bound to prime the search.
    let mut best: Option<Vec<usize>> = greedy_cover(h, target).map(|c| c.edges);
    if let Some(b) = &best {
        if b.len() >= limit {
            best = None;
        }
    }
    let mut chosen = Vec::new();
    branch(h, target.clone(), &mut chosen, &mut best, limit);
    best.map(|edges| IntegralCover { edges })
}

fn branch(
    h: &Hypergraph,
    uncovered: VertexSet,
    chosen: &mut Vec<usize>,
    best: &mut Option<Vec<usize>>,
    limit: usize,
) {
    let bound = best.as_ref().map_or(limit, |b| b.len().min(limit));
    if chosen.len() >= bound {
        return;
    }
    let Some(v) = pick_most_constrained(h, &uncovered) else {
        // Everything covered: record improvement.
        *best = Some(chosen.clone());
        return;
    };
    for &e in h.incident_edges(v) {
        chosen.push(e);
        let mut rest = uncovered.clone();
        rest.difference_with(h.edge(e));
        branch(h, rest, chosen, best, limit);
        chosen.pop();
    }
}

/// The uncovered vertex with the fewest covering edges (fail-first order).
fn pick_most_constrained(h: &Hypergraph, uncovered: &VertexSet) -> Option<usize> {
    uncovered.iter().min_by_key(|&v| h.incident_edges(v).len())
}

/// `rho(H)`: the edge cover number. `None` if `H` has isolated vertices.
pub fn rho(h: &Hypergraph) -> Option<usize> {
    integral_cover(h, &h.all_vertices()).map(|c| c.weight())
}

/// Greedy set cover of `target`: repeatedly pick the edge covering the most
/// still-uncovered target vertices. Classical `H_n <= ln n + 1`
/// approximation — this is the integrality-gap side of Theorem 6.23.
pub fn greedy_cover(h: &Hypergraph, target: &VertexSet) -> Option<IntegralCover> {
    let mut uncovered = target.clone();
    let mut edges = Vec::new();
    while !uncovered.is_empty() {
        let best = (0..h.num_edges()).max_by_key(|&e| h.edge(e).intersection(&uncovered).len())?;
        let gain = h.edge(best).intersection(&uncovered).len();
        if gain == 0 {
            return None; // some vertex is uncoverable
        }
        edges.push(best);
        uncovered.difference_with(h.edge(best));
    }
    Some(IntegralCover { edges })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypergraph::generators;

    #[test]
    fn lemma_2_3_integral_side() {
        // rho(K_2n) = n: a perfect matching.
        for n in 1..5usize {
            let h = generators::clique(2 * n);
            assert_eq!(rho(&h), Some(n));
        }
    }

    #[test]
    fn odd_cliques_round_up() {
        for m in [3usize, 5, 7] {
            let h = generators::clique(m);
            assert_eq!(rho(&h), Some(m.div_ceil(2)));
        }
    }

    #[test]
    fn integral_at_least_fractional() {
        use crate::fractional::rho_star;
        for h in [
            generators::cycle(5),
            generators::clique(5),
            generators::example_5_1(4),
            generators::example_4_3(),
        ] {
            let frac = rho_star(&h).unwrap();
            let int = rho(&h).unwrap();
            assert!(arith::Rational::from(int) >= frac);
        }
    }

    #[test]
    fn greedy_is_a_cover_and_not_much_worse() {
        for seed in 0..5u64 {
            let h = generators::random_bip(12, 8, 2, 4, seed);
            let target = h.all_vertices();
            let g = greedy_cover(&h, &target).unwrap();
            assert!(target.is_subset(&g.covered_set(&h)));
            let opt = integral_cover(&h, &target).unwrap();
            assert!(g.weight() >= opt.weight());
            // ln(12) + 1 < 3.5
            assert!(g.weight() <= opt.weight() * 4);
        }
    }

    #[test]
    fn bounded_search_cuts_off() {
        let h = generators::clique(6); // rho = 3
        assert!(integral_cover_bounded(&h, &h.all_vertices(), 3).is_none());
        assert!(integral_cover_bounded(&h, &h.all_vertices(), 4).is_some());
    }

    #[test]
    fn empty_target_is_free() {
        let h = generators::cycle(4);
        let c = integral_cover(&h, &VertexSet::new()).unwrap();
        assert_eq!(c.weight(), 0);
    }

    #[test]
    fn uncoverable_vertex_detected() {
        let h = hypergraph::Hypergraph::from_edges(3, vec![vec![0, 1]]);
        assert_eq!(integral_cover(&h, &VertexSet::from_iter([2])), None);
        assert_eq!(greedy_cover(&h, &VertexSet::from_iter([2])), None);
    }

    #[test]
    fn example_4_3_needs_three_edges_for_everything() {
        // The 10 vertices of H0 can be covered by 3 edges... actually the
        // 8-ring plus hubs: each edge has <= 3 vertices, 10 vertices need
        // >= 4 edges.
        let h = generators::example_4_3();
        let c = integral_cover(&h, &h.all_vertices()).unwrap();
        assert_eq!(c.weight(), 4);
    }
}
