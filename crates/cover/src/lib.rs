//! Edge covers and transversals (Sections 2.2, 5 and 6.2 of the paper).
//!
//! * [`integral`] — edge cover number `rho` (ILP via branch-and-bound) and
//!   the greedy ln(n)-approximation.
//! * [`fractional`] — fractional edge cover number `rho*` via exact LP.
//! * [`cache`] — concurrent sharded `ρ`/`ρ*` price caches shared by the
//!   width-search strategies (each distinct bag is priced once per search).
//! * [`pricing`] — pooled simplex workspaces solving `ρ*` through the
//!   packing dual (single-phase, warm-startable, allocation-free).
//! * [`transversal`] — `tau`, `tau*`, and the integrality gap `tigap`.
//! * [`support`] — Füredi's bounded-support theorem (Corollary 5.5) and the
//!   Lemma 5.6 support-reduction transformation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod fractional;
pub mod integral;
pub mod mem;
pub mod pricing;
pub mod support;
pub mod transversal;

pub use cache::{
    rho_priced, rho_star_priced, Claim, PricedRho, PricedRhoStar, RhoCache, RhoStarCache,
    ShardedCache,
};
pub use fractional::{
    bag_rank, covered_vertices, fractional_cover, is_fractional_cover, rho_star, FractionalCover,
    ScatterBound,
};
pub use integral::{greedy_cover, integral_cover, integral_cover_bounded, rho, IntegralCover};
pub use mem::MemSize;
pub use pricing::{rho_star_priced_with, PricingContext, PricingPool};
pub use support::{bound_support, furedi_bound};
pub use transversal::{
    fractional_transversal, minimum_transversal, tau, tau_star, tigap, FractionalTransversal,
};
