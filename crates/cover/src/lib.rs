//! Edge covers and transversals (Sections 2.2, 5 and 6.2 of the paper).
//!
//! * [`integral`] — edge cover number `rho` (ILP via branch-and-bound) and
//!   the greedy ln(n)-approximation.
//! * [`fractional`] — fractional edge cover number `rho*` via exact LP.
//! * [`transversal`] — `tau`, `tau*`, and the integrality gap `tigap`.
//! * [`support`] — Füredi's bounded-support theorem (Corollary 5.5) and the
//!   Lemma 5.6 support-reduction transformation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fractional;
pub mod integral;
pub mod support;
pub mod transversal;

pub use fractional::{
    covered_vertices, fractional_cover, is_fractional_cover, rho_star, FractionalCover,
};
pub use integral::{greedy_cover, integral_cover, integral_cover_bounded, rho, IntegralCover};
pub use support::{bound_support, furedi_bound};
pub use transversal::{
    fractional_transversal, minimum_transversal, tau, tau_star, tigap, FractionalTransversal,
};
