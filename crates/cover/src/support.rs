//! Bounded supports (Section 5): Füredi's theorem, Corollary 5.5 and the
//! Lemma 5.6 transformation that rewrites any fractional edge cover into one
//! with `|supp(γ)| <= k·d` covering at least the same vertices.

use crate::fractional::{covered_vertices, fractional_cover, FractionalCover};
use arith::Rational;
use hypergraph::{properties, Hypergraph, VertexSet};
use std::collections::HashMap;

/// Lemma 5.6, one node's worth: given an edge-weight function `γ` on `h`
/// (arbitrary, with `B(γ)` possibly large), produce `γ'` with
///
/// * `B(γ) ⊆ B(γ')`,
/// * `weight(γ') <= weight(γ)`, and
/// * `|supp(γ')| <= weight(γ) · degree(H_u)` where `H_u` is the
///   subhypergraph induced by `B(γ)` on `supp(γ)` — in particular
///   `<= k·d` when `weight(γ) <= k` and `degree(H) <= d`.
///
/// The construction follows the paper: restrict the support edges to
/// `B(γ)`, merge duplicate restrictions ("originators"), solve the covering
/// LP optimally on the reduced subhypergraph (the simplex optimum is basic,
/// so Füredi's bound applies), then push each weight back to one originator.
pub fn bound_support(h: &Hypergraph, weights: &[Rational]) -> FractionalCover {
    let b_gamma = covered_vertices(h, weights);
    if b_gamma.is_empty() {
        return FractionalCover {
            weight: Rational::zero(),
            weights: vec![Rational::zero(); h.num_edges()],
        };
    }
    let support: Vec<usize> = weights
        .iter()
        .enumerate()
        .filter(|(_, w)| !w.is_zero())
        .map(|(e, _)| e)
        .collect();

    // Build H_u = (B(γ), {e ∩ B(γ) | e ∈ supp(γ)}) with originator tracking.
    let mut restriction_of: HashMap<VertexSet, usize> = HashMap::new();
    let mut restricted_edges: Vec<Vec<usize>> = Vec::new();
    let mut originator: Vec<usize> = Vec::new();
    let renumber: HashMap<usize, usize> = b_gamma
        .iter()
        .enumerate()
        .map(|(new, old)| (old, new))
        .collect();
    for &e in &support {
        let restricted = h.edge(e).intersection(&b_gamma);
        if restricted.is_empty() {
            continue;
        }
        let next = restricted_edges.len();
        let idx = *restriction_of.entry(restricted.clone()).or_insert(next);
        if idx == next {
            restricted_edges.push(restricted.iter().map(|v| renumber[&v]).collect());
            originator.push(e);
        }
    }
    let hu = Hypergraph::from_edges(b_gamma.len(), restricted_edges);
    let optimal = fractional_cover(&hu, &hu.all_vertices())
        .expect("B(γ) is covered by supp(γ) restrictions by construction");

    // Push weights back to one originator per reduced edge.
    let mut out = vec![Rational::zero(); h.num_edges()];
    for (reduced, w) in optimal.weights.iter().enumerate() {
        if !w.is_zero() {
            out[originator[reduced]] = w.clone();
        }
    }
    FractionalCover {
        weight: optimal.weight,
        weights: out,
    }
}

/// Checks the Füredi/Corollary 5.5 inequality for a cover of `target`:
/// `|supp(γ)| <= d · rho*` where `d` is the degree of the induced
/// subhypergraph. Returns `(support_size, bound)`.
pub fn furedi_bound(h: &Hypergraph, target: &VertexSet) -> Option<(usize, Rational)> {
    let cover = fractional_cover(h, target)?;
    let (induced, _, _) = h.induced(target);
    let d = properties::degree(&induced);
    let bound = Rational::from(d) * cover.weight.clone();
    Some((cover.support().len(), bound))
}

#[cfg(test)]
mod tests {
    use super::*;
    use arith::rat;
    use hypergraph::generators;

    #[test]
    fn bound_support_preserves_coverage_and_weight() {
        for seed in 0..6u64 {
            let h = generators::random_bounded_degree(12, 9, 3, 4, seed);
            // Start from a deliberately wasteful cover: weight 1 on every edge.
            let silly = vec![Rational::one(); h.num_edges()];
            let covered_before = covered_vertices(&h, &silly);
            let improved = bound_support(&h, &silly);
            let covered_after = improved.covered_set(&h);
            assert!(covered_before.is_subset(&covered_after), "seed {seed}");
            let before: Rational = silly.iter().sum();
            assert!(improved.weight <= before);
            let d = hypergraph::properties::degree(&h);
            let bound = Rational::from(d) * improved.weight.clone();
            assert!(
                Rational::from(improved.support().len()) <= bound,
                "seed {seed}: support {} > d*rho* {}",
                improved.support().len(),
                bound
            );
        }
    }

    #[test]
    fn furedi_bound_on_example_5_1() {
        // degree d = n (vertex v0), rho* = 2 - 1/n, support = n + 1
        // and indeed n + 1 <= n * (2 - 1/n) = 2n - 1 for n >= 2.
        for n in 2..7usize {
            let h = generators::example_5_1(n);
            let (supp, bound) = furedi_bound(&h, &h.all_vertices()).unwrap();
            assert_eq!(supp, n + 1);
            assert_eq!(
                bound,
                Rational::from(n) * (Rational::from(2usize) - rat(1, n as i64))
            );
            assert!(Rational::from(supp) <= bound);
        }
    }

    #[test]
    fn zero_cover_stays_zero() {
        let h = generators::cycle(4);
        let zero = vec![Rational::zero(); h.num_edges()];
        let out = bound_support(&h, &zero);
        assert!(out.weight.is_zero());
        assert!(out.support().is_empty());
    }
}
