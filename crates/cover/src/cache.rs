//! Concurrent, sharded price caches for `ρ` / `ρ*` cover computations.
//!
//! The exact width searches price the *same* bag over and over: subset bags
//! repeat across `(component, connector)` states, and the strict-HD search
//! re-prices separators both while checking `ρ*(H_λ) <= k` and while
//! building the witness. Pricing (branch-and-bound set cover for `ρ`, an
//! exact-rational LP for `ρ*`) dominates those searches, so every strategy
//! routes its prices through one of these caches: each distinct key is
//! priced exactly once per search, from whichever worker thread gets there
//! first.
//!
//! [`ShardedCache`] is deliberately generic over key and value — the subset
//! strategies key on the bag [`VertexSet`], the strict-HD search keys on
//! the sorted separator edge list — and keeps hit/miss counters that the
//! strategy wrappers surface as `SearchStats::price_hits` /
//! `price_misses`.

use crate::{FractionalCover, IntegralCover};
use arith::Rational;
use hypergraph::{Hypergraph, VertexSet};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of shards (power of two). Sized so that the engine's worker
/// threads rarely contend on one lock.
const SHARDS: usize = 32;

/// A thread-safe memo table: `K -> V` behind `SHARDS` mutexes, with
/// hit/miss counters. `get_or_insert_with` runs the pricing closure
/// *outside* the shard lock, so a slow LP on one bag never blocks lookups
/// of other bags in the same shard; the cost is that two threads racing on
/// the same fresh key may both price it (the results are equal — pricing is
/// deterministic — and the duplicate is dropped).
pub struct ShardedCache<K, V> {
    shards: Vec<Mutex<HashMap<K, V>>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

impl<K: Eq + Hash, V: Clone> ShardedCache<K, V> {
    /// An empty cache.
    pub fn new() -> Self {
        ShardedCache {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
        }
    }

    fn shard(&self, key: &K) -> &Mutex<HashMap<K, V>> {
        let mut hasher = DefaultHasher::new();
        key.hash(&mut hasher);
        &self.shards[(hasher.finish() as usize) & (SHARDS - 1)]
    }

    /// The cached value for `key`, if present.
    pub fn get(&self, key: &K) -> Option<V> {
        let hit = self
            .shard(key)
            .lock()
            .expect("cache poisoned")
            .get(key)
            .cloned();
        match &hit {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        hit
    }

    /// Inserts a value computed elsewhere (e.g. after a bound-gated skip
    /// turned into a real price).
    pub fn insert(&self, key: K, value: V) {
        self.shard(&key)
            .lock()
            .expect("cache poisoned")
            .insert(key, value);
    }

    /// The cached value for `key`, pricing it with `price` on a miss. The
    /// closure runs without holding the shard lock.
    pub fn get_or_insert_with(&self, key: &K, price: impl FnOnce() -> V) -> V
    where
        K: Clone,
    {
        if let Some(hit) = {
            let shard = self.shard(key).lock().expect("cache poisoned");
            shard.get(key).cloned()
        } {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return hit;
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let value = price();
        self.shard(key)
            .lock()
            .expect("cache poisoned")
            .insert(key.clone(), value.clone());
        value
    }

    /// `(hits, misses)` so far.
    pub fn counters(&self) -> (usize, usize) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache poisoned").len())
            .sum()
    }

    /// True iff nothing has been cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<K: Eq + Hash, V: Clone> Default for ShardedCache<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

/// A priced integral cover: `(ρ(bag), minimum cover edges)`; `None` when
/// the bag is uncoverable.
pub type PricedRho = Option<(usize, Vec<usize>)>;

/// A priced fractional cover: `(ρ*(bag), sparse optimal weights)`; `None`
/// when the bag is uncoverable.
pub type PricedRhoStar = Option<(Rational, Vec<(usize, Rational)>)>;

/// Shared `ρ` price cache, keyed by the bag.
pub type RhoCache = ShardedCache<VertexSet, PricedRho>;

/// Shared `ρ*` price cache, keyed by the bag.
pub type RhoStarCache = ShardedCache<VertexSet, PricedRhoStar>;

/// `ρ(bag)` with its minimum cover, through the shared cache.
pub fn rho_priced(h: &Hypergraph, bag: &VertexSet, cache: &RhoCache) -> PricedRho {
    cache.get_or_insert_with(bag, || {
        crate::integral_cover(h, bag).map(|c: IntegralCover| (c.weight(), c.edges))
    })
}

/// `ρ*(bag)` with its sparse optimal weights, through the shared cache.
pub fn rho_star_priced(h: &Hypergraph, bag: &VertexSet, cache: &RhoStarCache) -> PricedRhoStar {
    cache.get_or_insert_with(bag, || {
        crate::fractional_cover(h, bag).map(|c: FractionalCover| {
            let weights: Vec<(usize, Rational)> = c
                .weights
                .into_iter()
                .enumerate()
                .filter(|(_, w)| !w.is_zero())
                .collect();
            (c.weight, weights)
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use arith::rat;
    use hypergraph::generators;

    #[test]
    fn prices_each_bag_once() {
        let h = generators::cycle(3);
        let cache = RhoStarCache::new();
        let bag = h.all_vertices();
        let first = rho_star_priced(&h, &bag, &cache).expect("coverable");
        assert_eq!(first.0, rat(3, 2));
        let again = rho_star_priced(&h, &bag, &cache).expect("coverable");
        assert_eq!(first, again);
        let (hits, misses) = cache.counters();
        assert_eq!((hits, misses), (1, 1));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn integral_prices_agree_with_direct_covers() {
        let h = generators::clique(5);
        let cache = RhoCache::new();
        let bag = h.all_vertices();
        let (w, edges) = rho_priced(&h, &bag, &cache).expect("coverable");
        assert_eq!(w, 3);
        assert_eq!(edges.len(), 3);
        let direct = crate::integral_cover(&h, &bag).expect("coverable");
        assert_eq!(direct.weight(), w);
    }

    #[test]
    fn uncoverable_bags_cache_their_failure() {
        let h = hypergraph::Hypergraph::from_edges(3, vec![vec![0, 1]]);
        let cache = RhoStarCache::new();
        let bag = VertexSet::from_iter([2]);
        assert_eq!(rho_star_priced(&h, &bag, &cache), None);
        assert_eq!(rho_star_priced(&h, &bag, &cache), None);
        assert_eq!(cache.counters(), (1, 1));
    }

    #[test]
    fn cache_is_shareable_across_threads() {
        let h = generators::clique(4);
        let cache = RhoStarCache::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for v in 0..h.num_vertices() {
                        let mut bag = h.all_vertices();
                        bag.remove(v);
                        let (w, _) = rho_star_priced(&h, &bag, &cache).expect("coverable");
                        assert_eq!(w, rat(3, 2));
                    }
                });
            }
        });
        assert_eq!(cache.len(), 4);
    }
}
