//! Concurrent, sharded memo tables with in-flight entry states.
//!
//! The exact width searches price the *same* bag over and over: subset bags
//! repeat across `(component, connector)` states, and the strict-HD search
//! re-prices separators both while checking `ρ*(H_λ) <= k` and while
//! building the witness. Pricing (branch-and-bound set cover for `ρ`, an
//! exact-rational LP for `ρ*`) dominates those searches, so every strategy
//! routes its prices through one of these caches — and the `solver` engine
//! uses the same table for its `(component, connector)` memo.
//!
//! Every entry is in one of two states: **`Pending`** (some thread claimed
//! the key and is computing it) or **`Done`** (the value is available). A
//! thread that hits a `Pending` key parks on the shard's condvar until the
//! owner [`ShardedCache::complete`]s (the wait returns the value — the key
//! was computed exactly once) or [`ShardedCache::abandon`]s (the waiter
//! re-claims and computes it itself). This in-flight dedup is what makes
//! the hit/miss counters deterministic under concurrency: each distinct key
//! is charged exactly one miss — the claim that ends up computing it — and
//! every other lookup is a hit, regardless of thread interleaving. (The
//! pre-entry-state version let two racing threads both price a fresh key,
//! double-counting the miss and duplicating the work.)
//!
//! [`ShardedCache`] is deliberately generic over key and value — the subset
//! strategies key on the bag [`VertexSet`], the strict-HD search keys on
//! the sorted separator edge list, the search engine on its memo key — and
//! keeps hit/miss counters that the strategy wrappers surface as
//! `SearchStats::price_hits` / `price_misses`.

use crate::{FractionalCover, IntegralCover};
use arith::Rational;
use hypergraph::fx::{FxHashMap, FxHasher};
use hypergraph::{Hypergraph, VertexSet};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

/// Number of shards (power of two). Sized so that the engine's worker
/// threads rarely contend on one lock.
const SHARDS: usize = 32;

/// Entry state: claimed-but-computing, or computed (tagged with the cache
/// generation it was completed in, so cross-call reuse is countable).
enum Slot<V> {
    /// A thread claimed the key and is computing the value; arrivals park
    /// on the shard condvar.
    Pending,
    /// The computed value, tagged with the generation that computed it.
    Done(V, u32),
}

/// One shard: the map plus the condvar `Pending` waiters park on. The
/// condvar is per shard, not per entry — completions are broadcast and
/// waiters re-check their own key, which keeps the entries allocation-free.
/// `waiters` (maintained under the map lock) lets the uncontended
/// completion path skip the notify entirely.
struct Shard<K, V> {
    map: Mutex<FxHashMap<K, Slot<V>>>,
    resolved: Condvar,
    waiters: AtomicUsize,
}

impl<K, V> Shard<K, V> {
    /// Wakes parked waiters, if any (the common case — no thread ever
    /// parked on this shard — costs one relaxed load).
    fn wake(&self) {
        if self.waiters.load(Ordering::Relaxed) > 0 {
            self.resolved.notify_all();
        }
    }
}

/// Outcome of [`ShardedCache::claim`].
pub enum Claim<V> {
    /// The key was vacant and is now `Pending` under this caller, who must
    /// [`ShardedCache::complete`] it (or [`ShardedCache::abandon`] it on a
    /// non-completing exit) — every other thread parks on it until then.
    Owner,
    /// The value, computed by this or another thread (the call blocks
    /// through a `Pending` entry rather than duplicating the work).
    Hit(V),
}

/// A thread-safe memo table: `K -> V` behind `SHARDS` mutexes, with
/// in-flight entry states and hit/miss counters. Computation always runs
/// *outside* the shard lock, so a slow LP on one bag never blocks lookups
/// of other bags in the same shard.
pub struct ShardedCache<K, V> {
    shards: Vec<Shard<K, V>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
    /// Hits on entries completed in an *earlier generation* — i.e. served
    /// from a previous search session sharing this cache (see
    /// [`ShardedCache::advance_generation`]).
    warm_hits: AtomicUsize,
    /// The current generation. Freshly constructed caches are generation 0
    /// and never count warm hits until a session boundary advances it.
    generation: AtomicU32,
}

impl<K: Eq + Hash, V: Clone> ShardedCache<K, V> {
    /// An empty cache.
    pub fn new() -> Self {
        ShardedCache {
            shards: (0..SHARDS)
                .map(|_| Shard {
                    map: Mutex::new(FxHashMap::default()),
                    resolved: Condvar::new(),
                    waiters: AtomicUsize::new(0),
                })
                .collect(),
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
            warm_hits: AtomicUsize::new(0),
            generation: AtomicU32::new(0),
        }
    }

    fn shard(&self, key: &K) -> &Shard<K, V> {
        let mut hasher = FxHasher::default();
        key.hash(&mut hasher);
        &self.shards[(hasher.finish() as usize) & (SHARDS - 1)]
    }

    /// Claims `key`: the caller either becomes the entry's owner (counted
    /// as the key's one miss) or gets the value (counted as a hit),
    /// parking through any in-flight `Pending` state. If the in-flight
    /// owner abandons, one parked waiter is promoted to owner.
    pub fn claim(&self, key: &K) -> Claim<V>
    where
        K: Clone,
    {
        self.claim_tracking_wait(key).0
    }

    /// As [`ShardedCache::claim`], also reporting whether the caller
    /// parked on an in-flight `Pending` entry before resolving — i.e.
    /// whether this lookup deduplicated against a computation that was
    /// already running. The whole-query result cache surfaces this as the
    /// `inflight_dedup` counter.
    pub fn claim_tracking_wait(&self, key: &K) -> (Claim<V>, bool)
    where
        K: Clone,
    {
        let shard = self.shard(key);
        let mut map = shard.map.lock().expect("cache poisoned");
        let mut waited = false;
        loop {
            match map.get(key) {
                Some(Slot::Done(v, gen)) => {
                    let v = v.clone();
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    if *gen < self.generation.load(Ordering::Relaxed) {
                        self.warm_hits.fetch_add(1, Ordering::Relaxed);
                    }
                    return (Claim::Hit(v), waited);
                }
                Some(Slot::Pending) => {
                    waited = true;
                    shard.waiters.fetch_add(1, Ordering::Relaxed);
                    map = shard.resolved.wait(map).expect("cache poisoned");
                    shard.waiters.fetch_sub(1, Ordering::Relaxed);
                }
                None => {
                    map.insert(key.clone(), Slot::Pending);
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    return (Claim::Owner, waited);
                }
            }
        }
    }

    /// Resolves a claim (or unconditionally stores a value computed
    /// elsewhere) and wakes every thread parked on the entry.
    pub fn complete(&self, key: K, value: V) {
        let gen = self.generation.load(Ordering::Relaxed);
        let shard = self.shard(&key);
        shard
            .map
            .lock()
            .expect("cache poisoned")
            .insert(key, Slot::Done(value, gen));
        shard.wake();
    }

    /// Releases a `Pending` claim without a value (the owner was canceled
    /// or is unwinding): the entry reverts to vacant and parked waiters
    /// race to re-claim it. A no-op on `Done` or vacant entries.
    pub fn abandon(&self, key: &K) {
        let shard = self.shard(key);
        let mut map = shard.map.lock().expect("cache poisoned");
        if matches!(map.get(key), Some(Slot::Pending)) {
            map.remove(key);
        }
        drop(map);
        shard.wake();
    }

    /// The cached value for `key`, if present, parking through any
    /// in-flight `Pending` state (an abandoned claim reads as absent).
    pub fn get(&self, key: &K) -> Option<V> {
        let shard = self.shard(key);
        let mut map = shard.map.lock().expect("cache poisoned");
        loop {
            match map.get(key) {
                Some(Slot::Done(v, gen)) => {
                    let v = v.clone();
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    if *gen < self.generation.load(Ordering::Relaxed) {
                        self.warm_hits.fetch_add(1, Ordering::Relaxed);
                    }
                    return Some(v);
                }
                Some(Slot::Pending) => {
                    shard.waiters.fetch_add(1, Ordering::Relaxed);
                    map = shard.resolved.wait(map).expect("cache poisoned");
                    shard.waiters.fetch_sub(1, Ordering::Relaxed);
                }
                None => {
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    return None;
                }
            }
        }
    }

    /// Inserts a value computed elsewhere (e.g. after a bound-gated skip
    /// turned into a real price). Equivalent to [`ShardedCache::complete`].
    pub fn insert(&self, key: K, value: V) {
        self.complete(key, value);
    }

    /// The cached value for `key`, computing it with `price` on a miss.
    /// The closure runs without holding the shard lock, and each distinct
    /// key is priced exactly once: concurrent callers of a fresh key park
    /// until the first finishes (if it panics, a parked caller is promoted
    /// and re-prices).
    pub fn get_or_insert_with(&self, key: &K, price: impl FnOnce() -> V) -> V
    where
        K: Clone,
    {
        match self.claim(key) {
            Claim::Hit(v) => v,
            Claim::Owner => {
                // Abandon on unwind so a panicking pricing closure cannot
                // strand waiters on a Pending entry forever.
                let guard = AbandonGuard {
                    cache: self,
                    key: Some(key),
                };
                let value = price();
                guard.disarm();
                self.complete(key.clone(), value.clone());
                value
            }
        }
    }

    /// `(hits, misses)` so far. With the entry-state protocol these are
    /// deterministic at any thread count: one miss per computed key, one
    /// hit per other lookup.
    pub fn counters(&self) -> (usize, usize) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Hits served from entries completed before the last
    /// [`ShardedCache::advance_generation`] — the cross-call reuse count
    /// when the cache outlives one search (the `prep` global price cache).
    /// Always 0 on a cache whose generation was never advanced.
    pub fn warm_hits(&self) -> usize {
        self.warm_hits.load(Ordering::Relaxed)
    }

    /// Marks a session boundary: entries completed so far become "warm",
    /// and hits on them are counted by [`ShardedCache::warm_hits`]. Called
    /// by the cross-call price registry each time a new search borrows the
    /// cache; per-search caches never call it.
    pub fn advance_generation(&self) {
        self.generation.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of cached (`Done`) entries.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.map
                    .lock()
                    .expect("cache poisoned")
                    .values()
                    .filter(|slot| matches!(slot, Slot::Done(..)))
                    .count()
            })
            .sum()
    }

    /// True iff nothing has been cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<K: Eq + Hash + crate::MemSize, V: Clone + crate::MemSize> ShardedCache<K, V> {
    /// Approximate resident bytes of the whole table: per-entry key/value
    /// estimates plus a flat per-entry map overhead, over the sharding
    /// skeleton. Feeds the registry's shared LRU byte budget.
    pub fn approx_bytes(&self) -> usize {
        // Hash-map bucket + slot-enum overhead per entry, beyond the
        // key/value payloads themselves.
        const ENTRY_OVERHEAD: usize = 48;
        let mut total = SHARDS * std::mem::size_of::<Shard<K, V>>();
        for shard in &self.shards {
            let map = shard.map.lock().expect("cache poisoned");
            for (k, slot) in map.iter() {
                total += ENTRY_OVERHEAD + k.approx_bytes();
                if let Slot::Done(v, _) = slot {
                    total += v.approx_bytes();
                }
            }
        }
        total
    }
}

/// Releases a claim on unwind unless disarmed (the happy path completes
/// the entry instead).
struct AbandonGuard<'c, K: Eq + Hash, V: Clone> {
    cache: &'c ShardedCache<K, V>,
    key: Option<&'c K>,
}

impl<K: Eq + Hash, V: Clone> AbandonGuard<'_, K, V> {
    fn disarm(mut self) {
        self.key = None;
    }
}

impl<K: Eq + Hash, V: Clone> Drop for AbandonGuard<'_, K, V> {
    fn drop(&mut self) {
        if let Some(key) = self.key.take() {
            self.cache.abandon(key);
        }
    }
}

impl<K: Eq + Hash, V: Clone> Default for ShardedCache<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

/// A priced integral cover: `(ρ(bag), minimum cover edges)`; `None` when
/// the bag is uncoverable.
pub type PricedRho = Option<(usize, Vec<usize>)>;

/// A priced fractional cover: `(ρ*(bag), sparse optimal weights)`; `None`
/// when the bag is uncoverable.
pub type PricedRhoStar = Option<(Rational, Vec<(usize, Rational)>)>;

/// Shared `ρ` price cache, keyed by the bag.
pub type RhoCache = ShardedCache<VertexSet, PricedRho>;

/// Shared `ρ*` price cache, keyed by the bag.
pub type RhoStarCache = ShardedCache<VertexSet, PricedRhoStar>;

/// `ρ(bag)` with its minimum cover, through the shared cache.
pub fn rho_priced(h: &Hypergraph, bag: &VertexSet, cache: &RhoCache) -> PricedRho {
    cache.get_or_insert_with(bag, || {
        // The span covers only the miss path: a cache hit does no
        // pricing work worth a record.
        let _span = obs::span!("price", kind = "rho", bag = bag.len());
        crate::integral_cover(h, bag).map(|c: IntegralCover| (c.weight(), c.edges))
    })
}

/// `ρ*(bag)` with its sparse optimal weights, through the shared cache.
pub fn rho_star_priced(h: &Hypergraph, bag: &VertexSet, cache: &RhoStarCache) -> PricedRhoStar {
    cache.get_or_insert_with(bag, || {
        let _span = obs::span!("price", kind = "rho_star", bag = bag.len());
        crate::fractional_cover(h, bag).map(|c: FractionalCover| {
            let weights: Vec<(usize, Rational)> = c
                .weights
                .into_iter()
                .enumerate()
                .filter(|(_, w)| !w.is_zero())
                .collect();
            (c.weight, weights)
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use arith::rat;
    use hypergraph::generators;

    #[test]
    fn prices_each_bag_once() {
        let h = generators::cycle(3);
        let cache = RhoStarCache::new();
        let bag = h.all_vertices();
        let first = rho_star_priced(&h, &bag, &cache).expect("coverable");
        assert_eq!(first.0, rat(3, 2));
        let again = rho_star_priced(&h, &bag, &cache).expect("coverable");
        assert_eq!(first, again);
        let (hits, misses) = cache.counters();
        assert_eq!((hits, misses), (1, 1));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn integral_prices_agree_with_direct_covers() {
        let h = generators::clique(5);
        let cache = RhoCache::new();
        let bag = h.all_vertices();
        let (w, edges) = rho_priced(&h, &bag, &cache).expect("coverable");
        assert_eq!(w, 3);
        assert_eq!(edges.len(), 3);
        let direct = crate::integral_cover(&h, &bag).expect("coverable");
        assert_eq!(direct.weight(), w);
    }

    #[test]
    fn uncoverable_bags_cache_their_failure() {
        let h = hypergraph::Hypergraph::from_edges(3, vec![vec![0, 1]]);
        let cache = RhoStarCache::new();
        let bag = VertexSet::from_iter([2]);
        assert_eq!(rho_star_priced(&h, &bag, &cache), None);
        assert_eq!(rho_star_priced(&h, &bag, &cache), None);
        assert_eq!(cache.counters(), (1, 1));
    }

    #[test]
    fn cache_is_shareable_across_threads() {
        let h = generators::clique(4);
        let cache = RhoStarCache::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for v in 0..h.num_vertices() {
                        let mut bag = h.all_vertices();
                        bag.remove(v);
                        let (w, _) = rho_star_priced(&h, &bag, &cache).expect("coverable");
                        assert_eq!(w, rat(3, 2));
                    }
                });
            }
        });
        assert_eq!(cache.len(), 4);
    }

    #[test]
    fn claim_then_complete_resolves_waiters() {
        let cache: ShardedCache<u32, u32> = ShardedCache::new();
        assert!(matches!(cache.claim(&7), Claim::Owner));
        std::thread::scope(|scope| {
            let waiter = scope.spawn(|| match cache.claim(&7) {
                Claim::Hit(v) => v,
                Claim::Owner => panic!("key is pending under the main thread"),
            });
            // The waiter parks on the Pending entry until the owner
            // completes; completion hands it the value.
            cache.complete(7, 42);
            assert_eq!(waiter.join().expect("waiter"), 42);
        });
        assert_eq!(cache.get(&7), Some(42));
        // One miss (the claim that computed), two hits (waiter + get).
        assert_eq!(cache.counters(), (2, 1));
    }

    #[test]
    fn abandon_promotes_a_waiter_to_owner() {
        let cache: ShardedCache<u32, u32> = ShardedCache::new();
        assert!(matches!(cache.claim(&3), Claim::Owner));
        std::thread::scope(|scope| {
            let waiter = scope.spawn(|| match cache.claim(&3) {
                Claim::Owner => {
                    cache.complete(3, 9);
                    true
                }
                Claim::Hit(_) => false,
            });
            cache.abandon(&3);
            assert!(waiter.join().expect("waiter"), "waiter re-claims");
        });
        assert_eq!(cache.get(&3), Some(9));
    }

    #[test]
    fn generations_count_cross_call_hits() {
        let cache: ShardedCache<u32, u32> = ShardedCache::new();
        cache.complete(1, 10);
        assert_eq!(cache.get(&1), Some(10));
        assert_eq!(cache.warm_hits(), 0, "same-generation hits are not warm");
        cache.advance_generation();
        assert_eq!(cache.get(&1), Some(10));
        assert_eq!(cache.warm_hits(), 1, "pre-boundary entries read as warm");
        cache.complete(2, 20);
        assert_eq!(cache.get(&2), Some(20));
        assert_eq!(
            cache.warm_hits(),
            1,
            "entries of the current generation stay cold"
        );
    }

    #[test]
    fn racing_computations_charge_one_miss_per_key() {
        // The counter-determinism contract: however many threads race into
        // one fresh key, exactly one miss is charged and the value is
        // computed once.
        let cache: ShardedCache<u32, u32> = ShardedCache::new();
        let computed = AtomicUsize::new(0);
        let workers = 8;
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    let v = cache.get_or_insert_with(&11, || {
                        computed.fetch_add(1, Ordering::Relaxed);
                        std::thread::sleep(std::time::Duration::from_millis(5));
                        23
                    });
                    assert_eq!(v, 23);
                });
            }
        });
        assert_eq!(computed.load(Ordering::Relaxed), 1, "priced exactly once");
        let (hits, misses) = cache.counters();
        assert_eq!(misses, 1);
        assert_eq!(hits, workers - 1);
    }
}
