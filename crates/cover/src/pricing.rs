//! Pooled LP pricing contexts for the `ρ*` hot path.
//!
//! The engine prices each bag through the **packing dual** of the covering
//! LP: `max { 1·y : y(e ∩ bag) <= 1 for every useful edge e, y >= 0 }`.
//! By strong duality its optimum *is* `ρ*(bag)`, and because every row is
//! `<=` with unit right-hand side the all-slack basis is feasible — the
//! solve is single-phase, with no artificial variables and typically far
//! fewer pivots than the primal's two phases. The optimal cover weights
//! come back for free as the duals of the packing rows
//! ([`lp::SimplexWorkspace::dual_values`]): the reduced cost of edge `e`'s
//! slack column at the optimum is exactly `γ(e)`.
//!
//! Two usage patterns, with different determinism obligations:
//!
//! * **Parallel engine pricing** ([`PricingPool`] + [`PricingContext::price`]):
//!   each bag is solved *cold*, so its pivot count is a pure function of the
//!   bag. The sharded `ρ*` cache prices every distinct bag exactly once, so
//!   the pooled totals (`lp_pivots`, `lp_cold_solves`) are sums over the
//!   priced-bag set — byte-identical at every thread count, no matter which
//!   worker's context solved which bag. Contexts are pooled for their
//!   *buffers* (tableau rows, constraint `Vec`s, column scratch), not their
//!   basis.
//! * **Sequential pricing** ([`PricingContext::price_warm`]): single-threaded
//!   pricers (heuristic upper bounds, elimination orderings) walk related
//!   bags in a deterministic order, so they may carry the previous bag's
//!   basis forward; neighboring bags share most packing rows and the
//!   re-seated basis usually needs only a handful of pivots.

use crate::cache::PricedRhoStar;
use crate::RhoStarCache;
use arith::Rational;
use hypergraph::{Hypergraph, VertexSet};
use lp::{Cmp, LinearProgram, LpResult, LpStats, SimplexWorkspace};
use std::sync::Mutex;

/// A reusable `ρ*` pricing context: a simplex workspace plus the scratch
/// buffers needed to build packing LPs without per-bag allocations.
pub struct PricingContext {
    ws: SimplexWorkspace,
    /// The packing program, rebuilt in place per bag (rows recycled).
    lp: LinearProgram,
    /// Scratch: vertex -> packing column (`usize::MAX` when absent).
    col_of: Vec<usize>,
    /// Scratch: union of the useful edges, for the coverability check.
    covered: VertexSet,
}

impl Default for PricingContext {
    fn default() -> Self {
        Self::new()
    }
}

impl PricingContext {
    /// An empty context.
    pub fn new() -> Self {
        PricingContext {
            ws: SimplexWorkspace::new(),
            lp: LinearProgram::maximize(0),
            col_of: Vec::new(),
            covered: VertexSet::new(),
        }
    }

    /// The LP counters accumulated by every solve through this context.
    pub fn stats(&self) -> LpStats {
        self.ws.stats()
    }

    /// `ρ*(target)` with its sparse optimal cover, via a *cold* dual
    /// packing solve. Per-bag-pure: the pivot count depends only on
    /// `(h, target)`, never on what this context solved before.
    pub fn price(&mut self, h: &Hypergraph, target: &VertexSet) -> PricedRhoStar {
        self.price_impl(h, target, false)
    }

    /// As [`Self::price`], but warm-starting from the previous bag's
    /// retained basis. Only for deterministic sequential pricing — the
    /// pivot count depends on the solve *sequence*.
    pub fn price_warm(&mut self, h: &Hypergraph, target: &VertexSet) -> PricedRhoStar {
        self.price_impl(h, target, true)
    }

    fn price_impl(&mut self, h: &Hypergraph, target: &VertexSet, warm: bool) -> PricedRhoStar {
        let _span = obs::span!("price", kind = "rho_star", warm = warm, bag = target.len());
        if target.is_empty() {
            return Some((Rational::zero(), Vec::new()));
        }
        let useful = h.edges_intersecting(target);
        // Coverability: every target vertex must lie in some edge.
        self.covered.clear();
        for &e in &useful {
            self.covered.union_with(h.edge(e));
        }
        if !target.is_subset(&self.covered) {
            return None;
        }
        // One packing variable per target vertex, in iteration order.
        self.col_of.resize(h.num_vertices(), usize::MAX);
        let mut cols = 0usize;
        for v in target.iter() {
            self.col_of[v] = cols;
            cols += 1;
        }
        self.lp.reset(cols);
        for c in 0..cols {
            self.lp.set_objective(c, Rational::one());
        }
        for &e in &useful {
            // Rows are labeled by the global edge id, so a warm basis
            // re-seats onto the rows both bags share.
            let row = self.lp.begin_row(e as u64, Cmp::Le, Rational::one());
            for v in h.edge(e).iter() {
                if target.contains(v) {
                    row.push((self.col_of[v], Rational::one()));
                }
            }
        }
        for v in target.iter() {
            self.col_of[v] = usize::MAX;
        }
        let res = if warm {
            self.ws.solve_warm(&self.lp)
        } else {
            self.ws.solve(&self.lp)
        };
        match res {
            LpResult::Optimal { value, .. } => {
                let weights: Vec<(usize, Rational)> = useful
                    .iter()
                    .zip(self.ws.dual_values())
                    .filter(|(_, w)| !w.is_zero())
                    .map(|(&e, w)| (e, w))
                    .collect();
                debug_assert!(target.iter().all(|v| {
                    let mut total = Rational::zero();
                    for (e, w) in &weights {
                        if h.edge(*e).contains(v) {
                            total = &total + w;
                        }
                    }
                    total >= Rational::one()
                }));
                debug_assert_eq!(
                    weights.iter().map(|(_, w)| w.clone()).sum::<Rational>(),
                    value
                );
                Some((value, weights))
            }
            // Every packing variable is bounded by some row (coverability
            // was checked), and the all-slack basis is feasible.
            other => unreachable!("packing LP of a coverable bag cannot be {other}"),
        }
    }
}

/// A shared pool of [`PricingContext`]s, one checked out per in-flight
/// engine solve. Buffers survive across bags and workers; counters are
/// summed over the whole pool.
#[derive(Default)]
pub struct PricingPool {
    contexts: Mutex<Vec<PricingContext>>,
}

impl PricingPool {
    /// An empty pool.
    pub fn new() -> Self {
        PricingPool::default()
    }

    /// Runs `f` with a pooled context, creating one on demand.
    pub fn with<R>(&self, f: impl FnOnce(&mut PricingContext) -> R) -> R {
        let mut ctx = self
            .contexts
            .lock()
            .expect("pricing pool poisoned")
            .pop()
            .unwrap_or_default();
        let out = f(&mut ctx);
        self.contexts
            .lock()
            .expect("pricing pool poisoned")
            .push(ctx);
        out
    }

    /// The LP counters summed over every pooled context. Call after the
    /// search quiesces (no context checked out); with the engine's
    /// exactly-once pricing the totals are schedule-independent.
    pub fn stats(&self) -> LpStats {
        let mut total = LpStats::default();
        for ctx in self.contexts.lock().expect("pricing pool poisoned").iter() {
            total.merge(&ctx.stats());
        }
        total
    }
}

/// `ρ*(bag)` with its sparse optimal weights through the shared cache,
/// priced on a miss by a pooled dual-packing solve. The cache's in-flight
/// dedup guarantees each distinct bag is priced exactly once, which is
/// what makes the pool's counters deterministic under concurrency.
pub fn rho_star_priced_with(
    h: &Hypergraph,
    bag: &VertexSet,
    cache: &RhoStarCache,
    pool: &PricingPool,
) -> PricedRhoStar {
    cache.get_or_insert_with(bag, || pool.with(|ctx| ctx.price(h, bag)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use arith::rat;
    use hypergraph::generators;

    #[test]
    fn dual_packing_agrees_with_the_primal_cover() {
        let mut ctx = PricingContext::new();
        for h in [
            generators::cycle(3),
            generators::cycle(5),
            generators::clique(5),
            generators::example_4_3(),
            generators::example_5_1(4),
            generators::star(6),
        ] {
            let target = h.all_vertices();
            let (weight, weights) = ctx.price(&h, &target).expect("coverable");
            let primal = crate::fractional_cover(&h, &target).expect("coverable");
            assert_eq!(weight, primal.weight);
            // The recovered weights are a feasible cover of optimal weight.
            let mut dense = vec![Rational::zero(); h.num_edges()];
            for (e, w) in &weights {
                dense[*e] = w.clone();
            }
            assert!(crate::is_fractional_cover(&h, &dense, &target));
        }
        assert_eq!(ctx.stats().cold_solves, 6);
        assert_eq!(ctx.stats().warm_starts, 0);
    }

    #[test]
    fn empty_and_uncoverable_targets() {
        let mut ctx = PricingContext::new();
        let h = hypergraph::Hypergraph::from_edges(3, vec![vec![0, 1]]);
        assert_eq!(
            ctx.price(&h, &VertexSet::new()),
            Some((Rational::zero(), Vec::new()))
        );
        assert_eq!(ctx.price(&h, &VertexSet::from_iter([2])), None);
        // Neither path touched the LP.
        assert_eq!(ctx.stats(), LpStats::default());
    }

    #[test]
    fn warm_sequence_matches_cold_values() {
        // Walk the clique's (n-1)-subsets warm and cold; values agree and
        // the warm path records warm starts.
        let h = generators::clique(5);
        let mut warm = PricingContext::new();
        let mut cold = PricingContext::new();
        for v in 0..h.num_vertices() {
            let mut bag = h.all_vertices();
            bag.remove(v);
            let (ww, _) = warm.price_warm(&h, &bag).expect("coverable");
            let (cw, _) = cold.price(&h, &bag).expect("coverable");
            assert_eq!(ww, cw);
            assert_eq!(ww, rat(2, 1));
        }
        assert!(warm.stats().warm_starts >= 1);
        assert!(warm.stats().pivots <= cold.stats().pivots);
    }

    #[test]
    fn pool_prices_through_the_cache_exactly_once() {
        let h = generators::cycle(3);
        let cache = RhoStarCache::new();
        let pool = PricingPool::new();
        let bag = h.all_vertices();
        let first = rho_star_priced_with(&h, &bag, &cache, &pool).expect("coverable");
        assert_eq!(first.0, rat(3, 2));
        let again = rho_star_priced_with(&h, &bag, &cache, &pool).expect("coverable");
        assert_eq!(first, again);
        assert_eq!(cache.counters(), (1, 1));
        let stats = pool.stats();
        assert_eq!(stats.cold_solves, 1, "second lookup was a cache hit");
    }

    #[test]
    fn pool_counters_are_schedule_independent() {
        // Price the same bag family from many threads twice; totals match.
        let h = generators::clique(6);
        let run = || {
            let cache = RhoStarCache::new();
            let pool = PricingPool::new();
            std::thread::scope(|scope| {
                for _ in 0..4 {
                    scope.spawn(|| {
                        for v in 0..h.num_vertices() {
                            let mut bag = h.all_vertices();
                            bag.remove(v);
                            rho_star_priced_with(&h, &bag, &cache, &pool).expect("coverable");
                        }
                    });
                }
            });
            pool.stats()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
        assert_eq!(a.cold_solves, 6);
        assert_eq!(a.warm_starts, 0);
    }
}
