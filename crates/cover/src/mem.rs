//! Approximate heap-size accounting for cache entries.
//!
//! The cross-call registry in `prep` shares one byte budget between its
//! price caches and the whole-query result cache, evicting
//! least-recently-used fingerprints when the total estimate exceeds the
//! budget. [`MemSize`] is the estimate: a cheap, deterministic
//! approximation of an entry's resident bytes (shallow struct size plus
//! owned heap blocks), *not* an allocator-exact measurement — eviction
//! only needs totals that scale with reality.
//!
//! The trait lives in `cover` (the lowest crate that sees both
//! `hypergraph` and `arith`) so the price-cache value types and the
//! strategy crates' result types can all implement it without orphan-rule
//! contortions. [`crate::ShardedCache::approx_bytes`] folds it over a
//! whole cache.

use arith::Rational;
use hypergraph::VertexSet;
use std::mem::size_of;

/// Approximate resident bytes of a value: shallow size plus owned heap.
pub trait MemSize {
    /// The estimate. Deterministic for a given value; cheap enough to run
    /// on every registry access.
    fn approx_bytes(&self) -> usize;
}

macro_rules! shallow_mem_size {
    ($($t:ty),* $(,)?) => {$(
        impl MemSize for $t {
            fn approx_bytes(&self) -> usize {
                size_of::<$t>()
            }
        }
    )*};
}

shallow_mem_size!((), bool, u8, u16, u32, u64, u128, usize, i32, i64);

impl MemSize for String {
    fn approx_bytes(&self) -> usize {
        size_of::<String>() + self.capacity()
    }
}

impl<T: MemSize> MemSize for Box<T> {
    fn approx_bytes(&self) -> usize {
        size_of::<Box<T>>() + T::approx_bytes(self)
    }
}

impl<T: MemSize> MemSize for Option<T> {
    fn approx_bytes(&self) -> usize {
        match self {
            Some(v) => size_of::<Option<T>>() - size_of::<T>() + v.approx_bytes(),
            None => size_of::<Option<T>>(),
        }
    }
}

impl<T: MemSize> MemSize for Vec<T> {
    fn approx_bytes(&self) -> usize {
        let slack = self.capacity().saturating_sub(self.len()) * size_of::<T>();
        size_of::<Vec<T>>() + slack + self.iter().map(MemSize::approx_bytes).sum::<usize>()
    }
}

impl<A: MemSize, B: MemSize> MemSize for (A, B) {
    fn approx_bytes(&self) -> usize {
        self.0.approx_bytes() + self.1.approx_bytes()
    }
}

impl<A: MemSize, B: MemSize, C: MemSize> MemSize for (A, B, C) {
    fn approx_bytes(&self) -> usize {
        self.0.approx_bytes() + self.1.approx_bytes() + self.2.approx_bytes()
    }
}

impl MemSize for VertexSet {
    fn approx_bytes(&self) -> usize {
        // Two blocks live inline; larger sets spill to a heap Vec<u64>
        // sized by the highest set bit.
        let blocks = self.iter().last().map_or(0, |max| max / 64 + 1);
        size_of::<VertexSet>() + if blocks > 2 { blocks * 8 } else { 0 }
    }
}

impl MemSize for Rational {
    fn approx_bytes(&self) -> usize {
        if self.as_small().is_some() {
            size_of::<Rational>()
        } else {
            // Big tier: boxed (BigInt, BigInt). Limb counts are almost
            // always tiny on the pricing paths; charge the limb vectors
            // by actual magnitude.
            let limbs =
                |b: arith::BigInt| (b.to_f64().abs().max(1.0).log2() / 64.0).ceil() as usize;
            size_of::<Rational>()
                + 2 * size_of::<Vec<u64>>()
                + 8 * (limbs(self.numer()) + limbs(self.denom())).max(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arith::rat;

    #[test]
    fn scales_with_contents() {
        let small: Vec<usize> = vec![1, 2];
        let big: Vec<usize> = (0..100).collect();
        assert!(big.approx_bytes() > small.approx_bytes());

        let inline = VertexSet::from_iter([0, 5, 120]);
        let spilled = VertexSet::from_iter([0, 5, 700]);
        assert!(spilled.approx_bytes() > inline.approx_bytes());

        assert!(rat(3, 2).approx_bytes() >= size_of::<Rational>());
    }

    #[test]
    fn is_deterministic() {
        let v: Vec<(usize, Rational)> = vec![(3, rat(1, 2)), (7, rat(5, 3))];
        assert_eq!(v.approx_bytes(), v.approx_bytes());
    }
}
