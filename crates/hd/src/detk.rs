//! `det-k-decomp`: a deterministic implementation of the alternating
//! `k-decomp` algorithm of Gottlob, Leone, Scarcello \[27\] deciding
//! `Check(HD, k)` in polynomial time for fixed `k`.
//!
//! The recursion mirrors the paper's Algorithm 3 stripped of its fractional
//! extras: a call works on a pair `(C_r, R)` where `C_r` is a
//! `[B_r]`-component and `R = supp(λ_r)`; it guesses `S = supp(λ_s)` with
//! `|S| <= k` subject to
//!
//! * (2.b) `∀e ∈ edges(C_r): e ∩ V(R) ⊆ V(S)` — the connector
//!   `conn = V(R) ∩ ⋃ edges(C_r)` must be covered, and
//! * (2.c) `V(S) ∩ C_r ≠ ∅` — progress,
//!
//! then recurses on every `[V(S)]`-component inside `C_r`. Calls are
//! memoized on `(C_r, conn)`; witness bags are assembled top-down as
//! `B_s = V(S) ∩ (C_r ∪ B_r)` (the special condition then holds by
//! construction, cf. Lemmas 5.9–5.13 of \[27\]).

use decomp::{Decomposition, Node};
use hypergraph::{components, Hypergraph, VertexSet};
use std::collections::HashMap;

/// Decides `Check(HD, k)`: returns a hypertree decomposition of width
/// `<= k` if one exists, `None` otherwise.
pub fn check_hd(h: &Hypergraph, k: usize) -> Option<Decomposition> {
    assert!(k >= 1, "width bound must be positive");
    if h.has_isolated_vertices() {
        return None;
    }
    let mut search = Search {
        h,
        k,
        memo: HashMap::new(),
        plans: Vec::new(),
    };
    let root_comp = h.all_vertices();
    let plan = search.decompose(&root_comp, &VertexSet::new())?;
    Some(search.build_root(plan))
}

/// `hw(H)` by iterating `k = 1, 2, ...` up to `max_k`; returns the width and
/// a witness HD, or `None` if `hw(H) > max_k`.
pub fn hypertree_width(h: &Hypergraph, max_k: usize) -> Option<(usize, Decomposition)> {
    (1..=max_k).find_map(|k| check_hd(h, k).map(|d| (k, d)))
}

#[derive(Clone)]
struct Plan {
    sep: Vec<usize>,
    /// For every child: its component plus its plan index.
    children: Vec<(VertexSet, usize)>,
}

struct Search<'a> {
    h: &'a Hypergraph,
    k: usize,
    /// `(component, connector) -> plan index` (or failure).
    memo: HashMap<(VertexSet, VertexSet), Option<usize>>,
    plans: Vec<Plan>,
}

impl<'a> Search<'a> {
    /// Tries to decompose the `[B_r]`-component `comp` whose interface to
    /// the rest of the decomposition is covered by `V(R)`; `conn` is the
    /// relevant part `V(R) ∩ ⋃ edges(comp)`.
    fn decompose(&mut self, comp: &VertexSet, conn: &VertexSet) -> Option<usize> {
        let key = (comp.clone(), conn.clone());
        if let Some(res) = self.memo.get(&key) {
            return *res;
        }
        // Break cycles defensively (components shrink strictly, so genuine
        // recursion cannot revisit the key; a plain insert is enough).
        let comp_edges = self.h.edges_intersecting(comp);
        let neighborhood = self.h.union_of_edges(comp_edges.iter().copied());
        // Candidate separator edges: anything touching the component's
        // closed neighborhood (others can be dropped from any valid S
        // without affecting the checks or the components inside `comp`).
        let candidates: Vec<usize> = (0..self.h.num_edges())
            .filter(|&e| self.h.edge(e).intersects(&neighborhood))
            .collect();
        let mut chosen: Vec<usize> = Vec::new();
        let result = self.try_separators(comp, conn, &comp_edges, &candidates, 0, &mut chosen);
        self.memo.insert(key, result);
        result
    }

    /// DFS over separator subsets `S ⊆ candidates` with `|S| <= k`.
    fn try_separators(
        &mut self,
        comp: &VertexSet,
        conn: &VertexSet,
        comp_edges: &[usize],
        candidates: &[usize],
        start: usize,
        chosen: &mut Vec<usize>,
    ) -> Option<usize> {
        if !chosen.is_empty() {
            if let Some(plan) = self.check_separator(comp, conn, comp_edges, chosen) {
                return Some(plan);
            }
        }
        if chosen.len() == self.k {
            return None;
        }
        for (i, &e) in candidates.iter().enumerate().skip(start) {
            chosen.push(e);
            let res = self.try_separators(comp, conn, comp_edges, candidates, i + 1, chosen);
            chosen.pop();
            if res.is_some() {
                return res;
            }
        }
        None
    }

    /// Checks conditions (2.b)/(2.c) for `S = chosen` and recurses into the
    /// `[V(S)]`-components inside `comp`.
    fn check_separator(
        &mut self,
        comp: &VertexSet,
        conn: &VertexSet,
        comp_edges: &[usize],
        chosen: &[usize],
    ) -> Option<usize> {
        let vs = self.h.union_of_edges(chosen.iter().copied());
        // (2.b): conn ⊆ V(S).
        if !conn.is_subset(&vs) {
            return None;
        }
        // (2.c): V(S) ∩ comp ≠ ∅.
        if !vs.intersects(comp) {
            return None;
        }
        // Sub-components inside comp.
        let mut children = Vec::new();
        for sub in components::components(self.h, &vs) {
            if !sub.is_subset(comp) {
                continue;
            }
            let sub_edges = self.h.edges_intersecting(&sub);
            let mut sub_conn = VertexSet::new();
            for &e in &sub_edges {
                let mut part = self.h.edge(e).intersection(&vs);
                sub_conn.union_with(&part);
                part.clear();
            }
            let plan = self.decompose(&sub, &sub_conn)?;
            children.push((sub, plan));
        }
        // Every edge of the component region must be covered somewhere; the
        // recursion guarantees this for edges inside sub-components, and
        // edges of `comp_edges` fully inside V(S) are covered at this node.
        // Edges that are neither inside V(S) nor meeting any sub-component
        // inside comp would be lost — reject such separators.
        for &e in comp_edges {
            let edge = self.h.edge(e);
            if edge.is_subset(&vs) {
                continue;
            }
            let remainder = edge.difference(&vs);
            if !children.iter().any(|(sub, _)| remainder.is_subset(sub)) {
                return None;
            }
        }
        let plan = Plan {
            sep: chosen.to_vec(),
            children,
        };
        self.plans.push(plan);
        Some(self.plans.len() - 1)
    }

    /// Materializes the witness decomposition: `B_root = V(S_root)` and
    /// `B_s = V(S) ∩ (comp ∪ B_r)` below (cf. the witness-tree definition).
    fn build_root(&self, plan: usize) -> Decomposition {
        let plan_data = self.plans[plan].clone();
        let bag = self.h.union_of_edges(plan_data.sep.iter().copied());
        let mut d = Decomposition::new(Node::integral(bag.clone(), plan_data.sep.clone()));
        for (sub, child_plan) in &plan_data.children {
            self.attach(&mut d, 0, &bag, *child_plan, sub);
        }
        d
    }

    fn attach(
        &self,
        d: &mut Decomposition,
        parent: usize,
        parent_bag: &VertexSet,
        plan: usize,
        comp: &VertexSet,
    ) {
        let plan_data = self.plans[plan].clone();
        let vs = self.h.union_of_edges(plan_data.sep.iter().copied());
        let bag = vs.intersection(&comp.union(parent_bag));
        let id = d.add_child(parent, Node::integral(bag.clone(), plan_data.sep.clone()));
        for (sub, child_plan) in &plan_data.children {
            self.attach(d, id, &bag, *child_plan, sub);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decomp::validate;
    use hypergraph::generators;

    fn assert_hw(h: &Hypergraph, expected: usize) {
        if expected > 1 {
            assert!(check_hd(h, expected - 1).is_none(), "width {} should fail", expected - 1);
        }
        let d = check_hd(h, expected).unwrap_or_else(|| panic!("width {expected} should succeed"));
        assert_eq!(validate::validate_hd(h, &d), Ok(()), "{}", d.render(h));
        assert!(d.width() <= arith::Rational::from(expected));
    }

    #[test]
    fn acyclic_hypergraphs_have_width_1() {
        assert_hw(&generators::path(6), 1);
        assert_hw(&generators::star(5), 1);
        assert_hw(&generators::cq_chain(4, 3, 1), 1);
        assert_hw(&generators::cq_star(3, 2), 1);
    }

    #[test]
    fn cycles_have_width_2() {
        for n in 3..8 {
            assert_hw(&generators::cycle(n), 2);
        }
    }

    #[test]
    fn cliques_have_width_half_n() {
        assert_hw(&generators::clique(4), 2);
        assert_hw(&generators::clique(5), 3);
        assert_hw(&generators::clique(6), 3);
    }

    #[test]
    fn example_4_3_has_hypertree_width_3() {
        // The headline fact of Example 4.3: hw(H0) = 3 (while ghw = 2).
        let h = generators::example_4_3();
        assert_hw(&h, 3);
    }

    #[test]
    fn triangle_chain_width_2() {
        assert_hw(&generators::triangle_chain(3), 2);
    }

    #[test]
    fn grids_small_widths() {
        assert_hw(&generators::grid(2, 3), 2);
        assert_hw(&generators::grid(3, 3), 2);
    }

    #[test]
    fn hypertree_width_search() {
        let (w, d) = hypertree_width(&generators::cycle(5), 5).unwrap();
        assert_eq!(w, 2);
        assert_eq!(validate::validate_hd(&generators::cycle(5), &d), Ok(()));
        assert!(hypertree_width(&generators::clique(8), 3).is_none());
    }

    #[test]
    fn isolated_vertices_rejected() {
        let h = Hypergraph::from_edges(3, vec![vec![0, 1]]);
        assert!(check_hd(&h, 2).is_none());
    }

    #[test]
    fn random_corpus_round_trip() {
        for seed in 0..4u64 {
            let h = generators::random_bip(10, 7, 2, 3, seed);
            if let Some((w, d)) = hypertree_width(&h, 4) {
                assert_eq!(validate::validate_hd(&h, &d), Ok(()), "seed {seed}");
                assert!(d.width() <= arith::Rational::from(w));
            }
        }
    }
}
