//! `det-k-decomp`: a deterministic implementation of the alternating
//! `k-decomp` algorithm of Gottlob, Leone, Scarcello \[27\] deciding
//! `Check(HD, k)` in polynomial time for fixed `k`, expressed as a strategy
//! over the shared [`solver`] search engine.
//!
//! The engine works on pairs `(C_r, conn)` where `C_r` is a
//! `[B_r]`-component and `conn = V(R) ∩ ⋃ edges(C_r)`; the strategy guesses
//! `S = supp(λ_s)` with `|S| <= k` subject to
//!
//! * (2.b) `∀e ∈ edges(C_r): e ∩ V(R) ⊆ V(S)` — the connector must be
//!   covered (checked by the engine as `conn ⊆ bag`), and
//! * (2.c) `V(S) ∩ C_r ≠ ∅` — progress (engine-checked),
//!
//! and the engine recurses on every `[V(S)]`-component inside `C_r` with
//! memoization on `(C_r, conn)`. Splitting on the *full* `V(S)` (rather
//! than the clipped bag) is exactly what enforces the special condition:
//! witness bags are assembled top-down as `B_s = V(S) ∩ (C_r ∪ B_r)`
//! (cf. Lemmas 5.9–5.13 of \[27\]).

use arith::Rational;
use decomp::Decomposition;
use hypergraph::{Hypergraph, VertexSet};
use solver::{
    Admission, CandidateStream, EngineOptions, Guess, SearchContext, SearchState, SearchStats,
    WidthSolver,
};

/// Decides `Check(HD, k)`: returns a hypertree decomposition of width
/// `<= k` if one exists, `None` otherwise.
pub fn check_hd(h: &Hypergraph, k: usize) -> Option<Decomposition> {
    check_hd_with_stats(h, k, EngineOptions::default()).0
}

/// As [`check_hd`], also reporting the engine counters of this check.
/// `opts` pins the engine scheduling — `det-k-decomp` is a decision
/// strategy, so it runs sequentially unless [`EngineOptions::speculate`]
/// lets it race candidates across the worker pool.
///
/// Unless opted out (`opts.prep` / `HGTOOL_NO_PREP`), the instance first
/// runs through `prep`'s *decision* profile — duplicate-edge and
/// twin-vertex collapse only, the passes that provably preserve `hw`'s
/// special condition (no block splitting: re-rooting a block tree is not
/// special-condition-safe) — and the witness is lifted back to `h`.
pub fn check_hd_with_stats(
    h: &Hypergraph,
    k: usize,
    opts: EngineOptions,
) -> (Option<Decomposition>, SearchStats) {
    assert!(k >= 1, "width bound must be positive");
    if h.has_isolated_vertices() {
        return (None, SearchStats::default());
    }
    let warm = solver::pool_is_warm();
    let key = format!(
        "k={k};prep={};rp={};backend=auto",
        opts.prep, opts.reuse_prices
    );
    let reuse = opts.reuse_results && !opts.speculate;
    let (result, mut stats) = prep::cached_query(h, "result-hw-check", key, reuse, || {
        let (result, stats) = prep::run_decision(h, opts.prep, |block| {
            let (d, s) = check_hd_piece(block, k, opts);
            (d.map(|d| ((), d)), s)
        });
        (result.map(|(_, d)| d), stats)
    });
    stats.pool_reuse = usize::from(warm);
    (result, stats)
}

/// Runs `det-k-decomp` proper on an (already preprocessed) instance.
fn check_hd_piece(
    h: &Hypergraph,
    k: usize,
    opts: EngineOptions,
) -> (Option<Decomposition>, SearchStats) {
    let strategy = std::sync::Arc::new(DetK { k });
    let cx = SearchContext::with_options(opts);
    let result = cx.run(h, &strategy).map(|(_, d)| d);
    (result, cx.stats())
}

/// `hw(H)` by iterating `k = 1, 2, ...` up to `max_k`; returns the width and
/// a witness HD, or `None` if `hw(H) > max_k`.
pub fn hypertree_width(h: &Hypergraph, max_k: usize) -> Option<(usize, Decomposition)> {
    (1..=max_k).find_map(|k| check_hd(h, k).map(|d| (k, d)))
}

/// As [`hypertree_width`], also reporting the engine counters summed over
/// the `k = 1, 2, ...` checks. The prep pipeline (which is `k`-independent)
/// runs once up front; every check of the iteration searches the same
/// reduced instance and only the final witness is lifted.
pub fn hypertree_width_with_stats(
    h: &Hypergraph,
    max_k: usize,
    opts: EngineOptions,
) -> (Option<(usize, Decomposition)>, SearchStats) {
    if h.has_isolated_vertices() {
        return (None, SearchStats::default());
    }
    let _span = obs::span!(
        "solve",
        measure = "hw",
        vertices = h.num_vertices(),
        edges = h.num_edges()
    );
    let started = std::time::Instant::now();
    let warm = solver::pool_is_warm();
    let key = format!(
        "max_k={max_k};prep={};rp={};backend=auto",
        opts.prep, opts.reuse_prices
    );
    let reuse = opts.reuse_results && !opts.speculate;
    let (result, mut stats) = prep::cached_query(h, "result-hw", key, reuse, || {
        // The prep pipeline (which is `k`-independent) runs once around
        // the whole iteration; every check searches the same reduced
        // block and only the final witness is lifted.
        prep::run_decision(h, opts.prep, |block| {
            let mut total = SearchStats::default();
            for k in 1..=max_k {
                let (d, stats) = check_hd_piece(block, k, opts);
                total.merge(&stats);
                if let Some(d) = d {
                    return (Some((k, d)), total);
                }
                if let Some(sink) = prep::anytime::current_sink() {
                    // Anytime channel: a failed complete check at `k`
                    // certifies `hw > k` (the decision profile preserves
                    // `hw` exactly, so the block bound is the instance
                    // bound).
                    sink.report_lower(Rational::from(k + 1));
                }
            }
            (None, total)
        })
    });
    stats.pool_reuse = usize::from(warm);
    solve_metrics::latency().observe_us(started.elapsed().as_micros() as u64);
    (result, stats)
}

/// Process-lifetime solve metrics, observational only.
mod solve_metrics {
    use obs::metrics::{histogram_with_buckets, Histogram, DEFAULT_LATENCY_BUCKETS_S};
    use std::sync::{Arc, OnceLock};

    /// `hgtool_solve_latency_seconds{strategy="hw"}`.
    pub(super) fn latency() -> &'static Arc<Histogram> {
        static H: OnceLock<Arc<Histogram>> = OnceLock::new();
        H.get_or_init(|| {
            // Explicit bucket config: the µs-scale default grid,
            // spelled out here so re-tuning is a one-line change.
            histogram_with_buckets(
                "hgtool_solve_latency_seconds",
                "End-to-end exact width-solve latency by strategy",
                &[("strategy", "hw")],
                &DEFAULT_LATENCY_BUCKETS_S,
            )
        })
    }
}

/// The `det-k-decomp` strategy: separators are edge sets `S` with
/// `|S| <= k`, bags are `V(S)` (clipped by the engine at assembly), and the
/// component split runs on the full `V(S)`.
struct DetK {
    k: usize,
}

impl WidthSolver for DetK {
    type Cost = usize;

    fn is_decision(&self) -> bool {
        true
    }

    fn candidates<'a>(&'a self, h: &'a Hypergraph, state: SearchState<'a>) -> CandidateStream<'a> {
        // Candidate separator edges: anything touching the component's
        // closed neighborhood (others can be dropped from any valid S
        // without affecting the checks or the components inside `comp`).
        let neighborhood = h.union_of_edges(state.comp_edges.iter().copied());
        let candidates: Vec<usize> = (0..h.num_edges())
            .filter(|&e| h.edge(e).intersects(&neighborhood))
            .collect();
        // Combinatorial only — V(S) and the (2.b) check are deferred to
        // `admit`, and the subset enumeration is lazy, so the first-success
        // exit leaves the untried tail of the space unenumerated.
        CandidateStream::new(
            solver::stream_subsets_up_to(candidates, self.k).map(|sep| Guess {
                edges: sep,
                extra: VertexSet::new(),
            }),
        )
    }

    fn admit(
        &self,
        h: &Hypergraph,
        state: SearchState<'_>,
        guess: &Guess,
        _bound: Option<&usize>,
    ) -> Option<Admission<usize>> {
        let vs = h.union_of_edges(guess.edges.iter().copied());
        // (2.b): conn ⊆ V(S).
        if !state.conn.is_subset(&vs) {
            return None;
        }
        Some(Admission {
            split: vs.clone(),
            bag: vs,
            cost: guess.edges.len(),
            weights: guess.edges.iter().map(|&e| (e, Rational::one())).collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decomp::validate;
    use hypergraph::generators;

    fn assert_hw(h: &Hypergraph, expected: usize) {
        if expected > 1 {
            assert!(
                check_hd(h, expected - 1).is_none(),
                "width {} should fail",
                expected - 1
            );
        }
        let d = check_hd(h, expected).unwrap_or_else(|| panic!("width {expected} should succeed"));
        assert_eq!(validate::validate_hd(h, &d), Ok(()), "{}", d.render(h));
        assert!(d.width() <= arith::Rational::from(expected));
    }

    #[test]
    fn acyclic_hypergraphs_have_width_1() {
        assert_hw(&generators::path(6), 1);
        assert_hw(&generators::star(5), 1);
        assert_hw(&generators::cq_chain(4, 3, 1), 1);
        assert_hw(&generators::cq_star(3, 2), 1);
    }

    #[test]
    fn cycles_have_width_2() {
        for n in 3..8 {
            assert_hw(&generators::cycle(n), 2);
        }
    }

    #[test]
    fn cliques_have_width_half_n() {
        assert_hw(&generators::clique(4), 2);
        assert_hw(&generators::clique(5), 3);
        assert_hw(&generators::clique(6), 3);
    }

    #[test]
    fn example_4_3_has_hypertree_width_3() {
        // The headline fact of Example 4.3: hw(H0) = 3 (while ghw = 2).
        let h = generators::example_4_3();
        assert_hw(&h, 3);
    }

    #[test]
    fn triangle_chain_width_2() {
        assert_hw(&generators::triangle_chain(3), 2);
    }

    #[test]
    fn grids_small_widths() {
        assert_hw(&generators::grid(2, 3), 2);
        assert_hw(&generators::grid(3, 3), 2);
    }

    #[test]
    fn hypertree_width_search() {
        let (w, d) = hypertree_width(&generators::cycle(5), 5).unwrap();
        assert_eq!(w, 2);
        assert_eq!(validate::validate_hd(&generators::cycle(5), &d), Ok(()));
        assert!(hypertree_width(&generators::clique(8), 3).is_none());
    }

    #[test]
    fn isolated_vertices_rejected() {
        let h = Hypergraph::from_edges(3, vec![vec![0, 1]]);
        assert!(check_hd(&h, 2).is_none());
    }

    #[test]
    fn random_corpus_round_trip() {
        for seed in 0..4u64 {
            let h = generators::random_bip(10, 7, 2, 3, seed);
            if let Some((w, d)) = hypertree_width(&h, 4) {
                assert_eq!(validate::validate_hd(&h, &d), Ok(()), "seed {seed}");
                assert!(d.width() <= arith::Rational::from(w));
            }
        }
    }
}
