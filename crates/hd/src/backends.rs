//! The `hw` members of the width-backend portfolio.
//!
//! Both backends drive the same `det-k-decomp` check and differ only in
//! how they schedule the `k` probes, so widths *and* witnesses are
//! byte-identical (the winning witness is the deterministic
//! `check_hd` answer at the minimal `k`, whichever schedule found it)
//! and the two members even share per-`k` check results through the
//! `result-hw-check` cache:
//!
//! * `iterate` — the classic `k = 1, 2, ...` ladder, each failed check
//!   reporting `hw > k` as an anytime lower bound.
//! * `bisect` — binary search on `k` (monotone: a width-`k` HD implies a
//!   width-`k+1` HD), reporting a witnessed upper bound at every
//!   accepting probe; it reaches the answer in `O(log max_k)` checks
//!   when high-`k` probes are cheap relative to the `k`-ladder.

use crate::detk::{check_hd_with_stats, hypertree_width_with_stats};
use arith::Rational;
use hypergraph::Hypergraph;
use solver::backend::{Backend, BackendId, Measure, Outcome, RunCtl, WidthRequest};
use solver::SearchStats;

/// The `hw` portfolio, in admission order.
pub fn backends() -> Vec<Box<dyn Backend>> {
    vec![Box::new(Iterate), Box::new(Bisect)]
}

fn max_k_of(req: &WidthRequest) -> usize {
    match req.measure {
        Measure::Hw { max_k } => max_k,
        ref m => unreachable!("hw backend asked for {m:?}"),
    }
}

struct Iterate;

impl Backend for Iterate {
    fn id(&self) -> BackendId {
        "iterate"
    }

    fn run(&self, h: &Hypergraph, req: &WidthRequest, _ctl: &RunCtl) -> Outcome {
        let max_k = max_k_of(req);
        let (result, stats) = hypertree_width_with_stats(h, max_k, req.opts);
        match result {
            Some((w, d)) => Outcome::exact(self.id(), Rational::from(w), d, stats),
            // The ladder is complete up to `max_k`, so `None` certifies
            // `hw > max_k`.
            None => Outcome::certified_no(self.id(), stats),
        }
    }
}

struct Bisect;

impl Backend for Bisect {
    fn id(&self) -> BackendId {
        "bisect"
    }

    fn eligible(&self, _h: &Hypergraph, req: &WidthRequest) -> bool {
        // Below three candidate widths the ladder needs at most two
        // checks anyway; bisection can only reorder them.
        max_k_of(req) >= 3
    }

    fn run(&self, h: &Hypergraph, req: &WidthRequest, ctl: &RunCtl) -> Outcome {
        let max_k = max_k_of(req);
        let mut stats = SearchStats::default();
        // Invariant: every `k < lo` has been refuted, `best` holds the
        // accepting check at the smallest `k` probed so far (if any).
        let (mut lo, mut hi) = (1usize, max_k);
        let mut best = None;
        while lo <= hi {
            let mid = lo + (hi - lo) / 2;
            let (d, s) = check_hd_with_stats(h, mid, req.opts);
            stats.merge(&s);
            match d {
                Some(d) => {
                    ctl.sink.report_upper(Rational::from(mid), Some(&d));
                    best = Some((mid, d));
                    if mid == lo {
                        break;
                    }
                    hi = mid - 1;
                }
                None => {
                    ctl.sink.report_lower(Rational::from(mid + 1));
                    lo = mid + 1;
                }
            }
        }
        match best {
            Some((w, d)) => Outcome::exact(self.id(), Rational::from(w), d, stats),
            None => Outcome::certified_no(self.id(), stats),
        }
    }
}
