//! `Check(HD, k)` — hypertree decompositions of bounded width in polynomial
//! time, after Gottlob, Leone, Scarcello \[27\]. This is the engine that the
//! paper's Section 4 (GHD via subedge augmentation) and Section 5/6 (FHD
//! algorithms) build upon.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backends;
mod detk;

pub use detk::{check_hd, check_hd_with_stats, hypertree_width, hypertree_width_with_stats};
