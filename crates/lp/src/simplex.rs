//! Exact two-phase primal simplex over big rationals.
//!
//! All variables are implicitly non-negative, which matches every program in
//! the paper: fractional edge covers (Definition 2.2), fractional
//! transversals (Definition 6.22), and the auxiliary programs used to verify
//! Lemmas 3.5/3.6. Bland's rule guarantees termination without cycling, and
//! exact [`Rational`] pivots make every optimum a certified rational value —
//! crucial because widths such as `2 - 1/n` must be reproduced exactly.

#![allow(clippy::needless_range_loop)]

use arith::Rational;
use std::fmt;

/// Optimization direction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Sense {
    /// Minimize the objective.
    Minimize,
    /// Maximize the objective.
    Maximize,
}

/// Constraint comparison operator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Cmp {
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `=`
    Eq,
}

/// A single linear constraint `sum coeffs[i] * x_i  (cmp)  rhs`.
#[derive(Clone, Debug)]
pub struct Constraint {
    /// Sparse list of `(variable, coefficient)` pairs.
    pub coeffs: Vec<(usize, Rational)>,
    /// Comparison operator.
    pub cmp: Cmp,
    /// Right-hand side.
    pub rhs: Rational,
}

/// A linear program over non-negative variables.
#[derive(Clone, Debug)]
pub struct LinearProgram {
    sense: Sense,
    num_vars: usize,
    objective: Vec<Rational>,
    constraints: Vec<Constraint>,
}

/// Outcome of solving a [`LinearProgram`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LpResult {
    /// An optimal solution was found.
    Optimal {
        /// The optimal objective value.
        value: Rational,
        /// One optimal assignment for the original variables.
        solution: Vec<Rational>,
    },
    /// The feasible region is empty.
    Infeasible,
    /// The objective is unbounded over the feasible region.
    Unbounded,
}

impl LpResult {
    /// The optimal value, if any.
    pub fn value(&self) -> Option<&Rational> {
        match self {
            LpResult::Optimal { value, .. } => Some(value),
            _ => None,
        }
    }

    /// The optimal solution vector, if any.
    pub fn solution(&self) -> Option<&[Rational]> {
        match self {
            LpResult::Optimal { solution, .. } => Some(solution),
            _ => None,
        }
    }
}

impl fmt::Display for LpResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LpResult::Optimal { value, .. } => write!(f, "optimal({value})"),
            LpResult::Infeasible => write!(f, "infeasible"),
            LpResult::Unbounded => write!(f, "unbounded"),
        }
    }
}

impl LinearProgram {
    /// Creates a minimization program with `num_vars` non-negative variables.
    pub fn minimize(num_vars: usize) -> Self {
        Self::new(Sense::Minimize, num_vars)
    }

    /// Creates a maximization program with `num_vars` non-negative variables.
    pub fn maximize(num_vars: usize) -> Self {
        Self::new(Sense::Maximize, num_vars)
    }

    fn new(sense: Sense, num_vars: usize) -> Self {
        LinearProgram {
            sense,
            num_vars,
            objective: vec![Rational::zero(); num_vars],
            constraints: Vec::new(),
        }
    }

    /// Number of decision variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Sets the objective coefficient of variable `var`.
    pub fn set_objective(&mut self, var: usize, coeff: Rational) {
        self.objective[var] = coeff;
    }

    /// Adds `sum coeffs * x (cmp) rhs`. Coefficients for the same variable
    /// are accumulated.
    pub fn add_constraint(&mut self, coeffs: Vec<(usize, Rational)>, cmp: Cmp, rhs: Rational) {
        for &(v, _) in &coeffs {
            assert!(
                v < self.num_vars,
                "constraint references unknown variable {v}"
            );
        }
        self.constraints.push(Constraint { coeffs, cmp, rhs });
    }

    /// Solves the program by two-phase simplex with Bland's rule.
    pub fn solve(&self) -> LpResult {
        Tableau::build(self).solve(self)
    }
}

/// Dense simplex tableau. Column layout: decision vars, then slack/surplus
/// vars, then artificial vars; the last column is the right-hand side.
struct Tableau {
    rows: Vec<Vec<Rational>>,
    /// Basis variable of each row.
    basis: Vec<usize>,
    num_decision: usize,
    num_structural: usize,
    /// Column index where artificial variables start.
    art_start: usize,
    /// Total columns excluding RHS.
    num_cols: usize,
}

impl Tableau {
    fn build(lp: &LinearProgram) -> Tableau {
        let m = lp.constraints.len();
        let n = lp.num_vars;

        // Count slack/surplus and artificial columns.
        let mut num_slack = 0usize;
        let mut num_art = 0usize;
        for c in &lp.constraints {
            let rhs_neg = c.rhs.is_negative();
            let eff = effective_cmp(c.cmp, rhs_neg);
            match eff {
                Cmp::Le => num_slack += 1,
                Cmp::Ge => {
                    num_slack += 1;
                    num_art += 1;
                }
                Cmp::Eq => num_art += 1,
            }
        }

        let num_structural = n + num_slack;
        let num_cols = num_structural + num_art;
        let mut rows = vec![vec![Rational::zero(); num_cols + 1]; m];
        let mut basis = vec![0usize; m];
        let mut slack_idx = n;
        let mut art_idx = num_structural;

        for (i, c) in lp.constraints.iter().enumerate() {
            let rhs_neg = c.rhs.is_negative();
            let flip = rhs_neg;
            for (v, coeff) in &c.coeffs {
                let val = if flip { -coeff } else { coeff.clone() };
                rows[i][*v] = &rows[i][*v] + &val;
            }
            rows[i][num_cols] = if flip { -&c.rhs } else { c.rhs.clone() };
            match effective_cmp(c.cmp, rhs_neg) {
                Cmp::Le => {
                    rows[i][slack_idx] = Rational::one();
                    basis[i] = slack_idx;
                    slack_idx += 1;
                }
                Cmp::Ge => {
                    rows[i][slack_idx] = -Rational::one();
                    slack_idx += 1;
                    rows[i][art_idx] = Rational::one();
                    basis[i] = art_idx;
                    art_idx += 1;
                }
                Cmp::Eq => {
                    rows[i][art_idx] = Rational::one();
                    basis[i] = art_idx;
                    art_idx += 1;
                }
            }
        }

        Tableau {
            rows,
            basis,
            num_decision: n,
            num_structural,
            art_start: num_structural,
            num_cols,
        }
    }

    /// Builds the reduced-cost row for objective `costs` (indexed over all
    /// columns), zeroing out basic variables. Returns `(row, value)` where
    /// `value` is the current objective value.
    fn reduce_objective(&self, costs: &[Rational]) -> (Vec<Rational>, Rational) {
        let mut row = costs.to_vec();
        let mut value = Rational::zero();
        for (i, &b) in self.basis.iter().enumerate() {
            if row[b].is_zero() {
                continue;
            }
            let factor = row[b].clone();
            for j in 0..self.num_cols {
                let delta = &factor * &self.rows[i][j];
                row[j] = &row[j] - &delta;
            }
            value = &value - &(&factor * &self.rows[i][self.num_cols]);
        }
        (row, value)
    }

    /// Runs simplex iterations (minimization) until optimal or unbounded.
    /// `allowed_cols` restricts entering columns. Returns `None` on
    /// unboundedness; otherwise the final objective value (negated running
    /// total, i.e. the true minimum).
    fn iterate(
        &mut self,
        obj_row: &mut [Rational],
        obj_value: &mut Rational,
        allowed_cols: usize,
    ) -> Option<()> {
        loop {
            // Bland's rule: the lowest-index column with a negative reduced cost.
            let entering = (0..allowed_cols).find(|&j| obj_row[j].is_negative());
            let Some(j) = entering else {
                return Some(());
            };
            // Ratio test; break ties by smallest basis variable (Bland).
            let mut leaving: Option<(usize, Rational)> = None;
            for i in 0..self.rows.len() {
                if !self.rows[i][j].is_positive() {
                    continue;
                }
                let ratio = &self.rows[i][self.num_cols] / &self.rows[i][j];
                match &leaving {
                    None => leaving = Some((i, ratio)),
                    Some((best_i, best)) => {
                        if ratio < *best || (ratio == *best && self.basis[i] < self.basis[*best_i])
                        {
                            leaving = Some((i, ratio));
                        }
                    }
                }
            }
            let Some((pivot_row, _)) = leaving else {
                return None; // unbounded direction
            };
            self.pivot(pivot_row, j, obj_row, obj_value);
        }
    }

    fn pivot(
        &mut self,
        pivot_row: usize,
        pivot_col: usize,
        obj_row: &mut [Rational],
        obj_value: &mut Rational,
    ) {
        let pivot = self.rows[pivot_row][pivot_col].clone();
        debug_assert!(pivot.is_positive());
        if pivot != Rational::one() {
            for j in 0..=self.num_cols {
                if !self.rows[pivot_row][j].is_zero() {
                    self.rows[pivot_row][j] = &self.rows[pivot_row][j] / &pivot;
                }
            }
        }
        for i in 0..self.rows.len() {
            if i == pivot_row || self.rows[i][pivot_col].is_zero() {
                continue;
            }
            let factor = self.rows[i][pivot_col].clone();
            for j in 0..=self.num_cols {
                if !self.rows[pivot_row][j].is_zero() {
                    let delta = &factor * &self.rows[pivot_row][j];
                    self.rows[i][j] = &self.rows[i][j] - &delta;
                }
            }
        }
        if !obj_row[pivot_col].is_zero() {
            let factor = obj_row[pivot_col].clone();
            for j in 0..self.num_cols {
                if !self.rows[pivot_row][j].is_zero() {
                    let delta = &factor * &self.rows[pivot_row][j];
                    obj_row[j] = &obj_row[j] - &delta;
                }
            }
            *obj_value = &*obj_value - &(&factor * &self.rows[pivot_row][self.num_cols]);
        }
        self.basis[pivot_row] = pivot_col;
    }

    fn solve(mut self, lp: &LinearProgram) -> LpResult {
        // Phase 1: minimize the sum of artificial variables.
        if self.art_start < self.num_cols {
            let mut costs = vec![Rational::zero(); self.num_cols];
            for c in self.art_start..self.num_cols {
                costs[c] = Rational::one();
            }
            let (mut obj_row, mut obj_value) = self.reduce_objective(&costs);
            // Phase 1 is always bounded below by 0.
            self.iterate(&mut obj_row, &mut obj_value, self.num_cols)
                .expect("phase 1 cannot be unbounded");
            // Current phase-1 objective = -obj_value bookkeeping: obj_value
            // tracks -(c_B x_B); the attained minimum is -obj_value.
            let attained = -obj_value;
            if attained.is_positive() {
                return LpResult::Infeasible;
            }
            // Drive any degenerate artificial variables out of the basis.
            for i in 0..self.rows.len() {
                if self.basis[i] < self.art_start {
                    continue;
                }
                let pivot_col = (0..self.art_start).find(|&j| !self.rows[i][j].is_zero());
                if let Some(j) = pivot_col {
                    // The artificial basic variable is at value 0, so pivoting
                    // on any nonzero entry keeps feasibility.
                    let mut dummy_row = vec![Rational::zero(); self.num_cols];
                    let mut dummy_val = Rational::zero();
                    if self.rows[i][j].is_negative() {
                        for col in 0..=self.num_cols {
                            self.rows[i][col] = -&self.rows[i][col];
                        }
                    }
                    self.pivot(i, j, &mut dummy_row, &mut dummy_val);
                }
                // If the whole row is zero on structural columns the
                // constraint is redundant; leaving the artificial basic at
                // value zero is harmless.
            }
        }

        // Phase 2: optimize the real objective (as minimization), artificial
        // columns barred from entering.
        let mut costs = vec![Rational::zero(); self.num_cols];
        for v in 0..lp.num_vars {
            costs[v] = match lp.sense {
                Sense::Minimize => lp.objective[v].clone(),
                Sense::Maximize => -&lp.objective[v],
            };
        }
        // Artificial columns must stay at zero: bar them by leaving their
        // reduced costs non-negative and never selecting them (allowed_cols).
        let (mut obj_row, mut obj_value) = self.reduce_objective(&costs);
        if self
            .iterate(&mut obj_row, &mut obj_value, self.num_structural)
            .is_none()
        {
            return LpResult::Unbounded;
        }

        let mut solution = vec![Rational::zero(); self.num_decision];
        for (i, &b) in self.basis.iter().enumerate() {
            if b < self.num_decision {
                solution[b] = self.rows[i][self.num_cols].clone();
            }
        }
        let min_value = -obj_value;
        let value = match lp.sense {
            Sense::Minimize => min_value,
            Sense::Maximize => -min_value,
        };
        LpResult::Optimal { value, solution }
    }
}

/// When the RHS is negative the row gets multiplied by -1, flipping `<=`/`>=`.
fn effective_cmp(cmp: Cmp, rhs_negative: bool) -> Cmp {
    if !rhs_negative {
        return cmp;
    }
    match cmp {
        Cmp::Le => Cmp::Ge,
        Cmp::Ge => Cmp::Le,
        Cmp::Eq => Cmp::Eq,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arith::rat;

    fn r(p: i64, q: i64) -> Rational {
        rat(p, q)
    }

    #[test]
    fn trivial_empty_program() {
        let lp = LinearProgram::minimize(0);
        match lp.solve() {
            LpResult::Optimal { value, solution } => {
                assert_eq!(value, Rational::zero());
                assert!(solution.is_empty());
            }
            other => panic!("expected optimal, got {other}"),
        }
    }

    #[test]
    fn simple_min_cover() {
        // min x0 + x1 s.t. x0 + x1 >= 1, x0 >= 1/2 -> value 1, e.g. x0=1/2...
        let mut lp = LinearProgram::minimize(2);
        lp.set_objective(0, Rational::one());
        lp.set_objective(1, Rational::one());
        lp.add_constraint(
            vec![(0, Rational::one()), (1, Rational::one())],
            Cmp::Ge,
            Rational::one(),
        );
        lp.add_constraint(vec![(0, Rational::one())], Cmp::Ge, r(1, 2));
        let res = lp.solve();
        assert_eq!(res.value(), Some(&Rational::one()));
    }

    #[test]
    fn textbook_maximization() {
        // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 => 36 at (2, 6).
        let mut lp = LinearProgram::maximize(2);
        lp.set_objective(0, r(3, 1));
        lp.set_objective(1, r(5, 1));
        lp.add_constraint(vec![(0, Rational::one())], Cmp::Le, r(4, 1));
        lp.add_constraint(vec![(1, r(2, 1))], Cmp::Le, r(12, 1));
        lp.add_constraint(vec![(0, r(3, 1)), (1, r(2, 1))], Cmp::Le, r(18, 1));
        match lp.solve() {
            LpResult::Optimal { value, solution } => {
                assert_eq!(value, r(36, 1));
                assert_eq!(solution, vec![r(2, 1), r(6, 1)]);
            }
            other => panic!("expected optimal, got {other}"),
        }
    }

    #[test]
    fn fractional_optimum_triangle() {
        // Fractional edge cover of the triangle: min sum over 3 edges,
        // each vertex covered by exactly two edges => optimum 3/2.
        let mut lp = LinearProgram::minimize(3);
        for e in 0..3 {
            lp.set_objective(e, Rational::one());
        }
        // vertex i is covered by edges i and (i+2)%3
        for v in 0..3usize {
            lp.add_constraint(
                vec![(v, Rational::one()), ((v + 2) % 3, Rational::one())],
                Cmp::Ge,
                Rational::one(),
            );
        }
        assert_eq!(lp.solve().value(), Some(&r(3, 2)));
    }

    #[test]
    fn infeasible_detected() {
        let mut lp = LinearProgram::minimize(1);
        lp.add_constraint(vec![(0, Rational::one())], Cmp::Le, r(1, 1));
        lp.add_constraint(vec![(0, Rational::one())], Cmp::Ge, r(2, 1));
        assert_eq!(lp.solve(), LpResult::Infeasible);
    }

    #[test]
    fn infeasible_by_sign() {
        // x >= 0 and x <= -1 is infeasible (negative RHS path).
        let mut lp = LinearProgram::minimize(1);
        lp.add_constraint(vec![(0, Rational::one())], Cmp::Le, r(-1, 1));
        assert_eq!(lp.solve(), LpResult::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        let mut lp = LinearProgram::maximize(1);
        lp.set_objective(0, Rational::one());
        lp.add_constraint(vec![(0, Rational::one())], Cmp::Ge, Rational::one());
        assert_eq!(lp.solve(), LpResult::Unbounded);
    }

    #[test]
    fn equality_constraints() {
        // min x + y s.t. x + 2y = 4, x - y = 1 -> x = 2, y = 1, value 3.
        let mut lp = LinearProgram::minimize(2);
        lp.set_objective(0, Rational::one());
        lp.set_objective(1, Rational::one());
        lp.add_constraint(vec![(0, Rational::one()), (1, r(2, 1))], Cmp::Eq, r(4, 1));
        lp.add_constraint(vec![(0, Rational::one()), (1, r(-1, 1))], Cmp::Eq, r(1, 1));
        match lp.solve() {
            LpResult::Optimal { value, solution } => {
                assert_eq!(value, r(3, 1));
                assert_eq!(solution, vec![r(2, 1), r(1, 1)]);
            }
            other => panic!("expected optimal, got {other}"),
        }
    }

    #[test]
    fn degenerate_redundant_constraints() {
        // Redundant equalities exercise the artificial-variable cleanup.
        let mut lp = LinearProgram::minimize(2);
        lp.set_objective(0, Rational::one());
        lp.add_constraint(
            vec![(0, Rational::one()), (1, Rational::one())],
            Cmp::Eq,
            r(2, 1),
        );
        lp.add_constraint(vec![(0, r(2, 1)), (1, r(2, 1))], Cmp::Eq, r(4, 1));
        let res = lp.solve();
        assert_eq!(res.value(), Some(&Rational::zero()));
    }

    #[test]
    fn example_5_1_fractional_cover() {
        // Hypergraph H_n from Example 5.1: vertices v0..vn, edges
        // {v0, vi} for 1<=i<=n and the big edge {v1..vn}. rho* = 2 - 1/n.
        for n in 2..8usize {
            let mut lp = LinearProgram::minimize(n + 1); // n small edges + 1 big
            for e in 0..=n {
                lp.set_objective(e, Rational::one());
            }
            // v0 covered by the n small edges
            lp.add_constraint(
                (0..n).map(|e| (e, Rational::one())).collect(),
                Cmp::Ge,
                Rational::one(),
            );
            // vi covered by small edge i-1 and the big edge n
            for i in 0..n {
                lp.add_constraint(
                    vec![(i, Rational::one()), (n, Rational::one())],
                    Cmp::Ge,
                    Rational::one(),
                );
            }
            let expected = &r(2, 1) - &r(1, n as i64);
            assert_eq!(lp.solve().value(), Some(&expected), "n = {n}");
        }
    }

    #[test]
    fn negative_objective_coefficients() {
        // min -x s.t. x <= 5 -> -5.
        let mut lp = LinearProgram::minimize(1);
        lp.set_objective(0, r(-1, 1));
        lp.add_constraint(vec![(0, Rational::one())], Cmp::Le, r(5, 1));
        assert_eq!(lp.solve().value(), Some(&r(-5, 1)));
    }

    #[test]
    fn duplicate_coefficients_accumulate() {
        // x + x >= 3  ==  2x >= 3.
        let mut lp = LinearProgram::minimize(1);
        lp.set_objective(0, Rational::one());
        lp.add_constraint(
            vec![(0, Rational::one()), (0, Rational::one())],
            Cmp::Ge,
            r(3, 1),
        );
        assert_eq!(lp.solve().value(), Some(&r(3, 2)));
    }
}
