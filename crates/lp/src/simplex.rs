//! Exact two-phase primal simplex over rationals, with a reusable
//! workspace and warm starts.
//!
//! All variables are implicitly non-negative, which matches every program in
//! the paper: fractional edge covers (Definition 2.2), fractional
//! transversals (Definition 6.22), and the auxiliary programs used to verify
//! Lemmas 3.5/3.6. Bland's rule guarantees termination without cycling, and
//! exact [`Rational`] pivots make every optimum a certified rational value —
//! crucial because widths such as `2 - 1/n` must be reproduced exactly.
//!
//! [`LinearProgram::solve`] is the one-shot entry point. The pricing hot
//! paths go through [`SimplexWorkspace`] instead, which reuses the tableau
//! buffers across solves and, for `<=`-only programs (the dual packing form
//! of the covering LPs), can *warm-start* from the final basis of the
//! previous solve — see the crate README for the contract.

#![allow(clippy::needless_range_loop)]

use arith::Rational;
use std::collections::HashMap;
use std::fmt;

/// Optimization direction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Sense {
    /// Minimize the objective.
    Minimize,
    /// Maximize the objective.
    Maximize,
}

/// Constraint comparison operator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Cmp {
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `=`
    Eq,
}

/// A single linear constraint `sum coeffs[i] * x_i  (cmp)  rhs`.
#[derive(Clone, Debug)]
pub struct Constraint {
    /// Sparse list of `(variable, coefficient)` pairs.
    pub coeffs: Vec<(usize, Rational)>,
    /// Comparison operator.
    pub cmp: Cmp,
    /// Right-hand side.
    pub rhs: Rational,
}

/// A linear program over non-negative variables.
#[derive(Clone, Debug)]
pub struct LinearProgram {
    sense: Sense,
    num_vars: usize,
    objective: Vec<Rational>,
    constraints: Vec<Constraint>,
    /// Stable caller-chosen row identities (defaults to the row index).
    /// Warm starts match the retained basis to the new rows by label, so
    /// two programs over a shared row family (e.g. covering rows indexed
    /// by global edge ids) stay aligned even when rows appear or vanish.
    labels: Vec<u64>,
    /// Recycled coefficient buffers from [`Self::reset`], handed back out
    /// by [`Self::begin_row`] so the pricing hot path never reallocates
    /// its constraint `Vec`s.
    free_rows: Vec<Vec<(usize, Rational)>>,
}

/// Counters of the simplex engine, accumulated by a [`SimplexWorkspace`]
/// across solves. `pivots` counts Bland iterations (phase 1 + phase 2);
/// the Gaussian crash pivots that re-seat a warm basis are not iterations
/// and are excluded, so a successful warm start shows up as a measurably
/// smaller pivot count for the same optimum.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LpStats {
    /// Simplex (Bland) iterations performed.
    pub pivots: u64,
    /// Solves that started from a re-seated previous basis.
    pub warm_starts: u64,
    /// Solves that started from scratch (including warm-start fallbacks).
    pub cold_solves: u64,
}

impl LpStats {
    /// Accumulates another workspace's counters into this one.
    pub fn merge(&mut self, other: &LpStats) {
        self.pivots += other.pivots;
        self.warm_starts += other.warm_starts;
        self.cold_solves += other.cold_solves;
    }
}

/// Outcome of solving a [`LinearProgram`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LpResult {
    /// An optimal solution was found.
    Optimal {
        /// The optimal objective value.
        value: Rational,
        /// One optimal assignment for the original variables.
        solution: Vec<Rational>,
    },
    /// The feasible region is empty.
    Infeasible,
    /// The objective is unbounded over the feasible region.
    Unbounded,
}

impl LpResult {
    /// The optimal value, if any.
    pub fn value(&self) -> Option<&Rational> {
        match self {
            LpResult::Optimal { value, .. } => Some(value),
            _ => None,
        }
    }

    /// The optimal solution vector, if any.
    pub fn solution(&self) -> Option<&[Rational]> {
        match self {
            LpResult::Optimal { solution, .. } => Some(solution),
            _ => None,
        }
    }
}

impl fmt::Display for LpResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LpResult::Optimal { value, .. } => write!(f, "optimal({value})"),
            LpResult::Infeasible => write!(f, "infeasible"),
            LpResult::Unbounded => write!(f, "unbounded"),
        }
    }
}

impl LinearProgram {
    /// Creates a minimization program with `num_vars` non-negative variables.
    pub fn minimize(num_vars: usize) -> Self {
        Self::new(Sense::Minimize, num_vars)
    }

    /// Creates a maximization program with `num_vars` non-negative variables.
    pub fn maximize(num_vars: usize) -> Self {
        Self::new(Sense::Maximize, num_vars)
    }

    fn new(sense: Sense, num_vars: usize) -> Self {
        LinearProgram {
            sense,
            num_vars,
            objective: vec![Rational::zero(); num_vars],
            constraints: Vec::new(),
            labels: Vec::new(),
            free_rows: Vec::new(),
        }
    }

    /// Clears the program for in-place reuse with a new variable count,
    /// keeping the sense and recycling every constraint's coefficient
    /// buffer for the next round of [`Self::begin_row`] calls.
    pub fn reset(&mut self, num_vars: usize) {
        self.num_vars = num_vars;
        self.objective.clear();
        self.objective.resize(num_vars, Rational::zero());
        self.labels.clear();
        while let Some(mut c) = self.constraints.pop() {
            c.coeffs.clear();
            self.free_rows.push(c.coeffs);
        }
    }

    /// Starts a labeled row backed by a recycled coefficient buffer and
    /// returns it for the caller to fill. Coefficients must reference
    /// variables below [`Self::num_vars`] (checked when the tableau is
    /// built in debug builds).
    pub fn begin_row(
        &mut self,
        label: u64,
        cmp: Cmp,
        rhs: Rational,
    ) -> &mut Vec<(usize, Rational)> {
        let coeffs = self.free_rows.pop().unwrap_or_default();
        self.constraints.push(Constraint { coeffs, cmp, rhs });
        self.labels.push(label);
        &mut self.constraints.last_mut().expect("row just pushed").coeffs
    }

    /// Number of decision variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of constraint rows.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Sets the objective coefficient of variable `var`.
    pub fn set_objective(&mut self, var: usize, coeff: Rational) {
        self.objective[var] = coeff;
    }

    /// Adds `sum coeffs * x (cmp) rhs`. Coefficients for the same variable
    /// are accumulated. The row is labeled by its index.
    pub fn add_constraint(&mut self, coeffs: Vec<(usize, Rational)>, cmp: Cmp, rhs: Rational) {
        let label = self.constraints.len() as u64;
        self.add_constraint_labeled(label, coeffs, cmp, rhs);
    }

    /// As [`Self::add_constraint`], with a caller-chosen stable row label
    /// for warm-start matching (e.g. a global edge id).
    pub fn add_constraint_labeled(
        &mut self,
        label: u64,
        coeffs: Vec<(usize, Rational)>,
        cmp: Cmp,
        rhs: Rational,
    ) {
        for &(v, _) in &coeffs {
            assert!(
                v < self.num_vars,
                "constraint references unknown variable {v}"
            );
        }
        self.constraints.push(Constraint { coeffs, cmp, rhs });
        self.labels.push(label);
    }

    /// Solves the program by two-phase simplex with Bland's rule.
    pub fn solve(&self) -> LpResult {
        let mut tab = Tableau::default();
        tab.build_into(self);
        let mut pivots = 0u64;
        tab.solve(self, &mut pivots)
    }

    /// True iff every row is `<=` with a non-negative right-hand side: the
    /// all-slack basis is feasible, no artificial variables exist, and the
    /// solve is single-phase — the precondition for warm starts.
    fn is_slack_feasible(&self) -> bool {
        self.constraints
            .iter()
            .all(|c| c.cmp == Cmp::Le && !c.rhs.is_negative())
    }
}

/// The retained outcome of a workspace's previous `<=`-only solve: which
/// decision variable was basic in which (labeled) row.
struct WarmBasis {
    num_vars: usize,
    /// `(row label, basic decision variable)`, in retained row order.
    rows: Vec<(u64, usize)>,
}

/// A reusable simplex workspace: tableau buffers survive across solves
/// (no per-solve row allocations once warmed up), and `<=`-only programs
/// can re-seat the previous solve's basis instead of starting from slacks.
///
/// The workspace also retains the final reduced-cost row, from which
/// [`Self::dual_values`] reads the optimal duals of `<=` rows — the bridge
/// that lets covering problems be solved through their packing duals.
#[derive(Default)]
pub struct SimplexWorkspace {
    tab: Tableau,
    warm: Option<WarmBasis>,
    /// Scratch: label -> row index of the program being crashed.
    row_of: HashMap<u64, usize>,
    stats: LpStats,
}

impl SimplexWorkspace {
    /// An empty workspace.
    pub fn new() -> Self {
        SimplexWorkspace::default()
    }

    /// Accumulated counters of every solve through this workspace.
    pub fn stats(&self) -> LpStats {
        self.stats
    }

    /// Solves from scratch, reusing the workspace buffers.
    pub fn solve(&mut self, lp: &LinearProgram) -> LpResult {
        self.warm = None;
        self.stats.cold_solves += 1;
        let before = self.stats.pivots;
        self.tab.build_into(lp);
        let res = self.tab.solve(lp, &mut self.stats.pivots);
        self.retain(lp, &res);
        lp_metrics::record(false, self.stats.pivots - before);
        res
    }

    /// Solves `lp`, warm-starting from the final basis of the previous
    /// solve when possible.
    ///
    /// The warm path applies when the previous solve retained a basis (it
    /// was `<=`-only and optimal), the variable space matches, and `lp` is
    /// itself `<=`-only with non-negative right-hand sides. The retained
    /// basic variables are re-seated into the new tableau by row label
    /// (Gaussian crash pivots, not counted as simplex iterations); if the
    /// crashed basis is primal infeasible — a right-hand side went
    /// negative — the workspace falls back to a cold solve. Optimal values
    /// are identical to a cold solve either way; the optimal *vertex* may
    /// differ when the program has multiple optima.
    pub fn solve_warm(&mut self, lp: &LinearProgram) -> LpResult {
        let Some(warm) = self.warm.take() else {
            return self.solve(lp);
        };
        if warm.num_vars != lp.num_vars || !lp.is_slack_feasible() {
            return self.solve(lp);
        }
        self.tab.build_into(lp);
        self.row_of.clear();
        for (i, &label) in lp.labels.iter().enumerate() {
            self.row_of.insert(label, i);
        }
        for &(label, var) in &warm.rows {
            let Some(&row) = self.row_of.get(&label) else {
                continue; // the labeled row vanished; its slack stays basic
            };
            if self.tab.basis[row] < self.tab.num_decision {
                continue; // row already claimed by an earlier pair
            }
            if self.tab.rows[row][var].is_zero() {
                continue; // singular re-seat; leave the slack basic
            }
            self.tab.crash_pivot(row, var);
        }
        let m = self.tab.rows.len();
        let rhs_col = self.tab.num_cols;
        let crashed_feasible = (0..m).all(|i| !self.tab.rows[i][rhs_col].is_negative());
        if !crashed_feasible {
            // Basis infeasibility: rebuild from slacks and solve cold.
            self.stats.cold_solves += 1;
            let before = self.stats.pivots;
            self.tab.build_into(lp);
            let res = self.tab.solve(lp, &mut self.stats.pivots);
            self.retain(lp, &res);
            lp_metrics::record(false, self.stats.pivots - before);
            return res;
        }
        self.stats.warm_starts += 1;
        let before = self.stats.pivots;
        let res = self.tab.solve(lp, &mut self.stats.pivots);
        self.retain(lp, &res);
        lp_metrics::record(true, self.stats.pivots - before);
        res
    }

    /// The optimal dual value of each constraint row of the last solve,
    /// read off the final reduced-cost row. Valid for `<=`-only programs
    /// solved to optimality: the dual of row `i` is the reduced cost of
    /// its slack column, which for the *minimization form* of the program
    /// is non-negative at the optimum. For a covering LP solved through
    /// its packing dual (`max 1·y, Aᵀy <= 1`), these values are exactly
    /// the optimal cover weights.
    pub fn dual_values(&self) -> Vec<Rational> {
        (0..self.tab.rows.len())
            .map(|i| {
                let col = self.tab.slack_col[i];
                debug_assert!(col != usize::MAX, "dual_values on a slack-free row");
                self.tab.obj_row[col].clone()
            })
            .collect()
    }

    /// Retains the final basis for the next warm start (only `<=`-only
    /// optimal solves are retainable).
    fn retain(&mut self, lp: &LinearProgram, res: &LpResult) {
        self.warm = None;
        if !matches!(res, LpResult::Optimal { .. }) || !lp.is_slack_feasible() {
            return;
        }
        let rows = self
            .tab
            .basis
            .iter()
            .enumerate()
            .filter(|&(_, &b)| b < self.tab.num_decision)
            .map(|(i, &b)| (lp.labels[i], b))
            .collect();
        self.warm = Some(WarmBasis {
            num_vars: lp.num_vars,
            rows,
        });
    }
}

/// Dense simplex tableau. Column layout: decision vars, then slack/surplus
/// vars, then artificial vars; the last column is the right-hand side.
/// Buffers are reused across `build_into` calls.
#[derive(Default)]
struct Tableau {
    rows: Vec<Vec<Rational>>,
    /// Basis variable of each row.
    basis: Vec<usize>,
    /// Slack/surplus column of each row (`usize::MAX` for `=` rows).
    slack_col: Vec<usize>,
    /// Final reduced-cost row of the last `solve` (phase 2).
    obj_row: Vec<Rational>,
    num_decision: usize,
    num_structural: usize,
    /// Column index where artificial variables start.
    art_start: usize,
    /// Total columns excluding RHS.
    num_cols: usize,
}

impl Tableau {
    /// (Re)builds the tableau for `lp` in place, reusing row buffers.
    fn build_into(&mut self, lp: &LinearProgram) {
        let m = lp.constraints.len();
        let n = lp.num_vars;

        // Count slack/surplus and artificial columns.
        let mut num_slack = 0usize;
        let mut num_art = 0usize;
        for c in &lp.constraints {
            let rhs_neg = c.rhs.is_negative();
            let eff = effective_cmp(c.cmp, rhs_neg);
            match eff {
                Cmp::Le => num_slack += 1,
                Cmp::Ge => {
                    num_slack += 1;
                    num_art += 1;
                }
                Cmp::Eq => num_art += 1,
            }
        }

        let num_structural = n + num_slack;
        let num_cols = num_structural + num_art;
        self.rows.resize_with(m, Vec::new);
        for row in &mut self.rows {
            row.clear();
            row.resize(num_cols + 1, Rational::zero());
        }
        self.basis.clear();
        self.basis.resize(m, 0);
        self.slack_col.clear();
        self.slack_col.resize(m, usize::MAX);
        let mut slack_idx = n;
        let mut art_idx = num_structural;

        for (i, c) in lp.constraints.iter().enumerate() {
            let rhs_neg = c.rhs.is_negative();
            let flip = rhs_neg;
            for (v, coeff) in &c.coeffs {
                debug_assert!(*v < n, "constraint references unknown variable {v}");
                let val = if flip { -coeff } else { coeff.clone() };
                self.rows[i][*v] = &self.rows[i][*v] + &val;
            }
            self.rows[i][num_cols] = if flip { -&c.rhs } else { c.rhs.clone() };
            match effective_cmp(c.cmp, rhs_neg) {
                Cmp::Le => {
                    self.rows[i][slack_idx] = Rational::one();
                    self.basis[i] = slack_idx;
                    self.slack_col[i] = slack_idx;
                    slack_idx += 1;
                }
                Cmp::Ge => {
                    self.rows[i][slack_idx] = -Rational::one();
                    self.slack_col[i] = slack_idx;
                    slack_idx += 1;
                    self.rows[i][art_idx] = Rational::one();
                    self.basis[i] = art_idx;
                    art_idx += 1;
                }
                Cmp::Eq => {
                    self.rows[i][art_idx] = Rational::one();
                    self.basis[i] = art_idx;
                    art_idx += 1;
                }
            }
        }

        self.num_decision = n;
        self.num_structural = num_structural;
        self.art_start = num_structural;
        self.num_cols = num_cols;
    }

    /// Builds the reduced-cost row for objective `costs` (indexed over all
    /// columns), zeroing out basic variables. Returns `(row, value)` where
    /// `value` is the current objective value.
    fn reduce_objective(&self, costs: &[Rational]) -> (Vec<Rational>, Rational) {
        let mut row = costs.to_vec();
        let mut value = Rational::zero();
        for (i, &b) in self.basis.iter().enumerate() {
            if row[b].is_zero() {
                continue;
            }
            let factor = row[b].clone();
            for j in 0..self.num_cols {
                let delta = &factor * &self.rows[i][j];
                row[j] = &row[j] - &delta;
            }
            value = &value - &(&factor * &self.rows[i][self.num_cols]);
        }
        (row, value)
    }

    /// Runs simplex iterations (minimization) until optimal or unbounded.
    /// `allowed_cols` restricts entering columns. Returns `None` on
    /// unboundedness; otherwise the final objective value (negated running
    /// total, i.e. the true minimum). `pivots` counts the iterations.
    fn iterate(
        &mut self,
        obj_row: &mut [Rational],
        obj_value: &mut Rational,
        allowed_cols: usize,
        pivots: &mut u64,
    ) -> Option<()> {
        loop {
            // Bland's rule: the lowest-index column with a negative reduced cost.
            let entering = (0..allowed_cols).find(|&j| obj_row[j].is_negative());
            let Some(j) = entering else {
                return Some(());
            };
            // Ratio test; break ties by smallest basis variable (Bland).
            let mut leaving: Option<(usize, Rational)> = None;
            for i in 0..self.rows.len() {
                if !self.rows[i][j].is_positive() {
                    continue;
                }
                let ratio = &self.rows[i][self.num_cols] / &self.rows[i][j];
                match &leaving {
                    None => leaving = Some((i, ratio)),
                    Some((best_i, best)) => {
                        if ratio < *best || (ratio == *best && self.basis[i] < self.basis[*best_i])
                        {
                            leaving = Some((i, ratio));
                        }
                    }
                }
            }
            let Some((pivot_row, _)) = leaving else {
                return None; // unbounded direction
            };
            *pivots += 1;
            self.pivot(pivot_row, j, obj_row, obj_value);
        }
    }

    /// Re-seats `pivot_col` as the basic variable of `pivot_row` by plain
    /// Gaussian elimination — no ratio test, no objective row. Used to
    /// crash a retained basis into a freshly built tableau; the entry may
    /// be negative (feasibility is checked afterwards on the RHS column).
    fn crash_pivot(&mut self, pivot_row: usize, pivot_col: usize) {
        let mut dummy_row: [Rational; 0] = [];
        let mut dummy_val = Rational::zero();
        self.pivot(pivot_row, pivot_col, &mut dummy_row, &mut dummy_val);
    }

    fn pivot(
        &mut self,
        pivot_row: usize,
        pivot_col: usize,
        obj_row: &mut [Rational],
        obj_value: &mut Rational,
    ) {
        let pivot = self.rows[pivot_row][pivot_col].clone();
        debug_assert!(!pivot.is_zero());
        if pivot != Rational::one() {
            for j in 0..=self.num_cols {
                if !self.rows[pivot_row][j].is_zero() {
                    self.rows[pivot_row][j] = &self.rows[pivot_row][j] / &pivot;
                }
            }
        }
        for i in 0..self.rows.len() {
            if i == pivot_row || self.rows[i][pivot_col].is_zero() {
                continue;
            }
            let factor = self.rows[i][pivot_col].clone();
            for j in 0..=self.num_cols {
                if !self.rows[pivot_row][j].is_zero() {
                    let delta = &factor * &self.rows[pivot_row][j];
                    self.rows[i][j] = &self.rows[i][j] - &delta;
                }
            }
        }
        if !obj_row.is_empty() && !obj_row[pivot_col].is_zero() {
            let factor = obj_row[pivot_col].clone();
            for j in 0..self.num_cols {
                if !self.rows[pivot_row][j].is_zero() {
                    let delta = &factor * &self.rows[pivot_row][j];
                    obj_row[j] = &obj_row[j] - &delta;
                }
            }
            *obj_value = &*obj_value - &(&factor * &self.rows[pivot_row][self.num_cols]);
        }
        self.basis[pivot_row] = pivot_col;
    }

    /// Two-phase solve from the current basis (phase 1 runs only when the
    /// built tableau needed artificial variables). The final reduced-cost
    /// row is kept in `self.obj_row` for [`SimplexWorkspace::dual_values`].
    fn solve(&mut self, lp: &LinearProgram, pivots: &mut u64) -> LpResult {
        // Phase 1: minimize the sum of artificial variables.
        if self.art_start < self.num_cols {
            let mut costs = vec![Rational::zero(); self.num_cols];
            for c in self.art_start..self.num_cols {
                costs[c] = Rational::one();
            }
            let (mut obj_row, mut obj_value) = self.reduce_objective(&costs);
            // Phase 1 is always bounded below by 0.
            self.iterate(&mut obj_row, &mut obj_value, self.num_cols, pivots)
                .expect("phase 1 cannot be unbounded");
            // Current phase-1 objective = -obj_value bookkeeping: obj_value
            // tracks -(c_B x_B); the attained minimum is -obj_value.
            let attained = -obj_value;
            if attained.is_positive() {
                return LpResult::Infeasible;
            }
            // Drive any degenerate artificial variables out of the basis.
            for i in 0..self.rows.len() {
                if self.basis[i] < self.art_start {
                    continue;
                }
                let pivot_col = (0..self.art_start).find(|&j| !self.rows[i][j].is_zero());
                if let Some(j) = pivot_col {
                    // The artificial basic variable is at value 0, so pivoting
                    // on any nonzero entry keeps feasibility.
                    if self.rows[i][j].is_negative() {
                        for col in 0..=self.num_cols {
                            self.rows[i][col] = -&self.rows[i][col];
                        }
                    }
                    self.crash_pivot(i, j);
                }
                // If the whole row is zero on structural columns the
                // constraint is redundant; leaving the artificial basic at
                // value zero is harmless.
            }
        }

        // Phase 2: optimize the real objective (as minimization), artificial
        // columns barred from entering.
        let mut costs = vec![Rational::zero(); self.num_cols];
        for v in 0..lp.num_vars {
            costs[v] = match lp.sense {
                Sense::Minimize => lp.objective[v].clone(),
                Sense::Maximize => -&lp.objective[v],
            };
        }
        // Artificial columns must stay at zero: bar them by leaving their
        // reduced costs non-negative and never selecting them (allowed_cols).
        let (mut obj_row, mut obj_value) = self.reduce_objective(&costs);
        let bounded = self
            .iterate(&mut obj_row, &mut obj_value, self.num_structural, pivots)
            .is_some();
        self.obj_row = obj_row;
        if !bounded {
            return LpResult::Unbounded;
        }

        let mut solution = vec![Rational::zero(); self.num_decision];
        for (i, &b) in self.basis.iter().enumerate() {
            if b < self.num_decision {
                solution[b] = self.rows[i][self.num_cols].clone();
            }
        }
        let min_value = -obj_value;
        let value = match lp.sense {
            Sense::Minimize => min_value,
            Sense::Maximize => -min_value,
        };
        LpResult::Optimal { value, solution }
    }
}

/// Process-lifetime LP work counters, mirroring [`LpStats`] into the
/// `obs` metrics registry (the `hgtool metrics` LP rows). Strictly
/// observational — nothing in the solver ever reads them back.
mod lp_metrics {
    use obs::metrics::{counter, Counter};
    use std::sync::{Arc, OnceLock};

    struct Handles {
        pivots: Arc<Counter>,
        warm_starts: Arc<Counter>,
        cold_solves: Arc<Counter>,
    }

    fn handles() -> &'static Handles {
        static HANDLES: OnceLock<Handles> = OnceLock::new();
        HANDLES.get_or_init(|| Handles {
            pivots: counter(
                "hgtool_lp_pivots_total",
                "Exact simplex Bland pivots (phase 1 + phase 2) across the process",
            ),
            warm_starts: counter(
                "hgtool_lp_warm_starts_total",
                "LP solves warm-started from a retained basis",
            ),
            cold_solves: counter(
                "hgtool_lp_cold_solves_total",
                "LP solves built from scratch (including failed warm crashes)",
            ),
        })
    }

    /// Records one finished solve and its pivot count.
    pub(super) fn record(warm: bool, pivots: u64) {
        let h = handles();
        h.pivots.add(pivots);
        if warm {
            h.warm_starts.inc();
        } else {
            h.cold_solves.inc();
        }
    }
}

/// When the RHS is negative the row gets multiplied by -1, flipping `<=`/`>=`.
fn effective_cmp(cmp: Cmp, rhs_negative: bool) -> Cmp {
    if !rhs_negative {
        return cmp;
    }
    match cmp {
        Cmp::Le => Cmp::Ge,
        Cmp::Ge => Cmp::Le,
        Cmp::Eq => Cmp::Eq,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arith::rat;

    fn r(p: i64, q: i64) -> Rational {
        rat(p, q)
    }

    #[test]
    fn trivial_empty_program() {
        let lp = LinearProgram::minimize(0);
        match lp.solve() {
            LpResult::Optimal { value, solution } => {
                assert_eq!(value, Rational::zero());
                assert!(solution.is_empty());
            }
            other => panic!("expected optimal, got {other}"),
        }
    }

    #[test]
    fn simple_min_cover() {
        // min x0 + x1 s.t. x0 + x1 >= 1, x0 >= 1/2 -> value 1, e.g. x0=1/2...
        let mut lp = LinearProgram::minimize(2);
        lp.set_objective(0, Rational::one());
        lp.set_objective(1, Rational::one());
        lp.add_constraint(
            vec![(0, Rational::one()), (1, Rational::one())],
            Cmp::Ge,
            Rational::one(),
        );
        lp.add_constraint(vec![(0, Rational::one())], Cmp::Ge, r(1, 2));
        let res = lp.solve();
        assert_eq!(res.value(), Some(&Rational::one()));
    }

    #[test]
    fn textbook_maximization() {
        // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 => 36 at (2, 6).
        let mut lp = LinearProgram::maximize(2);
        lp.set_objective(0, r(3, 1));
        lp.set_objective(1, r(5, 1));
        lp.add_constraint(vec![(0, Rational::one())], Cmp::Le, r(4, 1));
        lp.add_constraint(vec![(1, r(2, 1))], Cmp::Le, r(12, 1));
        lp.add_constraint(vec![(0, r(3, 1)), (1, r(2, 1))], Cmp::Le, r(18, 1));
        match lp.solve() {
            LpResult::Optimal { value, solution } => {
                assert_eq!(value, r(36, 1));
                assert_eq!(solution, vec![r(2, 1), r(6, 1)]);
            }
            other => panic!("expected optimal, got {other}"),
        }
    }

    #[test]
    fn fractional_optimum_triangle() {
        // Fractional edge cover of the triangle: min sum over 3 edges,
        // each vertex covered by exactly two edges => optimum 3/2.
        let mut lp = LinearProgram::minimize(3);
        for e in 0..3 {
            lp.set_objective(e, Rational::one());
        }
        // vertex i is covered by edges i and (i+2)%3
        for v in 0..3usize {
            lp.add_constraint(
                vec![(v, Rational::one()), ((v + 2) % 3, Rational::one())],
                Cmp::Ge,
                Rational::one(),
            );
        }
        assert_eq!(lp.solve().value(), Some(&r(3, 2)));
    }

    #[test]
    fn infeasible_detected() {
        let mut lp = LinearProgram::minimize(1);
        lp.add_constraint(vec![(0, Rational::one())], Cmp::Le, r(1, 1));
        lp.add_constraint(vec![(0, Rational::one())], Cmp::Ge, r(2, 1));
        assert_eq!(lp.solve(), LpResult::Infeasible);
    }

    #[test]
    fn infeasible_by_sign() {
        // x >= 0 and x <= -1 is infeasible (negative RHS path).
        let mut lp = LinearProgram::minimize(1);
        lp.add_constraint(vec![(0, Rational::one())], Cmp::Le, r(-1, 1));
        assert_eq!(lp.solve(), LpResult::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        let mut lp = LinearProgram::maximize(1);
        lp.set_objective(0, Rational::one());
        lp.add_constraint(vec![(0, Rational::one())], Cmp::Ge, Rational::one());
        assert_eq!(lp.solve(), LpResult::Unbounded);
    }

    #[test]
    fn equality_constraints() {
        // min x + y s.t. x + 2y = 4, x - y = 1 -> x = 2, y = 1, value 3.
        let mut lp = LinearProgram::minimize(2);
        lp.set_objective(0, Rational::one());
        lp.set_objective(1, Rational::one());
        lp.add_constraint(vec![(0, Rational::one()), (1, r(2, 1))], Cmp::Eq, r(4, 1));
        lp.add_constraint(vec![(0, Rational::one()), (1, r(-1, 1))], Cmp::Eq, r(1, 1));
        match lp.solve() {
            LpResult::Optimal { value, solution } => {
                assert_eq!(value, r(3, 1));
                assert_eq!(solution, vec![r(2, 1), r(1, 1)]);
            }
            other => panic!("expected optimal, got {other}"),
        }
    }

    #[test]
    fn degenerate_redundant_constraints() {
        // Redundant equalities exercise the artificial-variable cleanup.
        let mut lp = LinearProgram::minimize(2);
        lp.set_objective(0, Rational::one());
        lp.add_constraint(
            vec![(0, Rational::one()), (1, Rational::one())],
            Cmp::Eq,
            r(2, 1),
        );
        lp.add_constraint(vec![(0, r(2, 1)), (1, r(2, 1))], Cmp::Eq, r(4, 1));
        let res = lp.solve();
        assert_eq!(res.value(), Some(&Rational::zero()));
    }

    #[test]
    fn example_5_1_fractional_cover() {
        // Hypergraph H_n from Example 5.1: vertices v0..vn, edges
        // {v0, vi} for 1<=i<=n and the big edge {v1..vn}. rho* = 2 - 1/n.
        for n in 2..8usize {
            let mut lp = LinearProgram::minimize(n + 1); // n small edges + 1 big
            for e in 0..=n {
                lp.set_objective(e, Rational::one());
            }
            // v0 covered by the n small edges
            lp.add_constraint(
                (0..n).map(|e| (e, Rational::one())).collect(),
                Cmp::Ge,
                Rational::one(),
            );
            // vi covered by small edge i-1 and the big edge n
            for i in 0..n {
                lp.add_constraint(
                    vec![(i, Rational::one()), (n, Rational::one())],
                    Cmp::Ge,
                    Rational::one(),
                );
            }
            let expected = &r(2, 1) - &r(1, n as i64);
            assert_eq!(lp.solve().value(), Some(&expected), "n = {n}");
        }
    }

    #[test]
    fn negative_objective_coefficients() {
        // min -x s.t. x <= 5 -> -5.
        let mut lp = LinearProgram::minimize(1);
        lp.set_objective(0, r(-1, 1));
        lp.add_constraint(vec![(0, Rational::one())], Cmp::Le, r(5, 1));
        assert_eq!(lp.solve().value(), Some(&r(-5, 1)));
    }

    #[test]
    fn duplicate_coefficients_accumulate() {
        // x + x >= 3  ==  2x >= 3.
        let mut lp = LinearProgram::minimize(1);
        lp.set_objective(0, Rational::one());
        lp.add_constraint(
            vec![(0, Rational::one()), (0, Rational::one())],
            Cmp::Ge,
            r(3, 1),
        );
        assert_eq!(lp.solve().value(), Some(&r(3, 2)));
    }

    /// The triangle's packing dual: max y0+y1+y2 with y_i + y_j <= 1 per
    /// edge. Optimum 3/2; the duals (slack reduced costs) are the cover
    /// weights 1/2 each.
    fn triangle_packing() -> LinearProgram {
        let mut lp = LinearProgram::maximize(3);
        for v in 0..3 {
            lp.set_objective(v, Rational::one());
        }
        for e in 0..3usize {
            lp.add_constraint_labeled(
                e as u64,
                vec![(e, Rational::one()), ((e + 1) % 3, Rational::one())],
                Cmp::Le,
                Rational::one(),
            );
        }
        lp
    }

    #[test]
    fn workspace_matches_one_shot_solve() {
        let mut ws = SimplexWorkspace::new();
        let lp = triangle_packing();
        assert_eq!(ws.solve(&lp), lp.solve());
        assert_eq!(ws.stats().cold_solves, 1);
        assert!(ws.stats().pivots > 0);
    }

    #[test]
    fn dual_values_recover_the_cover() {
        let mut ws = SimplexWorkspace::new();
        let lp = triangle_packing();
        let res = ws.solve(&lp);
        assert_eq!(res.value(), Some(&r(3, 2)));
        assert_eq!(ws.dual_values(), vec![r(1, 2), r(1, 2), r(1, 2)]);
    }

    #[test]
    fn warm_resolve_of_the_same_program_needs_no_pivots() {
        let mut ws = SimplexWorkspace::new();
        let lp = triangle_packing();
        let cold = ws.solve(&lp);
        let cold_pivots = ws.stats().pivots;
        let warm = ws.solve_warm(&lp);
        assert_eq!(cold, warm);
        assert_eq!(ws.stats().warm_starts, 1);
        // Re-seating the optimal basis leaves no negative reduced cost.
        assert_eq!(ws.stats().pivots, cold_pivots);
    }

    #[test]
    fn warm_start_survives_row_changes_by_label() {
        // Drop one packing row and add another; labels keep the retained
        // basis aligned, and values match a cold solve.
        let mut ws = SimplexWorkspace::new();
        let lp = triangle_packing();
        ws.solve(&lp);
        let mut changed = LinearProgram::maximize(3);
        for v in 0..3 {
            changed.set_objective(v, Rational::one());
        }
        // Rows 0 and 2 survive; a tighter row replaces row 1.
        changed.add_constraint_labeled(
            0,
            vec![(0, Rational::one()), (1, Rational::one())],
            Cmp::Le,
            Rational::one(),
        );
        changed.add_constraint_labeled(
            7,
            vec![(1, Rational::one()), (2, Rational::one())],
            Cmp::Le,
            r(1, 2),
        );
        changed.add_constraint_labeled(
            2,
            vec![(2, Rational::one()), (0, Rational::one())],
            Cmp::Le,
            Rational::one(),
        );
        let warm = ws.solve_warm(&changed);
        assert_eq!(warm.value(), changed.solve().value());
    }

    #[test]
    fn warm_start_falls_back_on_unwarmable_programs() {
        let mut ws = SimplexWorkspace::new();
        ws.solve(&triangle_packing());
        // A Ge program cannot start from the slack basis: warm must fall
        // back to the cold two-phase path and still be exact.
        let mut ge = LinearProgram::minimize(1);
        ge.set_objective(0, Rational::one());
        ge.add_constraint(vec![(0, Rational::one())], Cmp::Ge, r(3, 1));
        assert_eq!(ws.solve_warm(&ge).value(), Some(&r(3, 1)));
        assert_eq!(ws.stats().warm_starts, 0);
        assert_eq!(ws.stats().cold_solves, 2);
    }
}
