//! Exact linear programming for fractional covers.
//!
//! The paper computes fractional edge covers (`rho*`), fractional vertex
//! covers / transversals (`tau*`) and several auxiliary programs used in the
//! NP-hardness analysis (Lemmas 3.5/3.6). All of these are tiny LPs over
//! non-negative variables whose optima must be *exact rationals*; this crate
//! provides a two-phase primal simplex with Bland's rule over
//! [`arith::Rational`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod simplex;

pub use simplex::{Cmp, Constraint, LinearProgram, LpResult, LpStats, Sense, SimplexWorkspace};
