//! Property-based tests for the exact simplex on random covering LPs.

use arith::Rational;
use lp::{Cmp, LinearProgram, LpResult, SimplexWorkspace};
use proptest::prelude::*;

/// A random covering instance: `m` sets over `n` elements (every element
/// covered by at least one set, guaranteed by construction).
#[derive(Debug, Clone)]
struct CoverInstance {
    n: usize,
    sets: Vec<Vec<usize>>,
}

fn arb_cover() -> impl Strategy<Value = CoverInstance> {
    (2usize..7, 2usize..7, any::<u64>()).prop_map(|(n, m, seed)| {
        let mut state = seed;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        let mut sets: Vec<Vec<usize>> = (0..m)
            .map(|_| {
                let mut s: Vec<usize> = (0..n).filter(|_| next() % 2 == 0).collect();
                if s.is_empty() {
                    s.push((next() % n as u64) as usize);
                }
                s
            })
            .collect();
        // Guarantee coverage: element i joins set i % m.
        for v in 0..n {
            let idx = v % m;
            if !sets[idx].contains(&v) {
                sets[idx].push(v);
            }
        }
        CoverInstance { n, sets }
    })
}

fn build_lp(inst: &CoverInstance) -> LinearProgram {
    let mut lp = LinearProgram::minimize(inst.sets.len());
    for s in 0..inst.sets.len() {
        lp.set_objective(s, Rational::one());
    }
    for v in 0..inst.n {
        let coeffs: Vec<(usize, Rational)> = inst
            .sets
            .iter()
            .enumerate()
            .filter(|(_, set)| set.contains(&v))
            .map(|(s, _)| (s, Rational::one()))
            .collect();
        lp.add_constraint(coeffs, Cmp::Ge, Rational::one());
    }
    lp
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn covering_lp_solutions_are_feasible_and_sandwiched(inst in arb_cover()) {
        let LpResult::Optimal { value, solution } = build_lp(&inst).solve() else {
            panic!("covering LPs are feasible by construction");
        };
        // Feasibility of the returned point.
        for v in 0..inst.n {
            let total: Rational = inst
                .sets
                .iter()
                .enumerate()
                .filter(|(_, set)| set.contains(&v))
                .map(|(s, _)| solution[s].clone())
                .sum();
            prop_assert!(total >= Rational::one(), "element {} uncovered", v);
        }
        // Objective consistency.
        let recomputed: Rational = solution.iter().sum();
        prop_assert_eq!(&recomputed, &value);
        // Sandwich: n/rank <= value <= n (all-ones is feasible).
        let rank = inst.sets.iter().map(Vec::len).max().unwrap();
        let lower = Rational::from(inst.n) / Rational::from(rank);
        prop_assert!(value >= lower);
        prop_assert!(value <= Rational::from(inst.sets.len()));
        // Optimality against the integral brute force (value <= rho).
        let m = inst.sets.len();
        let mut best_int = usize::MAX;
        for mask in 1u32..(1u32 << m) {
            let covered = (0..inst.n).all(|v| {
                inst.sets
                    .iter()
                    .enumerate()
                    .any(|(s, set)| mask >> s & 1 == 1 && set.contains(&v))
            });
            if covered {
                best_int = best_int.min(mask.count_ones() as usize);
            }
        }
        prop_assert!(value <= Rational::from(best_int));
    }

    #[test]
    fn duplicated_constraints_do_not_change_the_optimum(inst in arb_cover()) {
        let base = build_lp(&inst).solve();
        let mut doubled = build_lp(&inst);
        for v in 0..inst.n {
            let coeffs: Vec<(usize, Rational)> = inst
                .sets
                .iter()
                .enumerate()
                .filter(|(_, set)| set.contains(&v))
                .map(|(s, _)| (s, Rational::one()))
                .collect();
            doubled.add_constraint(coeffs, Cmp::Ge, Rational::one());
        }
        let doubled = doubled.solve();
        prop_assert_eq!(base.value(), doubled.value());
    }

    #[test]
    fn scaling_objective_scales_value(inst in arb_cover(), num in 1i64..8, den in 1i64..8) {
        let factor = arith::rat(num, den);
        let plain = build_lp(&inst).solve();
        let mut scaled = build_lp(&inst);
        for s in 0..inst.sets.len() {
            scaled.set_objective(s, factor.clone());
        }
        let scaled = scaled.solve();
        prop_assert_eq!(
            scaled.value().unwrap().clone(),
            &factor * plain.value().unwrap()
        );
    }

    /// The packing dual of a covering instance (`max 1·y, y(s) <= rhs_s`)
    /// has the same optimum as the primal (strong duality), and the
    /// workspace's slack reduced costs recover an optimal *cover* — the
    /// read-off the engine's pricing path relies on.
    #[test]
    fn packing_dual_matches_covering_primal(inst in arb_cover()) {
        let cover = build_lp(&inst).solve();
        let packing = build_packing(&inst, &vec![Rational::one(); inst.sets.len()]);
        let mut ws = SimplexWorkspace::new();
        let packed = ws.solve(&packing);
        prop_assert_eq!(cover.value(), packed.value());
        // Recovered cover weights: feasible and of optimal total weight.
        let weights = ws.dual_values();
        for v in 0..inst.n {
            let total: Rational = inst
                .sets
                .iter()
                .enumerate()
                .filter(|(_, set)| set.contains(&v))
                .map(|(s, _)| weights[s].clone())
                .sum();
            prop_assert!(total >= Rational::one(), "element {} uncovered by duals", v);
        }
        let total: Rational = weights.iter().sum();
        prop_assert_eq!(Some(&total), cover.value());
    }

    /// Warm-started solves over a perturbed-row sequence agree with fresh
    /// cold solves on the optimal value, and every returned point is
    /// feasible with a consistent objective.
    #[test]
    fn warm_and_cold_agree_over_perturbed_sequences(inst in arb_cover(), seed in any::<u64>()) {
        let m = inst.sets.len();
        let mut rhs = vec![Rational::one(); m];
        let mut ws = SimplexWorkspace::new();
        let mut state = seed;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        for step in 0..5u64 {
            if step > 0 {
                // Perturb one row's capacity; keep it strictly positive.
                let row = (next() % m as u64) as usize;
                rhs[row] = arith::rat(1 + (next() % 3) as i64, 1 + (next() % 2) as i64);
            }
            let packing = build_packing(&inst, &rhs);
            let warm = ws.solve_warm(&packing);
            let cold = packing.solve();
            prop_assert_eq!(warm.value(), cold.value(), "step {}", step);
            let y = warm.solution().expect("packing LPs are bounded and feasible");
            for (s, set) in inst.sets.iter().enumerate() {
                let load: Rational = set.iter().map(|&v| y[v].clone()).sum();
                prop_assert!(load <= rhs[s], "row {} overpacked at step {}", s, step);
            }
            let recomputed: Rational = y.iter().sum();
            prop_assert_eq!(Some(&recomputed), warm.value());
        }
        // Re-seating a retained optimal basis never takes *more* pivots
        // than the same sequence solved cold from scratch.
        let mut cold_ws = SimplexWorkspace::new();
        let packing = build_packing(&inst, &rhs);
        cold_ws.solve(&packing);
        let before = ws.stats().pivots;
        ws.solve_warm(&packing);
        prop_assert!(ws.stats().pivots - before <= cold_ws.stats().pivots);
    }
}

/// The packing dual of `inst` with per-set capacities `rhs`: variables are
/// elements, one `<=` row per set labeled by the set index.
fn build_packing(inst: &CoverInstance, rhs: &[Rational]) -> LinearProgram {
    let mut lp = LinearProgram::maximize(inst.n);
    for v in 0..inst.n {
        lp.set_objective(v, Rational::one());
    }
    for (s, set) in inst.sets.iter().enumerate() {
        let coeffs: Vec<(usize, Rational)> = set.iter().map(|&v| (v, Rational::one())).collect();
        lp.add_constraint_labeled(s as u64, coeffs, Cmp::Le, rhs[s].clone());
    }
    lp
}
