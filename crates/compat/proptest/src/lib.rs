//! A minimal, offline, API-compatible subset of the `proptest` crate.
//!
//! The build environment has no registry access, so this shim provides the
//! exact surface the workspace's property tests use: the [`proptest!`] macro
//! (with optional `#![proptest_config(...)]`), [`Strategy`] with `prop_map` /
//! `prop_filter`, range and tuple strategies, [`any`], and the
//! `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from real proptest: generation is a fixed deterministic
//! stream per test (seeded from the test name), and failing cases are *not*
//! shrunk — the assertion message reports the raw failing inputs instead.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Why a test case did not run to completion.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The case was discarded by `prop_assume!`.
    Reject,
}

/// Runner configuration (`cases` is the only knob this shim honours).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic generation stream (splitmix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the stream; [`proptest!`] derives the seed from the test name.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x5851_F42D_4C95_7F2D,
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        let zone = u64::MAX - (u64::MAX - n + 1) % n;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return v % n;
            }
        }
    }
}

/// A value generator. Unlike real proptest there is no shrinking, so a
/// strategy is just a deterministic sampling function.
pub trait Strategy {
    /// The generated type.
    type Value: std::fmt::Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U: std::fmt::Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Discards generated values failing `pred` (bounded retries).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        reason: &'static str,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            reason,
            pred,
        }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: std::fmt::Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1_000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter({:?}) rejected 1000 candidates in a row",
            self.reason
        );
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(usize, u64, u32, i64, i32, i16, u8);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident / $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (S0/0)
    (S0/0, S1/1)
    (S0/0, S1/1, S2/2)
    (S0/0, S1/1, S2/2, S3/3)
    (S0/0, S1/1, S2/2, S3/3, S4/4)
    (S0/0, S1/1, S2/2, S3/3, S4/4, S5/5)
}

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized + std::fmt::Debug {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for i128 {
    fn arbitrary(rng: &mut TestRng) -> i128 {
        let hi = rng.next_u64() as u128;
        let lo = rng.next_u64() as u128;
        ((hi << 64) | lo) as i128
    }
}

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> u128 {
        let hi = rng.next_u64() as u128;
        let lo = rng.next_u64() as u128;
        (hi << 64) | lo
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy over the whole domain of `T`.
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — the full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Seed helper: FNV-1a over the test path so each test gets its own stream.
pub fn seed_from_name(name: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Everything a property test usually imports.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Defines property tests. Supports an optional leading
/// `#![proptest_config(expr)]` followed by `#[test] fn name(arg in strategy, ...) { ... }`
/// items. No shrinking: a failing case panics with the raw inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_cases {
    (($cfg:expr) $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            // The closure gives `prop_assume!` a `return` target.
            #[allow(clippy::redundant_closure_call)]
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng =
                    $crate::TestRng::new($crate::seed_from_name(concat!(module_path!(), "::", stringify!($name))));
                let mut ran: u32 = 0;
                let mut rejected: u32 = 0;
                while ran < config.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                    match outcome {
                        ::std::result::Result::Ok(()) => ran += 1,
                        ::std::result::Result::Err($crate::TestCaseError::Reject) => {
                            rejected += 1;
                            assert!(
                                rejected < config.cases.saturating_mul(32).max(1024),
                                "too many prop_assume! rejections ({rejected}) in {}",
                                stringify!($name)
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Discards the current case when `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// `assert!` under a property-test name.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)+) => { assert!($($tt)+) };
}

/// `assert_eq!` under a property-test name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)+) => { assert_eq!($($tt)+) };
}

/// `assert_ne!` under a property-test name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)+) => { assert_ne!($($tt)+) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(a in 3usize..10, b in 0u64..5) {
            prop_assert!((3..10).contains(&a));
            prop_assert!(b < 5);
        }

        #[test]
        fn assume_discards(v in any::<i64>().prop_filter("nonzero", |v| *v != 0)) {
            prop_assume!(v != 1);
            prop_assert_ne!(v, 0);
            prop_assert_ne!(v, 1);
        }

        #[test]
        fn tuples_and_map(pair in (1usize..4, 1usize..4).prop_map(|(x, y)| x * y)) {
            prop_assert!((1..16).contains(&pair));
        }
    }

    #[test]
    fn deterministic_streams() {
        let mut a = crate::TestRng::new(9);
        let mut b = crate::TestRng::new(9);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
