//! A minimal, offline, API-compatible subset of the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace ships
//! this shim exposing exactly the surface the repo uses: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] / [`Rng::gen_bool`],
//! and [`seq::SliceRandom::shuffle`]. The generator is a deterministic
//! splitmix64 — statistically fine for test-corpus generation, *not* for
//! cryptography.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Seedable random number generators.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from a range.
pub trait UniformInt: Copy {
    /// Widens to u64 for sampling arithmetic.
    fn to_u64(self) -> u64;
    /// Narrows from u64 after sampling.
    fn from_u64(v: u64) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn to_u64(self) -> u64 {
                self as u64
            }
            fn from_u64(v: u64) -> Self {
                v as $t
            }
        }
    )*};
}

impl_uniform_int!(usize, u64, u32, u16, u8);

/// Ranges a value can be drawn from (`a..b` and `a..=b`).
pub trait SampleRange<T> {
    /// Uniformly samples the range using `rng`.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

impl<T: UniformInt> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        let (lo, hi) = (self.start.to_u64(), self.end.to_u64());
        assert!(lo < hi, "cannot sample empty range");
        T::from_u64(lo + uniform_below(rng, hi - lo))
    }
}

impl<T: UniformInt> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        let (lo, hi) = (self.start().to_u64(), self.end().to_u64());
        assert!(lo <= hi, "cannot sample empty range");
        let span = hi - lo;
        if span == u64::MAX {
            return T::from_u64(rng.next_u64());
        }
        T::from_u64(lo + uniform_below(rng, span + 1))
    }
}

/// Uniform value in `0..n` by rejection sampling (n > 0).
fn uniform_below<R: RngCore>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    // Rejection zone keeps the distribution exactly uniform.
    let zone = u64::MAX - (u64::MAX - n + 1) % n;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % n;
        }
    }
}

/// Core entropy source.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling helpers (subset of `rand::Rng`).
pub trait Rng: RngCore + Sized {
    /// Uniform sample from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli trial with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p must be a probability");
        // 53 high bits give a uniform float in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: RngCore + Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic splitmix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng {
                state: state.wrapping_add(0x9E37_79B9_7F4A_7C15),
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// Sequence helpers (subset of `rand::seq`).
pub mod seq {
    use super::Rng;

    /// In-place random reordering of slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..=7);
            assert!((3..=7).contains(&v));
            let w = rng.gen_range(10u64..20);
            assert!((10..20).contains(&w));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }

    #[test]
    fn gen_bool_is_roughly_balanced() {
        let mut rng = StdRng::seed_from_u64(3);
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "heads = {heads}");
    }
}
