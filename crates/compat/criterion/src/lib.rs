//! A minimal, offline, API-compatible subset of the `criterion` crate.
//!
//! The build environment has no registry access, so this shim provides the
//! surface the workspace benches use — `Criterion`, `benchmark_group`,
//! `bench_function` / `bench_with_input`, `BenchmarkId`, `Bencher::iter`,
//! and the `criterion_group!` / `criterion_main!` macros — backed by a
//! simple wall-clock measurement loop instead of criterion's statistics.
//!
//! Results print one line per benchmark
//! (`group/id  time: <mean> (<iters> iters)`) and, when the
//! `CRITERION_JSON` environment variable names a file, are appended to it as
//! JSON lines `{"id": ..., "mean_ns": ..., "iters": ...}` — which is what
//! the `BENCH_baseline.json` harness consumes.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding a value (forwards to `std::hint`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level harness state; one per bench binary.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            // Deliberately short: this shim favours fast `cargo bench` runs
            // over statistical rigour.
            measurement_time: Duration::from_millis(200),
            warm_up_time: Duration::from_millis(20),
        }
    }
}

impl Criterion {
    /// Number of measured iterations aimed for per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0);
        self.sample_size = n;
        self
    }

    /// Wall-clock budget per benchmark. The shim caps this at 2s to keep
    /// `cargo bench` runs short.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t.min(Duration::from_secs(2));
        self
    }

    /// Warm-up budget per benchmark (capped at 200ms in the shim).
    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t.min(Duration::from_millis(200));
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
            _parent: std::marker::PhantomData,
        }
    }

    /// Runs a benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_bench(
            id,
            self.sample_size,
            self.warm_up_time,
            self.measurement_time,
            f,
        );
        self
    }
}

/// A named collection of benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    _parent: std::marker::PhantomData<&'a mut Criterion>,
}

impl<'a> BenchmarkGroup<'a> {
    /// See [`Criterion::sample_size`].
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0);
        self.sample_size = n;
        self
    }

    /// See [`Criterion::measurement_time`].
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t.min(Duration::from_secs(2));
        self
    }

    /// See [`Criterion::warm_up_time`].
    pub fn warm_up_time(&mut self, t: Duration) -> &mut Self {
        self.warm_up_time = t.min(Duration::from_millis(200));
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        run_bench(
            &full,
            self.sample_size,
            self.warm_up_time,
            self.measurement_time,
            f,
        );
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        run_bench(
            &full,
            self.sample_size,
            self.warm_up_time,
            self.measurement_time,
            |b| f(b, input),
        );
        self
    }

    /// Ends the group (kept for API parity; the shim reports eagerly).
    pub fn finish(self) {}
}

/// Identifier for a parameterized benchmark.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            text: format!("{function_name}/{parameter}"),
        }
    }

    /// Just the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the code
/// under test.
pub struct Bencher {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    result: Option<(f64, u64)>,
}

impl Bencher {
    /// Measures `f` repeatedly and records the mean wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: run until the warm-up budget is spent (at least once).
        let warm_start = Instant::now();
        loop {
            black_box(f());
            if warm_start.elapsed() >= self.warm_up_time {
                break;
            }
        }
        // Measurement: stop at the iteration target or the time budget,
        // whichever comes first (always at least one iteration).
        let mut iters: u64 = 0;
        let start = Instant::now();
        loop {
            black_box(f());
            iters += 1;
            if iters >= self.sample_size as u64 || start.elapsed() >= self.measurement_time {
                break;
            }
        }
        let mean_ns = start.elapsed().as_nanos() as f64 / iters as f64;
        self.result = Some((mean_ns, iters));
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(
    id: &str,
    sample_size: usize,
    warm: Duration,
    meas: Duration,
    mut f: F,
) {
    let mut b = Bencher {
        sample_size,
        warm_up_time: warm,
        measurement_time: meas,
        result: None,
    };
    f(&mut b);
    match b.result {
        Some((mean_ns, iters)) => {
            println!("{id:<50} time: {:>12} ({iters} iters)", format_ns(mean_ns));
            if let Ok(path) = std::env::var("CRITERION_JSON") {
                if let Ok(mut file) = std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(path)
                {
                    let _ = writeln!(
                        file,
                        "{{\"id\": \"{}\", \"mean_ns\": {:.1}, \"iters\": {}}}",
                        id.replace('"', "'"),
                        mean_ns,
                        iters
                    );
                }
            }
        }
        None => println!("{id:<50} (no measurement: closure never called iter)"),
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Groups benchmark functions under one entry point, with an optional
/// `config = ...` expression (criterion's `name/config/targets` form).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running the given groups (bench targets set `harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_measurements() {
        let mut c = Criterion::default()
            .sample_size(5)
            .measurement_time(Duration::from_millis(10))
            .warm_up_time(Duration::from_millis(1));
        let mut g = c.benchmark_group("shim");
        let mut ran = false;
        g.bench_function("trivial", |b| {
            b.iter(|| black_box(2 + 2));
            ran = true;
        });
        g.bench_with_input(BenchmarkId::new("with_input", 3), &3usize, |b, n| {
            b.iter(|| n * 2)
        });
        g.finish();
        assert!(ran);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", "p").to_string(), "f/p");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }
}
