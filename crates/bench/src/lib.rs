//! Shared workloads for the criterion benches and the `experiments` harness.
//!
//! Experiment IDs (`E1`–`E13`) follow the per-experiment index in
//! `DESIGN.md`; every figure, table and quantitative claim of the paper maps
//! to one of them.

use hypertree_core::hypergraph::{generators, parser, Hypergraph};
use hypertree_core::reduction::{self, Cnf};

/// A named workload instance.
pub struct Workload {
    /// Display name.
    pub name: String,
    /// The instance.
    pub hypergraph: Hypergraph,
}

/// The mixed CQ-shaped corpus used by E8/E13 and several benches.
pub fn corpus() -> Vec<Workload> {
    let mut out: Vec<Workload> = vec![
        w("chain(5,3)", generators::cq_chain(5, 3, 1)),
        w("star(4,2)", generators::cq_star(4, 2)),
        w("cycle(3)", generators::cycle(3)),
        w("cycle(6)", generators::cycle(6)),
        w("triangles(3)", generators::triangle_chain(3)),
        w("grid(3x3)", generators::grid(3, 3)),
        w("clique(5)", generators::clique(5)),
        w("clique(6)", generators::clique(6)),
        w("example_4_3", generators::example_4_3()),
        w("example_5_1(5)", generators::example_5_1(5)),
    ];
    for seed in 0..4u64 {
        out.push(w(
            &format!("rand_bip(s{seed})"),
            generators::random_bip(10, 7, 2, 3, seed),
        ));
        out.push(w(
            &format!("rand_bdp(s{seed})"),
            generators::random_bounded_degree(10, 7, 3, 3, seed),
        ));
    }
    out
}

/// The 19–30-vertex scaling corpus: instances beyond the old 18-vertex
/// subset-search wall, exercising the candgen edge-union engine
/// (`cycle(26)` also exceeds the 24-vertex elimination-DP window — it was
/// a hard `None` before candgen), the seeded DP window and the per-block
/// pipeline at scale. Recorded by the `baseline` bin alongside
/// [`corpus`]; kept separate so the small-instance test suites don't
/// inherit the larger runtimes.
pub fn large_corpus() -> Vec<Workload> {
    vec![
        w("cycle(20)", generators::cycle(20)),
        w("grid(2x10)", generators::grid(2, 10)),
        w("triangles(10)", generators::triangle_chain(10)),
        w("cycle(26)", generators::cycle(26)),
    ]
}

/// The vendored HyperBench-style corpus (`examples/data/corpus/`): small
/// CQ/CSP-shaped instances with genuinely mixed portfolio winners, baked
/// into the binary so offline CI can smoke-test `--portfolio` and the
/// baseline's `portfolio` block without network access.
pub fn vendored_corpus() -> Vec<Workload> {
    let files: [(&str, &str); 8] = [
        (
            "cq_snowflake_q4",
            include_str!("../../../examples/data/corpus/cq_snowflake_q4.hg"),
        ),
        (
            "cq_chordal_ring_q8",
            include_str!("../../../examples/data/corpus/cq_chordal_ring_q8.hg"),
        ),
        (
            "cq_triangle_proj_q3",
            include_str!("../../../examples/data/corpus/cq_triangle_proj_q3.hg"),
        ),
        (
            "cq_double_diamond_q13",
            include_str!("../../../examples/data/corpus/cq_double_diamond_q13.hg"),
        ),
        (
            "csp_crossword_4x3",
            include_str!("../../../examples/data/corpus/csp_crossword_4x3.hg"),
        ),
        (
            "csp_wheel_6",
            include_str!("../../../examples/data/corpus/csp_wheel_6.hg"),
        ),
        (
            "csp_ternary_grid_9",
            include_str!("../../../examples/data/corpus/csp_ternary_grid_9.hg"),
        ),
        (
            "csp_rand_bin_10",
            include_str!("../../../examples/data/corpus/csp_rand_bin_10.hg"),
        ),
    ];
    files
        .into_iter()
        .map(|(name, text)| {
            w(
                name,
                parser::parse(text).expect("vendored corpus instances parse"),
            )
        })
        .collect()
}

fn w(name: &str, hypergraph: Hypergraph) -> Workload {
    Workload {
        name: name.to_string(),
        hypergraph,
    }
}

/// Reduction instances for E1–E3 scaling runs: planted-satisfiable 3SAT of
/// growing size.
pub fn reduction_instances() -> Vec<(String, reduction::Reduction, Vec<bool>)> {
    let mut out = Vec::new();
    for (n, m) in [(2usize, 2usize), (3, 2), (3, 4), (4, 4), (5, 6)] {
        let (cnf, plant) = Cnf::random_planted(n.max(3), m, (n * 31 + m) as u64);
        let r = reduction::build(&cnf);
        out.push((format!("n={n},m={m}"), r, plant));
    }
    out
}

/// BIP families with growing size for the E5 scaling study.
pub fn bip_scaling() -> Vec<(String, Hypergraph)> {
    let mut out = Vec::new();
    for n in [8usize, 12, 16, 20, 24] {
        out.push((format!("grid(2x{})", n / 2), generators::grid(2, n / 2)));
    }
    for n in [8usize, 10, 12] {
        out.push((
            format!("rand_bip(n={n})"),
            generators::random_bip(n, n - 2, 2, 3, n as u64),
        ));
    }
    out
}

/// Bounded-degree families for the E6 scaling study.
pub fn bdp_scaling() -> Vec<(String, Hypergraph)> {
    let mut out = Vec::new();
    for n in [6usize, 8, 10] {
        out.push((
            format!("rand_bdp(n={n})"),
            generators::random_bounded_degree(n, n - 2, 2, 3, n as u64),
        ));
        out.push((format!("cycle({n})"), generators::cycle(n)));
    }
    out
}
