//! The experiments harness: regenerates every display item and quantitative
//! claim of the paper (per-experiment index in `DESIGN.md`, results recorded
//! in `EXPERIMENTS.md`).
//!
//! ```sh
//! cargo run -p hypertree-bench --bin experiments --release           # all
//! cargo run -p hypertree-bench --bin experiments --release -- E4 E5 # some
//! ```

use hypertree_bench as workloads;
use hypertree_core::arith::{rat, Rational};
use hypertree_core::decomp::{self, validate};
use hypertree_core::fhd::{self, CoverMode, FracDecompParams, HdkParams};
use hypertree_core::ghd::{self, GhdAnswer, SubedgeLimits};
use hypertree_core::hypergraph::{generators, properties};
use hypertree_core::reduction::{self, Cnf};
use hypertree_core::{analyze_structure, cover, exact_widths};
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let all = args.is_empty();
    let want = |id: &str| all || args.iter().any(|a| a.eq_ignore_ascii_case(id));

    if want("E1") {
        e1_gadget();
    }
    if want("E2") {
        e2_reduction_witnesses();
    }
    if want("E3") {
        e3_lp_lemmas();
    }
    if want("E4") {
        e4_example_4_3();
    }
    if want("E5") {
        e5_ghd_bip();
    }
    if want("E6") {
        e6_fhd_bdp();
    }
    if want("E7") {
        e7_supports();
    }
    if want("E8") {
        e8_corpus();
    }
    if want("E9") {
        e9_covers();
    }
    if want("E10") {
        e10_approx_bip();
    }
    if want("E11") {
        e11_ptaas();
    }
    if want("E12") {
        e12_kloglog();
    }
    if want("E13") {
        e13_hierarchy();
    }
}

fn header(id: &str, claim: &str) {
    println!("\n=== {id}: {claim} ===");
}

/// E1 — Figure 1 / Lemma 3.1: the gadget forces the u_A, u_B, u_C bags.
fn e1_gadget() {
    header(
        "E1",
        "Lemma 3.1 gadget (Figure 1): ghw = fhw = 2, forced bags",
    );
    println!(
        "{:>10} {:>4} {:>4} {:>5} {:>5} {:>9}",
        "M sizes", "|V|", "|E|", "ghw", "fhw", "u_B path"
    );
    for (m1, m2) in [(1usize, 1usize), (2, 2), (3, 2)] {
        let g = reduction::gadget(m1, m2);
        let (ghw, _) = ghd::ghw_exact(&g, None).unwrap();
        let (fhw, fd) = fhd::fhw_exact(&g, None).unwrap();
        // Locate the forced quads in the optimal FHD.
        let quad = |names: [&str; 4]| -> Option<usize> {
            let set: hypertree_core::hypergraph::VertexSet =
                names.iter().map(|n| g.vertex_by_name(n).unwrap()).collect();
            fd.nodes().iter().position(|nd| set.is_subset(&nd.bag))
        };
        let ua = quad(["a1", "a2", "b1", "b2"]);
        let ub = quad(["b1", "b2", "c1", "c2"]);
        let uc = quad(["c1", "c2", "d1", "d2"]);
        let on_path = match (ua, ub, uc) {
            (Some(a), Some(b), Some(c)) => fd.path_between(a, c).contains(&b),
            _ => false,
        };
        println!(
            "{:>10} {:>4} {:>4} {:>5} {:>5} {:>9}",
            format!("({m1},{m2})"),
            g.num_vertices(),
            g.num_edges(),
            ghw,
            fhw.to_string(),
            on_path
        );
    }
}

/// E2 — Theorem 3.2 / Table 1 / Figure 2: satisfiable ⇒ validated width-2
/// witness; construction sizes and timings.
fn e2_reduction_witnesses() {
    header(
        "E2",
        "Theorem 3.2 'if' direction: Table 1 witnesses validate at width 2",
    );
    println!(
        "{:>10} {:>6} {:>6} {:>7} {:>7} {:>9} {:>10}",
        "instance", "|V|", "|E|", "nodes", "width", "GHD ok", "build+val"
    );
    for (name, r, plant) in workloads::reduction_instances() {
        let t = Instant::now();
        let d = reduction::witness_ghd(&r, &plant);
        let ok = validate::validate_ghd(&r.hypergraph, &d).is_ok()
            && validate::validate_fhd(&r.hypergraph, &d).is_ok();
        let elapsed = t.elapsed();
        println!(
            "{:>10} {:>6} {:>6} {:>7} {:>7} {:>9} {:>9.1?}",
            name,
            r.hypergraph.num_vertices(),
            r.hypergraph.num_edges(),
            d.len(),
            d.width().to_string(),
            ok,
            elapsed
        );
    }
}

/// E3 — Definition 3.4 / Lemmas 3.5, 3.6 / Claim D as exact LP certificates.
fn e3_lp_lemmas() {
    header(
        "E3",
        "Lemmas 3.5/3.6 and Claim D: exact LP certificates on the real construction",
    );
    let cnf = Cnf::example_3_3();
    let r = reduction::build(&cnf);
    let classes = reduction::complementary_classes(&r);
    println!("complementary classes: {}", classes.len());
    let mut checked = 0;
    let mut max_imbalance = Rational::zero();
    for class in classes.iter().take(6) {
        if let Some(im) = reduction::lemma_3_5_max_imbalance(&r, class) {
            max_imbalance = max_imbalance.max(im);
            checked += 1;
        }
    }
    println!("Lemma 3.5 (over {checked} classes): max imbalance = {max_imbalance}   [paper: 0]");
    let p = (2, 1);
    let (other, lo, hi) = reduction::lemma_3_6_certificates(&r, p).unwrap();
    println!(
        "Lemma 3.6 at p={p:?}: off-literal weight max = {other}  [paper: 0]; Σγ(e^k0) ∈ [{lo},{hi}]  [paper: 1,1]"
    );
    let d = reduction::claim_d_min_weight(&r).unwrap();
    println!("Claim D: min cover of S∪{{z1,z2,a1,a1'}} = {d}  [paper: > 2]");
}

/// E4 — Example 4.3 / Figures 4-7: hw = 3, ghw = 2, the ∪∩-tree.
fn e4_example_4_3() {
    header("E4", "Example 4.3 (Figures 4-6): hw(H0) = 3 > ghw(H0) = 2");
    let h = generators::example_4_3();
    let t = Instant::now();
    let w = exact_widths(&h, 5).unwrap();
    println!(
        "hw = {}  [paper: 3], ghw = {}  [paper: 2], fhw = {}  ({:.1?})",
        w.hw,
        w.ghw,
        w.fhw,
        t.elapsed()
    );
    let s = analyze_structure(&h, 16);
    println!(
        "iwidth = {}, 3-miwidth = {}, 4-miwidth = {}  [paper: 1, 1, 0]",
        s.intersection_width, s.multi_intersection_widths[1], s.multi_intersection_widths[2]
    );
    // Figure 7: the ∪∩-tree of Example 4.12.
    let e = |n: &str| h.edge_by_name(n).unwrap();
    let tree = ghd::union_of_intersections_tree(
        &h,
        e("e2"),
        &[vec![e("e3"), e("e7")], vec![e("e8"), e("e2")]],
    );
    println!(
        "Figure 7 ∪∩-tree: {} nodes (root + 2 leaves), leaf union = {{v3, v9}} (Example 4.12)",
        tree.size()
    );
}

/// E5 — Theorems 4.11/4.15: Check(GHD,k) under the BIP; subedge counts and
/// scaling.
fn e5_ghd_bip() {
    header(
        "E5",
        "Check(GHD,k) under BIP (Thm 4.15): polynomial scaling, |f(H,k)| bound",
    );
    println!(
        "{:>14} {:>4} {:>4} {:>3} {:>8} {:>10} {:>6} {:>10}",
        "instance", "|V|", "|E|", "i", "subedges", "bound", "k=2?", "time"
    );
    for (name, h) in workloads::bip_scaling() {
        let i = properties::intersection_width(&h);
        let limits = SubedgeLimits::default();
        let t = Instant::now();
        let f = ghd::bip_subedges(&h, 2, limits);
        let count = f.subedges.len();
        let ans = ghd::check_ghd_bip(&h, 2, limits);
        let elapsed = t.elapsed();
        let bound = h.num_edges().pow(3) * 2usize.pow(2 * i as u32);
        println!(
            "{:>14} {:>4} {:>4} {:>3} {:>8} {:>10} {:>6} {:>9.1?}",
            name,
            h.num_vertices(),
            h.num_edges(),
            i,
            count,
            bound,
            matches!(ans, GhdAnswer::Yes { .. }),
            elapsed
        );
    }
}

/// E6 — Theorem 5.2 / Algorithm 3: Check(FHD,k) under bounded degree.
fn e6_fhd_bdp() {
    header(
        "E6",
        "Check(FHD,k) under BDP (Thm 5.2) + Algorithm 3 agreement with exact fhw",
    );
    println!(
        "{:>14} {:>4} {:>4} {:>6} {:>7} {:>9} {:>10}",
        "instance", "|V|", "d", "fhw", "BDP ok", "Alg3 ok", "time"
    );
    for (name, h) in workloads::bdp_scaling() {
        let d = properties::degree(&h);
        let Some((fhw, _)) = fhd::fhw_exact(&h, None) else {
            continue;
        };
        let t = Instant::now();
        let bdp = fhd::check_fhd_bdp(&h, &fhw, HdkParams::default()).is_yes();
        // Completeness of Algorithm 3 needs c at least the size of the
        // largest fractional part (Lemma 6.4); |V(H)| dominates it here.
        let alg3 = fhd::frac_decomp(
            &h,
            &FracDecompParams {
                k: fhw.clone(),
                eps: rat(1, 4),
                c: h.num_vertices(),
            },
        )
        .is_some();
        println!(
            "{:>14} {:>4} {:>4} {:>6} {:>7} {:>9} {:>9.1?}",
            name,
            h.num_vertices(),
            d,
            fhw.to_string(),
            bdp,
            alg3,
            t.elapsed()
        );
    }
}

/// E7 — Corollary 5.5 / Lemma 5.6 / Example 5.1: bounded supports.
fn e7_supports() {
    header(
        "E7",
        "Example 5.1 & Füredi bound: rho* = 2 - 1/n with support n+1 <= d·rho*",
    );
    println!(
        "{:>4} {:>10} {:>9} {:>12}",
        "n", "rho*", "support", "d*rho*"
    );
    for n in [4usize, 8, 16, 32, 64] {
        let h = generators::example_5_1(n);
        let c = cover::fractional_cover(&h, &h.all_vertices()).unwrap();
        let d = properties::degree(&h);
        let bound = Rational::from(d) * c.weight.clone();
        println!(
            "{:>4} {:>10} {:>9} {:>12}",
            n,
            c.weight.to_string(),
            c.support().len(),
            bound.to_string()
        );
    }
}

/// E8 — the HyperBench-style motivation table (\[11, 23\]).
fn e8_corpus() {
    header(
        "E8",
        "CQ corpus study: most cyclic instances have ghw <= 2 (motivation for Check(GHD,2))",
    );
    println!(
        "{:>16} {:>4} {:>4} {:>4} {:>7} {:>4} {:>4} {:>6} {:>8}",
        "instance", "|V|", "|E|", "deg", "iwidth", "hw", "ghw", "fhw", "acyclic"
    );
    let mut cyclic = 0usize;
    let mut cyclic_ghw2 = 0usize;
    for wl in workloads::corpus() {
        let h = &wl.hypergraph;
        let s = analyze_structure(h, 14);
        let w = exact_widths(h, 6);
        let (hw, ghw, fhw) = match &w {
            Some(w) => (w.hw.to_string(), w.ghw.to_string(), w.fhw.to_string()),
            None => ("-".into(), "-".into(), "-".into()),
        };
        if !s.alpha_acyclic {
            cyclic += 1;
            if let Some(w) = &w {
                if w.ghw <= 2 {
                    cyclic_ghw2 += 1;
                }
            }
        }
        println!(
            "{:>16} {:>4} {:>4} {:>4} {:>7} {:>4} {:>4} {:>6} {:>8}",
            wl.name,
            s.num_vertices,
            s.num_edges,
            s.degree,
            s.intersection_width,
            hw,
            ghw,
            fhw,
            s.alpha_acyclic
        );
    }
    println!("cyclic instances with ghw <= 2: {cyclic_ghw2}/{cyclic}");
}

/// E9 — Lemma 2.3 and LP duality checks.
fn e9_covers() {
    header(
        "E9",
        "Lemma 2.3: rho(K_2n) = rho*(K_2n) = n; duality rho*(H) = tau*(H^d)",
    );
    println!("{:>6} {:>6} {:>8}", "2n", "rho", "rho*");
    for n in [2usize, 4, 8, 12] {
        let h = generators::clique(n);
        println!(
            "{:>6} {:>6} {:>8}",
            n,
            cover::rho(&h).unwrap(),
            cover::rho_star(&h).unwrap().to_string()
        );
    }
    let mut dual_ok = 0usize;
    let mut total = 0usize;
    for wl in workloads::corpus() {
        let h = &wl.hypergraph;
        if h.has_isolated_vertices() {
            continue;
        }
        let d = hypertree_core::hypergraph::dual::dual(h);
        total += 1;
        if cover::rho_star(h).unwrap() == cover::tau_star(&d) {
            dual_ok += 1;
        }
    }
    println!("duality rho*(H) = tau*(H^d): {dual_ok}/{total} exact matches");
}

/// E10 — Theorem 6.1 / Lemmas 6.4-6.5: the k+ε approximation under BIP.
fn e10_approx_bip() {
    header(
        "E10",
        "Theorem 6.1: BIP gives FHDs of width <= k + eps (pipeline: Lemma 6.5 + Alg 3)",
    );
    println!(
        "{:>16} {:>7} {:>7} {:>9} {:>9}",
        "instance", "fhw", "eps", "width", "<= k+eps"
    );
    for (name, h) in [
        ("cycle(3)".to_string(), generators::cycle(3)),
        ("cycle(4)".to_string(), generators::cycle(4)),
        ("example_5_1(3)".to_string(), generators::example_5_1(3)),
    ] {
        let (fhw, _) = fhd::fhw_exact(&h, None).unwrap();
        for (p, q) in [(1i64, 1i64), (1, 2)] {
            let eps = rat(p, q);
            if let Some(d) = fhd::approx_fhd_bip(&h, &fhw, &eps, Some(3)) {
                let ok = d.width() <= &fhw + &eps;
                println!(
                    "{:>16} {:>7} {:>7} {:>9} {:>9}",
                    name,
                    fhw.to_string(),
                    eps.to_string(),
                    d.width().to_string(),
                    ok
                );
            }
        }
    }
    // Lemma 6.4 rounding on Example 5.1.
    let h = generators::example_5_1(6);
    let (fhw, d) = fhd::fhw_exact(&h, None).unwrap();
    let eps = rat(1, 2);
    let rounded = fhd::bound_fractional_part(&h, &d, &fhw, &eps);
    println!(
        "Lemma 6.4 rounding on example_5_1(6): width {} -> {} (budget {})",
        d.width(),
        rounded.width(),
        (&fhw + &eps)
    );
}

/// E11 — Algorithm 4 / Theorem 6.20: the PTAAS and its iteration bound.
fn e11_ptaas() {
    header(
        "E11",
        "PTAAS (Alg 4): width <= fhw + eps; iterations ~ ceil(log2(K'/eps'))",
    );
    println!(
        "{:>14} {:>7} {:>11} {:>13} {:>6} {:>10}",
        "instance", "eps", "width", "lower", "iters", "predicted"
    );
    for (name, h) in [
        ("cycle(5)", generators::cycle(5)),
        ("clique(5)", generators::clique(5)),
    ] {
        for (p, q) in [(1i64, 1i64), (1, 2), (1, 4), (1, 8)] {
            let eps = rat(p, q);
            let res = fhd::fhw_approximation(&h, &rat(4, 1), &eps, fhd::exact_oracle).unwrap();
            println!(
                "{:>14} {:>7} {:>11} {:>13} {:>6} {:>10}",
                name,
                eps.to_string(),
                res.width.to_string(),
                res.lower_bound.to_string(),
                res.iterations,
                fhd::predicted_iterations(&rat(4, 1), &eps)
            );
        }
    }
}

/// E12 — Theorem 6.23 / Lemma 6.24 / Corollary 6.25.
fn e12_kloglog() {
    header(
        "E12",
        "Theorem 6.23: GHD from FHD, ratio <= max(1, 2^{vc+2} log2(11 rho*))",
    );
    println!(
        "{:>16} {:>6} {:>7} {:>7} {:>8} {:>9}",
        "instance", "fhw", "ghd_w", "ratio", "vc", "bound"
    );
    for wl in workloads::corpus() {
        let h = &wl.hypergraph;
        if h.num_vertices() > 14 {
            continue;
        }
        let Some((fhw, g)) = fhd::approx_ghw_via_fhw(h, CoverMode::Exact) else {
            continue;
        };
        let vc = properties::vc_dimension(h);
        let ratio = g.width().to_f64() / fhw.to_f64();
        let bound = fhd::cigap_bound(vc, &fhw);
        println!(
            "{:>16} {:>6} {:>7} {:>7.3} {:>8} {:>9.2}",
            wl.name,
            fhw.to_string(),
            g.width().to_string(),
            ratio,
            vc,
            bound
        );
    }
    // Lemma 6.24's separating family.
    let h = generators::lemma_6_24_family(8);
    println!(
        "Lemma 6.24 family (n=8): vc = {} < 2, 3-miwidth = {} (unbounded in n)",
        properties::vc_dimension(&h),
        properties::multi_intersection_width(&h, 3)
    );
}

/// E13 — width hierarchy + lifting.
fn e13_hierarchy() {
    header(
        "E13",
        "fhw <= ghw <= hw <= 3ghw+1 across corpus; Section 3 lifting shifts widths by l",
    );
    let mut ok = 0usize;
    let mut total = 0usize;
    for wl in workloads::corpus() {
        let Some(w) = exact_widths(&wl.hypergraph, 8) else {
            continue;
        };
        total += 1;
        if w.fhw <= Rational::from(w.ghw) && w.ghw <= w.hw && w.hw <= 3 * w.ghw + 1 {
            ok += 1;
        }
    }
    println!("hierarchy holds on {ok}/{total} corpus instances");
    for l in [1usize, 2] {
        let h = generators::cycle(4);
        let lifted = reduction::lift_integer(&h, l);
        let (g0, _) = ghd::ghw_exact(&h, None).unwrap();
        let (g1, _) = ghd::ghw_exact(&lifted, None).unwrap();
        println!("lift_integer(C4, {l}): ghw {g0} -> {g1}  [paper: +{l}]");
    }
    // Transformations round-trip (Lemma 4.6 / Theorem A.3) on a sample.
    let h = generators::example_4_3();
    let (_, d) = ghd::ghw_exact(&h, None).unwrap();
    let m = decomp::make_bag_maximal(&h, &d);
    let f = decomp::to_fnf(&h, &m);
    println!(
        "Example 4.3 pipeline: exact GHD ({} nodes) -> bag-maximal -> FNF ({} nodes <= |V| = {})",
        d.len(),
        f.len(),
        h.num_vertices()
    );
}
