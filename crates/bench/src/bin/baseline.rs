//! Records a performance baseline of the exact width engines on the
//! generator corpus and writes it as JSON (default: `BENCH_baseline.json`
//! in the current directory) for future perf-trajectory comparisons. Each
//! instance also records the fhw engine's counters (states, memo hits,
//! streamed/admitted candidates, LP price-cache hits), the preprocessing
//! pipeline's reduction counts (vertices/edges removed, block count) and
//! the cross-call price-cache reuse of a repeated fhw search — so the
//! baseline tracks candidate-generation *and* reduction discipline
//! alongside wall-clock.
//!
//! Timed runs use fresh per-search price caches (`reuse_prices: false`),
//! so the timings measure cold searches; the cross-call column then
//! repeats the fhw search twice through the fingerprint-keyed registry
//! and records how many of the second run's lookups came back warm.
//!
//! ```sh
//! cargo run -p hypertree-bench --bin baseline --release -- [out.json]
//! cargo run -p hypertree-bench --bin baseline --release -- --smoke [out.json]
//! ```
//!
//! `--smoke` is the CI mode: single iteration over a small corpus prefix,
//! just enough to prove the bin and the `hypertree-bench-baseline/v8`
//! schema have not rotted (see `scripts/bench_baseline.sh --smoke`).
//!
//! v4 added the exact-simplex work counters (`lp_pivots`,
//! `lp_warm_starts`, `lp_cold_solves`) and the adaptive candidate-stream
//! cap counter (`cand_cap_hits`) to each engine's stats object. v5 adds
//! the runtime counters (`result_cache_hits`, `inflight_dedup`,
//! `pool_reuse`) and the `batch` block: the whole corpus through
//! `solver::solve_batch` twice in one process — a cold pass that
//! populates the cross-call result cache and a warm second pass answered
//! from it — recording both wall-clocks and the per-instance hit counts.
//! v6 adds the `portfolio` block: the corpus plus the vendored
//! HyperBench-style instances raced through `solver::portfolio` (all
//! three measures per instance), recording each race's winner,
//! time-to-first-bound, time-to-exact and cancelled-loser count, plus a
//! corpus-wide flag that the portfolio widths matched the plain
//! single-backend path. v7 adds the per-instance `phases` block: one
//! extra ghw run per row with span tracing enabled (only for that run —
//! the timed rows stay untraced), aggregated to per-phase *self* times
//! (prep / candgen / engine search / pricing), so the baseline tracks
//! where the solve wall-clock actually goes. v8 adds the `serve` block —
//! the served-QPS track: an in-process `hgtool serve` daemon on an
//! ephemeral port, driven closed-loop by the loadgen over the vendored
//! corpus, recording throughput, server-side latency quantiles (straight
//! from the daemon's live request-latency histogram), error/deadline
//! counters and the result-cache hit ratio of served responses.

use hypertree_bench as workloads;
use hypertree_core::hypergraph::Hypergraph;
use hypertree_core::solver::{self, SearchStats};
use hypertree_core::{fhd, ghd, hd};
use std::fmt::Write as _;
use std::time::Instant;

/// Best-of-`iters` wall-clock measurement, in microseconds. Contention
/// noise on a shared host is one-sided — it only ever *adds* time — so
/// the minimum is the reproducible estimator of a cold search's true
/// cost, where a median still inherits whole bad windows (the bench box
/// shows ±20-50% transient host-side contention invisible to guest
/// load).
fn time_best<T>(iters: usize, mut f: impl FnMut() -> T) -> (T, u128) {
    let mut best = u128::MAX;
    let mut out = None;
    for _ in 0..iters {
        let t = Instant::now();
        out = Some(f());
        best = best.min(t.elapsed().as_micros());
    }
    (out.expect("ran at least once"), best)
}

fn main() {
    let mut smoke = false;
    let mut out_path = None;
    for arg in std::env::args().skip(1) {
        if arg == "--smoke" {
            smoke = true;
        } else {
            out_path = Some(arg);
        }
    }
    let out_path = out_path.unwrap_or_else(|| "BENCH_baseline.json".to_string());
    let iters = if smoke { 1 } else { 5 };
    let mut body = String::new();
    body.push_str("{\n");
    body.push_str("  \"schema\": \"hypertree-bench-baseline/v8\",\n");
    body.push_str("  \"command\": \"cargo run -p hypertree-bench --bin baseline --release\",\n");
    let _ = writeln!(body, "  \"profile\": \"{}\",", profile());
    body.push_str("  \"instances\": [\n");
    let mut corpus = workloads::corpus();
    if smoke {
        // The smallest handful is enough to exercise all three engines.
        corpus.truncate(5);
    } else {
        // The 19-30-vertex scaling corpus: candgen edge-union territory.
        corpus.extend(workloads::large_corpus());
    }
    let total = corpus.len();
    for (i, w) in corpus.iter().enumerate() {
        let h = &w.hypergraph;
        eprintln!("[{}/{}] {}", i + 1, total, w.name);
        let _ = write!(
            body,
            "    {{\"name\": \"{}\", \"vertices\": {}, \"edges\": {}",
            w.name,
            h.num_vertices(),
            h.num_edges()
        );
        // Cold searches: fresh price caches per call, so the timings stay
        // comparable across runs regardless of process history.
        let cold = solver::EngineOptions {
            reuse_prices: false,
            reuse_results: false,
            ..Default::default()
        };
        let (hw, t_hw) = time_best(iters, || {
            hd::hypertree_width_with_stats(h, 6, cold).0.map(|(k, _)| k)
        });
        match hw {
            Some(k) => {
                let _ = write!(body, ", \"hw\": {k}, \"hw_us\": {t_hw}");
            }
            None => body.push_str(", \"hw\": null"),
        }
        let (ghw, t_ghw) = time_best(iters, || {
            let (r, stats) = ghd::ghw_exact_with_stats(h, None, cold);
            (r.map(|(k, _)| k), stats)
        });
        match ghw {
            (Some(k), stats) => {
                let _ = write!(body, ", \"ghw\": {k}, \"ghw_us\": {t_ghw}");
                // v3: ghw runs on the candgen edge-union engine, so its
                // candidate-generation discipline is tracked like fhw's.
                let _ = write!(body, ", \"ghw_stats\": {}", stats_json(&stats));
            }
            (None, _) => body.push_str(", \"ghw\": null"),
        }
        let (fhw, t_fhw) = time_best(iters, || {
            let (r, stats) = fhd::fhw_exact_with_stats(h, None, cold);
            (r.map(|(k, _)| k), stats)
        });
        let fhw_in_range = match fhw {
            (Some(k), ref stats) => {
                let _ = write!(body, ", \"fhw\": \"{k}\", \"fhw_us\": {t_fhw}");
                let _ = write!(body, ", \"fhw_stats\": {}", stats_json(stats));
                true
            }
            (None, _) => {
                body.push_str(", \"fhw\": null");
                false
            }
        };
        // Reduction + cross-call columns on every row: the prep counters
        // of the cold run, plus a warmed repeat through the
        // fingerprint-keyed registry. Rows beyond the fhw engines (the
        // large-corpus instances the v3 schema was added to track) fall
        // back to the ghw search, which runs the same pipeline. Result
        // reuse stays off here — a result-cache hit would skip the rerun's
        // pricing entirely and void the warm-lookup column (the result
        // cache gets its own `batch` block below).
        let warm = solver::EngineOptions {
            reuse_results: false,
            ..Default::default()
        };
        let (prep_stats, rerun) = if fhw_in_range {
            let _ = fhd::fhw_exact_with_stats(h, None, warm);
            let (_, rerun) = fhd::fhw_exact_with_stats(h, None, warm);
            (fhw.1, rerun)
        } else {
            let _ = ghd::ghw_exact_with_stats(h, None, warm);
            let (_, rerun) = ghd::ghw_exact_with_stats(h, None, warm);
            (ghd::ghw_exact_with_stats(h, None, cold).1, rerun)
        };
        let _ = write!(
            body,
            ", \"prep\": {{\"vertices_removed\": {}, \"edges_removed\": {}, \
             \"blocks\": {}, \"rerun_warm_hits\": {}, \"rerun_lookups\": {}}}",
            prep_stats.prep_vertices_removed,
            prep_stats.prep_edges_removed,
            prep_stats.prep_blocks,
            rerun.price_warm_hits,
            rerun.price_hits + rerun.price_misses,
        );
        // v7: the per-phase self-time breakdown of one traced ghw run.
        // Tracing arms only around this run, so the timed rows above stay
        // unpolluted; self times partition the solve wall-clock with no
        // double counting (a phase excludes its sub-phases).
        obs::trace::set_enabled(true);
        obs::trace::drain();
        let _ = ghd::ghw_exact_with_stats(h, None, cold);
        let spans = obs::trace::drain();
        obs::trace::set_enabled(false);
        let totals = obs::trace::phase_totals(&spans);
        let phase = |k: &str| totals.get(k).map(|&(_, s)| s).unwrap_or(0);
        let all: u64 = totals.values().map(|&(_, s)| s).sum();
        let _ = write!(
            body,
            ", \"phases\": {{\"engine\": \"ghw\", \"prep_us\": {}, \"candgen_us\": {}, \
             \"search_us\": {}, \"pricing_us\": {}, \"total_self_us\": {}, \"spans\": {}}}",
            phase("prep"),
            phase("candgen"),
            phase("state"),
            phase("price"),
            all,
            spans.len(),
        );
        body.push('}');
        if i + 1 < total {
            body.push(',');
        }
        body.push('\n');
    }
    body.push_str("  ],\n");
    // The batch block: the whole corpus through `solver::solve_batch`
    // twice in one process, with the full runtime on (shared pool,
    // price + result reuse). The cold pass populates the cross-call
    // result cache; the warm pass must answer every instance from it.
    // `ghw` is the one engine in exact range across the entire corpus,
    // large instances included.
    eprintln!("batch: cold pass ({total} instances)");
    let batch_opts = solver::EngineOptions::default();
    let hgs: Vec<Hypergraph> = corpus.iter().map(|w| w.hypergraph.clone()).collect();
    let run_batch = || {
        solver::solve_batch(&hgs, |_, h| {
            let (r, s) = ghd::ghw_exact_with_stats(h, None, batch_opts);
            (r.map(|(k, _)| k), s)
        })
    };
    let t = Instant::now();
    let cold_pass = run_batch();
    let cold_us = t.elapsed().as_micros();
    eprintln!("batch: warm pass");
    let t = Instant::now();
    let warm_pass = run_batch();
    let warm_us = t.elapsed().as_micros();
    let widths_consistent = cold_pass
        .iter()
        .zip(&warm_pass)
        .all(|((a, _), (b, _))| a == b);
    let _ = writeln!(body, "  \"batch\": {{");
    let _ = writeln!(body, "    \"engine\": \"ghw\",");
    let _ = writeln!(body, "    \"instances\": {total},");
    let _ = writeln!(body, "    \"cold_us\": {cold_us},");
    let _ = writeln!(body, "    \"warm_us\": {warm_us},");
    let _ = writeln!(body, "    \"widths_consistent\": {widths_consistent},");
    body.push_str("    \"warm_result_cache_hits\": [\n");
    for (i, (w, (_, stats))) in corpus.iter().zip(&warm_pass).enumerate() {
        let _ = write!(
            body,
            "      {{\"name\": \"{}\", \"result_cache_hits\": {}, \"inflight_dedup\": {}}}",
            w.name, stats.result_cache_hits, stats.inflight_dedup
        );
        body.push_str(if i + 1 < total { ",\n" } else { "\n" });
    }
    body.push_str("    ]\n  },\n");
    // The portfolio block (v6): every instance of the corpus plus the
    // vendored HyperBench-style set races its full backend registries —
    // first exact answer wins, losers cancelled — and the block records
    // who won each measure, how fast the first bound and the exact answer
    // arrived, and that the portfolio widths matched the plain path.
    let mut port_corpus = corpus;
    port_corpus.extend(workloads::vendored_corpus());
    let port_total = port_corpus.len();
    eprintln!("portfolio: racing {port_total} instances");
    let popts = hypertree_core::solver::portfolio::PortfolioOptions::default();
    let mut widths_match = true;
    let _ = writeln!(body, "  \"portfolio\": {{");
    let _ = writeln!(body, "    \"instances\": {port_total},");
    body.push_str("    \"races\": [\n");
    for (i, w) in port_corpus.iter().enumerate() {
        let h = &w.hypergraph;
        let plain = hypertree_core::exact_widths_with_opts(h, 6, batch_opts).map(|(w, _)| w);
        let raced = hypertree_core::exact_widths_portfolio(h, 6, batch_opts, &popts);
        widths_match &= plain == raced.as_ref().map(|(w, _, _)| w.clone());
        let _ = write!(body, "      {{\"name\": \"{}\"", w.name);
        match &raced {
            Some((_, _, races)) => {
                for (measure, r) in [("hw", &races.hw), ("ghw", &races.ghw), ("fhw", &races.fhw)] {
                    let _ = write!(
                        body,
                        ", \"{measure}\": {{\"winner\": {}, \"first_bound_us\": {}, \
                         \"exact_us\": {}, \"losers_canceled\": {}}}",
                        r.winner
                            .map(|id| format!("\"{id}\""))
                            .unwrap_or_else(|| "null".into()),
                        r.time_to_first_bound
                            .map(|d| d.as_micros().to_string())
                            .unwrap_or_else(|| "null".into()),
                        r.time_to_exact
                            .map(|d| d.as_micros().to_string())
                            .unwrap_or_else(|| "null".into()),
                        r.canceled,
                    );
                }
            }
            None => body.push_str(", \"unresolved\": true"),
        }
        body.push('}');
        body.push_str(if i + 1 < port_total { ",\n" } else { "\n" });
    }
    body.push_str("    ],\n");
    let _ = writeln!(body, "    \"widths_match_single_backend\": {widths_match}");
    body.push_str("  },\n");
    // The serve block (v8): the served-QPS track. An in-process daemon
    // on an ephemeral port, the loadgen driving it closed-loop over the
    // vendored corpus; quantiles come from the daemon's own live
    // request-latency histogram (the same numbers GET /metrics renders),
    // with the loadgen's client-side view alongside for transport cost.
    let duration = if smoke {
        std::time::Duration::from_millis(400)
    } else {
        std::time::Duration::from_secs(2)
    };
    eprintln!("serve: loadgen for {}ms", duration.as_millis());
    let server = serve::Server::start(serve::ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        ..serve::ServeConfig::from_env()
    })
    .expect("bind ephemeral serve port");
    while !server.ready() {
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    let instances: Vec<(String, String)> = workloads::vendored_corpus()
        .into_iter()
        .map(|w| (w.name, w.hypergraph.to_string()))
        .collect();
    let lopts = serve::LoadgenOptions {
        connections: 4,
        duration,
        batch_every: 16,
        ..serve::LoadgenOptions::default()
    };
    let report =
        serve::loadgen::run(&server.addr().to_string(), &instances, &lopts).expect("loadgen run");
    let m = serve::metrics::handles();
    let snap = m
        .latency(serve::metrics::Endpoint::Solve)
        .expect("solve latency histogram")
        .snapshot();
    let q = |p: f64| snap.quantile_us(p).unwrap_or(0);
    server.drain();
    let _ = writeln!(body, "  \"serve\": {{");
    let _ = writeln!(body, "    \"connections\": {},", report.connections);
    let _ = writeln!(body, "    \"duration_us\": {},", report.elapsed.as_micros());
    let _ = writeln!(body, "    \"requests\": {},", report.requests);
    let _ = writeln!(body, "    \"ok\": {},", report.ok);
    let _ = writeln!(body, "    \"errors\": {},", report.errors);
    let _ = writeln!(
        body,
        "    \"deadline_expired\": {},",
        report.deadline_expired
    );
    let _ = writeln!(body, "    \"cancelled\": {},", m.cancelled.get());
    let _ = writeln!(body, "    \"qps\": {:.1},", report.qps);
    let _ = writeln!(body, "    \"p50_us\": {},", q(0.50));
    let _ = writeln!(body, "    \"p95_us\": {},", q(0.95));
    let _ = writeln!(body, "    \"p99_us\": {},", q(0.99));
    let _ = writeln!(body, "    \"latency_count\": {},", snap.count);
    let _ = writeln!(
        body,
        "    \"client_p50_us\": {}, \"client_p95_us\": {}, \"client_p99_us\": {},",
        report.p50_us, report.p95_us, report.p99_us
    );
    let _ = writeln!(
        body,
        "    \"cache_hit_ratio\": {:.4}",
        report.cache_hit_ratio()
    );
    body.push_str("  }\n}\n");
    std::fs::write(&out_path, &body).unwrap_or_else(|e| panic!("write {out_path}: {e}"));
    eprintln!(
        "wrote {out_path} (batch cold {cold_us}us -> warm {warm_us}us, consistent: {widths_consistent}; \
         portfolio widths match: {widths_match}; serve {:.0} qps, p95 {}us)",
        report.qps,
        q(0.95)
    );
}

fn stats_json(s: &SearchStats) -> String {
    // `threads` records the engine's worker count for provenance; the
    // counters themselves are thread-count-invariant by design. v3 added
    // the candidate-generation discipline: edge-union bags generated and
    // filtered by candgen, plus the heuristic width that seeded the
    // search's cutoff. v4 added the simplex work counters (pivots,
    // warm/cold solve split) and the adaptive stream-cap hit count. v5
    // adds the runtime counters (result-cache hits, in-flight dedup,
    // pool reuse) — zero on the timed cold rows by construction.
    format!(
        "{{\"threads\": {}, \"states\": {}, \"memo_hits\": {}, \"streamed\": {}, \
         \"admitted\": {}, \"lp_hits\": {}, \"lp_misses\": {}, \
         \"cand_gen\": {}, \"cand_filtered\": {}, \"cand_cap_hits\": {}, \
         \"lp_pivots\": {}, \"lp_warm_starts\": {}, \"lp_cold_solves\": {}, \
         \"result_cache_hits\": {}, \"inflight_dedup\": {}, \"pool_reuse\": {}, \
         \"ub_seed\": {}}}",
        solver::default_thread_count(),
        s.states,
        s.memo_hits,
        s.streamed,
        s.admitted,
        s.price_hits,
        s.price_misses,
        s.cand_generated,
        s.cand_filtered,
        s.cand_cap_hits,
        s.lp_pivots,
        s.lp_warm_starts,
        s.lp_cold_solves,
        s.result_cache_hits,
        s.inflight_dedup,
        s.pool_reuse,
        match &s.ub_width {
            Some(w) => format!("\"{w}\""),
            None => "null".into(),
        }
    )
}

fn profile() -> &'static str {
    if cfg!(debug_assertions) {
        "debug"
    } else {
        "release"
    }
}
