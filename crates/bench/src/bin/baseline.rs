//! Records a performance baseline of the exact width engines on the
//! generator corpus and writes it as JSON (default: `BENCH_baseline.json`
//! in the current directory) for future perf-trajectory comparisons.
//!
//! ```sh
//! cargo run -p hypertree-bench --bin baseline --release -- [out.json]
//! ```

use hypertree_bench as workloads;
use hypertree_core::{fhd, ghd, hd};
use std::fmt::Write as _;
use std::time::Instant;

/// Median-of-three wall-clock measurement, in microseconds.
fn time3<T>(mut f: impl FnMut() -> T) -> (T, u128) {
    let mut times = Vec::with_capacity(3);
    let mut out = None;
    for _ in 0..3 {
        let t = Instant::now();
        out = Some(f());
        times.push(t.elapsed().as_micros());
    }
    times.sort_unstable();
    (out.expect("ran at least once"), times[1])
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_baseline.json".to_string());
    let mut body = String::new();
    body.push_str("{\n");
    body.push_str("  \"schema\": \"hypertree-bench-baseline/v1\",\n");
    body.push_str("  \"command\": \"cargo run -p hypertree-bench --bin baseline --release\",\n");
    let _ = writeln!(body, "  \"profile\": \"{}\",", profile());
    body.push_str("  \"instances\": [\n");
    let corpus = workloads::corpus();
    let total = corpus.len();
    for (i, w) in corpus.into_iter().enumerate() {
        let h = &w.hypergraph;
        eprintln!("[{}/{}] {}", i + 1, total, w.name);
        let _ = write!(
            body,
            "    {{\"name\": \"{}\", \"vertices\": {}, \"edges\": {}",
            w.name,
            h.num_vertices(),
            h.num_edges()
        );
        let (hw, t_hw) = time3(|| hd::hypertree_width(h, 6).map(|(k, _)| k));
        match hw {
            Some(k) => {
                let _ = write!(body, ", \"hw\": {k}, \"hw_us\": {t_hw}");
            }
            None => body.push_str(", \"hw\": null"),
        }
        let (ghw, t_ghw) = time3(|| ghd::ghw_exact(h, None).map(|(k, _)| k));
        match ghw {
            Some(k) => {
                let _ = write!(body, ", \"ghw\": {k}, \"ghw_us\": {t_ghw}");
            }
            None => body.push_str(", \"ghw\": null"),
        }
        let (fhw, t_fhw) = time3(|| fhd::fhw_exact(h, None).map(|(k, _)| k));
        match fhw {
            Some(k) => {
                let _ = write!(body, ", \"fhw\": \"{k}\", \"fhw_us\": {t_fhw}");
            }
            None => body.push_str(", \"fhw\": null"),
        }
        body.push('}');
        if i + 1 < total {
            body.push(',');
        }
        body.push('\n');
    }
    body.push_str("  ]\n}\n");
    std::fs::write(&out_path, &body).unwrap_or_else(|e| panic!("write {out_path}: {e}"));
    eprintln!("wrote {out_path}");
}

fn profile() -> &'static str {
    if cfg!(debug_assertions) {
        "debug"
    } else {
        "release"
    }
}
