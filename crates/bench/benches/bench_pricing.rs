//! Cold vs warm `ρ*` pricing on the heuristic upper bound's bag walk —
//! the hot path the warm-started incremental simplex was built for. The
//! workload is `candgen::upper_bound` itself: the elimination orderings
//! and their local search price a deterministic sequence of *neighboring*
//! bags (consecutive closed neighborhoods share most of their vertices
//! and edge rows), so a warm solve re-seats the previous basis and
//! usually finishes in a few pivots. The cold variant prices every bag
//! from scratch — the per-bag-pure discipline the parallel engine's
//! pricing pool keeps. The pivot counts printed at the end are the
//! "warm starts do less simplex work" demonstration in counter form.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hypertree_core::candgen;
use hypertree_core::cover::PricingContext;
use hypertree_core::hypergraph::{generators, Hypergraph};
use std::time::Duration;

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500))
}

/// One full heuristic-bound run, warm or cold, returning the context so
/// callers can read its pivot counters.
fn heuristic_walk(h: &Hypergraph, warm: bool) -> PricingContext {
    let mut ctx = PricingContext::new();
    candgen::upper_bound(h, |bag| {
        let priced = if warm {
            ctx.price_warm(h, bag)
        } else {
            ctx.price(h, bag)
        };
        priced.expect("no isolated vertices, so every bag is coverable")
    });
    ctx
}

fn bench_cold_vs_warm(c: &mut Criterion) {
    let mut g = c.benchmark_group("pricing/cold_vs_warm");
    for (name, h) in [
        ("grid5x5", generators::grid(5, 5)),
        ("cycle24", generators::cycle(24)),
        ("triangle_chain8", generators::triangle_chain(8)),
        ("hypercube4", generators::hypercube(4)),
        ("example_4_3", generators::example_4_3()),
    ] {
        g.bench_with_input(BenchmarkId::new("cold", name), &h, |b, h| {
            b.iter(|| heuristic_walk(h, false).stats().pivots)
        });
        g.bench_with_input(BenchmarkId::new("warm", name), &h, |b, h| {
            b.iter(|| heuristic_walk(h, true).stats().pivots)
        });
        // The counter form of the speedup: one pass each, pivots compared.
        let (cs, ws) = (
            heuristic_walk(&h, false).stats(),
            heuristic_walk(&h, true).stats(),
        );
        eprintln!(
            "{name}: cold {} pivots / {} solves, \
             warm {} pivots ({} warm starts, {} cold fallbacks)",
            cs.pivots, cs.cold_solves, ws.pivots, ws.warm_starts, ws.cold_solves,
        );
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_cold_vs_warm
}
criterion_main!(benches);
