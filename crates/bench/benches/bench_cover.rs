//! E7/E9: edge covers — `rho` (branch-and-bound), `rho*` (exact LP),
//! transversals, duality, and the Example 5.1 unbounded-support family.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hypertree_core::cover;
use hypertree_core::hypergraph::{dual, generators};
use std::time::Duration;

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500))
}

fn bench_cliques(c: &mut Criterion) {
    let mut g = c.benchmark_group("cover/cliques");
    for n in [6usize, 10, 14] {
        let h = generators::clique(n);
        g.bench_with_input(BenchmarkId::new("rho", n), &h, |b, h| {
            b.iter(|| cover::rho(h).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("rho_star", n), &h, |b, h| {
            b.iter(|| cover::rho_star(h).unwrap())
        });
    }
    g.finish();
}

fn bench_example_5_1(c: &mut Criterion) {
    let mut g = c.benchmark_group("cover/example_5_1");
    for n in [8usize, 16, 32] {
        let h = generators::example_5_1(n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &h, |b, h| {
            b.iter(|| {
                let cov = cover::fractional_cover(h, &h.all_vertices()).unwrap();
                assert_eq!(cov.support().len(), n + 1);
                cov.weight
            })
        });
    }
    g.finish();
}

fn bench_duality(c: &mut Criterion) {
    let h = generators::random_bip(12, 9, 2, 4, 3);
    let d = dual::dual(&h);
    c.benchmark_group("cover/duality")
        .sample_size(10)
        .bench_function("rho_star_vs_tau_star", |b| {
            b.iter(|| {
                let lhs = cover::rho_star(&h).unwrap();
                let rhs = cover::tau_star(&d);
                assert_eq!(lhs, rhs);
                lhs
            })
        });
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_cliques, bench_example_5_1, bench_duality
}
criterion_main!(benches);
