//! E10–E12: the Section 6 approximation algorithms — the BIP `k + ε`
//! pipeline, the PTAAS binary search, and the O(k·log k) GHD conversion.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hypertree_core::arith::rat;
use hypertree_core::fhd::{self, CoverMode};
use hypertree_core::hypergraph::generators;
use std::time::Duration;

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500))
}

fn bench_approx_bip(c: &mut Criterion) {
    let h = generators::cycle(3);
    c.benchmark_group("approx/theorem_6_1")
        .sample_size(10)
        .bench_function("triangle_k_eps", |b| {
            b.iter(|| fhd::approx_fhd_bip(&h, &rat(3, 2), &rat(1, 2), Some(3)).is_some())
        });
}

fn bench_ptaas(c: &mut Criterion) {
    let mut g = c.benchmark_group("approx/ptaas");
    for (p, q) in [(1i64, 1i64), (1, 4)] {
        let eps = rat(p, q);
        let h = generators::cycle(5);
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("eps={p}/{q}")),
            &(h, eps),
            |b, (h, eps)| {
                b.iter(|| {
                    fhd::fhw_approximation(h, &rat(4, 1), eps, fhd::exact_oracle)
                        .unwrap()
                        .iterations
                })
            },
        );
    }
    g.finish();
}

fn bench_kloglog(c: &mut Criterion) {
    let mut g = c.benchmark_group("approx/theorem_6_23");
    for (name, h) in [
        ("clique6", generators::clique(6)),
        ("example_5_1(5)", generators::example_5_1(5)),
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(name), &h, |b, h| {
            b.iter(|| {
                fhd::approx_ghw_via_fhw(h, CoverMode::Greedy)
                    .unwrap()
                    .1
                    .width()
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_approx_bip, bench_ptaas, bench_kloglog
}
criterion_main!(benches);
