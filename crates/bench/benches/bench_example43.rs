//! E4: Example 4.3 / Figures 4–7 — the hw/ghw separation and the ∪∩-tree.

use criterion::{criterion_group, criterion_main, Criterion};
use hypertree_core::ghd::{self, SubedgeLimits};
use hypertree_core::hypergraph::generators;
use hypertree_core::{fhd, hd};
use std::time::Duration;

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500))
}

fn bench_example_4_3(c: &mut Criterion) {
    let h = generators::example_4_3();
    let mut g = c.benchmark_group("example_4_3");
    g.bench_function("hw=3 via det-k-decomp", |b| {
        b.iter(|| {
            assert!(hd::check_hd(&h, 2).is_none());
            hd::check_hd(&h, 3).unwrap().len()
        })
    });
    g.bench_function("ghw=2 via BIP subedges", |b| {
        b.iter(|| ghd::check_ghd_bip(&h, 2, SubedgeLimits::default()).is_yes())
    });
    g.bench_function("ghw=2 exact DP", |b| {
        b.iter(|| ghd::ghw_exact(&h, None).unwrap().0)
    });
    g.bench_function("fhw exact DP", |b| {
        b.iter(|| fhd::fhw_exact(&h, None).unwrap().0)
    });
    let e = |n: &str| h.edge_by_name(n).unwrap();
    g.bench_function("figure_7_uoi_tree", |b| {
        b.iter(|| {
            ghd::union_of_intersections_tree(
                &h,
                e("e2"),
                &[vec![e("e3"), e("e7")], vec![e("e8"), e("e2")]],
            )
            .size()
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_example_4_3
}
criterion_main!(benches);
