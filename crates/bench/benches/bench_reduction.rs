//! E1–E3: the Section 3 reduction — construction, Table 1 witness building
//! + validation, and the Lemma 3.5/3.6 LP certificates.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hypertree_core::decomp::validate;
use hypertree_core::reduction::{self, Cnf};
use std::time::Duration;

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500))
}

fn bench_construction(c: &mut Criterion) {
    let mut g = c.benchmark_group("reduction/build");
    for (n, m) in [(3usize, 2usize), (4, 4), (5, 6)] {
        let (cnf, _) = Cnf::random_planted(n, m, 7);
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("n{n}m{m}")),
            &cnf,
            |b, cnf| b.iter(|| reduction::build(cnf)),
        );
    }
    g.finish();
}

fn bench_witness(c: &mut Criterion) {
    let mut g = c.benchmark_group("reduction/witness+validate");
    for (n, m) in [(3usize, 2usize), (4, 4)] {
        let (cnf, plant) = Cnf::random_planted(n, m, 7);
        let r = reduction::build(&cnf);
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("n{n}m{m}")),
            &(r, plant),
            |b, (r, plant)| {
                b.iter(|| {
                    let d = reduction::witness_ghd(r, plant);
                    assert!(validate::validate_ghd(&r.hypergraph, &d).is_ok());
                    d.len()
                })
            },
        );
    }
    g.finish();
}

fn bench_lemma_lps(c: &mut Criterion) {
    let r = reduction::build(&Cnf::example_3_3());
    let classes = reduction::complementary_classes(&r);
    c.benchmark_group("reduction/lemma-LPs")
        .sample_size(10)
        .bench_function("lemma_3_5_one_class", |b| {
            b.iter(|| reduction::lemma_3_5_max_imbalance(&r, &classes[0]))
        })
        .bench_function("claim_d", |b| b.iter(|| reduction::claim_d_min_weight(&r)));
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_construction, bench_witness, bench_lemma_lps
}
criterion_main!(benches);
