//! E6: Check(FHD, k) under bounded degree (Theorem 5.2) and Algorithm 3.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hypertree_core::arith::{rat, Rational};
use hypertree_core::fhd::{self, FracDecompParams, HdkParams};
use hypertree_core::hypergraph::generators;
use std::time::Duration;

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500))
}

fn bench_bdp_check(c: &mut Criterion) {
    let mut g = c.benchmark_group("fhd_bdp/check");
    for n in [4usize, 5, 6] {
        let h = generators::cycle(n);
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("cycle{n}")),
            &h,
            |b, h| {
                b.iter(|| {
                    fhd::check_fhd_bdp(h, &Rational::from(2usize), HdkParams::default()).is_yes()
                })
            },
        );
    }
    let tri = generators::cycle(3);
    g.bench_function("triangle_at_3/2", |b| {
        b.iter(|| fhd::check_fhd_bdp(&tri, &rat(3, 2), HdkParams::default()).is_yes())
    });
    g.finish();
}

fn bench_frac_decomp(c: &mut Criterion) {
    let mut g = c.benchmark_group("fhd_bdp/frac_decomp");
    for n in [3usize, 4, 5] {
        let h = generators::cycle(n);
        let params = FracDecompParams {
            k: rat(2, 1),
            eps: rat(1, 2),
            c: 2,
        };
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("cycle{n}")),
            &h,
            |b, h| b.iter(|| fhd::frac_decomp(h, &params).is_some()),
        );
    }
    g.finish();
}

fn bench_intersection_forest(c: &mut Criterion) {
    let h = generators::random_bounded_degree(12, 9, 3, 3, 5);
    let xi: Vec<Vec<usize>> = (0..4)
        .map(|i| vec![i % h.num_edges(), (i + 2) % h.num_edges()])
        .collect();
    c.benchmark_group("fhd_bdp/algorithm_2")
        .sample_size(20)
        .bench_function("intersection_forest", |b| {
            b.iter(|| fhd::intersection_forest(&h, &xi).size())
        });
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_bdp_check, bench_frac_decomp, bench_intersection_forest
}
criterion_main!(benches);
