//! E8/E13: the CQ-shaped corpus — exact width engines across realistic
//! query shapes (the HyperBench-style study that motivates the paper).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hypertree_core::hypergraph::generators;
use hypertree_core::{fhd, ghd, hd};
use std::time::Duration;

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500))
}

fn bench_engines(c: &mut Criterion) {
    let instances = vec![
        ("triangles3", generators::triangle_chain(3)),
        ("grid3x3", generators::grid(3, 3)),
        ("clique6", generators::clique(6)),
        ("example_4_3", generators::example_4_3()),
    ];
    let mut g = c.benchmark_group("corpus/engines");
    for (name, h) in instances {
        g.bench_with_input(BenchmarkId::new("hw", name), &h, |b, h| {
            b.iter(|| hd::hypertree_width(h, 5).unwrap().0)
        });
        if h.num_vertices() <= 14 {
            g.bench_with_input(BenchmarkId::new("ghw_exact", name), &h, |b, h| {
                b.iter(|| ghd::ghw_exact(h, None).unwrap().0)
            });
            g.bench_with_input(BenchmarkId::new("fhw_exact", name), &h, |b, h| {
                b.iter(|| fhd::fhw_exact(h, None).unwrap().0)
            });
        }
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_engines
}
criterion_main!(benches);
