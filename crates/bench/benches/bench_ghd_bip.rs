//! E5: Check(GHD, k) under the BIP (Theorems 4.11/4.15) — subedge
//! generation and the full check across growing 1-BIP instances.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hypertree_core::ghd::{self, SubedgeLimits};
use hypertree_core::hypergraph::generators;
use std::time::Duration;

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500))
}

fn bench_subedges(c: &mut Criterion) {
    let mut g = c.benchmark_group("ghd_bip/subedges");
    for cols in [4usize, 6, 8] {
        let h = generators::grid(2, cols);
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("grid2x{cols}")),
            &h,
            |b, h| {
                b.iter(|| {
                    ghd::bip_subedges(h, 2, SubedgeLimits::default())
                        .subedges
                        .len()
                })
            },
        );
    }
    g.finish();
}

fn bench_check(c: &mut Criterion) {
    let mut g = c.benchmark_group("ghd_bip/check_k2");
    for cols in [3usize, 4, 5] {
        let h = generators::grid(2, cols);
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("grid2x{cols}")),
            &h,
            |b, h| b.iter(|| ghd::check_ghd_bip(h, 2, SubedgeLimits::default()).is_yes()),
        );
    }
    {
        let seed = 1u64;
        let h = generators::random_bip(10, 7, 2, 3, seed);
        g.bench_with_input(BenchmarkId::from_parameter("rand_bip10"), &h, |b, h| {
            b.iter(|| ghd::check_ghd_bip(h, 2, SubedgeLimits::default()).is_yes())
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_subedges, bench_check
}
criterion_main!(benches);
