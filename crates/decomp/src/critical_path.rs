//! Critical paths (Definitions 4.8 and 5.11) and the Lemma 4.9 / 5.12
//! equality `e ∩ B_u = e ∩ ⋂_i B(λ_{u_i})` — the structural fact behind
//! every subedge function in the paper.

use crate::bag_maximal::is_bag_maximal;
use crate::types::Decomposition;
use hypergraph::{Hypergraph, VertexSet};

/// The critical path `critp(u, e)`: the path from `u` to the closest node
/// `u*` with `e ⊆ B_{u*}` (as node ids, starting at `u`). Returns `None`
/// when no node covers `e` (then the input violates condition 1).
pub fn critical_path(d: &Decomposition, h: &Hypergraph, u: usize, e: usize) -> Option<Vec<usize>> {
    let edge = h.edge(e);
    let mut best: Option<Vec<usize>> = None;
    for target in 0..d.len() {
        if !edge.is_subset(&d.node(target).bag) {
            continue;
        }
        let path = d.path_between(u, target);
        if best.as_ref().is_none_or(|b| path.len() < b.len()) {
            best = Some(path);
        }
    }
    best
}

/// Evaluates both sides of the Lemma 4.9 equality along `critp(u, e)`:
/// returns `(e ∩ B_u, e ∩ ⋂_{i=1..l} B(λ_{u_i}))`. For bag-maximal
/// decompositions the two sets are equal.
pub fn lemma_4_9_sides(
    d: &Decomposition,
    h: &Hypergraph,
    u: usize,
    e: usize,
) -> Option<(VertexSet, VertexSet)> {
    let path = critical_path(d, h, u, e)?;
    let lhs = h.edge(e).intersection(&d.node(u).bag);
    let mut rhs = h.edge(e).clone();
    for &ui in path.iter().skip(1) {
        rhs.intersect_with(&d.node(ui).covered_set(h));
    }
    Some((lhs, rhs))
}

/// Checks the Lemma 4.9 invariant at every `(u, e ∈ λ_u)` pair with
/// `e ⊄ B_u`; intended for bag-maximal decompositions (the lemma's
/// hypothesis — see [`is_bag_maximal`]).
pub fn lemma_4_9_holds(d: &Decomposition, h: &Hypergraph) -> bool {
    debug_assert!(is_bag_maximal(h, d), "Lemma 4.9 presumes bag-maximality");
    for u in 0..d.len() {
        for e in d.node(u).support() {
            if h.edge(e).is_subset(&d.node(u).bag) {
                continue;
            }
            match lemma_4_9_sides(d, h, u, e) {
                Some((lhs, rhs)) => {
                    if lhs != rhs {
                        return false;
                    }
                }
                None => return false,
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bag_maximal::make_bag_maximal;
    use crate::types::Node;
    use hypergraph::generators;

    /// Figure 6(b): the bag-maximal width-2 GHD of Example 4.3's H0.
    fn figure_6b() -> (Hypergraph, Decomposition) {
        let h = generators::example_4_3();
        let v = |name: &str| h.vertex_by_name(name).unwrap();
        let e = |name: &str| h.edge_by_name(name).unwrap();
        let bag = |names: &[&str]| VertexSet::from_iter(names.iter().map(|n| v(n)));
        let mut d = Decomposition::new(Node::integral(
            bag(&["v3", "v6", "v7", "v9", "v10"]),
            [e("e2"), e("e6")],
        ));
        d.add_child(
            0,
            Node::integral(
                bag(&["v3", "v4", "v5", "v6", "v9", "v10"]),
                [e("e3"), e("e5")],
            ),
        );
        let u1 = d.add_child(
            0,
            Node::integral(bag(&["v3", "v7", "v8", "v9", "v10"]), [e("e3"), e("e7")]),
        );
        d.add_child(
            u1,
            Node::integral(
                bag(&["v1", "v2", "v3", "v8", "v9", "v10"]),
                [e("e2"), e("e8")],
            ),
        );
        (h, d)
    }

    #[test]
    fn example_4_10_critical_path() {
        // critp(u, e2) = (u, u1, u2): e2 = {v2,v3,v9} is covered at u2.
        let (h, d) = figure_6b();
        let e2 = h.edge_by_name("e2").unwrap();
        let path = critical_path(&d, &h, 0, e2).unwrap();
        assert_eq!(path, vec![0, 2, 3]); // u0 -> u1 -> u2 in our ids
    }

    #[test]
    fn example_4_10_lemma_4_9_equality() {
        // e2 ∩ B_u = e2 ∩ (e3 ∪ e7) ∩ (e8 ∪ e2) = {v3, v9}.
        let (h, d) = figure_6b();
        let e2 = h.edge_by_name("e2").unwrap();
        let (lhs, rhs) = lemma_4_9_sides(&d, &h, 0, e2).unwrap();
        let expected: VertexSet = ["v3", "v9"]
            .iter()
            .map(|n| h.vertex_by_name(n).unwrap())
            .collect();
        assert_eq!(lhs, expected);
        assert_eq!(rhs, expected);
    }

    #[test]
    fn lemma_4_9_on_the_whole_decomposition() {
        let (h, d) = figure_6b();
        assert!(
            crate::bag_maximal::is_bag_maximal(&h, &d),
            "Figure 6(b) is bag-maximal"
        );
        assert!(lemma_4_9_holds(&d, &h));
    }

    #[test]
    fn lemma_4_9_after_maximalization_of_arbitrary_ghds() {
        // Take exact GHDs... build simple ones by hand: cycle with two bags.
        let h = generators::cycle(4);
        let mut d = Decomposition::new(Node::integral(VertexSet::from_iter([0, 1, 2]), [0, 1]));
        d.add_child(0, Node::integral(VertexSet::from_iter([0, 2, 3]), [2, 3]));
        let m = make_bag_maximal(&h, &d);
        assert!(lemma_4_9_holds(&m, &h));
    }

    #[test]
    fn covered_edge_has_trivial_path() {
        let (h, d) = figure_6b();
        let e6 = h.edge_by_name("e6").unwrap(); // covered at the root itself
        assert_eq!(critical_path(&d, &h, 0, e6).unwrap(), vec![0]);
    }
}
