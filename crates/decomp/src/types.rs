//! Decomposition trees (Definitions 2.4–2.6).
//!
//! One representation serves HDs, GHDs and FHDs: every node carries a bag
//! `B_u` and a sparse edge-weight function (`λ_u` when all weights are 1,
//! `γ_u` in general). Which *conditions* hold — and therefore which kind of
//! decomposition this is — is checked by the validators in
//! [`crate::validate`].

use arith::Rational;
use hypergraph::{Hypergraph, VertexSet};
use std::fmt;

/// A node of a decomposition: a bag plus an edge-weight function.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Node {
    /// The bag `B_u ⊆ V(H)`.
    pub bag: VertexSet,
    /// Sparse weights `γ_u` (edge index, weight), weights in `(0, 1]`.
    pub weights: Vec<(usize, Rational)>,
}

impl Node {
    /// Builds a node with integral weights (`λ_u` as an edge set).
    pub fn integral(bag: VertexSet, edges: impl IntoIterator<Item = usize>) -> Self {
        Node {
            bag,
            weights: edges.into_iter().map(|e| (e, Rational::one())).collect(),
        }
    }

    /// Total weight of the node's cover function.
    pub fn weight(&self) -> Rational {
        self.weights.iter().map(|(_, w)| w.clone()).sum()
    }

    /// `supp(γ_u)`: edges with non-zero weight.
    pub fn support(&self) -> Vec<usize> {
        self.weights
            .iter()
            .filter(|(_, w)| !w.is_zero())
            .map(|(e, _)| *e)
            .collect()
    }

    /// True iff every weight is exactly 1 (an integral `λ_u`).
    pub fn is_integral(&self) -> bool {
        self.weights
            .iter()
            .all(|(_, w)| w == &Rational::one() || w.is_zero())
    }

    /// `B(γ_u)`: vertices receiving total weight >= 1.
    pub fn covered_set(&self, h: &Hypergraph) -> VertexSet {
        let mut out = VertexSet::new();
        for v in 0..h.num_vertices() {
            let total: Rational = self
                .weights
                .iter()
                .filter(|(e, _)| h.edge(*e).contains(v))
                .map(|(_, w)| w.clone())
                .sum();
            if total >= Rational::one() {
                out.insert(v);
            }
        }
        out
    }

    /// `B(γ_u |_R)` for a sub-support `R` (Definition 6.2 machinery).
    pub fn covered_set_restricted(&self, h: &Hypergraph, r: &[usize]) -> VertexSet {
        let mut out = VertexSet::new();
        for v in 0..h.num_vertices() {
            let total: Rational = self
                .weights
                .iter()
                .filter(|(e, _)| r.contains(e) && h.edge(*e).contains(v))
                .map(|(_, w)| w.clone())
                .sum();
            if total >= Rational::one() {
                out.insert(v);
            }
        }
        out
    }
}

impl cover::MemSize for Node {
    fn approx_bytes(&self) -> usize {
        self.bag.approx_bytes() + self.weights.approx_bytes()
    }
}

impl cover::MemSize for Decomposition {
    fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Decomposition>() + self.approx_bytes_inner()
    }
}

/// A rooted decomposition tree. Node 0 is always the root.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Decomposition {
    nodes: Vec<Node>,
    parent: Vec<Option<usize>>,
    children: Vec<Vec<usize>>,
}

impl Decomposition {
    /// Starts a decomposition from its root node.
    pub fn new(root: Node) -> Self {
        Decomposition {
            nodes: vec![root],
            parent: vec![None],
            children: vec![Vec::new()],
        }
    }

    /// Adds a node under `parent`; returns the new node id.
    pub fn add_child(&mut self, parent: usize, node: Node) -> usize {
        assert!(parent < self.nodes.len());
        let id = self.nodes.len();
        self.nodes.push(node);
        self.parent.push(Some(parent));
        self.children.push(Vec::new());
        self.children[parent].push(id);
        id
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True iff the decomposition has no nodes (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The root node id (always 0).
    pub fn root(&self) -> usize {
        0
    }

    /// Immutable node access.
    pub fn node(&self, u: usize) -> &Node {
        &self.nodes[u]
    }

    /// Mutable node access.
    pub fn node_mut(&mut self, u: usize) -> &mut Node {
        &mut self.nodes[u]
    }

    /// All nodes in id order.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Approximate resident bytes (for the result-cache byte budget).
    fn approx_bytes_inner(&self) -> usize {
        use cover::MemSize as _;
        let tree: usize = self
            .children
            .iter()
            .map(|c| std::mem::size_of::<Vec<usize>>() + c.capacity() * 8)
            .sum();
        self.nodes.iter().map(|n| n.approx_bytes()).sum::<usize>()
            + self.parent.capacity() * 16
            + tree
    }

    /// Parent of `u` (`None` for the root).
    pub fn parent(&self, u: usize) -> Option<usize> {
        self.parent[u]
    }

    /// Children of `u`.
    pub fn children(&self, u: usize) -> &[usize] {
        &self.children[u]
    }

    /// The width: maximum total node weight (Definition 2.6).
    pub fn width(&self) -> Rational {
        self.nodes
            .iter()
            .map(Node::weight)
            .max()
            .unwrap_or_else(Rational::zero)
    }

    /// Node ids of the subtree rooted at `u` (preorder).
    pub fn subtree(&self, u: usize) -> Vec<usize> {
        let mut out = Vec::new();
        let mut stack = vec![u];
        while let Some(n) = stack.pop() {
            out.push(n);
            stack.extend(self.children[n].iter().copied());
        }
        out
    }

    /// `V(T_u)`: the union of bags in the subtree rooted at `u`.
    pub fn subtree_vertices(&self, u: usize) -> VertexSet {
        let mut out = VertexSet::new();
        for n in self.subtree(u) {
            out.union_with(&self.nodes[n].bag);
        }
        out
    }

    /// `nodes(V', D)`: ids of nodes whose bag intersects `vs`.
    pub fn nodes_intersecting(&self, vs: &VertexSet) -> Vec<usize> {
        (0..self.len())
            .filter(|&u| self.nodes[u].bag.intersects(vs))
            .collect()
    }

    /// The unique tree path from `a` to `b` (inclusive).
    pub fn path_between(&self, a: usize, b: usize) -> Vec<usize> {
        let ancestors = |mut u: usize| -> Vec<usize> {
            let mut out = vec![u];
            while let Some(p) = self.parent[u] {
                out.push(p);
                u = p;
            }
            out
        };
        let pa = ancestors(a);
        let pb = ancestors(b);
        // Find the lowest common ancestor.
        let set_b: std::collections::HashSet<usize> = pb.iter().copied().collect();
        let lca = *pa.iter().find(|u| set_b.contains(u)).expect("same tree");
        let mut path: Vec<usize> = pa.iter().take_while(|&&u| u != lca).copied().collect();
        path.push(lca);
        let tail: Vec<usize> = pb.iter().take_while(|&&u| u != lca).copied().collect();
        path.extend(tail.into_iter().rev());
        path
    }

    /// Removes node `u` (not the root), attaching its children to its parent.
    pub fn splice_out(&mut self, u: usize) {
        let p = self.parent[u].expect("cannot splice out the root");
        let kids = std::mem::take(&mut self.children[u]);
        for &k in &kids {
            self.parent[k] = Some(p);
        }
        self.children[p].retain(|&c| c != u);
        self.children[p].extend(kids);
        // Mark the node dead by emptying it; ids stay stable.
        self.nodes[u].bag.clear();
        self.nodes[u].weights.clear();
        self.parent[u] = None;
        self.compact(u);
    }

    /// Removes a dead node id by swapping in the last node.
    fn compact(&mut self, dead: usize) {
        let last = self.nodes.len() - 1;
        if dead != last {
            self.nodes.swap(dead, last);
            self.parent.swap(dead, last);
            self.children.swap(dead, last);
            // Rewire references to `last`.
            let moved_parent = self.parent[dead];
            if let Some(p) = moved_parent {
                for c in self.children[p].iter_mut() {
                    if *c == last {
                        *c = dead;
                    }
                }
            }
            let kids = self.children[dead].clone();
            for k in kids {
                self.parent[k] = Some(dead);
            }
        }
        self.nodes.pop();
        self.parent.pop();
        self.children.pop();
    }

    /// Pretty-prints the tree with bag and cover contents.
    pub fn render(&self, h: &Hypergraph) -> String {
        let mut out = String::new();
        self.render_rec(h, self.root(), 0, &mut out);
        out
    }

    fn render_rec(&self, h: &Hypergraph, u: usize, depth: usize, out: &mut String) {
        use std::fmt::Write;
        let node = &self.nodes[u];
        let bag: Vec<&str> = node.bag.iter().map(|v| h.vertex_name(v)).collect();
        let cover: Vec<String> = node
            .weights
            .iter()
            .map(|(e, w)| {
                if w == &Rational::one() {
                    h.edge_name(*e).to_string()
                } else {
                    format!("{}:{}", h.edge_name(*e), w)
                }
            })
            .collect();
        let _ = writeln!(
            out,
            "{}[{}] bag={{{}}} cover={{{}}}",
            "  ".repeat(depth),
            u,
            bag.join(","),
            cover.join(",")
        );
        for &c in &self.children[u] {
            self.render_rec(h, c, depth + 1, out);
        }
    }
}

impl fmt::Display for Decomposition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Decomposition({} nodes, width {})",
            self.len(),
            self.width()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_tree() -> Decomposition {
        // root(0) -> a(1) -> b(2); root -> c(3)
        let mut d = Decomposition::new(Node::integral(VertexSet::from_iter([0, 1]), [0]));
        let a = d.add_child(0, Node::integral(VertexSet::from_iter([1, 2]), [1]));
        let _b = d.add_child(a, Node::integral(VertexSet::from_iter([2, 3]), [2]));
        let _c = d.add_child(0, Node::integral(VertexSet::from_iter([0, 4]), [3]));
        d
    }

    #[test]
    fn structure_queries() {
        let d = simple_tree();
        assert_eq!(d.len(), 4);
        assert_eq!(d.root(), 0);
        assert_eq!(d.parent(1), Some(0));
        assert_eq!(d.children(0), &[1, 3]);
        assert_eq!(d.subtree(1), vec![1, 2]);
        assert_eq!(d.subtree_vertices(1).to_vec(), vec![1, 2, 3]);
    }

    #[test]
    fn path_between_nodes() {
        let d = simple_tree();
        assert_eq!(d.path_between(2, 3), vec![2, 1, 0, 3]);
        assert_eq!(d.path_between(1, 1), vec![1]);
        assert_eq!(d.path_between(0, 2), vec![0, 1, 2]);
    }

    #[test]
    fn width_is_max_node_weight() {
        let mut d = simple_tree();
        assert_eq!(d.width(), Rational::one());
        d.node_mut(2).weights.push((3, Rational::from_frac(1, 2)));
        assert_eq!(d.width(), Rational::from_frac(3, 2));
    }

    #[test]
    fn splice_out_preserves_tree() {
        let mut d = simple_tree();
        d.splice_out(1); // b should hang off the root now
        assert_eq!(d.len(), 3);
        // All remaining nodes reachable from root.
        assert_eq!(d.subtree(0).len(), 3);
        let subtree_bags: Vec<Vec<usize>> = d
            .subtree(0)
            .iter()
            .map(|&u| d.node(u).bag.to_vec())
            .collect();
        assert!(subtree_bags.contains(&vec![2, 3]));
        assert!(subtree_bags.contains(&vec![0, 4]));
    }

    #[test]
    fn node_cover_sets() {
        let h = Hypergraph::from_edges(4, vec![vec![0, 1], vec![1, 2], vec![2, 3]]);
        let mut n = Node::integral(VertexSet::from_iter([0, 1]), [0]);
        assert_eq!(n.covered_set(&h).to_vec(), vec![0, 1]);
        assert!(n.is_integral());
        n.weights = vec![
            (0, Rational::from_frac(1, 2)),
            (1, Rational::from_frac(1, 2)),
        ];
        assert!(!n.is_integral());
        // Only v1 gets total weight 1.
        assert_eq!(n.covered_set(&h).to_vec(), vec![1]);
        assert_eq!(n.weight(), Rational::one());
    }
}
