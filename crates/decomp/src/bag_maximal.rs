//! Bag-maximality (Definition 4.5 / Lemma 4.6): vertices already covered by
//! a node's weight function are pulled into the bag whenever that keeps the
//! connectedness condition intact. Subedge-function arguments (Lemma 4.9,
//! Lemma 5.12) only hold for bag-maximal decompositions.

use crate::types::Decomposition;
use hypergraph::Hypergraph;

/// Exhaustively applies the Lemma 4.6 transformation. The result covers the
/// same hypergraph, has the same tree and weight functions (hence the same
/// width), and is bag-maximal.
pub fn make_bag_maximal(h: &Hypergraph, d: &Decomposition) -> Decomposition {
    let mut out = d.clone();
    loop {
        let mut changed = false;
        for u in 0..out.len() {
            let candidates = out.node(u).covered_set(h).difference(&out.node(u).bag);
            for v in candidates.iter() {
                if addition_keeps_connectedness(&out, u, v) {
                    out.node_mut(u).bag.insert(v);
                    changed = true;
                }
            }
        }
        if !changed {
            return out;
        }
    }
}

/// True iff the decomposition is bag-maximal (no legal addition remains).
pub fn is_bag_maximal(h: &Hypergraph, d: &Decomposition) -> bool {
    for u in 0..d.len() {
        let candidates = d.node(u).covered_set(h).difference(&d.node(u).bag);
        for v in candidates.iter() {
            if addition_keeps_connectedness(d, u, v) {
                return false;
            }
        }
    }
    true
}

/// Would inserting `v` into `B_u` keep `nodes(v)` connected? The new holder
/// set is the old one plus `u`, so the addition is legal iff `v` occurs
/// nowhere else, or `u` is adjacent to (or part of) the existing subtree.
fn addition_keeps_connectedness(d: &Decomposition, u: usize, v: usize) -> bool {
    let holders: Vec<usize> = (0..d.len())
        .filter(|&n| d.node(n).bag.contains(v))
        .collect();
    if holders.is_empty() || holders.contains(&u) {
        return true;
    }
    // u must touch the holder subtree: its parent or one of its children is
    // a holder.
    if let Some(p) = d.parent(u) {
        if holders.contains(&p) {
            return true;
        }
    }
    d.children(u).iter().any(|c| holders.contains(c))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Node;
    use crate::validate;
    use hypergraph::{generators, VertexSet};

    /// Figure 6(a) of the paper: a width-2 GHD of Example 4.3's H0 that is
    /// *not* bag-maximal at node u' (bag {v3,v6,v9,v10}).
    fn figure_6a() -> (Hypergraph, Decomposition) {
        let h = generators::example_4_3();
        let v = |name: &str| h.vertex_by_name(name).unwrap();
        let e = |name: &str| h.edge_by_name(name).unwrap();
        let bag = |names: &[&str]| VertexSet::from_iter(names.iter().map(|n| v(n)));
        // u0 (root), children u' and u1; u1 -> u2; u' -> u''.
        let mut d = Decomposition::new(Node::integral(
            bag(&["v3", "v6", "v7", "v9", "v10"]),
            [e("e2"), e("e6")],
        ));
        let u_prime = d.add_child(
            0,
            Node::integral(bag(&["v3", "v6", "v9", "v10"]), [e("e3"), e("e5")]),
        );
        d.add_child(
            u_prime,
            Node::integral(
                bag(&["v3", "v4", "v5", "v6", "v9", "v10"]),
                [e("e3"), e("e5")],
            ),
        );
        let u1 = d.add_child(
            0,
            Node::integral(bag(&["v3", "v7", "v8", "v9", "v10"]), [e("e3"), e("e7")]),
        );
        d.add_child(
            u1,
            Node::integral(
                bag(&["v1", "v2", "v3", "v8", "v9", "v10"]),
                [e("e2"), e("e8")],
            ),
        );
        (h, d)
    }

    use hypergraph::Hypergraph;

    #[test]
    fn figure_6a_is_a_valid_width_2_ghd_but_not_bag_maximal() {
        let (h, d) = figure_6a();
        assert_eq!(validate::validate_ghd(&h, &d), Ok(()));
        assert_eq!(d.width(), arith::Rational::from(2usize));
        assert!(!is_bag_maximal(&h, &d));
    }

    #[test]
    fn example_4_7_maximalization_adds_v4_v5_to_u_prime() {
        let (h, d) = figure_6a();
        let m = make_bag_maximal(&h, &d);
        assert!(is_bag_maximal(&h, &m));
        assert_eq!(validate::validate_ghd(&h, &m), Ok(()));
        assert_eq!(m.width(), d.width());
        // u' (node 1) gained v4 and v5, becoming equal to its child's bag.
        let v4 = h.vertex_by_name("v4").unwrap();
        let v5 = h.vertex_by_name("v5").unwrap();
        assert!(m.node(1).bag.contains(v4));
        assert!(m.node(1).bag.contains(v5));
        assert_eq!(m.node(1).bag, m.node(2).bag);
        // Example 4.7: v2 must NOT be addable to the root (u0): it appears
        // in u2 but not in u1, so adding it at the root breaks connectedness.
        let v2 = h.vertex_by_name("v2").unwrap();
        assert!(!m.node(0).bag.contains(v2));
    }

    #[test]
    fn maximalization_is_idempotent() {
        let (h, d) = figure_6a();
        let once = make_bag_maximal(&h, &d);
        let twice = make_bag_maximal(&h, &once);
        assert_eq!(once, twice);
    }
}
