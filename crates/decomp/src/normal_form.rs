//! Transformation into fractional normal form (Definition 5.20,
//! Theorem A.3), following the proof of Theorem 5.4 in Gottlob–Leone–
//! Scarcello \[27\] lifted to FHDs.
//!
//! The transformation preserves the weight functions (hence the width) and
//! validity; it only re-arranges the tree and shrinks/extends bags:
//!
//! 1. subtrees entirely inside the parent bag are spliced away,
//! 2. a child subtree spanning several `[B_r]`-components is split into one
//!    subtree per component, restricting each bag to `B_n ∩ (C ∪ B_r)`,
//! 3. covered parent-bag vertices are pulled into child bags
//!    (`B(γ_s) ∩ B_r ⊆ B_s`).

use crate::types::{Decomposition, Node};
use hypergraph::{components, Hypergraph, VertexSet};

/// An owned subtree used during reconstruction.
struct SubTree {
    node: Node,
    kids: Vec<SubTree>,
}

impl SubTree {
    fn from_decomposition(d: &Decomposition, u: usize) -> SubTree {
        SubTree {
            node: d.node(u).clone(),
            kids: d
                .children(u)
                .iter()
                .map(|&c| SubTree::from_decomposition(d, c))
                .collect(),
        }
    }

    fn vertices(&self, acc: &mut VertexSet) {
        acc.union_with(&self.node.bag);
        for k in &self.kids {
            k.vertices(acc);
        }
    }
}

/// Transforms a valid FHD into an FHD in fractional normal form of the same
/// width (Theorem A.3). Also correct for GHDs/HDs, whose weights are a
/// special case; the weak special condition is preserved (Lemma 6.6).
pub fn to_fnf(h: &Hypergraph, d: &Decomposition) -> Decomposition {
    let root = SubTree::from_decomposition(d, d.root());
    let mut new_root_node = root.node.clone();
    // The root has no parent, so only its children need work.
    let kids: Vec<SubTree> = root
        .kids
        .into_iter()
        .flat_map(|k| normalize(h, &new_root_node.bag, k))
        .collect();
    // Condition 3 cannot apply to the root; leave its bag as-is.
    new_root_node = root_cleanup(new_root_node);
    let mut out = Decomposition::new(new_root_node);
    for k in kids {
        attach(&mut out, 0, k);
    }
    out
}

fn root_cleanup(n: Node) -> Node {
    n
}

/// Normalizes the subtree `t` against its parent's bag `br`, returning the
/// (possibly several) replacement subtrees to attach under the parent.
fn normalize(h: &Hypergraph, br: &VertexSet, t: SubTree) -> Vec<SubTree> {
    let mut vts = VertexSet::new();
    t.vertices(&mut vts);
    let w = vts.difference(br);
    if w.is_empty() {
        // V(T_s) ⊆ B_r: splice s out, normalizing its children against the
        // same parent bag (their content is also inside B_r or below).
        return t
            .kids
            .into_iter()
            .flat_map(|k| normalize(h, br, k))
            .collect();
    }
    // Split by [B_r]-components intersecting the subtree.
    let comps: Vec<VertexSet> = components::components(h, br)
        .into_iter()
        .filter(|c| c.intersects(&w))
        .collect();
    let mut out = Vec::new();
    for c in &comps {
        let scope = c.union(br);
        let mut roots = Vec::new();
        clone_filtered(&t, c, &scope, &mut roots);
        for mut s_prime in roots {
            // FNF condition 3: pull covered parent-bag vertices into B_s'.
            let covered = s_prime.node.covered_set(h);
            let pull = covered.intersection(br);
            s_prime.node.bag.union_with(&pull);
            // Recurse: normalize the rebuilt children against the new bag.
            let bag = s_prime.node.bag.clone();
            let kids = std::mem::take(&mut s_prime.kids);
            s_prime.kids = kids
                .into_iter()
                .flat_map(|k| normalize(h, &bag, k))
                .collect();
            out.push(s_prime);
        }
    }
    out
}

/// Copies the nodes of `t` whose bag intersects component `c`, restricting
/// bags to `scope = c ∪ br`. For valid inputs `nodes(c)` induces a connected
/// subtree (Lemma A.2), so this yields a single root; we nevertheless return
/// every maximal kept subtree for robustness.
fn clone_filtered(t: &SubTree, c: &VertexSet, scope: &VertexSet, roots: &mut Vec<SubTree>) {
    if t.node.bag.intersects(c) {
        let mut copy = SubTree {
            node: Node {
                bag: t.node.bag.intersection(scope),
                weights: t.node.weights.clone(),
            },
            kids: Vec::new(),
        };
        for k in &t.kids {
            clone_filtered(k, c, scope, &mut copy.kids);
        }
        roots.push(copy);
    } else {
        // Dropped node: descend looking for kept subtrees (none exist for
        // valid inputs below a dropped node, by Lemma A.2).
        for k in &t.kids {
            clone_filtered(k, c, scope, roots);
        }
    }
}

fn attach(d: &mut Decomposition, parent: usize, t: SubTree) {
    let id = d.add_child(parent, t.node);
    for k in t.kids {
        attach(d, id, k);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate;
    use arith::Rational;
    use hypergraph::generators;

    /// A deliberately messy width-2 GHD of the 6-cycle: one child subtree
    /// covers two different [B_root]-components, and a middle node's bag is
    /// a subset of its parent's.
    fn messy_cycle6() -> (Hypergraph, Decomposition) {
        use crate::types::Node;
        let h = generators::cycle(6); // e_i = {i, i+1 mod 6}
                                      // Root bag {0, 3} covered by e0 ∪ e3 -> wait e0={0,1}, e3={3,4}.
        let mut d = Decomposition::new(Node::integral(VertexSet::from_iter([0, 1, 3, 4]), [0, 3]));
        // A redundant middle node (same bag as the root) whose subtree spans
        // both [B_root]-components {2} and {5} — valid, but far from FNF.
        let mid = d.add_child(
            0,
            Node::integral(VertexSet::from_iter([0, 1, 3, 4]), [0, 3]),
        );
        d.add_child(mid, Node::integral(VertexSet::from_iter([1, 2, 3]), [1, 2]));
        d.add_child(mid, Node::integral(VertexSet::from_iter([4, 5, 0]), [4, 5]));
        (h, d)
    }

    use hypergraph::Hypergraph;

    #[test]
    fn messy_input_is_valid_but_not_fnf() {
        let (h, d) = messy_cycle6();
        assert_eq!(validate::validate_ghd(&h, &d), Ok(()));
        assert!(validate::validate_fnf(&h, &d).is_err());
    }

    #[test]
    fn fnf_transformation_repairs_and_preserves_width() {
        let (h, d) = messy_cycle6();
        let f = to_fnf(&h, &d);
        assert_eq!(validate::validate_ghd(&h, &f), Ok(()), "{}", f.render(&h));
        assert_eq!(validate::validate_fnf(&h, &f), Ok(()), "{}", f.render(&h));
        assert!(f.width() <= d.width());
    }

    #[test]
    fn fnf_is_idempotent_on_normal_inputs() {
        let (h, d) = messy_cycle6();
        let f1 = to_fnf(&h, &d);
        let f2 = to_fnf(&h, &f1);
        assert_eq!(validate::validate_fnf(&h, &f2), Ok(()));
        assert_eq!(f1.len(), f2.len());
    }

    #[test]
    fn lemma_6_9_node_count_bound() {
        // |nodes(T)| <= |V(H)| for FNF decompositions.
        let (h, d) = messy_cycle6();
        let f = to_fnf(&h, &d);
        assert!(f.len() <= h.num_vertices());
    }

    #[test]
    fn splice_case_removes_redundant_child() {
        use crate::types::Node;
        // Child bag inside the root bag entirely.
        let h = generators::path(3); // e0={0,1}, e1={1,2}
        let mut d = Decomposition::new(Node::integral(VertexSet::from_iter([0, 1, 2]), [0, 1]));
        d.add_child(0, Node::integral(VertexSet::from_iter([1, 2]), [1]));
        let f = to_fnf(&h, &d);
        assert_eq!(f.len(), 1);
        assert_eq!(validate::validate_fnf(&h, &f), Ok(()));
    }

    #[test]
    fn width_never_increases_across_corpus() {
        use crate::types::Node;
        for seed in 0..4u64 {
            let h = generators::random_acyclic(6, 3, seed);
            // A lazy one-bag-per-edge path decomposition (valid? needs
            // connectedness) — use a single fat root instead plus leaves.
            let all = h.all_vertices();
            let cover: Vec<usize> = (0..h.num_edges()).collect();
            let mut d = Decomposition::new(Node::integral(all, cover));
            for e in 0..h.num_edges() {
                d.add_child(0, Node::integral(h.edge(e).clone(), [e]));
            }
            assert_eq!(validate::validate_ghd(&h, &d), Ok(()));
            let f = to_fnf(&h, &d);
            assert_eq!(validate::validate_ghd(&h, &f), Ok(()));
            assert_eq!(validate::validate_fnf(&h, &f), Ok(()));
            assert!(f.width() <= Rational::from(h.num_edges()));
        }
    }
}
