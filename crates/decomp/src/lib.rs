//! Decomposition formalism of the paper: HD / GHD / FHD trees
//! (Definitions 2.4–2.6), validators for every condition (including the
//! special condition, weak special condition, `c`-bounded fractional parts,
//! strictness and fractional normal form), bag-maximalization (Lemma 4.6)
//! and the FNF transformation (Theorem A.3).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bag_maximal;
pub mod critical_path;
pub mod export;
pub mod normal_form;
mod types;
pub mod validate;

pub use bag_maximal::{is_bag_maximal, make_bag_maximal};
pub use critical_path::{critical_path, lemma_4_9_holds, lemma_4_9_sides};
pub use export::to_dot;
pub use normal_form::to_fnf;
pub use types::{Decomposition, Node};
pub use validate::{
    has_c_bounded_fractional_part, is_strict, treecomp, validate_fhd, validate_fhd_special,
    validate_fnf, validate_ghd, validate_hd, validate_weak_special, Violation,
};
