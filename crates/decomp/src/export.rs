//! Graphviz (DOT) export of decompositions — the visualization format used
//! by the `detkdecomp`/HyperBench tool family, so decompositions produced
//! here can be rendered alongside theirs.

use crate::types::Decomposition;
use arith::Rational;
use hypergraph::Hypergraph;
use std::fmt::Write;

/// Renders the decomposition as a Graphviz `digraph`: one record node per
/// bag showing `B_u` and the cover `λ_u`/`γ_u` with weights.
pub fn to_dot(h: &Hypergraph, d: &Decomposition) -> String {
    let mut out = String::from("digraph decomposition {\n  node [shape=record];\n");
    for u in 0..d.len() {
        let node = d.node(u);
        let bag: Vec<&str> = node.bag.iter().map(|v| h.vertex_name(v)).collect();
        let cover: Vec<String> = node
            .weights
            .iter()
            .map(|(e, w)| {
                if w == &Rational::one() {
                    h.edge_name(*e).to_string()
                } else {
                    format!("{}={}", h.edge_name(*e), w)
                }
            })
            .collect();
        let _ = writeln!(
            out,
            "  n{u} [label=\"{{{{{}}}|{{{}}}}}\"];",
            escape(&bag.join(", ")),
            escape(&cover.join(", "))
        );
    }
    for u in 0..d.len() {
        for &c in d.children(u) {
            let _ = writeln!(out, "  n{u} -> n{c};");
        }
    }
    out.push_str("}\n");
    out
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('{', "\\{")
        .replace('}', "\\}")
        .replace('|', "\\|")
        .replace('<', "\\<")
        .replace('>', "\\>")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Node;
    use hypergraph::{generators, VertexSet};

    #[test]
    fn dot_output_is_well_formed() {
        let h = generators::cycle(4);
        let mut d = Decomposition::new(Node::integral(VertexSet::from_iter([0, 1, 2]), [0, 1]));
        d.add_child(0, Node::integral(VertexSet::from_iter([0, 2, 3]), [2, 3]));
        let dot = to_dot(&h, &d);
        assert!(dot.starts_with("digraph decomposition {"));
        assert!(dot.trim_end().ends_with('}'));
        assert!(dot.contains("n0 -> n1;"));
        assert!(dot.contains("v0, v1, v2"));
        assert_eq!(dot.matches("[label=").count(), 2);
    }

    #[test]
    fn fractional_weights_are_shown() {
        let h = generators::cycle(3);
        let node = Node {
            bag: VertexSet::from_iter([0, 1, 2]),
            weights: (0..3).map(|e| (e, arith::rat(1, 2))).collect(),
        };
        let d = Decomposition::new(node);
        let dot = to_dot(&h, &d);
        assert!(dot.contains("e0=1/2"));
    }

    #[test]
    fn special_characters_escaped() {
        assert_eq!(escape("a|b{c}"), "a\\|b\\{c\\}");
    }
}
