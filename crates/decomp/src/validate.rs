//! Validators for every decomposition condition in the paper.
//!
//! * conditions (1)–(3') of Definitions 2.4/2.6 — FHD validity,
//! * integrality — GHD validity,
//! * the special condition (4) of Definition 2.5 — HD validity,
//! * the weak special condition (Definition 6.3),
//! * `c`-bounded fractional part (Definition 6.2),
//! * strictness (Definition 5.18) and fractional normal form
//!   (Definition 5.20).
//!
//! Every algorithm in the workspace funnels its output through these checks
//! in tests, so the validators are deliberately written straight from the
//! definitions with no shortcuts shared with the solvers.

use crate::types::Decomposition;
use arith::Rational;
use hypergraph::{components, Hypergraph, VertexSet};

/// A violated decomposition condition, with enough context to debug.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Violation {
    /// Condition 1: this edge is contained in no bag.
    EdgeNotCovered {
        /// The uncovered edge.
        edge: usize,
    },
    /// Condition 2: the nodes containing this vertex are not connected.
    DisconnectedVertex {
        /// The offending vertex.
        vertex: usize,
    },
    /// Condition 3/3': the bag is not covered by the node's weight function.
    BagNotCovered {
        /// The node.
        node: usize,
        /// A bag vertex with total weight < 1.
        vertex: usize,
    },
    /// A weight outside `[0, 1]`.
    WeightOutOfRange {
        /// The node.
        node: usize,
        /// The edge with the bad weight.
        edge: usize,
    },
    /// A fractional weight where an integral one (0 or 1) is required.
    NotIntegral {
        /// The node.
        node: usize,
        /// The fractionally-weighted edge.
        edge: usize,
    },
    /// Condition 4 (special condition): `V(T_u) ∩ B(λ_u) ⊄ B_u`.
    SpecialConditionViolated {
        /// The node `u`.
        node: usize,
        /// A vertex of `B(λ_u) ∩ V(T_u) \ B_u`.
        vertex: usize,
    },
    /// Weak special condition (Definition 6.3) violated.
    WeakSpecialConditionViolated {
        /// The node `u`.
        node: usize,
        /// A vertex of `B(γ_u|_S) ∩ V(T_u) \ B_u`.
        vertex: usize,
    },
    /// FNF condition 1: a child subtree spans zero or several components.
    FnfComponentMismatch {
        /// The child node `s`.
        node: usize,
    },
    /// FNF condition 2: `B_s ∩ C_r = ∅`.
    FnfEmptyComponentIntersection {
        /// The child node `s`.
        node: usize,
    },
    /// FNF condition 3: `B(γ_s) ∩ B_r ⊄ B_s`.
    FnfCoveredParentVertexDropped {
        /// The child node `s`.
        node: usize,
        /// The dropped vertex.
        vertex: usize,
    },
}

/// Checks conditions (1), (2), (3') of Definition 2.6 — i.e. that `d` is a
/// valid **FHD** of `h` — plus the range condition `γ_u : E → [0,1]`.
pub fn validate_fhd(h: &Hypergraph, d: &Decomposition) -> Result<(), Violation> {
    // Weights in range.
    for (u, node) in d.nodes().iter().enumerate() {
        for (e, w) in &node.weights {
            if w.is_negative() || w > &Rational::one() {
                return Err(Violation::WeightOutOfRange { node: u, edge: *e });
            }
        }
    }
    // Condition 1: every edge inside some bag.
    for e in 0..h.num_edges() {
        if !(0..d.len()).any(|u| h.edge(e).is_subset(&d.node(u).bag)) {
            return Err(Violation::EdgeNotCovered { edge: e });
        }
    }
    // Condition 2: connectedness of every vertex's node set.
    for v in 0..h.num_vertices() {
        if !vertex_nodes_connected(d, v) {
            return Err(Violation::DisconnectedVertex { vertex: v });
        }
    }
    // Condition 3': B_u ⊆ B(γ_u).
    for (u, node) in d.nodes().iter().enumerate() {
        let covered = node.covered_set(h);
        if let Some(v) = node.bag.iter().find(|&v| !covered.contains(v)) {
            return Err(Violation::BagNotCovered { node: u, vertex: v });
        }
    }
    Ok(())
}

/// Checks that `d` is a valid **GHD**: FHD conditions plus integral weights.
pub fn validate_ghd(h: &Hypergraph, d: &Decomposition) -> Result<(), Violation> {
    for (u, node) in d.nodes().iter().enumerate() {
        if let Some((e, _)) = node
            .weights
            .iter()
            .find(|(_, w)| !w.is_zero() && w != &Rational::one())
        {
            return Err(Violation::NotIntegral { node: u, edge: *e });
        }
    }
    validate_fhd(h, d)
}

/// Checks that `d` is a valid **HD**: GHD plus the special condition
/// (Definition 2.5, condition 4): `V(T_u) ∩ B(λ_u) ⊆ B_u` at every node.
pub fn validate_hd(h: &Hypergraph, d: &Decomposition) -> Result<(), Violation> {
    validate_ghd(h, d)?;
    for u in 0..d.len() {
        let covered = d.node(u).covered_set(h);
        let subtree = d.subtree_vertices(u);
        let mut escape = covered.intersection(&subtree);
        escape.difference_with(&d.node(u).bag);
        if let Some(v) = escape.first() {
            return Err(Violation::SpecialConditionViolated { node: u, vertex: v });
        }
    }
    Ok(())
}

/// Weak special condition (Definition 6.3): for
/// `S = {e | γ_u(e) = 1}`, `B(γ_u|_S) ∩ V(T_u) ⊆ B_u` at every node.
pub fn validate_weak_special(h: &Hypergraph, d: &Decomposition) -> Result<(), Violation> {
    for u in 0..d.len() {
        let s: Vec<usize> = d
            .node(u)
            .weights
            .iter()
            .filter(|(_, w)| w == &Rational::one())
            .map(|(e, _)| *e)
            .collect();
        let covered = h.union_of_edges(s);
        let subtree = d.subtree_vertices(u);
        let mut escape = covered.intersection(&subtree);
        escape.difference_with(&d.node(u).bag);
        if let Some(v) = escape.first() {
            return Err(Violation::WeakSpecialConditionViolated { node: u, vertex: v });
        }
    }
    Ok(())
}

/// `c`-bounded fractional part (Definition 6.2): at every node, the vertices
/// covered purely by the fractional (< 1) weights number at most `c`.
pub fn has_c_bounded_fractional_part(h: &Hypergraph, d: &Decomposition, c: usize) -> bool {
    d.nodes().iter().all(|node| {
        let r: Vec<usize> = node
            .weights
            .iter()
            .filter(|(_, w)| !w.is_zero() && w < &Rational::one())
            .map(|(e, _)| *e)
            .collect();
        node.covered_set_restricted(h, &r).len() <= c
    })
}

/// Strictness (Definition 5.18): `B_u = B(γ_u) = ⋃ supp(γ_u)` at every node.
pub fn is_strict(h: &Hypergraph, d: &Decomposition) -> bool {
    d.nodes().iter().all(|node| {
        let union = h.union_of_edges(node.support());
        node.bag == union && node.covered_set(h) == union
    })
}

/// Fractional normal form (Definition 5.20). Assumes `d` is a valid FHD.
pub fn validate_fnf(h: &Hypergraph, d: &Decomposition) -> Result<(), Violation> {
    for s in 0..d.len() {
        let Some(r) = d.parent(s) else { continue };
        let br = &d.node(r).bag;
        let bs = &d.node(s).bag;
        let vts = d.subtree_vertices(s);
        // Condition 1: exactly one [B_r]-component C_r with
        // V(T_s) = C_r ∪ (B_r ∩ B_s).
        let outside = vts.difference(br);
        let comps = components::components(h, br);
        let matching: Vec<&VertexSet> = comps.iter().filter(|c| c.intersects(&vts)).collect();
        if matching.len() != 1 {
            return Err(Violation::FnfComponentMismatch { node: s });
        }
        let cr = matching[0];
        if &outside != cr || vts != cr.union(&br.intersection(bs)) {
            return Err(Violation::FnfComponentMismatch { node: s });
        }
        // Condition 2: B_s ∩ C_r ≠ ∅.
        if !bs.intersects(cr) {
            return Err(Violation::FnfEmptyComponentIntersection { node: s });
        }
        // Condition 3: B(γ_s) ∩ B_r ⊆ B_s.
        let covered = d.node(s).covered_set(h);
        let mut escape = covered.intersection(br);
        escape.difference_with(bs);
        if let Some(v) = escape.first() {
            return Err(Violation::FnfCoveredParentVertexDropped { node: s, vertex: v });
        }
    }
    Ok(())
}

/// The *full* special condition applied to fractional covers — the
/// `sc-fhw` notion of the paper's concluding open question (i):
/// `B(γ_u) ∩ V(T_u) ⊆ B_u` at every node. Strictly stronger than the weak
/// special condition (Definition 6.3); whether bounded `sc-fhw` is
/// recognizable in polynomial time is open.
pub fn validate_fhd_special(h: &Hypergraph, d: &Decomposition) -> Result<(), Violation> {
    for u in 0..d.len() {
        let covered = d.node(u).covered_set(h);
        let subtree = d.subtree_vertices(u);
        let mut escape = covered.intersection(&subtree);
        escape.difference_with(&d.node(u).bag);
        if let Some(v) = escape.first() {
            return Err(Violation::SpecialConditionViolated { node: u, vertex: v });
        }
    }
    Ok(())
}

/// `treecomp(s)` for an FNF decomposition (Section 6.1): `V(H)` at the root,
/// otherwise the unique `[B_r]`-component `C_r` with
/// `V(T_s) = C_r ∪ (B_r ∩ B_s)`.
pub fn treecomp(h: &Hypergraph, d: &Decomposition, s: usize) -> VertexSet {
    match d.parent(s) {
        None => h.all_vertices(),
        Some(r) => {
            let vts = d.subtree_vertices(s);
            vts.difference(&d.node(r).bag)
        }
    }
}

fn vertex_nodes_connected(d: &Decomposition, v: usize) -> bool {
    let holders: Vec<usize> = (0..d.len())
        .filter(|&u| d.node(u).bag.contains(v))
        .collect();
    if holders.len() <= 1 {
        return true;
    }
    let holder_set: std::collections::HashSet<usize> = holders.iter().copied().collect();
    // BFS in the tree restricted to holder nodes.
    let mut seen = std::collections::HashSet::new();
    let mut stack = vec![holders[0]];
    seen.insert(holders[0]);
    while let Some(u) = stack.pop() {
        let mut neighbors: Vec<usize> = d.children(u).to_vec();
        if let Some(p) = d.parent(u) {
            neighbors.push(p);
        }
        for n in neighbors {
            if holder_set.contains(&n) && seen.insert(n) {
                stack.push(n);
            }
        }
    }
    seen.len() == holders.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Node;
    use arith::rat;
    use hypergraph::generators;

    /// A hand-built width-2 GHD of the 4-cycle: bags {0,1,2} and {0,2,3}.
    fn cycle4_ghd() -> (Hypergraph, Decomposition) {
        let h = generators::cycle(4); // edges: e0={0,1}, e1={1,2}, e2={2,3}, e3={3,0}
        let mut d = Decomposition::new(Node::integral(VertexSet::from_iter([0, 1, 2]), [0, 1]));
        d.add_child(0, Node::integral(VertexSet::from_iter([0, 2, 3]), [2, 3]));
        (h, d)
    }

    #[test]
    fn valid_ghd_accepted_by_all_levels() {
        let (h, d) = cycle4_ghd();
        assert_eq!(validate_fhd(&h, &d), Ok(()));
        assert_eq!(validate_ghd(&h, &d), Ok(()));
        assert_eq!(validate_hd(&h, &d), Ok(()));
        assert_eq!(validate_weak_special(&h, &d), Ok(()));
        assert_eq!(d.width(), Rational::from(2usize));
    }

    #[test]
    fn uncovered_edge_detected() {
        let (h, mut d) = cycle4_ghd();
        // Shrink the second bag so edge e2 = {2,3} is nowhere covered.
        d.node_mut(1).bag = VertexSet::from_iter([0, 3]);
        assert_eq!(
            validate_fhd(&h, &d),
            Err(Violation::EdgeNotCovered { edge: 2 })
        );
    }

    #[test]
    fn disconnected_vertex_detected() {
        let (h, mut d) = cycle4_ghd();
        // Add a third node re-introducing vertex 1 far from its subtree.
        let mid = d.add_child(1, Node::integral(VertexSet::from_iter([0, 3]), [3]));
        d.add_child(mid, Node::integral(VertexSet::from_iter([1]), [0]));
        assert_eq!(
            validate_fhd(&h, &d),
            Err(Violation::DisconnectedVertex { vertex: 1 })
        );
    }

    #[test]
    fn bag_must_be_covered() {
        let (h, mut d) = cycle4_ghd();
        d.node_mut(1).weights = vec![(2, Rational::one())]; // drops e3; vertex 0 uncovered
        assert_eq!(
            validate_fhd(&h, &d),
            Err(Violation::BagNotCovered { node: 1, vertex: 0 })
        );
    }

    #[test]
    fn weight_range_enforced() {
        let (h, mut d) = cycle4_ghd();
        d.node_mut(0).weights = vec![(0, rat(3, 2)), (1, Rational::one())];
        assert_eq!(
            validate_fhd(&h, &d),
            Err(Violation::WeightOutOfRange { node: 0, edge: 0 })
        );
    }

    #[test]
    fn fractional_weights_fail_ghd_but_pass_fhd() {
        // Triangle with the 3/2 fractional cover at a single node.
        let h = generators::cycle(3);
        let node = Node {
            bag: VertexSet::from_iter([0, 1, 2]),
            weights: (0..3).map(|e| (e, rat(1, 2))).collect(),
        };
        let d = Decomposition::new(node);
        assert_eq!(validate_fhd(&h, &d), Ok(()));
        assert_eq!(d.width(), rat(3, 2));
        assert!(matches!(
            validate_ghd(&h, &d),
            Err(Violation::NotIntegral { node: 0, .. })
        ));
    }

    #[test]
    fn special_condition_distinguishes_hd_from_ghd() {
        // Fig 6(b)-style situation in miniature: path hypergraph
        // e0={0,1}, e1={1,2}, e2={2,3}; decomposition where the root's
        // lambda covers vertex 2 but 2 appears below without being in the
        // root bag.
        let h = Hypergraph::from_edges(4, vec![vec![0, 1], vec![1, 2], vec![2, 3]]);
        let mut d = Decomposition::new(Node::integral(VertexSet::from_iter([0, 1]), [1]));
        // bag {0,1} covered by e1={1,2}? No — vertex 0 not covered. Use e0.
        d.node_mut(0).weights = vec![(0, Rational::one()), (1, Rational::one())];
        d.add_child(0, Node::integral(VertexSet::from_iter([1, 2]), [1]));
        d.add_child(1, Node::integral(VertexSet::from_iter([2, 3]), [2]));
        assert_eq!(validate_ghd(&h, &d), Ok(()));
        // Root's B(λ) ∋ 2 (via e1), 2 ∈ V(T_root) but 2 ∉ B_root: SCV.
        assert_eq!(
            validate_hd(&h, &d),
            Err(Violation::SpecialConditionViolated { node: 0, vertex: 2 })
        );
        // Weak special condition coincides with special for integral weights.
        assert!(validate_weak_special(&h, &d).is_err());
    }

    #[test]
    fn c_bounded_fractional_part() {
        let h = generators::cycle(3);
        let node = Node {
            bag: VertexSet::from_iter([0, 1, 2]),
            weights: (0..3).map(|e| (e, rat(1, 2))).collect(),
        };
        let d = Decomposition::new(node);
        // All three covered vertices come from fractional weights.
        assert!(has_c_bounded_fractional_part(&h, &d, 3));
        assert!(!has_c_bounded_fractional_part(&h, &d, 2));
        // A GHD has 0-bounded fractional part.
        let (h2, d2) = cycle4_ghd();
        assert!(has_c_bounded_fractional_part(&h2, &d2, 0));
    }

    #[test]
    fn strictness() {
        let (h, d) = cycle4_ghd();
        assert!(is_strict(&h, &d)); // bags equal the union of their λ-edges
        let mut d2 = d.clone();
        d2.node_mut(0).bag = VertexSet::from_iter([0, 1]); // smaller than ∪λ
        assert!(!is_strict(&h, &d2));
    }

    #[test]
    fn fnf_on_a_clean_example() {
        let (h, d) = cycle4_ghd();
        assert_eq!(validate_fnf(&h, &d), Ok(()));
        assert_eq!(treecomp(&h, &d, 0).len(), 4);
        assert_eq!(treecomp(&h, &d, 1).to_vec(), vec![3]);
    }

    #[test]
    fn fnf_rejects_multi_component_subtrees() {
        // Root bag {1, 3} of C4 splits the rest into components {0} and {2};
        // a single child covering both violates FNF condition 1.
        let h = generators::cycle(4);
        let mut d = Decomposition::new(Node::integral(VertexSet::from_iter([1, 3]), [0, 2]));
        // bag {1,3}: e0={0,1} covers 1, e2={2,3} covers 3.
        d.add_child(
            0,
            Node::integral(VertexSet::from_iter([0, 1, 2, 3]), [0, 1, 2, 3]),
        );
        assert_eq!(validate_fhd(&h, &d), Ok(()));
        assert!(matches!(
            validate_fnf(&h, &d),
            Err(Violation::FnfComponentMismatch { node: 1 })
        ));
    }
}
