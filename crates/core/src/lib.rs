//! # hypertree-core
//!
//! The unified public API of the *General and Fractional Hypertree
//! Decompositions: Hard and Easy Cases* reproduction (Fischl, Gottlob,
//! Pichler; PODS'18).
//!
//! Re-exports every workspace crate as a module and offers a small
//! high-level layer: [`analyze_structure`] (the Section 4–6 restriction
//! criteria), [`exact_widths`] (certified `hw`/`ghw`/`fhw` for small
//! instances) and the [`prelude`].
//!
//! ```
//! use hypertree_core::prelude::*;
//!
//! // The paper's Example 4.3 hypergraph: ghw = 2 but hw = 3.
//! let h = hypergraph::generators::example_4_3();
//! let widths = hypertree_core::exact_widths(&h, 6).unwrap();
//! assert_eq!(widths.hw, 3);
//! assert_eq!(widths.ghw, 2);
//! assert!(widths.fhw <= Rational::from(2usize));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use arith;
pub use candgen;
pub use cover;
pub use decomp;
pub use fhd;
pub use ghd;
pub use hd;
pub use hypergraph;
pub use lp;
pub use prep;
pub use reduction;
pub use solver;

use arith::Rational;
use hypergraph::{properties, Hypergraph};
use solver::SearchStats;

/// Frequently used items in one import.
pub mod prelude {
    pub use arith::{rat, BigInt, Rational};
    pub use cover::{fractional_cover, integral_cover, rho, rho_star, tau, tau_star};
    pub use decomp::{validate_fhd, validate_ghd, validate_hd, Decomposition, Node};
    pub use fhd::{check_fhd_bdp, fhw_approximation, fhw_exact, frac_decomp, FracDecompParams};
    pub use ghd::{check_ghd_bip, ghw_exact, GhdAnswer, SubedgeLimits};
    pub use hd::{check_hd, hypertree_width};
    pub use hypergraph::{self, Hypergraph, VertexSet};
    pub use reduction::{Cnf, Literal};
}

/// Structural profile of a hypergraph against the paper's restriction
/// criteria (BIP, BMIP, BDP, VC-dimension, α-acyclicity).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StructureReport {
    /// `|V(H)|`.
    pub num_vertices: usize,
    /// `|E(H)|`.
    pub num_edges: usize,
    /// Maximum edge size.
    pub rank: usize,
    /// Degree (BDP parameter `d`).
    pub degree: usize,
    /// Intersection width (BIP parameter `i`).
    pub intersection_width: usize,
    /// `c`-multi-intersection widths for `c = 2, 3, 4`.
    pub multi_intersection_widths: [usize; 3],
    /// VC-dimension (`None` when the instance is too large to compute).
    pub vc_dimension: Option<usize>,
    /// α-acyclicity (equivalent to `hw = ghw = fhw = 1`).
    pub alpha_acyclic: bool,
}

/// Computes the [`StructureReport`]. The VC-dimension is skipped above
/// `vc_limit` vertices (it is itself an exponential computation).
pub fn analyze_structure(h: &Hypergraph, vc_limit: usize) -> StructureReport {
    StructureReport {
        num_vertices: h.num_vertices(),
        num_edges: h.num_edges(),
        rank: properties::rank(h),
        degree: properties::degree(h),
        intersection_width: properties::intersection_width(h),
        multi_intersection_widths: [
            properties::multi_intersection_width(h, 2),
            properties::multi_intersection_width(h, 3),
            properties::multi_intersection_width(h, 4),
        ],
        vc_dimension: (h.num_vertices() <= vc_limit).then(|| properties::vc_dimension(h)),
        alpha_acyclic: properties::is_alpha_acyclic(h),
    }
}

/// Certified exact widths of a (small) hypergraph.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExactWidths {
    /// Hypertree width (`det-k-decomp` on the shared search engine).
    pub hw: usize,
    /// Generalized hypertree width (shared-engine subset search with `rho`).
    pub ghw: usize,
    /// Fractional hypertree width (shared-engine subset search with
    /// `rho*`), exact rational.
    pub fhw: Rational,
}

/// Computes `hw`, `ghw` and `fhw` exactly; `None` when the instance exceeds
/// the exponential baselines' size limits or `hw > max_hw`.
///
/// All three engines run on the shared `(component, connector)` search in
/// the [`solver`] crate — `det-k-decomp`, the `rho`-priced and the
/// `rho*`-priced subset strategies are thin [`solver::WidthSolver`]
/// implementations over one memoized recursion.
pub fn exact_widths(h: &Hypergraph, max_hw: usize) -> Option<ExactWidths> {
    exact_widths_with_stats(h, max_hw).map(|(w, _)| w)
}

/// Per-engine counters of one [`exact_widths_with_stats`] run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WidthStats {
    /// `det-k-decomp` counters, summed over the `k = 1..` checks.
    pub hw: solver::SearchStats,
    /// Exact-`ghw` subset-search counters.
    pub ghw: solver::SearchStats,
    /// Exact-`fhw` subset-search counters.
    pub fhw: solver::SearchStats,
}

/// As [`exact_widths`], also reporting the engine and price-cache counters
/// of each of the three searches (surfaced by `hgtool widths --stats` and
/// recorded by the `baseline` bin). All three engines run with the default
/// scheduling ([`solver::default_thread_count`], honoring `HGTOOL_THREADS`);
/// the counters are identical at every thread count.
pub fn exact_widths_with_stats(h: &Hypergraph, max_hw: usize) -> Option<(ExactWidths, WidthStats)> {
    exact_widths_with_opts(h, max_hw, solver::EngineOptions::default())
}

/// As [`exact_widths_with_stats`] with explicit [`solver::EngineOptions`]
/// — the hook for `hgtool widths --no-prep` and for callers that want
/// fresh per-search price caches (`reuse_prices: false`).
pub fn exact_widths_with_opts(
    h: &Hypergraph,
    max_hw: usize,
    opts: solver::EngineOptions,
) -> Option<(ExactWidths, WidthStats)> {
    let (hw, hw_stats) = hd::hypertree_width_with_stats(h, max_hw, opts);
    let (hw, _) = hw?;
    let (ghw, ghw_stats) = ghd::ghw_exact_with_stats(h, None, opts);
    let (ghw, _) = ghw?;
    let (fhw, fhw_stats) = fhd::fhw_exact_with_stats(h, None, opts);
    let (fhw, _) = fhw?;
    Some((
        ExactWidths { hw, ghw, fhw },
        WidthStats {
            hw: hw_stats,
            ghw: ghw_stats,
            fhw: fhw_stats,
        },
    ))
}

/// The portfolio registry: every [`solver::backend::Backend`] able to
/// resolve requests of the given measure, in admission order (the
/// always-eligible default engine first). This is the one place the five
/// strategies' backend sets are wired together; [`solver::portfolio::race`]
/// consumes the list directly.
pub fn backends_for(measure: &solver::backend::Measure) -> Vec<Box<dyn solver::backend::Backend>> {
    use solver::backend::Measure;
    match measure {
        Measure::Hw { .. } => hd::backends::backends(),
        Measure::Ghw { .. } => ghd::backends::backends(),
        Measure::Fhw { .. } => fhd::backends::fhw_backends(),
        Measure::FracDecomp { .. } => fhd::backends::frac_decomp_backends(),
        Measure::StrictHd { .. } => fhd::backends::strict_hd_backends(),
    }
}

/// The three per-measure [`solver::portfolio::RaceReport`]s of one
/// [`exact_widths_portfolio`] run (winner ids, bound traces, race
/// timings).
#[derive(Clone, Debug)]
pub struct WidthRaces {
    /// The `hw` race.
    pub hw: solver::portfolio::RaceReport,
    /// The `ghw` race.
    pub ghw: solver::portfolio::RaceReport,
    /// The `fhw` race.
    pub fhw: solver::portfolio::RaceReport,
}

/// As [`exact_widths_with_opts`], but each of the three measures races
/// its full backend registry ([`backends_for`]) through
/// [`solver::portfolio::race`]: first exact answer wins, losers are
/// cancelled, and the per-measure [`WidthRaces`] report records winner,
/// bound trace and race timings. Widths are identical to the
/// non-portfolio path (every backend is exact); `None` means some
/// measure's race ended unresolved (instance out of every backend's
/// range, or a deadline struck first).
pub fn exact_widths_portfolio(
    h: &Hypergraph,
    max_hw: usize,
    opts: solver::EngineOptions,
    popts: &solver::portfolio::PortfolioOptions,
) -> Option<(ExactWidths, WidthStats, WidthRaces)> {
    use solver::backend::{Measure, WidthRequest};
    let race = |measure: Measure| {
        let backends = backends_for(&measure);
        let req = WidthRequest { measure, opts };
        solver::portfolio::race(h, &req, &backends, popts)
    };
    let hw_race = race(Measure::Hw { max_k: max_hw });
    let ghw_race = race(Measure::Ghw { cutoff: None });
    let fhw_race = race(Measure::Fhw { cutoff: None });
    let int_width = |r: &solver::portfolio::RaceReport| {
        r.outcome
            .width
            .as_ref()
            .map(|w| w.floor().to_i64().unwrap_or(0).max(0) as usize)
    };
    let widths = ExactWidths {
        hw: int_width(&hw_race)?,
        ghw: int_width(&ghw_race)?,
        fhw: fhw_race.outcome.width.clone()?,
    };
    let stats = WidthStats {
        hw: hw_race.outcome.stats.clone(),
        ghw: ghw_race.outcome.stats.clone(),
        fhw: fhw_race.outcome.stats.clone(),
    };
    Some((
        widths,
        stats,
        WidthRaces {
            hw: hw_race,
            ghw: ghw_race,
            fhw: fhw_race,
        },
    ))
}

/// Batch variant of [`exact_widths_portfolio`]: every instance goes
/// through [`solver::solve_batch`] (admission-ordered, result-cache
/// dedup'd) and each races its backends on arrival.
pub fn exact_widths_portfolio_batch(
    instances: &[Hypergraph],
    max_hw: usize,
    opts: solver::EngineOptions,
    popts: &solver::portfolio::PortfolioOptions,
) -> Vec<Option<(ExactWidths, WidthStats, WidthRaces)>> {
    solver::solve_batch(instances, |_, h| {
        let result = exact_widths_portfolio(h, max_hw, opts, popts);
        let merged = result
            .as_ref()
            .map_or_else(SearchStats::default, |(_, s, _)| {
                let mut total = s.hw.clone();
                total.merge(&s.ghw);
                total.merge(&s.fhw);
                total
            });
        (result, merged)
    })
    .into_iter()
    .map(|(r, _)| r)
    .collect()
}

/// Batch variant of [`exact_widths_with_opts`]: solves every instance
/// through [`solver::solve_batch`] — admission ordered by the
/// `candgen` candidate-space estimate, one search at a time over the
/// shared worker pool, whole-query answers deduplicated through the
/// cross-call result registry (when `opts.reuse_results` is on, repeated
/// instances in one batch report `result_cache_hits` instead of
/// re-searching). Results come back in input order; a `None` entry means
/// that instance exceeded the exact engines' limits or `max_hw`.
pub fn exact_widths_batch(
    instances: &[Hypergraph],
    max_hw: usize,
    opts: solver::EngineOptions,
) -> Vec<Option<(ExactWidths, WidthStats)>> {
    solver::solve_batch(instances, |_, h| {
        let result = exact_widths_with_opts(h, max_hw, opts);
        // solve_batch threads one SearchStats per item for schedulers that
        // want it; the three per-engine records stay in WidthStats.
        let merged = result.as_ref().map_or_else(SearchStats::default, |(_, s)| {
            let mut total = s.hw.clone();
            total.merge(&s.ghw);
            total.merge(&s.fhw);
            total
        });
        (result, merged)
    })
    .into_iter()
    .map(|(r, _)| r)
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypergraph::generators;

    #[test]
    fn example_4_3_headline_numbers() {
        let h = generators::example_4_3();
        let w = exact_widths(&h, 5).unwrap();
        assert_eq!(w.hw, 3);
        assert_eq!(w.ghw, 2);
        assert!(w.fhw <= Rational::from(2usize) && w.fhw > Rational::one());
        let s = analyze_structure(&h, 16);
        assert_eq!(s.intersection_width, 1);
        assert_eq!(s.multi_intersection_widths, [1, 1, 0]);
        assert!(!s.alpha_acyclic);
    }

    #[test]
    fn width_hierarchy_everywhere() {
        for h in [
            generators::cycle(5),
            generators::clique(5),
            generators::triangle_chain(2),
            generators::example_5_1(4),
        ] {
            let w = exact_widths(&h, 6).unwrap();
            assert!(w.fhw <= Rational::from(w.ghw));
            assert!(w.ghw <= w.hw);
            assert!(w.hw <= 3 * w.ghw + 1);
        }
    }

    #[test]
    fn structure_report_on_acyclic() {
        let h = generators::cq_chain(4, 3, 1);
        let s = analyze_structure(&h, 16);
        assert!(s.alpha_acyclic);
        assert_eq!(s.rank, 3);
    }
}
